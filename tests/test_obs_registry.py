"""Tests for the metrics registry: instruments, snapshots, rendering,
enablement, and the zero-cost disabled path."""

from __future__ import annotations

import time

import pytest

from repro import obs
from repro.harness.experiment import measure_accuracy
from repro.obs.registry import DEFAULT_BUCKETS, Histogram, MetricsRegistry, Timer


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestInstruments:
    def test_counter(self, registry):
        counter = registry.counter("x")
        counter.inc()
        counter.inc(5)
        assert registry.counter("x").value == 6
        assert registry.counter("x") is counter

    def test_gauge(self, registry):
        registry.gauge("g").set(3)
        registry.gauge("g").set(1.5)
        assert registry.gauge("g").value == 1.5

    def test_timer(self, registry):
        timer = registry.timer("t")
        timer.observe(0.5)
        timer.observe(1.5)
        assert timer.count == 2
        assert timer.total_seconds == pytest.approx(2.0)
        assert timer.mean_seconds == pytest.approx(1.0)
        assert timer.min_seconds == 0.5
        assert timer.max_seconds == 1.5

    def test_timer_empty_mean(self):
        assert Timer("t").mean_seconds == 0.0

    def test_histogram_buckets(self, registry):
        histogram = registry.histogram("h", bounds=(1.0, 2.0))
        for value in (0.5, 1.0, 1.5, 99.0):
            histogram.observe(value)
        assert histogram.counts == [2, 1, 1]  # <=1, <=2, overflow
        assert histogram.count == 4
        assert histogram.total == pytest.approx(102.0)

    def test_histogram_default_bounds(self):
        assert Histogram("h").bounds == DEFAULT_BUCKETS


class TestRegistry:
    def test_snapshot_roundtrips_to_json(self, registry):
        import json

        registry.counter("c").inc(2)
        registry.gauge("g").set(1.0)
        registry.timer("t").observe(0.1)
        registry.histogram("h").observe(0.01)
        registry.record_attribution("p/t", [{"pc": 1, "executions": 2, "mispredictions": 1}])
        snapshot = registry.snapshot()
        assert json.loads(json.dumps(snapshot)) == snapshot
        assert snapshot["counters"] == {"c": 2}
        assert snapshot["timers"]["t"]["count"] == 1
        assert snapshot["attributions"]["p/t"][0]["pc"] == 1

    def test_render_sections(self, registry):
        registry.counter("hits").inc(7)
        registry.timer("phase").observe(0.25)
        registry.record_attribution(
            "gshare/gcc", [{"pc": 0x400, "executions": 10, "mispredictions": 4}]
        )
        text = registry.render()
        assert "Counters" in text and "hits" in text and "7" in text
        assert "Timers" in text and "phase" in text
        assert "Hard-to-predict branches: gshare/gcc" in text and "0x400" in text

    def test_render_empty(self, registry):
        assert registry.render() == "(no metrics recorded)"

    def test_reset(self, registry):
        registry.counter("c").inc()
        registry.record_attribution("k", [])
        registry.reset()
        assert registry.snapshot()["counters"] == {}
        assert registry.snapshot()["attributions"] == {}


class TestEnablement:
    def test_default_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        obs.set_enabled(None)
        assert not obs.enabled()

    def test_env_enables(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "1")
        obs.set_enabled(None)
        assert obs.enabled()
        monkeypatch.setenv("REPRO_PROFILE", "0")
        assert not obs.enabled()

    def test_pin_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "1")
        obs.set_enabled(False)
        try:
            assert not obs.enabled()
            assert obs.enabled_override() is False
        finally:
            obs.set_enabled(None)

    def test_module_helpers_hit_default_registry(self, obs_enabled):
        obs.counter("helper").inc()
        assert obs.registry().counter("helper").value == 1


class TestDisabledOverhead:
    def test_disabled_measurement_never_touches_registry(
        self, small_trace, monkeypatch
    ):
        """The disabled path must not record anything — not one instrument."""
        from repro.predictors.bimodal import BimodalPredictor

        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        obs.set_enabled(None)

        def explode(*args, **kwargs):  # pragma: no cover - failure path
            raise AssertionError("registry touched on the disabled path")

        monkeypatch.setattr(obs.registry(), "counter", explode)
        monkeypatch.setattr(obs.registry(), "timer", explode)
        monkeypatch.setattr(obs.registry(), "histogram", explode)
        monkeypatch.setattr(obs.registry(), "record_attribution", explode)
        result = measure_accuracy(BimodalPredictor(1024), small_trace, engine="scalar")
        assert result.branches > 0
        assert result.attribution is None

    def test_disabled_overhead_smoke(self, small_trace):
        """measure_accuracy with obs disabled tracks a hand-rolled copy of
        the reference loop — the instrumentation adds no measurable cost.

        This is a smoke test (generous 1.5x bound, best-of-3) so it stays
        robust on noisy CI machines; the strict guarantee is the structural
        one above: the scored loop is byte-for-byte the pre-obs loop.
        """
        from repro.predictors.bimodal import BimodalPredictor

        pairs = list(small_trace.conditional_branches())

        def reference_loop():
            predictor = BimodalPredictor(1024)
            wrong = 0
            for pc, taken in pairs:
                predictor.predict(pc)
                if not predictor.update(pc, taken):
                    wrong += 1
            return wrong

        def instrumented():
            predictor = BimodalPredictor(1024)
            return measure_accuracy(predictor, small_trace, engine="scalar")

        baseline = min(_timed(reference_loop) for _ in range(3))
        measured = min(_timed(instrumented) for _ in range(3))
        assert measured < baseline * 1.5


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start
