"""Fault injection against the prediction service.

Every drill follows the same arc: break something mid-flight (kill the
worker, corrupt a stored artifact), verify the service *classifies* the
damage instead of serving garbage, then verify the recovery path restores
byte-identical output.  The worker-death hook is the campaign layer's own
crash drill (``REPRO_CAMPAIGN_ABORT_AFTER``); corruption is literal bit
damage written over the stored files.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.harness.cli import RUNNERS
from repro.harness.figconfig import parse_config, run_target
from repro.predictors.registry import build_count
from tests.service_helpers import (
    get_json,
    make_app,
    mini_spec,
    run_job,
    set_service_env,
    submit,
)


@pytest.fixture(scope="module")
def trace_store(tmp_path_factory):
    return tmp_path_factory.mktemp("traces")


@pytest.fixture
def env(monkeypatch, tmp_path, trace_store):
    set_service_env(monkeypatch, tmp_path, trace_store)
    # A crashed worker leaves a live-looking claim behind; let the rerun
    # steal it quickly instead of waiting out the production staleness.
    monkeypatch.setenv("REPRO_CAMPAIGN_STALE_SECONDS", "0.2")
    monkeypatch.setenv("REPRO_CAMPAIGN_POLL_SECONDS", "0.01")
    return tmp_path


def reference_bytes(spec: dict) -> bytes:
    """What a clean in-process render of ``spec`` produces."""
    return run_target(parse_config(spec), RUNNERS).encode()


class TestWorkerDeath:
    def test_killed_worker_leaves_partial_then_rerun_completes(
        self, env, tmp_path, monkeypatch
    ):
        """Worker dies mid-campaign -> partial; resubmit -> completed."""
        spec = mini_spec(families=("gshare", "bimodal"), budgets=(1024, 2048))
        app, executor = make_app(tmp_path)
        code, doc = submit(app, spec)
        assert code == 202
        job_id = doc["job_id"]

        monkeypatch.setenv("REPRO_CAMPAIGN_ABORT_AFTER", "1")
        executor.enqueue(job_id)
        executor.run_pending()
        code, status = get_json(app, f"/v1/jobs/{job_id}")
        assert status["state"] == "partial"
        assert "aborted" in status["error"]
        assert status["counts"]["completed"] >= 1  # some work survived
        # The figure is not served from a half-drained campaign.
        assert app.handle("GET", f"/v1/jobs/{job_id}/figure")[0] == 409

        # Rerun: resubmitting the same spec re-plans the damaged classes.
        monkeypatch.delenv("REPRO_CAMPAIGN_ABORT_AFTER")
        code, doc = submit(app, spec)
        assert code == 202 and doc["state"] == "queued"
        executor.enqueue(job_id)
        executor.run_pending()
        code, status = get_json(app, f"/v1/jobs/{job_id}")
        assert status["state"] == "completed"
        served, _ = app.jobs.figure_bytes(job_id)
        assert served == reference_bytes(spec)

    def test_spawned_worker_crash_is_classified(self, env, tmp_path, monkeypatch):
        """A dead *process* (spawn mode) lands the job in partial too."""
        import os

        monkeypatch.setenv("REPRO_CAMPAIGN_ABORT_AFTER", "1")
        monkeypatch.setenv("PYTHONPATH", str(Path(__file__).resolve().parent.parent / "src"))
        spec = mini_spec(families=("gshare", "bimodal"))
        app, executor = make_app(tmp_path, worker_mode="spawn")
        code, doc = submit(app, spec)
        executor.enqueue(doc["job_id"])
        executor.run_pending()
        code, status = get_json(app, f"/v1/jobs/{doc['job_id']}")
        assert status["state"] == "partial"
        assert "exited" in status["error"]

        monkeypatch.delenv("REPRO_CAMPAIGN_ABORT_AFTER")
        code, doc = submit(app, spec)
        executor.enqueue(doc["job_id"])
        executor.run_pending()
        _, status = get_json(app, f"/v1/jobs/{doc['job_id']}")
        assert status["state"] == "completed"
        served, _ = app.jobs.figure_bytes(doc["job_id"])
        assert served == reference_bytes(spec)


class TestCorruption:
    def test_corrupt_figure_blob_self_heals(self, env, tmp_path):
        spec = mini_spec()
        app, executor = make_app(tmp_path)
        status = run_job(app, executor, spec)
        digest = status["figure_digest"]
        blob_path = Path(app.blobs.path(digest))
        blob_path.write_bytes(b"GARBAGE NOT A FIGURE")

        code, payload, _ = app.handle("GET", f"/v1/jobs/{status['job_id']}/figure")
        assert code == 200
        assert payload == reference_bytes(spec)  # never the garbage
        # The blob store holds the healed copy again under the same digest.
        assert app.blobs.load(digest) == payload

    def test_corrupt_blob_on_results_endpoint_recomputes(self, env, tmp_path):
        spec = mini_spec()
        app, executor = make_app(tmp_path)
        status = run_job(app, executor, spec)
        digest = status["figure_digest"]
        Path(app.blobs.path(digest)).write_bytes(b"\x00" * 64)

        code, payload, _ = app.handle("GET", f"/v1/results/{digest}")
        assert code == 200
        assert payload == reference_bytes(spec)

    def test_corrupt_manifest_blob_self_heals(self, env, tmp_path):
        app, executor = make_app(tmp_path)
        status = run_job(app, executor, mini_spec())
        Path(app.blobs.path(status["manifest_digest"])).write_bytes(b"{}")
        code, payload, _ = app.handle(
            "GET", f"/v1/jobs/{status['job_id']}/manifest"
        )
        assert code == 200
        manifest = json.loads(payload)
        assert manifest["target"] == "mini"

    def test_corrupt_result_store_cell_recomputes(self, env, tmp_path):
        """Deep corruption: the sweep cell itself is damaged on disk.

        The figure blob is also destroyed, so the re-render must resolve
        through the result store, notice the bad checksum, and recompute
        the cell — more predictor work, identical bytes, no garbage.
        """
        spec = mini_spec()
        app, executor = make_app(tmp_path)
        status = run_job(app, executor, spec)
        expected = reference_bytes(spec)

        import os

        store_root = Path(os.environ["REPRO_RESULT_STORE"])
        cells = [p for p in store_root.rglob("*.json") if "index" not in p.name]
        assert cells, "expected stored sweep cells"
        for cell in cells:
            cell.write_text('{"schema": 1, "payload": {"broken": true}')
        Path(app.blobs.path(status["figure_digest"])).unlink()

        before = build_count()
        code, payload, _ = app.handle("GET", f"/v1/jobs/{status['job_id']}/figure")
        assert code == 200
        assert payload == expected
        assert build_count() > before  # the cell really was recomputed
