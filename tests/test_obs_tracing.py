"""Tests for span tracing: registry timers, JSONL events, span context,
sidecar routing, and the stderr mirror."""

from __future__ import annotations

import json
import os

import pytest

from repro import obs
from repro.obs import events


@pytest.fixture
def log_file(tmp_path, monkeypatch):
    path = tmp_path / "events.jsonl"
    monkeypatch.setenv("REPRO_LOG", str(path))
    monkeypatch.delenv("REPRO_LOG_OWNER_PID", raising=False)
    return path


def read_events(path):
    return [json.loads(line) for line in path.read_text().splitlines()]


def read_closes(path):
    """Span close events only (the log also carries span_open records)."""
    return [e for e in read_events(path) if e["event"] == "span"]


class TestSpan:
    def test_disabled_span_is_noop(self, monkeypatch):
        monkeypatch.delenv("REPRO_LOG", raising=False)
        monkeypatch.delenv("REPRO_VERBOSE", raising=False)
        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        obs.set_enabled(None)
        assert not obs.tracing_active()
        with obs.span("quiet") as handle:
            handle.annotate(ignored=True)  # no-op handle accepts annotations
        assert obs.registry().timers == {}

    def test_span_records_timer(self, obs_enabled):
        with obs.span("phase_a"):
            pass
        with obs.span("phase_a"):
            pass
        timer = obs.registry().timer("span.phase_a")
        assert timer.count == 2
        assert timer.total_seconds >= 0.0

    def test_span_emits_jsonl(self, obs_enabled, log_file):
        with obs.span("outer", engine="batch"):
            with obs.span("inner") as inner:
                inner.annotate(cells=3)
        events = read_closes(log_file)
        assert [e["name"] for e in events] == ["inner", "outer"]  # close order
        inner_event, outer_event = events
        assert inner_event["depth"] == 1 and outer_event["depth"] == 0
        assert inner_event["attrs"] == {"cells": 3}
        assert outer_event["attrs"] == {"engine": "batch"}
        assert outer_event["duration_seconds"] >= inner_event["duration_seconds"]

    def test_span_open_events_precede_closes(self, obs_enabled, log_file):
        with obs.span("outer"):
            with obs.span("inner"):
                pass
        names = [(e["event"], e["name"]) for e in read_events(log_file)]
        assert names == [
            ("span_open", "outer"),
            ("span_open", "inner"),
            ("span", "inner"),
            ("span", "outer"),
        ]

    def test_jsonl_without_profiling(self, monkeypatch, log_file):
        """REPRO_LOG alone activates spans — no metrics required."""
        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        obs.set_enabled(None)
        with obs.span("standalone"):
            pass
        assert [e["name"] for e in read_closes(log_file)] == ["standalone"]
        assert obs.registry().timers == {}  # metrics still off

    def test_span_closes_on_exception(self, obs_enabled, log_file):
        with pytest.raises(ValueError):
            with obs.span("doomed"):
                raise ValueError("boom")
        assert [e["name"] for e in read_closes(log_file)] == ["doomed"]

    def test_verbose_mirror(self, obs_enabled, capsys):
        obs.set_verbose(True)
        try:
            with obs.span("loud", benchmark="gcc"):
                pass
        finally:
            obs.set_verbose(None)
        err = capsys.readouterr().err
        assert "[obs] > loud" in err
        assert "< loud" in err and "benchmark=gcc" in err

    def test_log_event(self, log_file):
        obs.log_event("manifest", target="figure1")
        (event,) = read_events(log_file)
        assert event["event"] == "manifest"
        assert event["target"] == "figure1"
        assert "ts" in event
        assert event["pid"] == os.getpid()
        assert event["v"] == events.EVENT_SCHEMA


class TestSpanContext:
    def test_nested_spans_share_trace_and_link_parents(self, obs_enabled, log_file):
        with obs.span("outer"):
            with obs.span("inner"):
                pass
        inner, outer = read_closes(log_file)
        assert outer["trace_id"] and outer["span_id"]
        assert outer["parent_id"] is None
        assert inner["trace_id"] == outer["trace_id"]
        assert inner["parent_id"] == outer["span_id"]
        assert inner["span_id"] != outer["span_id"]

    def test_sibling_roots_get_fresh_traces(self, obs_enabled, log_file):
        with obs.span("first"):
            pass
        with obs.span("second"):
            pass
        first, second = read_closes(log_file)
        assert first["trace_id"] != second["trace_id"]

    def test_current_context_tracks_innermost_span(self, obs_enabled):
        assert obs.current_context() is None
        with obs.span("outer"):
            outer_ctx = obs.current_context()
            with obs.span("inner"):
                inner_ctx = obs.current_context()
                assert inner_ctx["trace_id"] == outer_ctx["trace_id"]
                assert inner_ctx["span_id"] != outer_ctx["span_id"]
            assert obs.current_context() == outer_ctx
        assert obs.current_context() is None

    def test_adopted_context_parents_new_roots(self, obs_enabled, log_file):
        """The worker half of propagation: spans with no local parent
        attach to the adopted remote context."""
        remote = {"trace_id": "cafe" * 4, "span_id": "beef" * 4}
        obs.adopt_context(remote)
        try:
            assert obs.current_context() == remote
            with obs.span("worker_phase"):
                pass
        finally:
            obs.adopt_context(None)
        (event,) = read_closes(log_file)
        assert event["trace_id"] == remote["trace_id"]
        assert event["parent_id"] == remote["span_id"]
        assert obs.current_context() is None

    def test_last_trace_id_reports_most_recent_root(self, obs_enabled):
        with obs.span("run"):
            pass
        assert obs.last_trace_id()


class TestSidecarRouting:
    def test_owner_writes_main_file(self, log_file):
        obs.claim_log_ownership()
        assert os.environ["REPRO_LOG_OWNER_PID"] == str(os.getpid())
        assert obs.event_sink() == str(log_file)

    def test_foreign_owner_routes_to_sidecar(self, log_file, monkeypatch):
        monkeypatch.setenv("REPRO_LOG_OWNER_PID", "1")  # some other process
        assert obs.event_sink() == f"{log_file}.{os.getpid()}"
        obs.log_event("probe")
        sidecar = log_file.parent / f"{log_file.name}.{os.getpid()}"
        assert sidecar.exists() and not log_file.exists()
        (event,) = read_events(sidecar)
        assert event["event"] == "probe"

    def test_claim_is_idempotent_and_respects_prior_owner(self, log_file, monkeypatch):
        monkeypatch.setenv("REPRO_LOG_OWNER_PID", "1")
        obs.claim_log_ownership()  # must not steal
        assert os.environ["REPRO_LOG_OWNER_PID"] == "1"

    def test_claim_without_log_is_noop(self, monkeypatch):
        monkeypatch.delenv("REPRO_LOG", raising=False)
        monkeypatch.delenv("REPRO_LOG_OWNER_PID", raising=False)
        obs.claim_log_ownership()
        assert "REPRO_LOG_OWNER_PID" not in os.environ


class TestSweepSpans:
    def test_accuracy_sweep_opens_benchmark_spans(self, obs_enabled, monkeypatch):
        from repro.harness.sweep import accuracy_sweep

        monkeypatch.setenv("REPRO_SCALE", "0.1")
        accuracy_sweep(["bimodal"], [8 * 1024], benchmarks=["gzip"], instructions=30_000)
        assert obs.registry().timer("span.accuracy_sweep.benchmark").count == 1
        # The sweep-level root span wraps the per-benchmark ones.
        assert obs.registry().timer("span.accuracy_sweep").count == 1
