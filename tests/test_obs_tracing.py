"""Tests for span tracing: registry timers, JSONL events, stderr mirror."""

from __future__ import annotations

import json

import pytest

from repro import obs


@pytest.fixture
def log_file(tmp_path, monkeypatch):
    path = tmp_path / "events.jsonl"
    monkeypatch.setenv("REPRO_LOG", str(path))
    return path


def read_events(path):
    return [json.loads(line) for line in path.read_text().splitlines()]


class TestSpan:
    def test_disabled_span_is_noop(self, monkeypatch):
        monkeypatch.delenv("REPRO_LOG", raising=False)
        monkeypatch.delenv("REPRO_VERBOSE", raising=False)
        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        obs.set_enabled(None)
        assert not obs.tracing_active()
        with obs.span("quiet") as handle:
            handle.annotate(ignored=True)  # no-op handle accepts annotations
        assert obs.registry().timers == {}

    def test_span_records_timer(self, obs_enabled):
        with obs.span("phase_a"):
            pass
        with obs.span("phase_a"):
            pass
        timer = obs.registry().timer("span.phase_a")
        assert timer.count == 2
        assert timer.total_seconds >= 0.0

    def test_span_emits_jsonl(self, obs_enabled, log_file):
        with obs.span("outer", engine="batch"):
            with obs.span("inner") as inner:
                inner.annotate(cells=3)
        events = read_events(log_file)
        assert [e["name"] for e in events] == ["inner", "outer"]  # close order
        inner_event, outer_event = events
        assert inner_event["depth"] == 1 and outer_event["depth"] == 0
        assert inner_event["attrs"] == {"cells": 3}
        assert outer_event["attrs"] == {"engine": "batch"}
        assert outer_event["duration_seconds"] >= inner_event["duration_seconds"]

    def test_jsonl_without_profiling(self, monkeypatch, log_file):
        """REPRO_LOG alone activates spans — no metrics required."""
        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        obs.set_enabled(None)
        with obs.span("standalone"):
            pass
        assert [e["name"] for e in read_events(log_file)] == ["standalone"]
        assert obs.registry().timers == {}  # metrics still off

    def test_span_closes_on_exception(self, obs_enabled, log_file):
        with pytest.raises(ValueError):
            with obs.span("doomed"):
                raise ValueError("boom")
        assert [e["name"] for e in read_events(log_file)] == ["doomed"]

    def test_verbose_mirror(self, obs_enabled, capsys):
        obs.set_verbose(True)
        try:
            with obs.span("loud", benchmark="gcc"):
                pass
        finally:
            obs.set_verbose(None)
        err = capsys.readouterr().err
        assert "[obs] > loud" in err
        assert "< loud" in err and "benchmark=gcc" in err

    def test_log_event(self, log_file):
        obs.log_event("manifest", target="figure1")
        (event,) = read_events(log_file)
        assert event["event"] == "manifest"
        assert event["target"] == "figure1"
        assert "ts" in event


class TestSweepSpans:
    def test_accuracy_sweep_opens_benchmark_spans(self, obs_enabled, monkeypatch):
        from repro.harness.sweep import accuracy_sweep

        monkeypatch.setenv("REPRO_SCALE", "0.1")
        accuracy_sweep(["bimodal"], [8 * 1024], benchmarks=["gzip"], instructions=30_000)
        timer = obs.registry().timer("span.accuracy_sweep.benchmark")
        assert timer.count == 1
