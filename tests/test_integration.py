"""Integration tests: the paper's qualitative claims at small scale.

These drive the whole stack (workloads -> predictors -> timing -> cycle
simulator) and assert the *shape* results the reproduction is built around.
They use short traces and a two-benchmark subset so the suite stays fast;
the benchmark harness repeats them at full scale.
"""

from __future__ import annotations

import pytest

from repro.core.gshare_fast import build_gshare_fast
from repro.core.overriding import OverridingPredictor
from repro.harness.experiment import measure_accuracy, measure_override
from repro.harness.sweep import make_policy
from repro.predictors.factory import build_predictor
from repro.timing.latency import predictor_latency
from repro.uarch.config import MachineConfig
from repro.uarch.policies import SingleCyclePolicy
from repro.uarch.simulator import CycleSimulator
from repro.workloads.spec2000 import get_profile, spec2000_trace

BUDGET = 64 * 1024


@pytest.fixture(scope="module")
def traces():
    return {name: spec2000_trace(name, instructions=150_000) for name in ("gcc", "eon")}


def mispredict(trace, predictor):
    warmup = trace.conditional_branch_count // 5
    return measure_accuracy(predictor, trace, warmup_branches=warmup).misprediction_rate


class TestAccuracyOrdering:
    def test_complex_predictors_beat_gshare_fast(self, traces):
        """Figure 5's message: the complex predictors are more accurate
        than gshare.fast at equal budgets."""
        for trace in traces.values():
            fast = mispredict(trace, build_gshare_fast(BUDGET))
            perceptron = mispredict(trace, build_predictor("perceptron", BUDGET))
            multicomponent = mispredict(trace, build_predictor("multicomponent", BUDGET))
            assert perceptron < fast
            assert multicomponent < fast

    def test_perceptron_is_most_accurate(self, traces):
        for trace in traces.values():
            perceptron = mispredict(trace, build_predictor("perceptron", BUDGET))
            for family in ("gshare", "bimode", "2bcgskew", "multicomponent"):
                assert perceptron <= mispredict(trace, build_predictor(family, BUDGET)) + 0.002

    def test_gshare_fast_close_to_gshare(self, traces):
        """gshare.fast pays only a small accuracy tax over plain gshare for
        its pipelinability."""
        for trace in traces.values():
            fast = mispredict(trace, build_gshare_fast(BUDGET))
            gshare = mispredict(trace, build_predictor("gshare", BUDGET))
            assert abs(fast - gshare) < 0.05

    def test_history_predictors_beat_bimodal(self, traces):
        for trace in traces.values():
            bimodal = mispredict(trace, build_predictor("bimodal", BUDGET))
            gshare = mispredict(trace, build_predictor("gshare", BUDGET))
            assert gshare < bimodal


class TestLatencyStory:
    def test_override_bubbles_erode_complex_advantage(self, traces):
        """Figure 7's punchline mechanism: moving a complex predictor from
        ideal single-cycle to realistic overriding costs IPC, and the cost
        grows with the budget (its access latency)."""
        trace = traces["gcc"]
        ilp = get_profile("gcc").ilp

        def ipc(family, budget, mode):
            policy = make_policy(family, budget, mode)
            return CycleSimulator(policy, ilp=ilp).run(trace).ipc

        ideal_small = ipc("perceptron", 16 * 1024, "ideal")
        real_small = ipc("perceptron", 16 * 1024, "overriding")
        ideal_large = ipc("perceptron", 512 * 1024, "ideal")
        real_large = ipc("perceptron", 512 * 1024, "overriding")
        assert real_small <= ideal_small
        assert real_large < ideal_large
        # The ideal-vs-real gap widens with predictor size (latency).
        assert (ideal_large - real_large) > (ideal_small - real_small)

    def test_gshare_fast_immune_to_budget_latency(self, traces):
        """gshare.fast delivers single-cycle predictions at every size, so
        its IPC must not degrade with budget the way overriding does."""
        trace = traces["eon"]
        ilp = get_profile("eon").ilp
        small = CycleSimulator(
            SingleCyclePolicy(build_gshare_fast(16 * 1024)), ilp=ilp
        ).run(trace)
        large = CycleSimulator(
            SingleCyclePolicy(build_gshare_fast(512 * 1024)), ilp=ilp
        ).run(trace)
        assert large.ipc > small.ipc * 0.9
        assert large.stalls.override_bubble == 0

    def test_latency_model_feeds_override_penalty(self):
        latency_small = predictor_latency("perceptron", 16 * 1024)
        latency_large = predictor_latency("perceptron", 512 * 1024)
        assert latency_large > latency_small
        overriding = OverridingPredictor(
            build_predictor("perceptron", 512 * 1024), slow_latency=latency_large
        )
        assert overriding.override_penalty_cycles == latency_large


class TestOverrideRates:
    def test_disagreement_rates_in_paper_range(self, traces):
        """Section 4.5: quick/slow disagreement is a sizeable single-digit
        percentage on typical workloads."""
        for trace in traces.values():
            overriding = OverridingPredictor(
                build_predictor("perceptron", BUDGET),
                slow_latency=predictor_latency("perceptron", BUDGET),
            )
            result = measure_override(overriding, trace)
            assert 0.02 < result.override_rate < 0.30


class TestDepthScaling:
    def test_deeper_pipelines_amplify_the_latency_problem(self, traces):
        """The paper's motivation: deeper pipelines make predictor-induced
        bubbles costlier, shifting the balance toward gshare.fast."""
        trace = traces["gcc"]
        ilp = get_profile("gcc").ilp

        def gap_at_depth(depth):
            config = MachineConfig(pipeline_depth=depth)
            real = CycleSimulator(
                make_policy("multicomponent", 256 * 1024, "overriding"), config=config, ilp=ilp
            ).run(trace)
            ideal = CycleSimulator(
                make_policy("multicomponent", 256 * 1024, "ideal"), config=config, ilp=ilp
            ).run(trace)
            return (ideal.ipc - real.ipc) / ideal.ipc

        assert gap_at_depth(28) > 0
