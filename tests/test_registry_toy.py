"""The registry's payoff, proven: a test-only family flows everywhere.

``tests/toy_family.py`` defines a complete predictor family (predictor +
config + sizer + builder + one ``register()`` call) in a single module.
This suite pushes it through the budget sweep, the engine-selection
fallback, the parallel executor, and the conformance contract — and the
point of the exercise is what it does *not* import: nothing family-specific
from :mod:`repro.harness`, :mod:`repro.batch`, or
:mod:`repro.harness.parallel`.  Every entry point used below is generic;
the registry is the only coupling.
"""

from __future__ import annotations

import pytest

from repro.batch import supports_batch
from repro.common.errors import ConfigurationError, ProtocolError
from repro.harness.experiment import resolve_engine
from repro.harness.sweep import accuracy_sweep, build_family
from repro.predictors import registry

from tests.toy_family import FAMILY, SPEC, ToyConfig, ToyDirectPredictor

BUDGET = 4 * 1024


def test_toy_family_is_registered():
    assert FAMILY in registry.family_names()
    assert registry.get_spec(FAMILY) is SPEC
    assert SPEC.module == "tests.toy_family"


def test_toy_builds_through_generic_entry_points():
    predictor = build_family(FAMILY, BUDGET)
    assert isinstance(predictor, ToyDirectPredictor)
    assert predictor.storage_bytes <= BUDGET * 1.05
    config = registry.size_config(FAMILY, BUDGET)
    assert isinstance(config, ToyConfig)
    twin = registry.build_from_config(FAMILY, config.to_dict())
    assert type(twin) is ToyDirectPredictor
    assert twin.storage_bits == predictor.storage_bits


def test_toy_honours_predictor_protocol():
    predictor = build_family(FAMILY, BUDGET)
    assert isinstance(predictor.predict(0x4000), bool)
    with pytest.raises(ProtocolError):
        predictor.predict(0x4004)
    predictor.update(0x4000, True)
    before = predictor.table.snapshot().tobytes()
    for i in range(32):
        predictor.peek(0x4000 + 4 * i)
    assert predictor.table.snapshot().tobytes() == before


def test_toy_falls_back_to_scalar_engine():
    """No ``batch_kernel`` on the spec -> the engine layer must degrade to
    the scalar path without any type-specific knowledge of the toy."""
    predictor = build_family(FAMILY, BUDGET)
    assert supports_batch(predictor) is False
    assert resolve_engine(predictor, "auto") == "scalar"
    with pytest.raises(ConfigurationError):
        resolve_engine(predictor, "batch")


def test_toy_spec_serializes_for_workers():
    payload = registry.serialize_spec(FAMILY, BUDGET)
    assert payload["family"] == FAMILY
    assert payload["module"] == "tests.toy_family"
    rebuilt = registry.build_serialized(payload)
    assert type(rebuilt) is ToyDirectPredictor
    assert rebuilt.storage_bits == build_family(FAMILY, BUDGET).storage_bits


def test_toy_sweeps_serial_and_parallel_identically():
    """The full tentpole proof: the toy rides an accuracy sweep next to a
    shipped family, and the process-pool path (spec payloads rebuilt in
    workers) reproduces the serial cells exactly."""
    kwargs = dict(
        families=[FAMILY, "bimodal"],
        budgets=[BUDGET],
        benchmarks=["gcc"],
        instructions=20_000,
    )
    serial = accuracy_sweep(**kwargs, jobs=1)
    parallel = accuracy_sweep(**kwargs, jobs=2)
    assert serial == parallel
    toy_cells = [cell for cell in serial if cell.family == FAMILY]
    assert len(toy_cells) == 1
    assert 0.0 <= toy_cells[0].misprediction_percent <= 100.0
