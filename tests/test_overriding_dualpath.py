"""Tests for the overriding and dual-path delay-hiding schemes."""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigurationError
from repro.core.delayed_update import DelayedUpdateQueue
from repro.core.dualpath import DualPathPolicy
from repro.core.overriding import OverridingPredictor
from repro.predictors.bimodal import BimodalPredictor
from repro.predictors.gshare import GsharePredictor
from tests.conftest import alternating_stream


class TestOverriding:
    def _pair(self, slow_latency=3):
        return OverridingPredictor(
            GsharePredictor(4096), slow_latency=slow_latency, quick=BimodalPredictor(256)
        )

    def test_rejects_bad_latencies(self):
        with pytest.raises(ConfigurationError):
            OverridingPredictor(GsharePredictor(1024), slow_latency=0)
        with pytest.raises(ConfigurationError):
            OverridingPredictor(GsharePredictor(1024), slow_latency=2, quick_latency=3)

    def test_default_quick_is_2k_gshare(self):
        overriding = OverridingPredictor(GsharePredictor(4096), slow_latency=3)
        assert overriding.quick.name == "gshare"
        assert overriding.quick.table.size == 2048

    def test_final_prediction_is_slow(self):
        overriding = self._pair()
        outcome = overriding.predict(0x1000)
        # Functional check: final always equals the slow component's view.
        assert outcome.final_taken in (True, False)
        overriding.update(0x1000, True)

    def test_override_penalty_is_slow_latency(self):
        assert self._pair(slow_latency=7).override_penalty_cycles == 7

    def test_disagreement_on_alternating_stream(self):
        """Bimodal quick fails TNTN while gshare slow learns it, so the
        slow predictor must override roughly half the time."""
        overriding = self._pair()
        for pc, taken in alternating_stream(400):
            overriding.predict(pc)
            overriding.update(pc, taken)
        stats = overriding.stats
        assert stats.predictions == 400
        assert stats.override_rate > 0.25
        # Final accuracy tracks the slow predictor, not the quick one.
        assert stats.final_mispredictions < stats.quick_mispredictions

    def test_overridden_flag_matches_disagreement(self):
        overriding = self._pair()
        for pc, taken in alternating_stream(200):
            outcome = overriding.predict(pc)
            assert outcome.overridden == (outcome.quick_taken != outcome.final_taken)
            overriding.update(pc, taken)

    def test_storage_sums_components(self):
        overriding = self._pair()
        assert overriding.storage_bits == (
            overriding.quick.storage_bits + overriding.slow.storage_bits
        )

    def test_empty_stats(self):
        overriding = self._pair()
        assert overriding.stats.override_rate == 0.0
        assert overriding.stats.final_misprediction_rate == 0.0


class TestDualPath:
    def test_window_equals_latency(self):
        policy = DualPathPolicy(GsharePredictor(1024), latency=5)
        assert policy.half_bandwidth_window() == 5

    def test_rejects_zero_latency(self):
        with pytest.raises(ConfigurationError):
            DualPathPolicy(GsharePredictor(1024), latency=0)

    def test_prediction_passthrough(self):
        policy = DualPathPolicy(GsharePredictor(1024), latency=3)
        for pc, taken in alternating_stream(100):
            policy.predict(pc)
            policy.update(pc, taken)
        assert policy.predictor.stats.predictions == 100


class TestDelayedUpdateQueue:
    def test_zero_delay_applies_immediately(self):
        applied = []
        queue = DelayedUpdateQueue(0, lambda i, t: applied.append((i, t)))
        queue.push(5, True)
        assert applied == [(5, True)]

    def test_delay_holds_back(self):
        applied = []
        queue = DelayedUpdateQueue(2, lambda i, t: applied.append((i, t)))
        queue.push(1, True)
        queue.push(2, False)
        assert applied == []
        queue.push(3, True)
        assert applied == [(1, True)]

    def test_fifo_order(self):
        applied = []
        queue = DelayedUpdateQueue(1, lambda i, t: applied.append(i))
        for i in range(5):
            queue.push(i, True)
        queue.flush()
        assert applied == [0, 1, 2, 3, 4]

    def test_flush_empties(self):
        queue = DelayedUpdateQueue(8, lambda i, t: None)
        for i in range(5):
            queue.push(i, True)
        queue.flush()
        assert len(queue) == 0

    def test_negative_delay_rejected(self):
        with pytest.raises(ConfigurationError):
            DelayedUpdateQueue(-1, lambda i, t: None)
