"""Tests for per-branch misprediction attribution, scalar and batch."""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.harness.analysis import per_site_accuracy
from repro.harness.experiment import measure_accuracy, measure_override
from repro.core.overriding import OverridingPredictor
from repro.obs.attribution import (
    Attribution,
    BranchSite,
    attribution_from_arrays,
    attribution_from_counts,
)
from repro.predictors.bimodal import BimodalPredictor
from repro.predictors.gshare import GsharePredictor


class TestAttributionObject:
    def test_sorted_by_contribution(self):
        attribution = attribution_from_counts(
            "p", "t", {1: 10, 2: 10, 3: 5}, {1: 2, 2: 7}
        )
        assert [site.pc for site in attribution.sites] == [2, 1, 3]
        assert attribution.branches == 25
        assert attribution.mispredictions == 9

    def test_top_and_rows(self):
        attribution = attribution_from_counts(
            "p", "t", {pc: 4 for pc in range(20)}, {pc: 1 for pc in range(15)}
        )
        assert len(attribution.top()) == 10
        rows = attribution.to_rows()
        assert len(rows) == 10
        assert set(rows[0]) == {"pc", "executions", "mispredictions"}

    def test_misprediction_rate(self):
        site = BranchSite(pc=4, executions=8, mispredictions=2)
        assert site.misprediction_rate == 0.25
        assert BranchSite(pc=4, executions=0, mispredictions=0).misprediction_rate == 0.0

    def test_render_table(self):
        attribution = attribution_from_counts("gshare", "gcc", {0x400: 6}, {0x400: 3})
        text = attribution.render()
        assert "Hard-to-predict branches: gshare/gcc" in text
        assert "0x400" in text and "50.0" in text

    def test_from_arrays_matches_counts(self):
        pcs = np.array([4, 8, 4, 12, 8, 4])
        wrong = np.array([True, False, True, False, True, False])
        by_arrays = attribution_from_arrays("p", "t", pcs, wrong)
        by_counts = attribution_from_counts(
            "p", "t", {4: 3, 8: 2, 12: 1}, {4: 2, 8: 1}
        )
        assert by_arrays == by_counts


class TestMeasurementAttribution:
    def test_scalar_matches_per_site_accuracy(self, small_trace):
        result = measure_accuracy(
            BimodalPredictor(1024), small_trace, engine="scalar", attribution=True
        )
        sites = per_site_accuracy(BimodalPredictor(1024), small_trace)
        expected = {site.pc: site.mispredictions for site in sites if site.mispredictions}
        actual = {
            site.pc: site.mispredictions
            for site in result.attribution.sites
            if site.mispredictions
        }
        assert actual == expected
        assert result.attribution.mispredictions == result.mispredictions
        assert result.attribution.branches == result.branches

    def test_batch_matches_scalar(self, small_trace):
        scalar = measure_accuracy(
            GsharePredictor(16384), small_trace, engine="scalar", attribution=True
        )
        batch = measure_accuracy(
            GsharePredictor(16384), small_trace, engine="batch", attribution=True
        )
        assert batch.attribution == scalar.attribution

    def test_warmup_respected(self, small_trace):
        result = measure_accuracy(
            BimodalPredictor(1024),
            small_trace,
            warmup_branches=1000,
            engine="scalar",
            attribution=True,
        )
        assert result.attribution.branches == result.branches
        batch = measure_accuracy(
            GsharePredictor(16384),
            small_trace,
            warmup_branches=1000,
            engine="batch",
            attribution=True,
        )
        assert batch.attribution.branches == batch.branches
        assert batch.attribution.mispredictions == batch.mispredictions

    def test_off_by_default(self, small_trace):
        result = measure_accuracy(BimodalPredictor(1024), small_trace, engine="scalar")
        assert result.attribution is None

    def test_enabled_obs_collects_and_publishes(self, small_trace, obs_enabled):
        result = measure_accuracy(BimodalPredictor(1024), small_trace, engine="scalar")
        assert isinstance(result.attribution, Attribution)
        key = f"bimodal[{result.storage_bytes}B]/{small_trace.name}"
        assert key in obs.registry().attributions
        assert obs.registry().counter("accuracy.measurements").value == 1
        assert obs.registry().counter("accuracy.branches").value == result.branches

    def test_override_attribution(self, small_trace):
        overriding = OverridingPredictor(GsharePredictor(16384), slow_latency=3)
        result = measure_override(overriding, small_trace, attribution=True)
        assert result.attribution.mispredictions == result.final_mispredictions
        assert result.attribution.branches == result.branches

    def test_override_counters_into_registry(self, small_trace, obs_enabled):
        overriding = OverridingPredictor(GsharePredictor(16384), slow_latency=3)
        result = measure_override(overriding, small_trace)
        registry = obs.registry()
        assert registry.counter("override.predictions").value == result.branches
        assert registry.counter("override.disagreements").value == result.overrides
        assert (
            registry.counter("override.agreements").value
            == result.branches - result.overrides
        )
        assert (
            registry.counter("override.penalty_cycles").value
            == result.overrides * overriding.override_penalty_cycles
        )

    def test_record_stats_publishes_deltas_once(self, obs_enabled):
        overriding = OverridingPredictor(GsharePredictor(16384), slow_latency=3)
        for i in range(10):
            overriding.predict(0x400 + 4 * (i % 3))
            overriding.update(0x400 + 4 * (i % 3), i % 2 == 0)
        registry = obs.registry()
        overriding.record_stats(registry)
        first = registry.counter("override.predictions").value
        overriding.record_stats(registry)  # no new predictions: no double count
        assert registry.counter("override.predictions").value == first == 10


class TestSimulatorAccounting:
    def test_stall_cycles_by_cause(self, small_trace, obs_enabled):
        from repro.harness.sweep import make_policy
        from repro.uarch.simulator import CycleSimulator

        policy = make_policy("perceptron", 16 * 1024, "overriding")
        result = CycleSimulator(policy).run(small_trace)
        registry = obs.registry()
        assert registry.counter("sim.runs").value == 1
        assert registry.counter("sim.cycles").value == result.cycles
        assert registry.counter("sim.stall.mispredict").value == result.stalls.mispredict
        assert (
            registry.counter("sim.stall.override_bubble").value
            == result.stalls.override_bubble
        )
        # The overriding pair behind the policy published its stats too.
        assert registry.counter("override.predictions").value == result.conditional_branches

    def test_disabled_records_nothing(self, small_trace, monkeypatch):
        from repro.harness.sweep import make_policy
        from repro.uarch.simulator import CycleSimulator

        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        obs.set_enabled(None)
        obs.reset()
        CycleSimulator(make_policy("gshare_fast", 16 * 1024, "ideal")).run(small_trace)
        assert obs.registry().counters == {}


class TestBatchChunkTimings:
    def test_chunk_metrics_recorded(self, small_trace, obs_enabled):
        predictor = GsharePredictor(16384)
        measure_accuracy(predictor, small_trace, engine="batch")
        registry = obs.registry()
        assert registry.counter("batch.chunks").value >= 1
        assert (
            registry.counter("batch.chunk_branches").value
            == small_trace.conditional_branch_count
        )
        assert registry.timer("batch.chunk.gshare").count >= 1
        assert registry.histogram("batch.chunk_seconds").count >= 1
