"""Regenerate the golden fixtures under ``tests/golden/``.

Run from the repository root::

    PYTHONPATH=src python tests/golden/regen.py

Fixtures:

* ``branch_stream.csv`` — a recorded (pc, taken) conditional-branch stream
  from the gcc stand-in workload at seed 1.  The differential batch tests
  replay it through both engines; pinning the stream in a file keeps those
  tests meaningful even if the workload generator changes.
* ``table2.txt`` — the rendered Table 2 (predictor access latencies).  Pure
  function of the SRAM delay model; any drift is a real behaviour change.
* ``figure1_small.txt`` — a small, fixed-configuration Figure 1 run (two
  benchmarks, two budgets, 30k instructions).  Pins the full accuracy
  pipeline: workload generation, warmup policy, every Figure 1 predictor
  family, aggregation and rendering.

Regenerating is the *intentional* way to accept a behaviour change: rerun
this script, eyeball the diff, and commit the new fixtures with the change
that caused them.
"""

from __future__ import annotations

import os
from pathlib import Path

GOLDEN_DIR = Path(__file__).resolve().parent

#: Fixed configuration for the small Figure 1 fixture (kept identical in
#: tests/test_golden.py — change both together).
FIGURE1_BENCHMARKS = "gcc,eon"
FIGURE1_BUDGETS = [4 * 1024, 32 * 1024]
FIGURE1_INSTRUCTIONS = 30_000

#: The recorded stream: benchmark, seed, trace length and branch count.
STREAM_BENCHMARK = "gcc"
STREAM_SEED = 1
STREAM_INSTRUCTIONS = 40_000
STREAM_BRANCHES = 2_500


def regen_branch_stream() -> None:
    from repro.workloads.spec2000 import spec2000_trace

    trace = spec2000_trace(
        STREAM_BENCHMARK, instructions=STREAM_INSTRUCTIONS, seed=STREAM_SEED
    )
    lines = ["pc,taken"]
    for pc, taken in list(trace.conditional_branches())[:STREAM_BRANCHES]:
        lines.append(f"{pc:#x},{int(taken)}")
    (GOLDEN_DIR / "branch_stream.csv").write_text("\n".join(lines) + "\n")
    print(f"branch_stream.csv: {len(lines) - 1} branches")


def regen_table2() -> None:
    from repro.harness.figures import table2

    (GOLDEN_DIR / "table2.txt").write_text(table2() + "\n")
    print("table2.txt")


def regen_figure1_small() -> None:
    os.environ["REPRO_BENCHMARKS"] = FIGURE1_BENCHMARKS
    from repro.harness.figures import figure1

    figure = figure1(budgets=FIGURE1_BUDGETS, instructions=FIGURE1_INSTRUCTIONS)
    (GOLDEN_DIR / "figure1_small.txt").write_text(figure.render() + "\n")
    print("figure1_small.txt")


if __name__ == "__main__":
    regen_branch_stream()
    regen_table2()
    regen_figure1_small()
