"""Regenerate the golden fixtures under ``tests/golden/``.

Run from the repository root::

    PYTHONPATH=src python tests/golden/regen.py

Fixtures:

* ``branch_stream.csv`` — a recorded (pc, taken) conditional-branch stream
  from the gcc stand-in workload at seed 1.  The differential batch tests
  replay it through both engines; pinning the stream in a file keeps those
  tests meaningful even if the workload generator changes.
* ``table2.txt`` — the rendered Table 2 (predictor access latencies).  Pure
  function of the SRAM delay model; any drift is a real behaviour change.
* ``figure1_small.txt`` — a small, fixed-configuration Figure 1 run (two
  benchmarks, two budgets, 30k instructions).  Pins the full accuracy
  pipeline: workload generation, warmup policy, every Figure 1 predictor
  family, aggregation and rendering.

Regenerating is the *intentional* way to accept a behaviour change: rerun
this script, eyeball the diff, and commit the new fixtures with the change
that caused them.  To keep that diff honest, the script refuses to run
while the working tree has uncommitted changes (fixtures regenerated on
top of unrelated edits are impossible to review); pass ``--force`` to
override.  It also prints the engine and seed each fixture was generated
with, so the commit message can record them.
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
from pathlib import Path

GOLDEN_DIR = Path(__file__).resolve().parent
REPO_ROOT = GOLDEN_DIR.parent.parent

#: Fixed configuration for the small Figure 1 fixture (kept identical in
#: tests/test_golden.py — change both together).
FIGURE1_BENCHMARKS = "gcc,eon"
FIGURE1_BUDGETS = [4 * 1024, 32 * 1024]
FIGURE1_INSTRUCTIONS = 30_000

#: The recorded stream: benchmark, seed, trace length and branch count.
STREAM_BENCHMARK = "gcc"
STREAM_SEED = 1
STREAM_INSTRUCTIONS = 40_000
STREAM_BRANCHES = 2_500


def dirty_files() -> list[str]:
    """Paths with uncommitted changes (``git status --porcelain``).

    Returns [] when the tree is clean or when git is unavailable (for
    example a source tarball) — the guard only blocks when it *knows*
    the tree is dirty.
    """
    try:
        proc = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return []
    if proc.returncode != 0:
        return []
    return [line for line in proc.stdout.splitlines() if line.strip()]


def regen_branch_stream() -> None:
    from repro.workloads.spec2000 import spec2000_trace

    trace = spec2000_trace(
        STREAM_BENCHMARK, instructions=STREAM_INSTRUCTIONS, seed=STREAM_SEED
    )
    lines = ["pc,taken"]
    for pc, taken in list(trace.conditional_branches())[:STREAM_BRANCHES]:
        lines.append(f"{pc:#x},{int(taken)}")
    (GOLDEN_DIR / "branch_stream.csv").write_text("\n".join(lines) + "\n")
    print(
        f"branch_stream.csv: {len(lines) - 1} branches "
        f"(benchmark={STREAM_BENCHMARK}, seed={STREAM_SEED})"
    )


def regen_table2() -> None:
    from repro.harness.figures import table2

    (GOLDEN_DIR / "table2.txt").write_text(table2() + "\n")
    print("table2.txt (pure delay model; no engine or seed)")


def regen_figure1_small() -> None:
    os.environ["REPRO_BENCHMARKS"] = FIGURE1_BENCHMARKS
    from repro.harness.experiment import default_engine
    from repro.harness.figures import figure1

    figure = figure1(budgets=FIGURE1_BUDGETS, instructions=FIGURE1_INSTRUCTIONS)
    (GOLDEN_DIR / "figure1_small.txt").write_text(figure.render() + "\n")
    print(
        f"figure1_small.txt (engine={default_engine()}, "
        f"benchmarks={FIGURE1_BENCHMARKS}, default trace seeds)"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--force",
        action="store_true",
        help="regenerate even with uncommitted changes in the working tree",
    )
    args = parser.parse_args(argv)
    dirty = dirty_files()
    if dirty and not args.force:
        print(
            "refusing to regenerate golden fixtures: the working tree has "
            "uncommitted changes, so the fixture diff would mix with them.\n"
            "Commit or stash first, or rerun with --force:\n  "
            + "\n  ".join(dirty),
            file=sys.stderr,
        )
        return 1
    regen_branch_stream()
    regen_table2()
    regen_figure1_small()
    return 0


if __name__ == "__main__":
    sys.exit(main())
