"""Hypothesis property tests for the ``repro.common`` primitives.

These are the invariants the batch kernels rely on, stated directly against
the scalar implementations:

* saturating counters never leave ``[0, 2**bits - 1]`` under any update
  sequence, and the threshold splits the range in half;
* a history register holds exactly ``length`` bits under arbitrary pushes
  (old outcomes age out, the packed value never exceeds ``mask(length)``);
* XOR folding is length-preserving (output fits ``out_width`` bits),
  deterministic, and the identity when no folding is needed;
* the vectorized kernel twins (:func:`repro.batch.kernels.fold_bits`,
  :func:`repro.batch.kernels.packed_history`) agree with the scalar
  ``fold``/``HistoryRegister`` on every input.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.batch.kernels import fold_bits, pack_outcomes, packed_history
from repro.common.bits import fold, mask
from repro.common.counters import CounterTable
from repro.common.history import HistoryRegister

# -- saturating counters -------------------------------------------------------


@settings(max_examples=200, deadline=None)
@given(
    bits=st.integers(1, 8),
    init=st.integers(0, 255),
    updates=st.lists(st.tuples(st.integers(0, 15), st.booleans()), max_size=200),
)
def test_counters_stay_in_range(bits, init, updates):
    table = CounterTable(16, bits=bits, init=min(init, (1 << bits) - 1))
    for index, taken in updates:
        table.update(index, taken)
        value = table.value(index)
        assert 0 <= value <= table.max_value
        assert table.predict(index) == (value >= table.threshold)
        assert 0 <= table.confidence(index) <= table.threshold - 1


@settings(max_examples=100, deadline=None)
@given(bits=st.integers(1, 8), updates=st.lists(st.booleans(), max_size=300))
def test_counter_saturation_is_absorbing(bits, updates):
    """Once saturated, further same-direction updates are no-ops."""
    table = CounterTable(2, bits=bits)
    for _ in range(1 << bits):
        table.update(0, True)
    assert table.value(0) == table.max_value
    for _ in range(1 << bits):
        table.update(0, False)
    assert table.value(0) == 0
    for taken in updates:
        before = table.value(0)
        table.update(0, taken)
        assert abs(table.value(0) - before) <= 1


# -- history registers ---------------------------------------------------------


@settings(max_examples=200, deadline=None)
@given(length=st.integers(0, 40), outcomes=st.lists(st.booleans(), max_size=120))
def test_history_keeps_exactly_length_bits(length, outcomes):
    register = HistoryRegister(length)
    for taken in outcomes:
        register.push(taken)
        assert 0 <= register.value <= mask(length)
    # The register is exactly the last `length` outcomes, newest in bit 0.
    expected = 0
    for taken in outcomes[-length:] if length else ():
        expected = ((expected << 1) | int(taken)) & mask(length)
    assert register.value == expected
    if length and outcomes:
        assert register.bit(0) == outcomes[-1]


@settings(max_examples=100, deadline=None)
@given(length=st.integers(1, 40), outcomes=st.lists(st.booleans(), max_size=80))
def test_history_checkpoint_restore_roundtrip(length, outcomes):
    register = HistoryRegister(length)
    for taken in outcomes:
        register.push(taken)
    snapshot = register.checkpoint()
    register.push(True)
    register.push(False)
    register.restore(snapshot)
    assert register.value == snapshot


# -- XOR folding ---------------------------------------------------------------


@settings(max_examples=300, deadline=None)
@given(
    value=st.integers(0, (1 << 48) - 1),
    in_width=st.integers(0, 48),
    out_width=st.integers(0, 32),
)
def test_fold_is_length_preserving_and_deterministic(value, in_width, out_width):
    folded = fold(value, in_width, out_width)
    assert 0 <= folded <= mask(out_width)
    assert folded == fold(value, in_width, out_width)
    # Bits above in_width never influence the result.
    assert folded == fold(value & mask(in_width), in_width, out_width)


@settings(max_examples=100, deadline=None)
@given(value=st.integers(0, (1 << 32) - 1), width=st.integers(1, 32))
def test_fold_identity_when_wide_enough(value, width):
    assert fold(value, width, width) == value & mask(width)


# -- vectorized kernels agree with the scalar primitives -----------------------


@settings(max_examples=150, deadline=None)
@given(
    values=st.lists(st.integers(0, (1 << 32) - 1), max_size=50),
    out_width=st.integers(1, 16),
)
def test_fold_bits_matches_scalar_fold(values, out_width):
    vectorized = fold_bits(np.asarray(values, dtype=np.int64), 32, out_width)
    assert vectorized.tolist() == [fold(v, 32, out_width) for v in values]


@settings(max_examples=150, deadline=None)
@given(
    outcomes=st.lists(st.booleans(), max_size=100),
    length=st.integers(0, 20),
    split=st.integers(0, 100),
)
def test_packed_history_matches_history_register(outcomes, length, split):
    """Chunked history packing equals pushing through a HistoryRegister,
    for any chunk split point."""
    register = HistoryRegister(length)
    expected = []
    for taken in outcomes:
        expected.append(register.value)
        register.push(taken)

    takens = np.asarray(outcomes, dtype=bool)
    split = min(split, len(outcomes))
    first = packed_history(takens[:split], length)
    second = packed_history(takens[split:], length, prefix=takens[:split])
    got = np.concatenate([first, second]).tolist()
    assert got == expected
    assert pack_outcomes(takens, length) == register.value
