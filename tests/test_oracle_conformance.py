"""Ground-truth conformance: measured misprediction rates vs closed-form math.

Every other correctness gate in this repo (golden files, differential
batch, cached-vs-fresh stores) checks the pipeline against *itself*.  This
suite checks it against something external: the exact Markov-chain
misprediction rates of Morris-Pratt/KMP string matching over memoryless
random texts (:mod:`repro.workloads.oracle`).  A systematic error anywhere
in the stack — trace generation, predictor semantics, engine kernels,
warmup accounting — shows up as a measured rate outside the analytic
confidence interval, even though every self-referential gate would still
pass.

The matrix: every registered oracle kernel x {bimodal, gshare} x
{scalar, batch}.  Seeds are pinned (seed-matrixed) so the statistical
assertions are deterministic in CI.  The fault drill generates a
deliberately-biased trace through the profile's ``fault_bias`` hook and
asserts the same gate *rejects* it — a gate that cannot trip is not a
gate.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.harness.experiment import measure_accuracy
from repro.predictors import registry
from repro.workloads import get_profile, spec2000_trace, trace_digest
from repro.workloads.oracle import (
    ORACLE_FAMILIES,
    bimodal_oracle,
    counter_rate_iid,
    oracle_bound,
)
from repro.workloads.spec2000 import _generate_trace, clear_trace_cache
from repro.workloads.stringmatch import StringMatchProfile, stringmatch_profiles

#: Pinned experiment shape — the whole suite is deterministic under these.
ORACLE_BUDGET = 2048
TRACE_SEED = 7
TRACE_BRANCHES = 60_000
WARMUP_FRACTION = 0.25

#: A cell only counts as a *meaningful* gate when its acceptance band is
#: tighter than this; the suite asserts most cells qualify so the gate
#: cannot silently degenerate into tautology via model slack.
MEANINGFUL_TOLERANCE = 0.08

ORACLE_WORKLOADS = sorted(stringmatch_profiles())

#: Tight cells used for the fault drill (their clean tolerances are a few
#: percent, so a 25% outcome-flip bias overshoots them by construction).
FAULT_DRILL_CELLS = ("mp_aab_b7", "kmp_ab_u2")
FAULT_BIAS = 0.25


def oracle_trace(name: str):
    """The pinned trace for one oracle workload (LRU-cached by the
    workload layer, so each profile is executed once per test session)."""
    return spec2000_trace(name, branches=TRACE_BRANCHES, seed=TRACE_SEED)


def scored_split(trace) -> tuple[int, int]:
    """(warmup, scored) branch counts under the pinned warmup fraction."""
    total = sum(1 for _ in trace.conditional_branches())
    warmup = int(total * WARMUP_FRACTION)
    return warmup, total - warmup


@pytest.mark.parametrize("name", ORACLE_WORKLOADS)
class TestOracleWorkloadShape:
    def test_trace_is_valid_with_single_conditional_site(self, name):
        """The oracle's per-state decomposition requires exactly one static
        conditional branch (no table aliasing, no history pollution)."""
        trace = oracle_trace(name)
        trace.validate()
        sites = {pc for pc, _ in trace.conditional_branches()}
        assert len(sites) == 1

    def test_registered_in_catalog(self, name):
        profile = get_profile(name)
        assert isinstance(profile, StringMatchProfile)
        assert profile.name == name
        assert profile.fault_bias == 0.0


@pytest.mark.parametrize("engine", ["scalar", "batch"])
@pytest.mark.parametrize("family", ORACLE_FAMILIES)
@pytest.mark.parametrize("name", ORACLE_WORKLOADS)
def test_measured_rate_within_analytic_bound(name, family, engine):
    """The ground-truth gate: measured rate inside the closed-form CI."""
    profile = get_profile(name)
    trace = oracle_trace(name)
    warmup, scored = scored_split(trace)
    bound = oracle_bound(profile, family, ORACLE_BUDGET)
    result = measure_accuracy(
        registry.build(family, ORACLE_BUDGET),
        trace,
        warmup_branches=warmup,
        engine=engine,
    )
    deviation = abs(result.misprediction_rate - bound.rate)
    tolerance = bound.tolerance(scored)
    assert deviation <= tolerance, (
        f"{name}/{family}/{engine}: measured {result.misprediction_rate:.4f} "
        f"vs analytic {bound.rate:.4f} (deviation {deviation:.4f} > "
        f"tolerance {tolerance:.4f})"
    )


def test_most_cells_are_meaningful_gates():
    """Model slack (window mass the gshare decomposition cannot certify)
    loosens some cells; the suite stays honest by requiring the majority
    of the matrix to have percent-level acceptance bands."""
    meaningful = 0
    total = 0
    for name in ORACLE_WORKLOADS:
        profile = get_profile(name)
        _, scored = scored_split(oracle_trace(name))
        for family in ORACLE_FAMILIES:
            total += 1
            if oracle_bound(profile, family, ORACLE_BUDGET).tolerance(scored) < MEANINGFUL_TOLERANCE:
                meaningful += 1
    assert meaningful >= (3 * total) // 4, f"only {meaningful}/{total} tight cells"


@pytest.mark.parametrize("family", ORACLE_FAMILIES)
@pytest.mark.parametrize("cell", FAULT_DRILL_CELLS)
def test_fault_injected_trace_trips_the_gate(cell, family):
    """A deliberately-biased trace (outcomes flipped with probability
    ``FAULT_BIAS``, matcher state advanced on the true comparison) must
    land *outside* the fault-free analytic bound for every family."""
    biased = dataclasses.replace(stringmatch_profiles()[cell], fault_bias=FAULT_BIAS)
    trace = _generate_trace(biased, TRACE_BRANCHES * 6, TRACE_SEED)
    warmup, scored = scored_split(trace)
    bound = oracle_bound(biased, family, ORACLE_BUDGET)  # fault-free model
    result = measure_accuracy(
        registry.build(family, ORACLE_BUDGET),
        trace,
        warmup_branches=warmup,
        engine="scalar",
    )
    deviation = abs(result.misprediction_rate - bound.rate)
    tolerance = bound.tolerance(scored)
    assert deviation > tolerance, (
        f"fault drill failed to trip: {cell}/{family} deviation "
        f"{deviation:.4f} within tolerance {tolerance:.4f}"
    )


def test_fault_bias_changes_the_content_address():
    """The fault hook lives in the profile, so a biased trace can never be
    served from (or poison) a clean trace-store entry."""
    clean = stringmatch_profiles()["mp_ab_u2"]
    biased = dataclasses.replace(clean, fault_bias=FAULT_BIAS)
    instructions = TRACE_BRANCHES * 6
    assert trace_digest(clean, instructions, TRACE_SEED) != trace_digest(
        biased, instructions, TRACE_SEED
    )


def test_degenerate_pattern_reduces_to_closed_form_counter():
    """Pattern "a" makes comparison outcomes i.i.d., so the exact joint
    bimodal rate must collapse to the birth-death counter closed form —
    a self-check that the joint-chain machinery carries no hidden bias."""
    profile = StringMatchProfile(
        name="degenerate_a",
        pattern="a",
        algorithm="mp",
        source_kind="bernoulli",
        bernoulli_p=0.7,
    )
    q = 1.0 - 0.7  # taken = mismatch
    assert bimodal_oracle(profile).rate == pytest.approx(counter_rate_iid(q, bits=2), abs=1e-12)


class TestOracleWarmStart:
    """Satellite fix: generator-backed oracle workloads must warm-start
    byte-identically through the content-addressed trace store, and the
    in-process LRU must never serve an entry cached under a different
    store configuration."""

    def test_warm_start_is_byte_identical_and_execution_free(
        self, tmp_path, monkeypatch
    ):
        from repro.workloads import executor_run_count, warm_trace_store
        from repro.workloads.store import reset_store_stats

        monkeypatch.setenv("REPRO_TRACE_STORE", str(tmp_path / "traces"))
        clear_trace_cache()
        reset_store_stats()
        name = "kmp_abab_u2"
        instructions = 30_000
        report = warm_trace_store(
            benchmarks=[name], instruction_counts=[instructions], seed=TRACE_SEED
        )
        assert report["generated"] == 1
        cold = spec2000_trace(name, instructions=instructions, seed=TRACE_SEED)
        clear_trace_cache()
        runs_before = executor_run_count()
        warm = spec2000_trace(name, instructions=instructions, seed=TRACE_SEED)
        assert executor_run_count() == runs_before  # loaded, not re-executed
        cold_pcs, cold_taken, *_ = cold.branch_arrays()
        warm_pcs, warm_taken, *_ = warm.branch_arrays()
        assert cold_pcs.tobytes() == warm_pcs.tobytes()
        assert cold_taken.tobytes() == warm_taken.tobytes()
        clear_trace_cache()

    def test_lru_key_tracks_store_configuration(self, tmp_path, monkeypatch):
        from repro.workloads.store import ColumnarTrace
        from repro.workloads.trace import Trace

        name = "mp_abab_u2"
        instructions = 30_000
        monkeypatch.delenv("REPRO_TRACE_STORE", raising=False)
        clear_trace_cache()
        bare = spec2000_trace(name, instructions=instructions, seed=TRACE_SEED)
        assert isinstance(bare, Trace)
        # Enabling the store mid-process must not serve the Block-backed
        # entry cached above under the storeless key.
        monkeypatch.setenv("REPRO_TRACE_STORE", str(tmp_path / "traces"))
        stored = spec2000_trace(name, instructions=instructions, seed=TRACE_SEED)
        assert isinstance(stored, ColumnarTrace)
        clear_trace_cache()
