"""Tests for the cascading scheme, static predictors, and analysis tools."""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigurationError
from repro.core.cascading import CascadingPredictor
from repro.harness.analysis import (
    compare_predictors,
    history_context_profile,
    per_site_accuracy,
)
from repro.predictors.bimodal import BimodalPredictor
from repro.predictors.gshare import GsharePredictor
from repro.predictors.static import (
    AlwaysNotTakenPredictor,
    AlwaysTakenPredictor,
    BtfnPredictor,
)
from repro.uarch.policies import CascadingFetchPolicy
from repro.uarch.simulator import CycleSimulator
from tests.conftest import alternating_stream


class TestStaticPredictors:
    def test_always_taken(self):
        predictor = AlwaysTakenPredictor()
        predictor.predict(0x1000)
        assert predictor.update(0x1000, True)
        predictor.predict(0x1000)
        assert not predictor.update(0x1000, False)
        assert predictor.storage_bits == 0

    def test_always_not_taken(self):
        predictor = AlwaysNotTakenPredictor()
        predictor.predict(0x1000)
        assert predictor.update(0x1000, False)

    def test_btfn_directions(self):
        predictor = BtfnPredictor()
        predictor.set_target(0x0F00)  # backward -> predict taken
        assert predictor.predict(0x1000)
        predictor.update(0x1000, True)
        predictor.set_target(0x2000)  # forward -> predict not taken
        assert not predictor.predict(0x1000)
        predictor.update(0x1000, False)

    def test_btfn_without_target_defaults_not_taken(self):
        predictor = BtfnPredictor()
        assert not predictor.predict(0x1000)
        predictor.update(0x1000, False)


class TestCascading:
    def _build(self, latency=4):
        return CascadingPredictor(
            GsharePredictor(4096), slow_latency=latency, quick=BimodalPredictor(256)
        )

    def test_rejects_bad_latency(self):
        with pytest.raises(ConfigurationError):
            CascadingPredictor(GsharePredictor(1024), slow_latency=0)

    def test_large_gaps_use_slow_predictor(self):
        cascading = self._build(latency=4)
        for pc, taken in alternating_stream(300):
            cascading.predict(pc, gap_cycles=10)
            cascading.update(pc, taken)
        assert cascading.stats.slow_usage_rate == 1.0
        # gshare learns TNTN; with the slow path always available the
        # cascade matches gshare-level accuracy.
        assert cascading.stats.misprediction_rate < 0.10

    def test_small_gaps_fall_back_to_quick(self):
        cascading = self._build(latency=4)
        for pc, taken in alternating_stream(300):
            cascading.predict(pc, gap_cycles=1)
            cascading.update(pc, taken)
        assert cascading.stats.slow_usage_rate == 0.0
        # bimodal cannot learn TNTN: cascading inherits its weakness on
        # branch-dense code — the paper's Section 2.6 conclusion.
        assert cascading.stats.misprediction_rate > 0.4

    def test_negative_gap_rejected(self):
        cascading = self._build()
        with pytest.raises(ConfigurationError):
            cascading.predict(0x1000, gap_cycles=-1)

    def test_fetch_policy_in_simulator(self, small_trace):
        policy = CascadingFetchPolicy(self._build(latency=3))
        result = CycleSimulator(policy, ilp=2.8).run(small_trace)
        assert result.ipc > 0
        stats = policy.cascading.stats
        assert stats.predictions == small_trace.conditional_branch_count
        # On real traces some branches are far apart and some are dense.
        assert 0.0 < stats.slow_usage_rate < 1.0


class TestAnalysis:
    def test_per_site_accuracy_totals(self, small_trace):
        sites = per_site_accuracy(BimodalPredictor(4096), small_trace)
        assert sum(site.executions for site in sites) == small_trace.conditional_branch_count
        assert sum(1 for site in sites) == small_trace.static_branch_count()
        # Sorted by misprediction contribution.
        contributions = [site.mispredictions for site in sites]
        assert contributions == sorted(contributions, reverse=True)

    def test_per_site_top_truncation(self, small_trace):
        sites = per_site_accuracy(BimodalPredictor(4096), small_trace, top=5)
        assert len(sites) == 5

    def test_compare_predictors(self, small_trace):
        comparisons = compare_predictors(
            BimodalPredictor(4096), GsharePredictor(65536, history_length=8), small_trace
        )
        assert {c.pc for c in comparisons} == {
            pc for pc, _ in small_trace.conditional_branches()
        }
        # The two predictors genuinely differ per site: gshare wins the
        # history-correlated sites, bimodal wins the cold/biased ones.
        assert any(c.delta > 0 for c in comparisons)
        assert any(c.delta < 0 for c in comparisons)
        # Sorted by |delta|.
        deltas = [abs(c.delta) for c in comparisons]
        assert deltas == sorted(deltas, reverse=True)

    def test_history_context_profile(self, small_trace):
        profile = history_context_profile(small_trace, history_bits=14)
        assert profile.branches == small_trace.conditional_branch_count
        assert 0 < profile.contexts <= profile.branches
        assert 0.0 < profile.cold_fraction <= 1.0
        assert profile.visits_per_context >= 1.0

    def test_longer_history_fragments_contexts(self, small_trace):
        short = history_context_profile(small_trace, history_bits=4)
        long = history_context_profile(small_trace, history_bits=20)
        assert long.contexts >= short.contexts
