"""Tests for the declarative predictor-family registry itself."""

from __future__ import annotations

import pytest

from repro.common.errors import BudgetError, ConfigurationError
from repro.predictors import registry
from repro.predictors.factory import gshare_from_config
from repro.predictors.gshare import GsharePredictor
from repro.predictors.registry import FamilySpec
from repro.predictors.sizing import GshareConfig, size_gshare
from repro.timing.latency import predictor_latency

KIB = 1024

#: The eleven families the paper's pipeline ships with.
SHIPPED_FAMILIES = [
    "2bcgskew",
    "bimodal",
    "bimode",
    "bimode_fast",
    "egskew",
    "gshare",
    "gshare_fast",
    "loop",
    "multicomponent",
    "perceptron",
    "tournament",
]


class TestLookup:
    def test_family_names_sorted_and_complete(self):
        names = registry.family_names()
        assert names == sorted(names)
        for family in SHIPPED_FAMILIES:
            assert family in names

    def test_specs_align_with_names(self):
        assert [spec.name for spec in registry.specs()] == registry.family_names()

    def test_get_spec_unknown_family(self):
        with pytest.raises(ConfigurationError, match="unknown predictor family"):
            registry.get_spec("tage")

    def test_register_fills_module(self):
        spec = registry.get_spec("gshare")
        assert spec.module == "repro.predictors.factory"
        assert registry.get_spec("gshare_fast").module == "repro.core.gshare_fast"

    def test_reregister_same_family_is_idempotent(self):
        spec = registry.get_spec("gshare")
        assert registry.register(spec) is registry.get_spec("gshare")
        assert registry.family_names().count("gshare") == 1

    def test_conflicting_register_raises(self):
        class ImpostorPredictor(GsharePredictor):
            pass

        impostor = FamilySpec(
            name="gshare",
            config_type=GshareConfig,
            sizer=size_gshare,
            builder=gshare_from_config,
            predictor_type=ImpostorPredictor,
            module="tests.test_registry",
        )
        with pytest.raises(ConfigurationError, match="already registered"):
            registry.register(impostor)
        # The original spec survives the rejected attempt.
        assert registry.get_spec("gshare").predictor_type is GsharePredictor


class TestBuild:
    def test_build_validates_budget(self):
        with pytest.raises(BudgetError):
            registry.build("gshare", -1)

    def test_build_from_config_type_mismatch(self):
        config = registry.size_config("bimodal", 8 * KIB)
        with pytest.raises(ConfigurationError, match="expects a GshareConfig"):
            registry.build_from_config("gshare", config)

    def test_build_from_config_accepts_mapping(self):
        config = registry.size_config("gshare", 8 * KIB)
        predictor = registry.build_from_config("gshare", config.to_dict())
        assert type(predictor) is GsharePredictor

    def test_supports_batch_is_exact_type(self):
        """A subclass never inherits the parent family's batch kernel: it may
        change indexing/update rules the kernel knows nothing about."""

        class TweakedGshare(GsharePredictor):
            pass

        parent = registry.build("gshare", 8 * KIB)
        assert registry.spec_for_predictor(parent) is registry.get_spec("gshare")
        tweaked = TweakedGshare(entries=1024, history_length=8)
        assert registry.spec_for_predictor(tweaked) is None


class TestSerializedSpecs:
    def test_round_trip_every_family(self):
        for family in registry.family_names():
            payload = registry.serialize_spec(family, 8 * KIB)
            rebuilt = registry.build_serialized(payload)
            spec = registry.get_spec(family)
            assert type(rebuilt) is spec.predictor_type

    def test_missing_field_rejected(self):
        payload = registry.serialize_spec("gshare", 8 * KIB)
        del payload["config"]
        with pytest.raises(ConfigurationError, match="missing the 'config'"):
            registry.build_serialized(payload)

    def test_non_mapping_config_rejected(self):
        payload = registry.serialize_spec("gshare", 8 * KIB)
        payload["config"] = [1, 2, 3]
        with pytest.raises(ConfigurationError, match="must be a mapping"):
            registry.build_serialized(payload)


class TestCapabilityFlags:
    def test_batch_kernels_match_engine(self):
        from repro.batch.engine import KERNELS

        declared = {
            spec.batch_kernel for spec in registry.specs() if spec.batch_kernel
        }
        assert declared == set(KERNELS)

    def test_single_cycle_families(self):
        single = [spec.name for spec in registry.specs() if spec.single_cycle]
        assert single == ["bimode_fast", "gshare_fast"]

    def test_override_eligibility_matches_latency_model(self):
        """``override_eligible`` must agree with the timing layer: eligible
        families have a latency model, ineligible multi-cycle ones do not."""
        for spec in registry.specs():
            if spec.single_cycle or spec.module == "tests.toy_family":
                continue
            if spec.override_eligible:
                assert predictor_latency(spec.name, 32 * KIB) >= 1
            else:
                with pytest.raises(ConfigurationError):
                    predictor_latency(spec.name, 32 * KIB)


class TestCompleteness:
    def test_registry_is_complete(self):
        """The CI gate: every concrete predictor registered (or exempted),
        every figure family list resolvable through the registry."""
        assert registry.completeness_problems() == []

    def test_conformance_matrix_enrolls_every_family(self):
        """Structural coverage pin: the conformance matrix parametrizes over
        the registry's own list, so no registered family can dodge it."""
        from tests import test_conformance_matrix as conformance

        for spec in registry.specs():
            if spec.module.startswith("repro."):
                assert spec.name in conformance.ALL_FAMILIES
