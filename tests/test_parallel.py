"""The parallel sweep executor: sharding, merging, checkpoints, retries.

Serial/parallel byte-identity for the full grids is asserted in
``test_conformance_matrix.py``; here we exercise the executor machinery
itself — worker-count resolution, checkpoint resume after a simulated
crash, the retry budget, config pinning, and the run reports that feed
obs manifests.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.common.errors import ConfigurationError
from repro.harness.experiment import default_jobs
from repro.harness.parallel import (
    CheckpointStore,
    Shard,
    SweepExecutionError,
    accuracy_shard_grid,
    drain_run_reports,
    parallel_accuracy_sweep,
    pool_jobs,
    resolve_max_retries,
    run_shards,
)
from repro.harness.sweep import accuracy_sweep, ipc_sweep
from repro.obs.manifest import build_manifest
from repro.workloads.spec2000 import (
    clear_trace_cache,
    trace_cache_capacity,
    trace_cache_info,
)

FAMILIES = ["gshare", "bimodal"]
BUDGETS = [2 * 1024]
BENCHMARKS = ["gcc", "eon"]
INSTRUCTIONS = 20_000

SWEEP_KWARGS = dict(
    families=FAMILIES,
    budgets=BUDGETS,
    benchmarks=BENCHMARKS,
    instructions=INSTRUCTIONS,
)


@pytest.fixture(autouse=True)
def _fresh_reports():
    """Each test sees only its own parallel-run reports."""
    drain_run_reports()
    yield
    drain_run_reports()


# -- configuration resolution --------------------------------------------------


class TestJobResolution:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "7")
        assert pool_jobs(3) == 3

    def test_explicit_argument_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            pool_jobs(0)

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert pool_jobs() == 5

    def test_unset_env_defaults_to_cpu_count(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert pool_jobs() == (os.cpu_count() or 1)

    @pytest.mark.parametrize("raw", ["auto", "0", "AUTO"])
    def test_default_jobs_auto(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_JOBS", raw)
        assert default_jobs() == (os.cpu_count() or 1)

    def test_default_jobs_defaults_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert default_jobs() == 1

    @pytest.mark.parametrize("raw", ["three", "1.5", "-2"])
    def test_default_jobs_rejects_garbage(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_JOBS", raw)
        with pytest.raises(ConfigurationError):
            default_jobs()

    def test_max_retries_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_MAX_RETRIES", raising=False)
        assert resolve_max_retries() == 2

    def test_max_retries_env_and_argument(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_RETRIES", "9")
        assert resolve_max_retries() == 9
        assert resolve_max_retries(0) == 0

    @pytest.mark.parametrize("raw", ["many", "-1"])
    def test_max_retries_rejects_garbage(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_MAX_RETRIES", raw)
        with pytest.raises(ConfigurationError):
            resolve_max_retries()


def test_shard_key_is_stable_and_filename_safe():
    assert Shard("accuracy", "gcc", "gshare", 2048).key == "accuracy__gcc__gshare__2048"
    assert (
        Shard("ipc", "eon", "perceptron", 4096, "overriding").key
        == "ipc__eon__perceptron__4096__overriding"
    )


def test_shard_grid_matches_serial_iteration_order():
    grid = accuracy_shard_grid(FAMILIES, [1024, 2048], BENCHMARKS)
    assert [(s.benchmark, s.family, s.budget_bytes) for s in grid] == [
        (benchmark, family, budget)
        for benchmark in BENCHMARKS
        for family in FAMILIES
        for budget in [1024, 2048]
    ]


# -- serial/parallel equivalence ----------------------------------------------


def test_ipc_sweep_parallel_matches_serial():
    kwargs = dict(SWEEP_KWARGS, mode="overriding", families=["gshare", "perceptron"])
    assert ipc_sweep(**kwargs, jobs=1) == ipc_sweep(**kwargs, jobs=2)


def test_parallel_sweep_writes_run_manifest(tmp_path):
    run_dir = tmp_path / "run"
    cells = parallel_accuracy_sweep(
        **SWEEP_KWARGS, engine=None, jobs=2, run_dir=str(run_dir)
    )
    assert len(cells) == len(FAMILIES) * len(BUDGETS) * len(BENCHMARKS)
    manifest = json.loads((run_dir / "manifest.json").read_text())
    assert manifest["status"] == "completed"
    assert manifest["shards"] == {
        "total": 4, "resumed": 0, "regenerated": 0, "executed": 4, "incomplete": 0,
    }
    assert manifest["retries"] == 0 and manifest["failures"] == []
    assert len(manifest["shard_timings"]) == 4
    assert sum(w["shards"] for w in manifest["workers"].values()) == 4
    run = json.loads((run_dir / "run.json").read_text())
    assert run["config"]["accuracy"]["instructions"] == INSTRUCTIONS


# -- crash / resume ------------------------------------------------------------


def test_abort_then_resume_skips_checkpointed_shards(tmp_path, monkeypatch):
    run_dir = tmp_path / "run"
    kwargs = dict(SWEEP_KWARGS, engine=None, jobs=1, run_dir=str(run_dir))

    monkeypatch.setenv("REPRO_PARALLEL_ABORT_AFTER", "2")
    with pytest.raises(RuntimeError, match="REPRO_PARALLEL_ABORT_AFTER"):
        parallel_accuracy_sweep(**kwargs)
    aborted = drain_run_reports()[-1]
    assert aborted["status"] == "aborted"
    assert aborted["shards"]["executed"] == 2
    assert aborted["shards"]["incomplete"] == 2

    shard_dir = run_dir / "shards"
    checkpoints = sorted(shard_dir.glob("*.json"))
    assert len(checkpoints) == 2
    mtimes = {p.name: p.stat().st_mtime_ns for p in checkpoints}

    monkeypatch.delenv("REPRO_PARALLEL_ABORT_AFTER")
    cells = parallel_accuracy_sweep(**kwargs)
    resumed = drain_run_reports()[-1]
    assert resumed["status"] == "completed"
    assert resumed["shards"]["resumed"] == 2
    assert resumed["shards"]["executed"] == 2
    # The checkpointed shards were skipped, not recomputed.
    for path in checkpoints:
        assert path.stat().st_mtime_ns == mtimes[path.name]
    # Merged results match a fresh uncheckpointed run exactly.
    assert cells == accuracy_sweep(**SWEEP_KWARGS, jobs=1)


def test_resume_refuses_different_config(tmp_path):
    run_dir = str(tmp_path / "run")
    parallel_accuracy_sweep(**SWEEP_KWARGS, engine=None, jobs=1, run_dir=run_dir)
    with pytest.raises(ConfigurationError, match="different"):
        parallel_accuracy_sweep(
            **dict(SWEEP_KWARGS, instructions=INSTRUCTIONS * 2),
            engine=None,
            jobs=1,
            run_dir=run_dir,
        )


def test_checkpoint_store_ignores_corrupt_and_mismatched_files(tmp_path):
    store = CheckpointStore(str(tmp_path))
    shard = Shard("accuracy", "gcc", "gshare", 2048)
    path = tmp_path / "shards" / f"{shard.key}.json"
    assert store.load(shard) is None  # absent
    path.write_text("{not json")
    assert store.load(shard) is None  # corrupt
    path.write_text(json.dumps({"schema": -1, "shard": {}, "payload": {}}))
    assert store.load(shard) is None  # wrong schema


def test_run_json_schema_mismatch_is_refused(tmp_path):
    (tmp_path / "run.json").write_text(json.dumps({"schema": -1, "config": {}}))
    store = CheckpointStore(str(tmp_path))
    with pytest.raises(ConfigurationError, match="schema"):
        store.pin_config("accuracy", {"instructions": 1})


# -- retries -------------------------------------------------------------------


def test_injected_failure_is_retried_and_recorded(monkeypatch):
    monkeypatch.setenv("REPRO_PARALLEL_FAIL_SHARD", "gcc__gshare")
    monkeypatch.setenv("REPRO_PARALLEL_FAIL_ATTEMPTS", "2")
    cells = parallel_accuracy_sweep(**SWEEP_KWARGS, engine=None, jobs=2, max_retries=2)
    report = drain_run_reports()[-1]
    assert report["status"] == "completed"
    assert report["retries"] == 2
    assert [f["shard"] for f in report["failures"]] == [
        "accuracy__gcc__gshare__2048",
        "accuracy__gcc__gshare__2048",
    ]
    assert [f["attempt"] for f in report["failures"]] == [0, 1]
    # Retried results are still byte-identical to the clean serial run.
    monkeypatch.delenv("REPRO_PARALLEL_FAIL_SHARD")
    monkeypatch.delenv("REPRO_PARALLEL_FAIL_ATTEMPTS")
    assert cells == accuracy_sweep(**SWEEP_KWARGS, jobs=1)


def test_exhausted_retry_budget_fails_the_run(monkeypatch, tmp_path):
    run_dir = tmp_path / "run"
    monkeypatch.setenv("REPRO_PARALLEL_FAIL_SHARD", "gcc__gshare")
    monkeypatch.setenv("REPRO_PARALLEL_FAIL_ATTEMPTS", "99")
    with pytest.raises(SweepExecutionError, match="max_retries=1"):
        parallel_accuracy_sweep(
            **SWEEP_KWARGS, engine=None, jobs=1, max_retries=1, run_dir=str(run_dir)
        )
    manifest = json.loads((run_dir / "manifest.json").read_text())
    assert manifest["status"] == "failed"
    assert manifest["retries"] == 2  # initial attempt + one retry, both failed


# -- obs integration -----------------------------------------------------------


def test_run_reports_land_in_obs_manifest():
    parallel_accuracy_sweep(**SWEEP_KWARGS, engine=None, jobs=2)
    manifest = build_manifest("test", "output", 0.0, config={})
    [report] = manifest["parallel"]
    assert report["label"] == "accuracy_sweep"
    assert report["shards"]["executed"] == 4
    # drain: a second manifest must not repeat the report.
    assert "parallel" not in build_manifest("test", "output", 0.0, config={})


def test_parallel_counters_when_profiling(obs_enabled):
    run_shards(
        accuracy_shard_grid(["bimodal"], BUDGETS, ["gcc"]),
        {"instructions": INSTRUCTIONS, "engine": None, "warmup_fraction": 0.2},
        jobs=1,
    )
    counters = obs_enabled.snapshot()["counters"]
    assert counters["parallel.shards_executed"] == 1
    drain_run_reports()


# -- trace store ---------------------------------------------------------------


class TestTraceStoreIntegration:
    @pytest.fixture
    def warm_store(self, tmp_path, monkeypatch):
        """A prewarmed store for the test grid, with the parent's LRU kept
        empty so forked workers must demonstrably hit the disk store."""
        from repro.workloads.spec2000 import warm_trace_store
        from repro.workloads.store import reset_store_stats

        store_dir = tmp_path / "traces"
        monkeypatch.setenv("REPRO_TRACE_STORE", str(store_dir))
        clear_trace_cache()
        reset_store_stats()
        warm_trace_store(benchmarks=BENCHMARKS, instruction_counts=[INSTRUCTIONS])
        clear_trace_cache()
        reset_store_stats()
        yield store_dir
        clear_trace_cache()
        reset_store_stats()

    def test_workers_share_warm_store(self, warm_store, tmp_path):
        """Every worker loads from the shared store — per-worker manifest
        stats show store hits and zero misses (nothing regenerated)."""
        run_dir = tmp_path / "run"
        parallel_accuracy_sweep(
            **SWEEP_KWARGS, engine=None, jobs=2, run_dir=str(run_dir)
        )
        manifest = json.loads((run_dir / "manifest.json").read_text())
        assert manifest["trace_store"]["hits"] >= 2  # one per benchmark at least
        assert manifest["trace_store"]["misses"] == 0
        assert manifest["trace_store"]["corrupt"] == 0
        workers = manifest["workers"].values()
        assert all("trace_store" in worker for worker in workers)
        assert sum(w["trace_store"]["hits"] for w in workers) == (
            manifest["trace_store"]["hits"]
        )

    def test_crash_resume_under_warm_store_matches_serial(
        self, warm_store, tmp_path, monkeypatch
    ):
        run_dir = tmp_path / "run"
        kwargs = dict(SWEEP_KWARGS, engine=None, jobs=1, run_dir=str(run_dir))
        monkeypatch.setenv("REPRO_PARALLEL_ABORT_AFTER", "2")
        with pytest.raises(RuntimeError, match="REPRO_PARALLEL_ABORT_AFTER"):
            parallel_accuracy_sweep(**kwargs)
        monkeypatch.delenv("REPRO_PARALLEL_ABORT_AFTER")
        resumed = parallel_accuracy_sweep(**kwargs)
        report = drain_run_reports()[-1]
        assert report["shards"]["resumed"] == 2
        # Byte-identical to the serial, storeless path.
        monkeypatch.delenv("REPRO_TRACE_STORE")
        clear_trace_cache()
        assert resumed == accuracy_sweep(**SWEEP_KWARGS, jobs=1)

    def test_parallel_store_counters_reach_obs(self, warm_store, obs_enabled):
        parallel_accuracy_sweep(**SWEEP_KWARGS, engine=None, jobs=2)
        counters = obs_enabled.snapshot()["counters"]
        assert counters["trace_store.hits"] >= 2
        drain_run_reports()


# -- checkpoint atomicity ------------------------------------------------------


class TestCheckpointAtomicity:
    def test_checkpoint_write_leaves_no_staging_files(self, tmp_path):
        from repro.harness.parallel import ShardOutcome

        store = CheckpointStore(str(tmp_path))
        shard = Shard("accuracy", "gcc", "gshare", 2048)
        store.store(
            ShardOutcome(
                shard=shard, payload={"misprediction_percent": 1.0},
                duration_seconds=0.1, worker_pid=1,
            )
        )
        leftovers = [p for p in (tmp_path / "shards").iterdir() if ".tmp" in p.name]
        assert leftovers == []
        assert store.load(shard) is not None

    def test_checkpoint_killed_mid_write_is_ignored_on_resume(self, tmp_path):
        """A writer killed mid-write leaves only a ``*.tmp.<pid>`` staging
        file; resume neither crashes on it nor trusts it — the shard is
        simply re-executed."""
        run_dir = tmp_path / "run"
        shard_dir = run_dir / "shards"
        shard_dir.mkdir(parents=True)
        key = "accuracy__gcc__gshare__2048"
        # Half-written JSON under the staging name (the only artifact an
        # atomic writer can leave behind)...
        (shard_dir / f"{key}.json.tmp.4242").write_text('{"schema": 1, "payl')
        # ...and, belt-and-braces, torn JSON under a *final* name too
        # (pre-atomic layouts could produce this).
        (shard_dir / "accuracy__eon__gshare__2048.json").write_text('{"sch')
        cells = parallel_accuracy_sweep(
            **SWEEP_KWARGS, engine=None, jobs=1, run_dir=str(run_dir)
        )
        report = drain_run_reports()[-1]
        assert report["status"] == "completed"
        assert report["shards"]["resumed"] == 0  # nothing was trusted
        assert report["shards"]["executed"] == 4
        assert cells == accuracy_sweep(**SWEEP_KWARGS, jobs=1)

    def test_torn_checkpoint_classifies_partial_and_reexecutes(self, tmp_path):
        """Fault injection: a checkpoint whose writer died mid-write (torn
        JSON under the final name, or only a staging sibling) must classify
        as ``partial`` — never ``completed`` — and the shard re-executes."""
        from repro.harness.campaign import CampaignLayout, classify_shard

        run_dir = tmp_path / "run"
        shard_dir = run_dir / "shards"
        shard_dir.mkdir(parents=True)
        layout = CampaignLayout(str(run_dir))
        grid = accuracy_shard_grid(FAMILIES, BUDGETS, BENCHMARKS)
        torn_final, torn_staging = grid[0], grid[1]
        # Torn JSON under the *final* checkpoint name...
        (shard_dir / f"{torn_final.key}.json").write_text('{"schema": 1, "payl')
        # ...and a shard that only ever got as far as its staging file.
        (shard_dir / f"{torn_staging.key}.json.tmp.4242").write_text("{")
        assert classify_shard(torn_final, layout=layout) == "partial"
        assert classify_shard(torn_staging, layout=layout) == "partial"

        cells = parallel_accuracy_sweep(
            **SWEEP_KWARGS, engine=None, jobs=1, run_dir=str(run_dir)
        )
        report = drain_run_reports()[-1]
        assert report["status"] == "completed"
        assert report["shards"]["resumed"] == 0  # the torn shard was not trusted
        assert report["shards"]["executed"] == 4
        assert cells == accuracy_sweep(**SWEEP_KWARGS, jobs=1)
        # The re-executed checkpoints are whole again.
        for shard in (torn_final, torn_staging):
            assert classify_shard(shard, layout=layout) == "completed"


# -- trace cache ---------------------------------------------------------------


class TestTraceCache:
    def test_capacity_env_override(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE_CACHE", raising=False)
        assert trace_cache_capacity() == 32
        monkeypatch.setenv("REPRO_TRACE_CACHE", "4")
        assert trace_cache_capacity() == 4

    @pytest.mark.parametrize("raw", ["tiny", "0", "-3"])
    def test_capacity_rejects_garbage(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_TRACE_CACHE", raw)
        with pytest.raises(ConfigurationError):
            trace_cache_capacity()

    def test_hits_misses_and_eviction(self, monkeypatch):
        from repro.workloads.spec2000 import spec2000_trace

        clear_trace_cache()
        monkeypatch.setenv("REPRO_TRACE_CACHE", "1")
        spec2000_trace("gcc", instructions=5_000)
        spec2000_trace("gcc", instructions=5_000)
        spec2000_trace("eon", instructions=5_000)  # evicts gcc
        info = trace_cache_info()
        assert info["hits"] == 1
        assert info["misses"] == 2
        assert info["evictions"] == 1
        assert info["entries"] == 1
        clear_trace_cache()
        assert trace_cache_info()["entries"] == 0


# -- distributed tracing -------------------------------------------------------


class TestParallelTelemetry:
    def test_worker_spans_parent_to_run_trace(self, tmp_path, monkeypatch):
        """A --jobs 2 sweep with REPRO_LOG leaves one complete cross-process
        span tree: no orphans, every worker shard span resolving to the
        parent's parallel.run span, and wall times that agree."""
        from repro.obs.aggregate import aggregate_run, build_span_tree
        from repro.obs.events import read_run_events, validate_event

        log = tmp_path / "events.jsonl"
        monkeypatch.setenv("REPRO_LOG", str(log))
        monkeypatch.delenv("REPRO_LOG_OWNER_PID", raising=False)
        accuracy_sweep(**SWEEP_KWARGS, jobs=2)

        events = read_run_events(log)
        assert events and all(validate_event(e) == [] for e in events)
        assert not list(log.parent.glob("events.jsonl.*"))  # sidecars merged

        tree = build_span_tree(events)
        assert not tree.orphans and not tree.unclosed
        run_spans = [n for n in tree.by_id.values() if n.name == "parallel.run"]
        assert len(run_spans) == 1
        run = run_spans[0]
        shard_spans = [n for n in tree.by_id.values() if n.name == "parallel.shard"]
        assert len(shard_spans) == len(FAMILIES) * len(BUDGETS) * len(BENCHMARKS)
        assert all(n.parent_id == run.span_id for n in shard_spans)
        assert all(n.trace_id == run.trace_id for n in shard_spans)
        assert all(n.pid != run.pid for n in shard_spans)

        agg = aggregate_run(events)
        # One run summary closed the trail; its counters match the tree.
        assert agg["counters"]["shards.executed"] == len(shard_spans)
        assert agg["counters"]["retries"] == 0
        # The aggregate's wall covers the root span within rounding.
        roots = [n for n in tree.roots]
        assert agg["wall_seconds"] == pytest.approx(
            max(r.duration for r in roots), rel=0.05
        )
        # Workers were seen and attributed busy time.
        assert agg["workers"]
        assert all(w["busy_seconds"] > 0 for w in agg["workers"].values())

    def test_retry_and_checkpoint_events_recorded(self, tmp_path, monkeypatch):
        from repro.obs.events import read_run_events

        log = tmp_path / "events.jsonl"
        monkeypatch.setenv("REPRO_LOG", str(log))
        monkeypatch.delenv("REPRO_LOG_OWNER_PID", raising=False)
        monkeypatch.setenv("REPRO_PARALLEL_FAIL_SHARD", "gcc__gshare")
        monkeypatch.setenv("REPRO_PARALLEL_FAIL_ATTEMPTS", "1")
        run_dir = tmp_path / "run"
        accuracy_sweep(
            **SWEEP_KWARGS, engine=None, jobs=2, run_dir=str(run_dir)
        )
        events = read_run_events(log)
        retries = [e for e in events if e["event"] == "retry"]
        assert len(retries) == 1 and "gcc__gshare" in retries[0]["shard"]
        stored = [e for e in events if e["event"] == "checkpoint"]
        assert {e["action"] for e in stored} == {"store"}
        assert len(stored) == 4
        summaries = [e for e in events if e["event"] == "run_summary"]
        assert summaries[-1]["summary"]["retries"] == 1

    def test_slow_shard_hook_injects_straggler(self, tmp_path, monkeypatch):
        from repro.obs.aggregate import aggregate_run
        from repro.obs.events import read_run_events

        log = tmp_path / "events.jsonl"
        monkeypatch.setenv("REPRO_LOG", str(log))
        monkeypatch.delenv("REPRO_LOG_OWNER_PID", raising=False)
        monkeypatch.setenv("REPRO_PARALLEL_SLOW_SHARD", "eon__bimodal")
        monkeypatch.setenv("REPRO_PARALLEL_SLOW_SHARD_SECONDS", "0.5")
        accuracy_sweep(**SWEEP_KWARGS, jobs=2)
        agg = aggregate_run(read_run_events(log))
        stragglers = agg["stragglers"]
        assert stragglers["slowest"][0]["shard"] == "accuracy__eon__bimodal__2048"
        assert stragglers["max_seconds"] >= 0.5
        # The critical path ends in the slowed shard.
        assert agg["critical_path"][-1]["shard"] == "accuracy__eon__bimodal__2048"
