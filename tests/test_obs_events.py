"""Tests for the run-event bus: schema validation, emit helpers, sidecar
merging and crash-tolerant reading."""

from __future__ import annotations

import json
import os

import pytest

from repro import obs
from repro.obs import events


@pytest.fixture
def log_file(tmp_path, monkeypatch):
    path = tmp_path / "events.jsonl"
    monkeypatch.setenv("REPRO_LOG", str(path))
    monkeypatch.delenv("REPRO_LOG_OWNER_PID", raising=False)
    return path


def read_events(path):
    return [json.loads(line) for line in path.read_text().splitlines()]


class TestEmitHelpers:
    def test_emitted_events_validate(self, log_file):
        events.emit_counter({"trace_cache.hits": 3})
        events.emit_store("trace", "misses")
        events.emit_retry("accuracy__gcc__gshare__2048", 0, "RuntimeError: boom")
        events.emit_checkpoint("accuracy__gcc__gshare__2048", "store")
        events.emit_run_summary("accuracy_sweep", {"shards": {"executed": 4}})
        records = read_events(log_file)
        assert [r["event"] for r in records] == [
            "counter",
            "store",
            "retry",
            "checkpoint",
            "run_summary",
        ]
        for record in records:
            assert events.validate_event(record) == []

    def test_campaign_events_validate(self, log_file):
        """The campaign-orchestrator event types introduced by schema v2."""
        events.emit_classify({"completed": 3, "missing": 1}, label="scan")
        events.emit_claim("accuracy__gcc__gshare__2048", "worker-1")
        events.emit_claim("accuracy__eon__gshare__2048", "worker-2", stolen=True)
        events.emit_requeue("accuracy__gcc__gshare__2048", 1, "RuntimeError: boom")
        records = read_events(log_file)
        assert [r["event"] for r in records] == [
            "classify", "claim", "claim", "requeue",
        ]
        for record in records:
            assert events.validate_event(record) == []
        assert records[0]["counts"] == {"completed": 3, "missing": 1}
        assert records[1]["stolen"] is False
        assert records[2]["stolen"] is True
        assert records[3]["attempt"] == 1

    def test_campaign_events_require_type_fields(self):
        common = {"ts": 1.0, "pid": 1}
        assert any(
            "counts" in p
            for p in events.validate_event({"event": "classify", **common})
        )
        assert any(
            "owner" in p for p in events.validate_event({"event": "claim", **common})
        )
        assert any(
            "attempt" in p
            for p in events.validate_event({"event": "requeue", **common})
        )

    def test_counter_drops_zero_deltas(self, log_file):
        events.emit_counter({"a": 0, "b": 2})
        (record,) = read_events(log_file)
        assert record["counters"] == {"b": 2}

    def test_all_zero_counter_batch_emits_nothing(self, log_file):
        events.emit_counter({"a": 0, "b": 0})
        assert not log_file.exists()

    def test_emit_without_log_is_noop(self, monkeypatch):
        monkeypatch.delenv("REPRO_LOG", raising=False)
        events.emit_store("trace", "hits")  # must not raise


class TestValidation:
    def test_missing_common_fields(self):
        problems = events.validate_event({"event": "store", "store": "trace", "op": "hits"})
        assert any("ts" in p for p in problems)
        assert any("pid" in p for p in problems)

    def test_missing_type_fields(self):
        problems = events.validate_event(
            {"event": "span", "ts": 1.0, "pid": 1, "name": "x"}
        )
        assert any("span_id" in p for p in problems)
        assert any("duration_seconds" in p for p in problems)

    def test_unknown_event_type(self):
        assert events.validate_event({"event": "mystery", "ts": 1.0, "pid": 1})
        assert events.validate_event("not a dict")

    def test_span_events_from_tracer_validate(self, log_file):
        with obs.span("phase"):
            pass
        for record in read_events(log_file):
            assert events.validate_event(record) == []


class TestReaders:
    def test_torn_final_line_is_skipped(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text('{"event": "span", "ts": 1.0}\n{"event": "sp')
        assert len(events.read_event_lines(path)) == 1

    def test_missing_file_reads_empty(self, tmp_path):
        assert events.read_event_lines(tmp_path / "nope.jsonl") == []

    def test_sidecar_paths_ignore_non_numeric_suffixes(self, tmp_path):
        main = tmp_path / "events.jsonl"
        main.write_text("")
        (tmp_path / "events.jsonl.123").write_text("")
        (tmp_path / "events.jsonl.456").write_text("")
        (tmp_path / "events.jsonl.tmp.789").write_text("")  # atomic staging
        (tmp_path / "events.jsonl.bak").write_text("")
        assert events.sidecar_paths(main) == [
            str(tmp_path / "events.jsonl.123"),
            str(tmp_path / "events.jsonl.456"),
        ]


class TestSidecarMerge:
    def test_collect_merges_sorted_and_unlinks(self, log_file):
        log_file.write_text(json.dumps({"event": "span", "ts": 2.0, "pid": 1}) + "\n")
        sidecar = log_file.parent / f"{log_file.name}.999"
        sidecar.write_text(
            json.dumps({"event": "span", "ts": 3.0, "pid": 999})
            + "\n"
            + json.dumps({"event": "span", "ts": 1.0, "pid": 999})
            + "\n"
        )
        merged = events.collect_worker_events(str(log_file))
        assert merged == 2
        assert not sidecar.exists()
        # Main file: its own record first (append order), sidecar records
        # appended in timestamp order.
        assert [r["ts"] for r in read_events(log_file)] == [2.0, 1.0, 3.0]

    def test_collect_defaults_to_own_sink(self, log_file):
        obs.claim_log_ownership()
        sidecar = log_file.parent / f"{log_file.name}.424242"
        sidecar.write_text(json.dumps({"event": "span", "ts": 1.0, "pid": 424242}) + "\n")
        assert events.collect_worker_events() == 1
        assert read_events(log_file)[0]["pid"] == 424242

    def test_collect_without_log_is_noop(self, monkeypatch):
        monkeypatch.delenv("REPRO_LOG", raising=False)
        assert events.collect_worker_events() == 0

    def test_read_run_events_includes_leftover_sidecars(self, log_file):
        """A crashed run never merged its sidecars; reading must still see
        every record, timestamp-ordered across files."""
        log_file.write_text(json.dumps({"event": "span", "ts": 2.0, "pid": 1}) + "\n")
        sidecar = log_file.parent / f"{log_file.name}.777"
        sidecar.write_text(json.dumps({"event": "span", "ts": 1.0, "pid": 777}) + "\n")
        records = events.read_run_events(log_file)
        assert [r["ts"] for r in records] == [1.0, 2.0]
        assert sidecar.exists()  # reading never mutates


class TestWorkerRouting:
    def test_worker_store_events_land_in_sidecar(self, log_file, monkeypatch):
        """A process that is not the log owner emits to its own sidecar;
        the owner's merge pulls the records back into the main file."""
        monkeypatch.setenv("REPRO_LOG_OWNER_PID", "1")
        events.emit_store("result", "hits")
        sidecar = log_file.parent / f"{log_file.name}.{os.getpid()}"
        assert sidecar.exists() and not log_file.exists()
        monkeypatch.setenv("REPRO_LOG_OWNER_PID", str(os.getpid()))
        assert events.collect_worker_events() == 1
        assert not sidecar.exists()
        (record,) = read_events(log_file)
        assert record["store"] == "result"
