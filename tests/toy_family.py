"""A complete predictor family in one module — the registry's litmus test.

The declarative registry promises that adding a family is a *one-module*
change: define the predictor, define its sizing config, register a
:class:`FamilySpec`, and every consumer (sweeps, engine selection, parallel
sharding, conformance checks) picks it up with zero edits elsewhere.  This
module is that promise exercised end to end: a deliberately simple
PC-indexed 3-bit counter predictor that exists nowhere in the shipped
package.  ``tests/test_registry_toy.py`` drives it through the harness while
importing nothing family-specific from the harness, batch, or parallel
layers.

The module lives under ``tests`` (not ``repro``), so the completeness gate
treats it as an external family: it must flow through the pipeline but is
exempt from the golden figure coverage expected of shipped families.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.counters import CounterTable
from repro.predictors.base import BranchPredictor
from repro.predictors.registry import FamilySpec, register
from repro.predictors.sizing import SizingConfig, floor_pow2

FAMILY = "toy_direct"

#: Counter width — 3 bits, so the toy matches no shipped table geometry.
COUNTER_BITS = 3


@dataclass(frozen=True)
class ToyConfig(SizingConfig):
    """Sizing config for the toy family: a single direction table."""

    entries: int


class ToyDirectPredictor(BranchPredictor):
    """PC-indexed table of 3-bit saturating counters, no history at all."""

    name = FAMILY

    def __init__(self, entries: int) -> None:
        super().__init__()
        self.table = CounterTable(entries, bits=COUNTER_BITS)
        self._mask = entries - 1

    @property
    def storage_bits(self) -> int:
        return self.table.storage_bits

    def tables(self) -> dict[str, CounterTable]:
        return {"direction": self.table}

    def _predict(self, pc: int) -> tuple[bool, int]:
        index = (pc >> 2) & self._mask
        return self.table.predict(index), index

    def _update(self, pc: int, taken: bool, predicted: bool, context: int) -> None:
        self.table.update(context, taken)


def size_toy(budget_bytes: int) -> ToyConfig:
    """Fill the budget with 3-bit counters (64-entry floor)."""
    return ToyConfig(entries=floor_pow2(max(budget_bytes * 8 // COUNTER_BITS, 64)))


def build_toy(config: ToyConfig) -> ToyDirectPredictor:
    return ToyDirectPredictor(entries=config.entries)


SPEC = register(
    FamilySpec(
        name=FAMILY,
        config_type=ToyConfig,
        sizer=size_toy,
        builder=build_toy,
        predictor_type=ToyDirectPredictor,
        # No batch kernel: the engine must fall back to the scalar path.
        batch_kernel=None,
    )
)
