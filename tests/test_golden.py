"""Golden-file regression tests.

Pins rendered experiment output against fixtures under ``tests/golden/``.
Any intentional behaviour change (timing model, workload generator, warmup
policy, predictor logic, rendering) must come with regenerated fixtures::

    PYTHONPATH=src python tests/golden/regen.py

and a diff of the fixture files reviewed alongside the code change.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.harness import figures
from repro.harness.cli import main
from tests.golden.regen import (
    FIGURE1_BENCHMARKS,
    FIGURE1_BUDGETS,
    FIGURE1_INSTRUCTIONS,
    STREAM_BENCHMARK,
    STREAM_INSTRUCTIONS,
    STREAM_SEED,
)

GOLDEN_DIR = Path(__file__).parent / "golden"


def read_fixture(name: str) -> str:
    return (GOLDEN_DIR / name).read_text()


def test_table2_matches_golden():
    assert figures.table2() + "\n" == read_fixture("table2.txt")


def test_table2_cli_matches_golden(capsys):
    assert main(["table2"]) == 0
    out = capsys.readouterr().out
    assert read_fixture("table2.txt") in out


def test_figure1_small_matches_golden(monkeypatch):
    monkeypatch.setenv("REPRO_BENCHMARKS", FIGURE1_BENCHMARKS)
    figure = figures.figure1(
        budgets=FIGURE1_BUDGETS, instructions=FIGURE1_INSTRUCTIONS
    )
    assert figure.render() + "\n" == read_fixture("figure1_small.txt")


def test_golden_branch_stream_matches_workload():
    """The recorded stream is reproducible from the generator at its pinned
    seed — i.e. the workload layer hasn't drifted under the fixture."""
    from repro.workloads.spec2000 import spec2000_trace

    trace = spec2000_trace(
        STREAM_BENCHMARK, instructions=STREAM_INSTRUCTIONS, seed=STREAM_SEED
    )
    lines = read_fixture("branch_stream.csv").splitlines()[1:]
    recorded = [
        (int(pc, 16), taken == "1")
        for pc, taken in (line.split(",") for line in lines)
    ]
    live = list(trace.conditional_branches())[: len(recorded)]
    assert live == recorded


def test_regen_refuses_dirty_tree(monkeypatch, capsys):
    """regen.py must not rewrite fixtures on top of uncommitted changes."""
    from tests.golden import regen

    calls = []
    for name in ("regen_branch_stream", "regen_table2", "regen_figure1_small"):
        monkeypatch.setattr(regen, name, lambda name=name: calls.append(name))
    monkeypatch.setattr(regen, "dirty_files", lambda: [" M src/thing.py"])
    assert regen.main([]) == 1
    assert calls == []
    assert "uncommitted changes" in capsys.readouterr().err

    # --force overrides the guard; a clean tree never needed it.
    assert regen.main(["--force"]) == 0
    monkeypatch.setattr(regen, "dirty_files", lambda: [])
    assert regen.main([]) == 0
    assert len(calls) == 6


def test_regen_prints_engine_and_seed(monkeypatch, capsys, tmp_path):
    """The regen log records what the fixtures were generated with."""
    from tests.golden import regen

    monkeypatch.setattr(regen, "GOLDEN_DIR", tmp_path)
    monkeypatch.setattr(regen, "dirty_files", lambda: [])
    # regen_figure1_small writes REPRO_BENCHMARKS into os.environ;
    # registering it here makes monkeypatch restore the original value.
    monkeypatch.setenv("REPRO_BENCHMARKS", FIGURE1_BENCHMARKS)
    assert regen.main([]) == 0
    out = capsys.readouterr().out
    assert f"seed={STREAM_SEED}" in out
    assert "engine=" in out
    assert (tmp_path / "branch_stream.csv").exists()
    assert (tmp_path / "table2.txt").exists()
    assert (tmp_path / "figure1_small.txt").exists()
