"""Cross-predictor conformance matrix.

Every predictor the factory can build (plus the pipelined ``repro.core``
families) must honour one shared contract, regardless of internal
organization:

* **protocol** — strict predict-then-update alternation, enforced with
  :class:`ProtocolError` on every violation;
* **determinism** — two instances fed the same trace agree exactly,
  branch for branch (the whole pipeline is a pure function of its seeds);
* **sizing** — the built predictor fits the requested hardware budget
  (with the 5% allowance the sizing layer grants for non-table state such
  as history registers and pipeline latches), across the budget ladder;
* **peek neutrality** — ``peek()`` never disturbs predictor state: a twin
  instance bombarded with peeks stays bit-identical (prediction stream and
  final table contents) to an undisturbed one;
* **sweep equality** — the parallel sweep executor produces exactly the
  cells the serial path produces, for every family at once;
* **representation equality** — replaying a trace from the store's
  columnar (SoA) arrays yields byte-identical accuracy counts to the
  ``Block``-object replay, on both the scalar and batch engines.

The family list comes from the declarative registry, so a newly registered
family is enrolled in every check automatically.
"""

from __future__ import annotations

import pytest

from repro.common.errors import ProtocolError
from repro.harness.sweep import accuracy_sweep, build_family
from repro.predictors import registry

#: Every registered family — the registry is the authoritative list.
ALL_FAMILIES = registry.family_names()

CONFORMANCE_BUDGET = 8 * 1024

#: Budget ladder sample for the sizing checks (2KB .. 512KB).
BUDGET_LADDER = [2 * 1024, 8 * 1024, 64 * 1024, 512 * 1024]


def table_digests(predictor) -> dict[str, bytes]:
    """Byte-exact fingerprints of every named counter table."""
    return {
        name: table.snapshot().tobytes() for name, table in predictor.tables().items()
    }


def branch_stream(trace, limit=1200):
    """The first ``limit`` (pc, taken) conditional branches of ``trace``."""
    stream = []
    for pc, taken in trace.conditional_branches():
        stream.append((pc, taken))
        if len(stream) >= limit:
            break
    return stream


@pytest.mark.parametrize("family", ALL_FAMILIES)
class TestPredictorContract:
    def test_predict_twice_raises(self, family):
        predictor = build_family(family, CONFORMANCE_BUDGET)
        predictor.predict(0x4000)
        with pytest.raises(ProtocolError):
            predictor.predict(0x4004)

    def test_update_without_predict_raises(self, family):
        predictor = build_family(family, CONFORMANCE_BUDGET)
        with pytest.raises(ProtocolError):
            predictor.update(0x4000, True)

    def test_update_wrong_pc_raises(self, family):
        predictor = build_family(family, CONFORMANCE_BUDGET)
        predictor.predict(0x4000)
        with pytest.raises(ProtocolError):
            predictor.update(0x4008, True)

    def test_predict_then_update_roundtrip(self, family):
        predictor = build_family(family, CONFORMANCE_BUDGET)
        prediction = predictor.predict(0x4000)
        assert isinstance(prediction, bool)
        correct = predictor.update(0x4000, prediction)
        assert correct is True
        assert predictor.stats.predictions == 1
        assert predictor.stats.mispredictions == 0

    def test_two_instances_agree_exactly(self, family, small_trace):
        """Seeded determinism: identical instances on an identical trace
        produce the identical per-branch prediction stream."""
        stream = branch_stream(small_trace)
        first = build_family(family, CONFORMANCE_BUDGET)
        second = build_family(family, CONFORMANCE_BUDGET)
        for pc, taken in stream:
            assert first.predict(pc) == second.predict(pc)
            assert first.update(pc, taken) == second.update(pc, taken)
        assert first.stats.predictions == second.stats.predictions == len(stream)
        assert first.stats.mispredictions == second.stats.mispredictions

    @pytest.mark.parametrize("budget", BUDGET_LADDER)
    def test_sizing_within_budget(self, family, budget):
        predictor = build_family(family, budget)
        assert 0 < predictor.storage_bits
        # Same allowance as the sizing layer: tables fill the budget,
        # history registers / pipeline latches may add a few percent.
        assert predictor.storage_bytes <= budget * 1.05

    def test_sizing_monotonic(self, family):
        small = build_family(family, 4 * 1024).storage_bits
        large = build_family(family, 64 * 1024).storage_bits
        assert large > small

    def test_peek_is_state_neutral(self, family, small_trace):
        """A twin instance peppered with ``peek()`` calls stays bit-identical
        to an undisturbed one: same prediction stream, same final tables.

        The twin construction catches state drift even in families whose
        ``tables()`` is empty (perceptron weights, loop counters, composite
        internals): any disturbed state would surface as a diverged
        prediction somewhere down the stream.
        """
        spec = registry.get_spec(family)
        if not spec.state_neutral_peek:
            pytest.skip(f"{family} opts out of state-neutral peek")
        stream = branch_stream(small_trace, limit=600)
        plain = build_family(family, CONFORMANCE_BUDGET)
        peeked = build_family(family, CONFORMANCE_BUDGET)
        for i, (pc, taken) in enumerate(stream):
            peeked.peek(pc)
            assert plain.predict(pc) == peeked.predict(pc)
            peeked.peek(stream[(i * 7) % len(stream)][0])  # off-branch peek
            assert plain.update(pc, taken) == peeked.update(pc, taken)
            peeked.peek(pc)
        assert table_digests(plain) == table_digests(peeked)
        assert plain.stats.mispredictions == peeked.stats.mispredictions

    def test_peek_preserves_table_digests(self, family):
        """Direct digest check: a burst of peeks on a fresh predictor leaves
        every named counter table byte-identical."""
        predictor = build_family(family, CONFORMANCE_BUDGET)
        before = table_digests(predictor)
        for i in range(64):
            predictor.peek(0x4000 + i * 4)
        assert table_digests(predictor) == before


@pytest.mark.parametrize("family", ALL_FAMILIES)
class TestColumnarReplayConformance:
    """Trace-representation equivalence: every family must produce
    byte-identical accuracy counts whether the trace is replayed from
    ``Block`` objects or from the store's columnar arrays."""

    def test_scalar_engine_counts_identical(self, family, small_trace):
        from repro.harness.experiment import measure_accuracy
        from repro.workloads.store import ColumnarTrace

        columnar = ColumnarTrace.from_trace(small_trace)
        blocks = measure_accuracy(
            build_family(family, CONFORMANCE_BUDGET), small_trace, engine="scalar"
        )
        columns = measure_accuracy(
            build_family(family, CONFORMANCE_BUDGET), columnar, engine="scalar"
        )
        assert blocks.branches == columns.branches
        assert blocks.mispredictions == columns.mispredictions
        assert blocks.misprediction_percent == columns.misprediction_percent

    def test_batch_engine_counts_identical(self, family, small_trace):
        from repro.harness.experiment import measure_accuracy
        from repro.workloads.store import ColumnarTrace

        if not registry.get_spec(family).batch_kernel:
            pytest.skip(f"{family} has no batch kernel")
        columnar = ColumnarTrace.from_trace(small_trace)
        blocks = measure_accuracy(
            build_family(family, CONFORMANCE_BUDGET), small_trace, engine="batch"
        )
        columns = measure_accuracy(
            build_family(family, CONFORMANCE_BUDGET), columnar, engine="batch"
        )
        assert blocks.branches == columns.branches
        assert blocks.mispredictions == columns.mispredictions
        assert blocks.misprediction_percent == columns.misprediction_percent


@pytest.mark.parametrize("family", ALL_FAMILIES)
class TestResultStoreConformance:
    """Result-store rows of the matrix: for every registered family, a cell
    served from the cache is byte-identical to a fresh recomputation — on
    both the scalar and batch engines — and a sizing-config or engine
    change can never produce a false hit."""

    @pytest.fixture
    def result_store_env(self, tmp_path, monkeypatch):
        from repro.harness.resultstore import reset_result_store_stats
        from repro.workloads.spec2000 import clear_trace_cache

        monkeypatch.setenv("REPRO_RESULT_STORE", str(tmp_path / "results"))
        clear_trace_cache()
        reset_result_store_stats()
        yield
        clear_trace_cache()
        reset_result_store_stats()

    @pytest.mark.parametrize("engine", ["scalar", "batch"])
    def test_cached_equals_fresh(self, family, engine, result_store_env, monkeypatch):
        from repro.harness.resultstore import result_store_stats

        if engine == "batch" and not registry.get_spec(family).batch_kernel:
            pytest.skip(f"{family} has no batch kernel")
        kwargs = dict(
            families=[family],
            budgets=[CONFORMANCE_BUDGET],
            benchmarks=["gcc"],
            instructions=20_000,
            engine=engine,
        )
        cold = accuracy_sweep(**kwargs)
        assert result_store_stats()["writes"] == 1
        warm = accuracy_sweep(**kwargs)
        assert result_store_stats()["hits"] == 1
        assert warm == cold  # frozen-dataclass equality: float bit patterns
        # And the cache never drifted from an uncached recomputation.
        monkeypatch.delenv("REPRO_RESULT_STORE")
        fresh = accuracy_sweep(**kwargs)
        assert fresh == cold

    def test_engine_change_misses_key(self, family):
        from repro.harness.resultstore import accuracy_result_key

        scalar = accuracy_result_key("gcc", family, CONFORMANCE_BUDGET, 20_000, "scalar", 0.2)
        batch = accuracy_result_key("gcc", family, CONFORMANCE_BUDGET, 20_000, "batch", 0.2)
        assert scalar != batch

    def test_sizing_config_change_misses_key(self, family):
        """The key digests the serialized sizing config: perturbing any
        config field (as a sizing-rule change would) yields a new key."""
        import json

        from repro.harness.resultstore import accuracy_key_payload, result_digest

        payload = accuracy_key_payload("gcc", family, CONFORMANCE_BUDGET, 20_000, "scalar", 0.2)
        base = result_digest(payload)
        config = payload["spec"]["config"]
        assert config, f"family {family} serializes an empty sizing config"
        for field in sorted(config):
            mutated = json.loads(json.dumps(payload))
            value = mutated["spec"]["config"][field]
            if isinstance(value, bool):
                mutated["spec"]["config"][field] = not value
            elif isinstance(value, (int, float)):
                mutated["spec"]["config"][field] = value + 1
            else:
                mutated["spec"]["config"][field] = f"{value}x"
            assert result_digest(mutated) != base, field


def test_serial_and_parallel_sweeps_agree_for_every_family():
    """The whole matrix through both sweep engines: cell-for-cell equality
    (including float bit patterns) between jobs=1 and jobs=2."""
    kwargs = dict(
        families=ALL_FAMILIES,
        budgets=[CONFORMANCE_BUDGET],
        benchmarks=["gcc", "eon"],
        instructions=20_000,
    )
    serial = accuracy_sweep(**kwargs, jobs=1)
    parallel = accuracy_sweep(**kwargs, jobs=2)
    assert serial == parallel
    assert [
        (cell.benchmark, cell.family, cell.budget_bytes) for cell in serial
    ] == [
        ("gcc", family, CONFORMANCE_BUDGET) for family in ALL_FAMILIES
    ] + [
        ("eon", family, CONFORMANCE_BUDGET) for family in ALL_FAMILIES
    ]


#: The scenario-diverse workload axis (interpreter-like, server-like,
#: adversarial period-mixing).  Pinned to the catalog's "scenario" kind so
#: a newly registered scenario profile auto-enrolls in these rows exactly
#: like a newly registered predictor family enrolls in the rows above.
def scenario_benchmarks() -> list[str]:
    from repro.workloads.catalog import workload_names

    return workload_names(kind="scenario")


def test_scenario_axis_is_registered():
    """The three shipped scenario profiles resolve through the catalog —
    and through ``get_profile``, which every harness consumer funnels
    through — without any harness edits."""
    from repro.workloads import get_profile

    names = scenario_benchmarks()
    assert names == ["interp", "server", "adversarial"]
    for name in names:
        assert get_profile(name).name == name


@pytest.mark.parametrize("workload", ["interp", "server", "adversarial"])
class TestScenarioProfileConformance:
    """Scenario-workload rows: every registered family must produce
    engine-identical counts on every scenario profile, exactly as it must
    on the SPEC stand-ins.  The family list is ``registry.family_names()``
    so future families auto-enroll; the benchmark list is the catalog's
    scenario kind so future profiles do too."""

    def test_all_families_scalar_equals_batch(self, workload):
        from repro.harness.experiment import measure_accuracy
        from repro.workloads import spec2000_trace

        trace = spec2000_trace(workload, instructions=20_000, seed=3)
        for family in ALL_FAMILIES:
            scalar = measure_accuracy(
                build_family(family, CONFORMANCE_BUDGET), trace, engine="scalar"
            )
            assert scalar.branches > 0, family
            if not registry.get_spec(family).batch_kernel:
                continue
            batch = measure_accuracy(
                build_family(family, CONFORMANCE_BUDGET), trace, engine="batch"
            )
            assert (scalar.branches, scalar.mispredictions) == (
                batch.branches,
                batch.mispredictions,
            ), family


def test_serial_and_parallel_sweeps_agree_on_scenario_profiles():
    """Serial/parallel byte-identity for the scenario axis across every
    registered family, mirroring the SPEC-benchmark check above."""
    benchmarks = scenario_benchmarks()
    kwargs = dict(
        families=ALL_FAMILIES,
        budgets=[CONFORMANCE_BUDGET],
        benchmarks=benchmarks,
        instructions=12_000,
    )
    serial = accuracy_sweep(**kwargs, jobs=1)
    parallel = accuracy_sweep(**kwargs, jobs=2)
    assert serial == parallel
    assert [(cell.benchmark, cell.family) for cell in serial] == [
        (benchmark, family) for benchmark in benchmarks for family in ALL_FAMILIES
    ]
