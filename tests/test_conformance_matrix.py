"""Cross-predictor conformance matrix.

Every predictor the factory can build (plus the pipelined ``repro.core``
families) must honour one shared contract, regardless of internal
organization:

* **protocol** — strict predict-then-update alternation, enforced with
  :class:`ProtocolError` on every violation;
* **determinism** — two instances fed the same trace agree exactly,
  branch for branch (the whole pipeline is a pure function of its seeds);
* **sizing** — the built predictor fits the requested hardware budget
  (with the 5% allowance the sizing layer grants for non-table state such
  as history registers and pipeline latches);
* **sweep equality** — the parallel sweep executor produces exactly the
  cells the serial path produces, for every family at once.
"""

from __future__ import annotations

import pytest

from repro.common.errors import ProtocolError
from repro.harness.sweep import accuracy_sweep, build_family
from repro.predictors.factory import predictor_families

#: Every constructible family: the factory's plus the pipelined core ones.
ALL_FAMILIES = predictor_families() + ["gshare_fast", "bimode_fast"]

CONFORMANCE_BUDGET = 8 * 1024


def branch_stream(trace, limit=1200):
    """The first ``limit`` (pc, taken) conditional branches of ``trace``."""
    stream = []
    for pc, taken in trace.conditional_branches():
        stream.append((pc, taken))
        if len(stream) >= limit:
            break
    return stream


@pytest.mark.parametrize("family", ALL_FAMILIES)
class TestPredictorContract:
    def test_predict_twice_raises(self, family):
        predictor = build_family(family, CONFORMANCE_BUDGET)
        predictor.predict(0x4000)
        with pytest.raises(ProtocolError):
            predictor.predict(0x4004)

    def test_update_without_predict_raises(self, family):
        predictor = build_family(family, CONFORMANCE_BUDGET)
        with pytest.raises(ProtocolError):
            predictor.update(0x4000, True)

    def test_update_wrong_pc_raises(self, family):
        predictor = build_family(family, CONFORMANCE_BUDGET)
        predictor.predict(0x4000)
        with pytest.raises(ProtocolError):
            predictor.update(0x4008, True)

    def test_predict_then_update_roundtrip(self, family):
        predictor = build_family(family, CONFORMANCE_BUDGET)
        prediction = predictor.predict(0x4000)
        assert isinstance(prediction, bool)
        correct = predictor.update(0x4000, prediction)
        assert correct is True
        assert predictor.stats.predictions == 1
        assert predictor.stats.mispredictions == 0

    def test_two_instances_agree_exactly(self, family, small_trace):
        """Seeded determinism: identical instances on an identical trace
        produce the identical per-branch prediction stream."""
        stream = branch_stream(small_trace)
        first = build_family(family, CONFORMANCE_BUDGET)
        second = build_family(family, CONFORMANCE_BUDGET)
        for pc, taken in stream:
            assert first.predict(pc) == second.predict(pc)
            assert first.update(pc, taken) == second.update(pc, taken)
        assert first.stats.predictions == second.stats.predictions == len(stream)
        assert first.stats.mispredictions == second.stats.mispredictions

    @pytest.mark.parametrize("budget", [4 * 1024, 64 * 1024])
    def test_sizing_within_budget(self, family, budget):
        predictor = build_family(family, budget)
        assert 0 < predictor.storage_bits
        # Same allowance as the sizing layer: tables fill the budget,
        # history registers / pipeline latches may add a few percent.
        assert predictor.storage_bytes <= budget * 1.05

    def test_sizing_monotonic(self, family):
        small = build_family(family, 4 * 1024).storage_bits
        large = build_family(family, 64 * 1024).storage_bits
        assert large > small


def test_serial_and_parallel_sweeps_agree_for_every_family():
    """The whole matrix through both sweep engines: cell-for-cell equality
    (including float bit patterns) between jobs=1 and jobs=2."""
    kwargs = dict(
        families=ALL_FAMILIES,
        budgets=[CONFORMANCE_BUDGET],
        benchmarks=["gcc", "eon"],
        instructions=20_000,
    )
    serial = accuracy_sweep(**kwargs, jobs=1)
    parallel = accuracy_sweep(**kwargs, jobs=2)
    assert serial == parallel
    assert [
        (cell.benchmark, cell.family, cell.budget_bytes) for cell in serial
    ] == [
        ("gcc", family, CONFORMANCE_BUDGET) for family in ALL_FAMILIES
    ] + [
        ("eon", family, CONFORMANCE_BUDGET) for family in ALL_FAMILIES
    ]
