"""Hypothesis fuzz of the overriding / dual-path timing wrappers.

Property-based counterpart to the example-based tests in
``test_overriding.py``: random branch streams and random latency
configurations must never produce negative penalty cycles, and the
quick/slow agreement accounting must always sum back to the total number
of predicted branches.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.common.errors import ConfigurationError
from repro.core.dualpath import DualPathPolicy
from repro.core.overriding import OverridingPredictor
from repro.obs.registry import MetricsRegistry
from repro.predictors.bimodal import BimodalPredictor
from repro.predictors.gshare import GsharePredictor
from repro.uarch.policies import DualPathFetchPolicy, OverridingPolicy

#: A random conditional-branch stream: a few distinct sites, arbitrary
#: outcome sequences — enough to exercise agreement and disagreement.
branch_streams = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=7).map(lambda i: 0x4000 + 4 * i),
        st.booleans(),
    ),
    min_size=0,
    max_size=120,
)

latencies = st.integers(min_value=1, max_value=10)


def make_overriding(slow_latency: int, quick_latency: int = 1) -> OverridingPredictor:
    # Tiny, differently-organized components so quick/slow genuinely
    # disagree on some fuzzed streams.
    return OverridingPredictor(
        slow=GsharePredictor(entries=64),
        slow_latency=slow_latency,
        quick=BimodalPredictor(entries=16),
        quick_latency=quick_latency,
    )


@given(stream=branch_streams, slow_latency=latencies)
@settings(max_examples=60, deadline=None)
def test_override_accounting_sums_to_total(stream, slow_latency):
    """agreements + disagreements == predictions, and the recorded penalty
    is exactly disagreements x slow latency — never negative."""
    overriding = make_overriding(slow_latency)
    policy = OverridingPolicy(overriding)
    expected_bubbles = 0
    for pc, taken in stream:
        prediction = policy.predict(pc)
        assert prediction.bubble_cycles >= 0
        assert prediction.half_width_cycles == 0
        assert prediction.bubble_cycles in (0, slow_latency)
        expected_bubbles += prediction.bubble_cycles
        policy.update(pc, taken)

    stats = overriding.stats
    assert stats.predictions == len(stream)
    assert 0 <= stats.overrides <= stats.predictions
    assert 0 <= stats.quick_mispredictions <= stats.predictions
    assert 0 <= stats.final_mispredictions <= stats.predictions

    registry = MetricsRegistry()
    overriding.record_stats(registry)
    counters = registry.snapshot()["counters"]
    if stats.predictions == 0:
        # Nothing happened: record_stats must not invent counters.
        assert counters == {}
        return
    assert counters["override.predictions"] == stats.predictions
    assert (
        counters["override.agreements"] + counters["override.disagreements"]
        == stats.predictions
    )
    assert counters["override.disagreements"] == stats.overrides
    assert counters["override.penalty_cycles"] == stats.overrides * slow_latency
    assert counters["override.penalty_cycles"] >= 0


@given(stream=branch_streams, slow_latency=latencies)
@settings(max_examples=40, deadline=None)
def test_override_record_stats_deltas_never_double_count(stream, slow_latency):
    """Flushing mid-stream and at the end must add up to one full flush."""
    overriding = make_overriding(slow_latency)
    registry = MetricsRegistry()
    for index, (pc, taken) in enumerate(stream):
        overriding.predict(pc)
        overriding.update(pc, taken)
        if index % 7 == 0:
            overriding.record_stats(registry)
    overriding.record_stats(registry)
    counters = registry.snapshot()["counters"]
    stats = overriding.stats
    if stats.predictions == 0:
        assert counters == {}
        return
    assert counters["override.predictions"] == stats.predictions
    assert counters["override.disagreements"] == stats.overrides
    assert counters["override.penalty_cycles"] == stats.overrides * slow_latency


@given(
    stream=branch_streams,
    slow_latency=latencies,
    quick_latency=st.integers(min_value=1, max_value=10),
)
@settings(max_examples=40, deadline=None)
def test_override_final_prediction_is_slow_components(
    stream, slow_latency, quick_latency
):
    """The overriding pair's final direction always equals what an identical
    standalone slow predictor would say (the slow component has the last
    word), for any legal latency pair."""
    if quick_latency > slow_latency:
        with pytest.raises(ConfigurationError):
            make_overriding(slow_latency, quick_latency)
        return
    overriding = make_overriding(slow_latency, quick_latency)
    reference = GsharePredictor(entries=64)
    for pc, taken in stream:
        outcome = overriding.predict(pc)
        assert outcome.final_taken == reference.predict(pc)
        assert outcome.overridden == (outcome.quick_taken != outcome.final_taken)
        overriding.update(pc, taken)
        reference.update(pc, taken)


@given(stream=branch_streams, latency=latencies)
@settings(max_examples=40, deadline=None)
def test_dualpath_windows_cover_every_branch(stream, latency):
    """Dual-path fetch: every branch opens exactly one half-width window of
    ``latency`` cycles, never a bubble, never a negative cost."""
    policy = DualPathFetchPolicy(
        DualPathPolicy(predictor=GsharePredictor(entries=64), latency=latency)
    )
    total_half_width = 0
    for pc, taken in stream:
        prediction = policy.predict(pc)
        assert prediction.bubble_cycles == 0
        assert prediction.half_width_cycles == latency >= 1
        total_half_width += prediction.half_width_cycles
        policy.update(pc, taken)
    assert total_half_width == len(stream) * latency


@given(latency=st.integers(min_value=-5, max_value=0))
def test_dualpath_rejects_nonpositive_latency(latency):
    with pytest.raises(ConfigurationError):
        DualPathPolicy(predictor=GsharePredictor(entries=64), latency=latency)


@given(latency=st.integers(min_value=-5, max_value=0))
def test_overriding_rejects_nonpositive_latency(latency):
    with pytest.raises(ConfigurationError):
        OverridingPredictor(slow=GsharePredictor(entries=64), slow_latency=latency)
