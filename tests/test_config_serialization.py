"""Config serialization round-trips rebuild bit-identical predictors.

Parallel workers and run manifests carry predictor configurations as plain
dicts (:meth:`SizingConfig.to_dict`).  For that transport to be safe the
round trip must be *exact*: ``from_dict(to_dict(cfg))`` equals ``cfg``, and
a predictor rebuilt from the round-tripped config must march in lockstep
with the original — same prediction stream, byte-identical tables after a
shared warm-up trace.  Every registered family is checked at several points
on the budget ladder.
"""

from __future__ import annotations

import json

import pytest

from repro.common.errors import ConfigurationError
from repro.predictors import registry
from repro.predictors.sizing import GshareConfig

ALL_FAMILIES = registry.family_names()

BUDGET_SAMPLE = [4 * 1024, 32 * 1024]


def table_digests(predictor) -> dict[str, bytes]:
    return {
        name: table.snapshot().tobytes() for name, table in predictor.tables().items()
    }


def warmup_stream(trace, limit=800):
    stream = []
    for pc, taken in trace.conditional_branches():
        stream.append((pc, taken))
        if len(stream) >= limit:
            break
    return stream


@pytest.mark.parametrize("family", ALL_FAMILIES)
@pytest.mark.parametrize("budget", BUDGET_SAMPLE)
class TestRoundTrip:
    def test_config_round_trips_exactly(self, family, budget):
        config = registry.size_config(family, budget)
        payload = config.to_dict()
        # The transport is JSON in practice (checkpoints, manifests).
        rebuilt = type(config).from_dict(json.loads(json.dumps(payload)))
        assert rebuilt == config

    def test_rebuilt_predictor_is_bit_identical(self, family, budget, small_trace):
        config = registry.size_config(family, budget)
        original = registry.build_from_config(family, config)
        rebuilt = registry.build_from_config(
            family, type(config).from_dict(config.to_dict())
        )
        for pc, taken in warmup_stream(small_trace):
            assert original.predict(pc) == rebuilt.predict(pc)
            original.update(pc, taken)
            rebuilt.update(pc, taken)
        assert table_digests(original) == table_digests(rebuilt)
        assert original.stats.mispredictions == rebuilt.stats.mispredictions


class TestValidation:
    def test_missing_field_rejected(self):
        payload = registry.size_config("gshare", 8 * 1024).to_dict()
        del payload["entries"]
        with pytest.raises(ConfigurationError, match="missing field"):
            GshareConfig.from_dict(payload)

    def test_unknown_field_rejected(self):
        payload = registry.size_config("gshare", 8 * 1024).to_dict()
        payload["banks"] = 4
        with pytest.raises(ConfigurationError, match="unknown field"):
            GshareConfig.from_dict(payload)

    def test_non_int_field_rejected(self):
        payload = registry.size_config("gshare", 8 * 1024).to_dict()
        payload["entries"] = "lots"
        with pytest.raises(ConfigurationError):
            GshareConfig.from_dict(payload)
