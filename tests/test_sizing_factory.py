"""Tests for budget sizing rules and the predictor factory."""

from __future__ import annotations

import pytest

from repro.common.errors import BudgetError, ConfigurationError
from repro.core.gshare_fast import build_gshare_fast
from repro.predictors import registry
from repro.predictors.factory import build_predictor, predictor_families
from repro.predictors.sizing import (
    GSHARE_MAX_HISTORY,
    floor_pow2,
    perceptron_history_length,
    size_2bcgskew,
    size_bimodal,
    size_bimode,
    size_bimode_fast,
    size_egskew,
    size_gshare,
    size_gshare_fast,
    size_loop,
    size_multicomponent,
    size_perceptron,
    size_tournament,
)

KIB = 1024
BUDGETS = [2 * KIB, 8 * KIB, 32 * KIB, 128 * KIB, 512 * KIB]
ALL_FAMILIES = registry.family_names()


class TestSizing:
    def test_floor_pow2(self):
        assert floor_pow2(1) == 1
        assert floor_pow2(1023) == 512
        assert floor_pow2(1024) == 1024
        with pytest.raises(BudgetError):
            floor_pow2(0)

    def test_gshare_fills_budget(self):
        config = size_gshare(64 * KIB)
        assert config.entries == 64 * KIB * 4
        assert config.history_length == GSHARE_MAX_HISTORY

    def test_gshare_small_budget_history(self):
        config = size_gshare(1 * KIB)
        assert config.history_length == min(12, GSHARE_MAX_HISTORY)

    def test_gshare_rejects_tiny_budget(self):
        with pytest.raises(BudgetError):
            size_gshare(4)

    def test_bimodal_fills_budget(self):
        config = size_bimodal(16 * KIB)
        # 4 two-bit counters per byte, power-of-two table.
        assert config.entries == 16 * KIB * 4

    def test_bimode_three_tables(self):
        config = size_bimode(48 * KIB)
        # 3 tables of 2-bit counters must fit in the budget.
        assert 3 * config.direction_entries * 2 <= 48 * KIB * 8

    def test_gskew_banks(self):
        config = size_2bcgskew(64 * KIB)
        assert 4 * config.bank_entries * 2 <= 64 * KIB * 8
        assert config.short_history < config.long_history

    def test_egskew_three_banks(self):
        config = size_egskew(12 * KIB)
        # Three equal banks of 2-bit counters fit the budget; history
        # matches the bank index width (the predictor's own default).
        assert 3 * config.bank_entries * 2 <= 12 * KIB * 8
        assert config.history_length == config.bank_entries.bit_length() - 1

    def test_tournament_ev6_proportions(self):
        config = size_tournament(32 * KIB)
        assert config.chooser_entries == config.global_entries
        assert config.local_histories == max(config.global_entries // 4, 64)
        assert config.local_pht_entries == config.local_histories
        # The EV6 local history is 10 bits regardless of budget.
        assert config.local_history_length == 10
        assert size_tournament(512 * KIB).local_history_length == 10

    def test_loop_fills_budget(self):
        config = size_loop(8 * KIB)
        # 31-bit entries; at least the 64-entry floor.
        assert config.entries * 31 <= 8 * KIB * 8
        assert config.confidence_threshold == 2
        # Tiny budgets clamp to the 64-entry floor.
        assert size_loop(100).entries == 64

    def test_gshare_fast_shares_gshare_pht(self):
        config = size_gshare_fast(64 * KIB, update_delay=8)
        assert config.entries == size_gshare(64 * KIB).entries
        assert config.update_delay == 8
        assert size_gshare_fast(64 * KIB).update_delay == 0

    def test_bimode_fast_choice_capped(self):
        config = size_bimode_fast(64 * KIB)
        assert config.choice_entries == 1024
        # Direction tables split what the choice table leaves.
        choice_bytes = 1024 * 2 // 8
        assert 2 * config.direction_entries * 2 <= (64 * KIB - choice_bytes) * 8

    def test_perceptron_history_table(self):
        assert perceptron_history_length(16 * KIB) == 36
        assert perceptron_history_length(64 * KIB) == 59
        # off-grid budgets interpolate between neighbours
        assert 36 <= perceptron_history_length(24 * KIB) <= 59

    def test_perceptron_budget_respected(self):
        config = size_perceptron(32 * KIB)
        history = config.global_history + config.local_history
        weight_bytes = config.num_perceptrons * (history + 1)
        local_bytes = (config.local_history_entries * config.local_history + 7) // 8
        assert weight_bytes + local_bytes <= 32 * KIB

    def test_multicomponent_history_caps(self):
        config = size_multicomponent(512 * KIB)
        assert config.gshare_long_history <= GSHARE_MAX_HISTORY


class TestFactory:
    def test_families_list(self):
        families = registry.family_names()
        for expected in ("gshare", "bimode", "2bcgskew", "perceptron", "multicomponent"):
            assert expected in families

    def test_deprecated_families_shim(self):
        """predictor_families() warns, and now reports the *full* registry
        list — historically it omitted the repro.core families."""
        with pytest.warns(DeprecationWarning):
            families = predictor_families()
        assert families == registry.family_names()
        assert "gshare_fast" in families
        assert "bimode_fast" in families

    def test_unknown_family(self):
        with pytest.raises(ConfigurationError):
            build_predictor("tage", 64 * KIB)

    @pytest.mark.parametrize("family", ALL_FAMILIES)
    @pytest.mark.parametrize("budget", BUDGETS)
    def test_storage_within_budget(self, family, budget):
        """Every built predictor must fit its hardware budget (allowing a
        small overhead for history registers and selector counters)."""
        predictor = build_predictor(family, budget)
        assert predictor.storage_bytes <= budget * 1.05

    @pytest.mark.parametrize("family", ALL_FAMILIES)
    def test_storage_grows_with_budget(self, family):
        small = build_predictor(family, 8 * KIB).storage_bits
        large = build_predictor(family, 128 * KIB).storage_bits
        assert large > small

    @pytest.mark.parametrize("budget", BUDGETS)
    def test_gshare_fast_budget(self, budget):
        predictor = build_gshare_fast(budget)
        assert predictor.storage_bytes <= budget * 1.05
        assert predictor.pht_latency >= 1

    @pytest.mark.parametrize("family", ALL_FAMILIES)
    def test_built_predictors_run(self, family):
        predictor = build_predictor(family, 16 * KIB)
        for i in range(32):
            pc = 0x1000 + (i % 4) * 4
            predictor.predict(pc)
            predictor.update(pc, i % 3 != 0)
        assert predictor.stats.predictions == 32
