"""Tests for budget sizing rules and the predictor factory."""

from __future__ import annotations

import pytest

from repro.common.errors import BudgetError, ConfigurationError
from repro.core.gshare_fast import build_gshare_fast
from repro.predictors.factory import build_predictor, predictor_families
from repro.predictors.sizing import (
    GSHARE_MAX_HISTORY,
    floor_pow2,
    perceptron_history_length,
    size_2bcgskew,
    size_bimode,
    size_gshare,
    size_multicomponent,
    size_perceptron,
)

KIB = 1024
BUDGETS = [2 * KIB, 8 * KIB, 32 * KIB, 128 * KIB, 512 * KIB]


class TestSizing:
    def test_floor_pow2(self):
        assert floor_pow2(1) == 1
        assert floor_pow2(1023) == 512
        assert floor_pow2(1024) == 1024
        with pytest.raises(BudgetError):
            floor_pow2(0)

    def test_gshare_fills_budget(self):
        config = size_gshare(64 * KIB)
        assert config.entries == 64 * KIB * 4
        assert config.history_length == GSHARE_MAX_HISTORY

    def test_gshare_small_budget_history(self):
        config = size_gshare(1 * KIB)
        assert config.history_length == min(12, GSHARE_MAX_HISTORY)

    def test_gshare_rejects_tiny_budget(self):
        with pytest.raises(BudgetError):
            size_gshare(4)

    def test_bimode_three_tables(self):
        config = size_bimode(48 * KIB)
        # 3 tables of 2-bit counters must fit in the budget.
        assert 3 * config.direction_entries * 2 <= 48 * KIB * 8

    def test_gskew_banks(self):
        config = size_2bcgskew(64 * KIB)
        assert 4 * config.bank_entries * 2 <= 64 * KIB * 8
        assert config.short_history < config.long_history

    def test_perceptron_history_table(self):
        assert perceptron_history_length(16 * KIB) == 36
        assert perceptron_history_length(64 * KIB) == 59
        # off-grid budgets interpolate between neighbours
        assert 36 <= perceptron_history_length(24 * KIB) <= 59

    def test_perceptron_budget_respected(self):
        config = size_perceptron(32 * KIB)
        history = config.global_history + config.local_history
        weight_bytes = config.num_perceptrons * (history + 1)
        local_bytes = (config.local_history_entries * config.local_history + 7) // 8
        assert weight_bytes + local_bytes <= 32 * KIB

    def test_multicomponent_history_caps(self):
        config = size_multicomponent(512 * KIB)
        assert config.gshare_long_history <= GSHARE_MAX_HISTORY


class TestFactory:
    def test_families_list(self):
        families = predictor_families()
        for expected in ("gshare", "bimode", "2bcgskew", "perceptron", "multicomponent"):
            assert expected in families

    def test_unknown_family(self):
        with pytest.raises(ConfigurationError):
            build_predictor("tage", 64 * KIB)

    @pytest.mark.parametrize("family", predictor_families())
    @pytest.mark.parametrize("budget", BUDGETS)
    def test_storage_within_budget(self, family, budget):
        """Every built predictor must fit its hardware budget (allowing a
        small overhead for history registers and selector counters)."""
        predictor = build_predictor(family, budget)
        assert predictor.storage_bytes <= budget * 1.05

    @pytest.mark.parametrize("family", predictor_families())
    def test_storage_grows_with_budget(self, family):
        small = build_predictor(family, 8 * KIB).storage_bits
        large = build_predictor(family, 128 * KIB).storage_bits
        assert large > small

    @pytest.mark.parametrize("budget", BUDGETS)
    def test_gshare_fast_budget(self, budget):
        predictor = build_gshare_fast(budget)
        assert predictor.storage_bytes <= budget * 1.05
        assert predictor.pht_latency >= 1

    @pytest.mark.parametrize("family", predictor_families())
    def test_built_predictors_run(self, family):
        predictor = build_predictor(family, 16 * KIB)
        for i in range(32):
            pc = 0x1000 + (i % 4) * 4
            predictor.predict(pc)
            predictor.update(pc, i % 3 != 0)
        assert predictor.stats.predictions == 32
