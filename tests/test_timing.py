"""Tests for the FO4 clock, SRAM delay model and Table 2 latencies."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import ConfigurationError
from repro.timing.fo4 import PAPER_CLOCK, ClockModel
from repro.timing.latency import (
    QUICK_PREDICTOR_CYCLES,
    QUICK_PREDICTOR_ENTRIES,
    gshare_pht_latency,
    gskew_latency,
    multicomponent_latency,
    perceptron_latency,
    predictor_latency,
    table2,
)
from repro.timing.sram import SramArray, pht_array, table_access_cycles


class TestClock:
    def test_paper_clock_frequency(self):
        # 8 FO4 at 100nm should land near the paper's 3.5 GHz.
        assert 3.0 <= PAPER_CLOCK.frequency_ghz <= 4.0

    def test_cycles_for_fo4(self):
        assert PAPER_CLOCK.cycles_for_fo4(0.0) == 1
        assert PAPER_CLOCK.cycles_for_fo4(8.0) == 1
        assert PAPER_CLOCK.cycles_for_fo4(8.1) == 2

    def test_rejects_bad_params(self):
        with pytest.raises(ConfigurationError):
            ClockModel(period_fo4=0)
        with pytest.raises(ConfigurationError):
            PAPER_CLOCK.cycles_for_fo4(-1)


class TestSram:
    def test_single_cycle_limit_is_1k_entries(self):
        """The paper's anchor (Jiménez et al. [7]): the largest PHT
        accessible in one 8 FO4 cycle has 1K entries."""
        assert table_access_cycles(1024) == 1
        assert table_access_cycles(2048) == 2

    def test_monotone_in_entries(self):
        cycles = [table_access_cycles(1 << k) for k in range(10, 22)]
        assert cycles == sorted(cycles)

    def test_table2_anchor_512k(self):
        assert table_access_cycles(512 * 1024) == 11

    def test_width_capped_for_wide_arrays(self):
        narrow = SramArray(rows=4096, bits_per_row=2).access_delay_fo4()
        wide = SramArray(rows=4096, bits_per_row=512).access_delay_fo4()
        very_wide = SramArray(rows=4096, bits_per_row=2048).access_delay_fo4()
        assert narrow < wide
        assert wide == very_wide  # column banking caps width cost

    def test_rejects_bad_arrays(self):
        with pytest.raises(ConfigurationError):
            SramArray(rows=0, bits_per_row=2)
        with pytest.raises(ConfigurationError):
            pht_array(4)

    @given(st.integers(min_value=3, max_value=21))
    def test_delay_positive(self, log_entries):
        assert pht_array(1 << log_entries).access_delay_fo4() > 0


class TestLatencies:
    def test_table2_shape(self):
        rows = table2()
        assert len(rows) == 6
        mc = [row.multicomponent_cycles for row in rows]
        gskew = [row.gskew_cycles for row in rows]
        perc = [row.perceptron_cycles for row in rows]
        assert mc == sorted(mc) and gskew == sorted(gskew) and perc == sorted(perc)
        # Paper anchors: small budgets ~2-3 cycles, 512KB-class ~9-11.
        assert 2 <= mc[0] <= 3
        assert 9 <= gskew[-1] <= 12
        assert 7 <= perc[-1] <= 10

    def test_gshare_fast_delivered_latency_is_one(self):
        assert predictor_latency("gshare_fast", 512 * 1024) == 1

    def test_internal_pht_latency_grows(self):
        assert gshare_pht_latency(16 * 1024) < gshare_pht_latency(512 * 1024)

    def test_perceptron_pays_compute_cycle(self):
        # At equal budget the perceptron adds a cycle of dot-product logic
        # on top of a table access of similar capacity.
        assert perceptron_latency(16 * 1024) >= 2

    def test_family_dispatch(self):
        for family in ("gshare", "bimodal", "bimode", "2bcgskew", "multicomponent", "perceptron"):
            assert predictor_latency(family, 64 * 1024) >= 1
        with pytest.raises(ConfigurationError):
            predictor_latency("unknown", 64 * 1024)

    def test_quick_predictor_constants(self):
        assert QUICK_PREDICTOR_ENTRIES == 2048
        assert QUICK_PREDICTOR_CYCLES == 1

    def test_multicomponent_latency_monotone(self):
        values = [multicomponent_latency(kb * 1024) for kb in (18, 36, 72, 143, 286, 572)]
        assert values == sorted(values)

    def test_gskew_latency_monotone(self):
        values = [gskew_latency(kb * 1024) for kb in (16, 32, 64, 128, 256, 512)]
        assert values == sorted(values)
