"""Unit and property tests for CounterTable."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.counters import CounterTable
from repro.common.errors import ConfigurationError


class TestConstruction:
    def test_default_init_weakly_not_taken(self):
        table = CounterTable(16, bits=2)
        assert table.value(0) == 1
        assert not table.predict(0)

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ConfigurationError):
            CounterTable(12)

    def test_rejects_bad_width(self):
        with pytest.raises(ConfigurationError):
            CounterTable(16, bits=0)
        with pytest.raises(ConfigurationError):
            CounterTable(16, bits=9)

    def test_rejects_bad_init(self):
        with pytest.raises(ConfigurationError):
            CounterTable(16, bits=2, init=4)

    def test_storage_bits(self):
        assert CounterTable(1024, bits=2).storage_bits == 2048
        assert CounterTable(256, bits=3).storage_bits == 768


class TestSaturation:
    def test_increments_saturate(self):
        table = CounterTable(4, bits=2)
        for _ in range(10):
            table.update(0, True)
        assert table.value(0) == 3

    def test_decrements_saturate(self):
        table = CounterTable(4, bits=2)
        for _ in range(10):
            table.update(0, False)
        assert table.value(0) == 0

    def test_single_taken_flips_weak_entry(self):
        table = CounterTable(4, bits=2)
        table.update(0, True)
        assert table.predict(0)

    def test_hysteresis(self):
        # A strongly-taken counter survives one not-taken outcome.
        table = CounterTable(4, bits=2, init=3)
        table.update(0, False)
        assert table.predict(0)
        table.update(0, False)
        assert not table.predict(0)


class TestConfidence:
    def test_confidence_extremes(self):
        table = CounterTable(4, bits=2, init=0)
        assert table.confidence(0) == 1
        table.set_value(0, 3)
        assert table.confidence(0) == 1
        table.set_value(0, 1)
        assert table.confidence(0) == 0
        table.set_value(0, 2)
        assert table.confidence(0) == 0

    @given(st.integers(min_value=0, max_value=7))
    def test_confidence_3bit(self, value):
        table = CounterTable(4, bits=3)
        table.set_value(0, value)
        assert 0 <= table.confidence(0) <= 3


class TestLines:
    def test_read_line_contents(self):
        table = CounterTable(16, bits=2)
        table.set_value(8, 3)
        line = table.read_line(1, 8)
        assert list(line) == [1, 1, 1, 1, 1, 1, 1, 1][:8] or line[0] == 3

    def test_read_line_is_copy(self):
        table = CounterTable(16, bits=2)
        line = table.read_line(0, 8)
        line[0] = 3
        assert table.value(0) == 1

    def test_read_line_bounds(self):
        table = CounterTable(16, bits=2)
        with pytest.raises(ConfigurationError):
            table.read_line(2, 8)
        with pytest.raises(ConfigurationError):
            table.read_line(0, 12)


class TestSnapshot:
    def test_roundtrip(self):
        table = CounterTable(8, bits=2)
        table.update(3, True)
        snap = table.snapshot()
        table.update(3, True)
        table.restore(snap)
        assert table.value(3) == 2

    def test_shape_mismatch(self):
        table = CounterTable(8, bits=2)
        with pytest.raises(ConfigurationError):
            table.restore(np.zeros(4, dtype=np.int16))


@given(st.lists(st.booleans(), min_size=1, max_size=200))
def test_counter_tracks_majority_of_constant_stream(outcomes):
    """Property: after any update sequence the counter stays in range, and
    a long constant suffix forces the matching prediction."""
    table = CounterTable(4, bits=2)
    for taken in outcomes:
        table.update(0, taken)
        assert 0 <= table.value(0) <= 3
    for _ in range(2):
        table.update(0, True)
    assert table.predict(0)
