"""Unit tests for the fetch-policy layer."""

from __future__ import annotations

from repro.core.cascading import CascadingPredictor
from repro.core.dualpath import DualPathPolicy
from repro.core.overriding import OverridingPredictor
from repro.predictors.bimodal import BimodalPredictor
from repro.predictors.gshare import GsharePredictor
from repro.uarch.policies import (
    CascadingFetchPolicy,
    DualPathFetchPolicy,
    OverridingPolicy,
    PolicyPrediction,
    SingleCyclePolicy,
)
from tests.conftest import alternating_stream


class TestSingleCyclePolicy:
    def test_no_bubbles_ever(self):
        policy = SingleCyclePolicy(GsharePredictor(1024))
        for pc, taken in alternating_stream(100):
            prediction = policy.predict(pc)
            assert prediction.bubble_cycles == 0
            assert prediction.half_width_cycles == 0
            policy.update(pc, taken)

    def test_name_identifies_component(self):
        assert "gshare" in SingleCyclePolicy(GsharePredictor(1024)).name


class TestOverridingPolicy:
    def test_bubble_only_on_disagreement(self):
        overriding = OverridingPredictor(
            GsharePredictor(4096), slow_latency=5, quick=BimodalPredictor(256)
        )
        policy = OverridingPolicy(overriding)
        bubbles = 0
        for pc, taken in alternating_stream(300):
            prediction = policy.predict(pc)
            assert prediction.bubble_cycles in (0, 5)
            bubbles += prediction.bubble_cycles
            policy.update(pc, taken)
        # gshare learns TNTN, bimodal cannot: disagreements must occur.
        assert bubbles > 0
        assert policy.override_bubbles == bubbles


class TestDualPathPolicy:
    def test_half_width_window_reported(self):
        policy = DualPathFetchPolicy(DualPathPolicy(GsharePredictor(1024), latency=6))
        prediction = policy.predict(0x1000)
        assert prediction.half_width_cycles == 6
        assert prediction.bubble_cycles == 0
        policy.update(0x1000, True)


class TestCascadingPolicy:
    def test_gap_consumed_per_prediction(self):
        cascading = CascadingPredictor(
            GsharePredictor(4096), slow_latency=4, quick=BimodalPredictor(256)
        )
        policy = CascadingFetchPolicy(cascading)
        policy.note_gap(10)
        policy.predict(0x1000)
        policy.update(0x1000, True)
        assert cascading.stats.slow_used == 1
        # Without a fresh gap report the next branch uses the quick path.
        policy.predict(0x1004)
        policy.update(0x1004, True)
        assert cascading.stats.slow_used == 1

    def test_negative_gap_clamped(self):
        cascading = CascadingPredictor(GsharePredictor(1024), slow_latency=4)
        policy = CascadingFetchPolicy(cascading)
        policy.note_gap(-5)
        policy.predict(0x1000)
        policy.update(0x1000, True)
        assert cascading.stats.slow_used == 0


class TestPolicyPrediction:
    def test_defaults(self):
        prediction = PolicyPrediction(taken=True)
        assert prediction.bubble_cycles == 0
        assert prediction.half_width_cycles == 0
