"""The campaign orchestrator: classification, queue/claim/steal, workers.

Heavier multi-process drills (two concurrent worker processes, crash +
steal under real subprocess kill) live in ``scripts/campaign_check.py``;
here everything runs in-process on tiny grids so the full classify ->
plan -> execute -> merge loop stays fast enough for tier-1.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import asdict

import pytest

from repro.common.atomic import exclusive_create_json
from repro.common.errors import ConfigurationError
from repro.harness import campaign
from repro.harness.campaign import (
    ACTIONS,
    CLASSES,
    CampaignError,
    CampaignLayout,
    CellStatus,
    WorkQueue,
    class_counts,
    classify_shard,
    create_campaign,
    load_campaign,
    merge,
    normalize_statuses,
    plan,
    run_worker,
    scan,
)
from repro.harness.parallel import (
    CheckpointStore,
    Shard,
    ShardOutcome,
    _shard_result_key,
    accuracy_shard_grid,
    drain_run_reports,
)
from repro.harness.sweep import accuracy_sweep

FAMILIES = ["gshare", "bimodal"]
BUDGETS = [2 * 1024]
BENCHMARKS = ["gcc", "eon"]
INSTRUCTIONS = 20_000
CFG = {
    "accuracy": {
        "instructions": INSTRUCTIONS,
        "engine": None,
        "warmup_fraction": 0.2,
    }
}


def grid() -> list[Shard]:
    return accuracy_shard_grid(FAMILIES, BUDGETS, BENCHMARKS)


def make_campaign(run_dir) -> list[Shard]:
    shards = grid()
    create_campaign(str(run_dir), shards, CFG, label="test")
    return shards


def write_checkpoint(run_dir, shard: Shard, payload=None) -> None:
    CheckpointStore(str(run_dir)).store(
        ShardOutcome(
            shard=shard,
            payload=payload or {"misprediction_percent": 1.0},
            duration_seconds=0.0,
            worker_pid=os.getpid(),
        )
    )


@pytest.fixture(autouse=True)
def _fresh_reports():
    drain_run_reports()
    yield
    drain_run_reports()


# -- configuration knobs -------------------------------------------------------


class TestKnobs:
    def test_stale_and_poll_defaults(self, monkeypatch):
        monkeypatch.delenv("REPRO_CAMPAIGN_STALE_SECONDS", raising=False)
        monkeypatch.delenv("REPRO_CAMPAIGN_POLL_SECONDS", raising=False)
        assert campaign.stale_seconds_default() == campaign.DEFAULT_STALE_SECONDS
        assert campaign.poll_seconds_default() == campaign.DEFAULT_POLL_SECONDS

    def test_env_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_CAMPAIGN_STALE_SECONDS", "5")
        monkeypatch.setenv("REPRO_CAMPAIGN_POLL_SECONDS", "0")
        assert campaign.stale_seconds_default() == 5.0
        assert campaign.poll_seconds_default() == 0.0

    @pytest.mark.parametrize("raw", ["soon", "0", "-1"])
    def test_stale_rejects_garbage(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_CAMPAIGN_STALE_SECONDS", raw)
        with pytest.raises(ConfigurationError):
            campaign.stale_seconds_default()

    def test_statuses_normalize_aliases_and_dedupe(self):
        assert normalize_statuses("failed,partial") == ["failed", "partial"]
        assert normalize_statuses("results, results-missing") == ["results_missing"]
        assert normalize_statuses(["Missing"]) == ["missing"]

    @pytest.mark.parametrize("raw", ["", "bogus", "failed,bogus"])
    def test_statuses_reject_garbage(self, raw):
        with pytest.raises(ConfigurationError):
            normalize_statuses(raw)

    def test_every_class_has_an_action(self):
        assert set(ACTIONS) == set(CLASSES)
        assert ACTIONS["completed"] == "skip"
        assert ACTIONS["results_missing"] == "regenerate"


# -- campaign spec -------------------------------------------------------------


class TestCampaignSpec:
    def test_create_is_idempotent(self, tmp_path):
        shards = make_campaign(tmp_path)
        again = create_campaign(str(tmp_path), shards, CFG, label="test")
        assert again["shards"] == [asdict(s) for s in shards]
        assert load_campaign(str(tmp_path))["cfg"] == CFG

    def test_create_refuses_different_grid(self, tmp_path):
        make_campaign(tmp_path)
        other = accuracy_shard_grid(["gshare"], BUDGETS, BENCHMARKS)
        with pytest.raises(ConfigurationError, match="different campaign"):
            create_campaign(str(tmp_path), other, CFG)

    def test_load_requires_campaign(self, tmp_path):
        with pytest.raises(CampaignError, match="campaign.json"):
            load_campaign(str(tmp_path))

    def test_load_refuses_wrong_schema(self, tmp_path):
        (tmp_path / "campaign.json").write_text(
            json.dumps({"schema": -1, "shards": [], "cfg": {}})
        )
        with pytest.raises(CampaignError, match="schema"):
            load_campaign(str(tmp_path))


# -- classification ------------------------------------------------------------


class TestClassification:
    def test_synthetically_damaged_dir_hits_all_five_classes(
        self, tmp_path, monkeypatch
    ):
        """One shard per class, manufactured by hand, classified in one
        scan — the acceptance drill for the five-class table."""
        monkeypatch.setenv("REPRO_RESULT_STORE", str(tmp_path / "store"))
        from repro.harness.resultstore import active_result_store

        shards = accuracy_shard_grid(
            ["gshare", "bimodal"], [1024, 2048], ["gcc", "eon"]
        )[:5]
        create_campaign(str(tmp_path), shards, CFG, label="damaged")
        done, torn, failed, claimed, stored = shards

        write_checkpoint(tmp_path, done)  # -> completed
        (tmp_path / "shards" / f"{torn.key}.json").write_text('{"sch')  # -> partial
        (tmp_path / "shards" / f"{failed.key}.failed.json").write_text(
            json.dumps({"schema": campaign.CAMPAIGN_SCHEMA})
        )  # -> failed
        (tmp_path / "claims").mkdir(exist_ok=True)
        (tmp_path / "claims" / f"{claimed.key}.json").write_text(
            json.dumps({"owner": "dead-worker", "ts": 0.0})
        )  # claim, no checkpoint -> partial
        key, cell = _shard_result_key(stored, CFG["accuracy"])
        active_result_store().save(
            key, cell, {"misprediction_percent": 2.0}
        )  # store hit, no checkpoint -> results_missing
        # The fifth class is the absence of evidence: nothing for `missing`.

        cells = scan(str(tmp_path))
        by_key = {c.shard.key: c.status for c in cells}
        assert by_key[done.key] == "completed"
        assert by_key[torn.key] == "partial"
        assert by_key[failed.key] == "failed"
        assert by_key[claimed.key] == "partial"
        assert by_key[stored.key] == "results_missing"
        assert class_counts(cells) == {
            "completed": 1,
            "results_missing": 1,
            "failed": 1,
            "partial": 2,
            "missing": 0,
        }

    def test_missing_without_store_or_evidence(self, tmp_path):
        make_campaign(tmp_path)
        cells = scan(str(tmp_path))
        assert {c.status for c in cells} == {"missing"}

    def test_valid_checkpoint_beats_every_other_evidence(self, tmp_path):
        """Precedence: a valid checkpoint wins even over a failure marker
        and a live claim (both are leftovers of an already-finished cell)."""
        shards = make_campaign(tmp_path)
        layout = CampaignLayout(str(tmp_path))
        shard = shards[0]
        write_checkpoint(tmp_path, shard)
        (tmp_path / "shards" / f"{shard.key}.failed.json").write_text("{}")
        (tmp_path / "claims" / f"{shard.key}.json").write_text("{}")
        assert classify_shard(shard, layout=layout) == "completed"

    def test_storeless_classification_collapses_to_two_classes(self):
        shard = grid()[0]
        assert classify_shard(shard, layout=None) == "missing"

    def test_cellstatus_maps_class_to_action(self):
        cell = CellStatus(grid()[0], "results_missing")
        assert cell.action == "regenerate"


# -- queue / claims ------------------------------------------------------------


class TestWorkQueue:
    @pytest.fixture
    def queue(self, tmp_path):
        return WorkQueue(CampaignLayout(str(tmp_path)).ensure())

    def test_enqueue_entry_dequeue_roundtrip(self, queue):
        shard = grid()[0]
        queue.enqueue(shard, "execute")
        entry = queue.entry(shard.key)
        assert entry["action"] == "execute" and entry["attempts"] == 0
        assert queue.keys() == [shard.key]
        queue.dequeue(shard.key)
        assert queue.entry(shard.key) is None and queue.keys() == []

    def test_keys_sorted_and_staging_excluded(self, queue, tmp_path):
        for shard in grid():
            queue.enqueue(shard, "execute")
        (tmp_path / "queue" / "zzz.json.tmp.99").write_text("{")
        keys = queue.keys()
        assert keys == sorted(keys) and len(keys) == 4

    def test_claim_is_exclusive(self, queue):
        assert queue.try_claim("cell", "w1", stale_seconds=600) == "claimed"
        assert queue.try_claim("cell", "w2", stale_seconds=600) is None
        queue.release("cell")
        assert queue.try_claim("cell", "w2", stale_seconds=600) == "claimed"

    def test_stale_claim_is_stolen(self, queue, tmp_path):
        path = tmp_path / "claims" / "cell.json"
        path.write_text(json.dumps({"owner": "dead", "ts": time.time() - 3600}))
        assert queue.try_claim("cell", "w2", stale_seconds=600) == "stolen"
        assert json.loads(path.read_text())["owner"] == "w2"

    def test_fresh_unreadable_claim_is_not_stolen(self, queue, tmp_path):
        """A claim file that does not parse but is *young* must be treated
        as live (its mtime bounds the writer's age) — stealing it would
        re-open the duplicate-execution race the link-create closes."""
        path = tmp_path / "claims" / "cell.json"
        path.write_text("")  # unreadable, mtime = now
        assert queue.try_claim("cell", "w2", stale_seconds=600) is None
        old = time.time() - 3600
        os.utime(path, (old, old))
        assert queue.try_claim("cell", "w2", stale_seconds=600) == "stolen"

    def test_exclusive_create_publishes_complete_content(self, tmp_path):
        path = tmp_path / "claim.json"
        assert exclusive_create_json(path, {"owner": "w1"}) is True
        assert exclusive_create_json(path, {"owner": "w2"}) is False
        assert json.loads(path.read_text())["owner"] == "w1"
        # No staging droppings left beside the published claim.
        assert [p.name for p in tmp_path.iterdir()] == ["claim.json"]


# -- planner -------------------------------------------------------------------


class TestPlanner:
    def test_plan_enqueues_actionable_and_skips_completed(self, tmp_path):
        shards = make_campaign(tmp_path)
        write_checkpoint(tmp_path, shards[0])
        planned = plan(str(tmp_path))
        assert planned == {"execute": 3, "regenerate": 0, "skip": 1}
        queue = WorkQueue(CampaignLayout(str(tmp_path)))
        assert len(queue.keys()) == 3
        assert shards[0].key not in queue.keys()

    def test_plan_clears_failure_markers_and_torn_checkpoints(self, tmp_path):
        shards = make_campaign(tmp_path)
        torn, failed = shards[0], shards[1]
        torn_path = tmp_path / "shards" / f"{torn.key}.json"
        torn_path.write_text('{"sch')
        (tmp_path / "shards" / f"{torn.key}.json.tmp.77").write_text("{")
        marker = tmp_path / "shards" / f"{failed.key}.failed.json"
        marker.write_text("{}")
        plan(str(tmp_path))
        assert not torn_path.exists() and not marker.exists()
        assert not list((tmp_path / "shards").glob("*.tmp.*"))

    def test_plan_status_filter_restricts_requeue(self, tmp_path):
        shards = make_campaign(tmp_path)
        (tmp_path / "shards").mkdir(exist_ok=True)
        (tmp_path / "shards" / f"{shards[0].key}.failed.json").write_text("{}")
        planned = plan(str(tmp_path), statuses=["failed"])
        assert planned == {"execute": 1, "regenerate": 0, "skip": 0}
        queue = WorkQueue(CampaignLayout(str(tmp_path)))
        assert queue.keys() == [shards[0].key]

    def test_plan_never_touches_live_claims(self, tmp_path):
        shards = make_campaign(tmp_path)
        claim = tmp_path / "claims" / f"{shards[0].key}.json"
        claim.parent.mkdir(exist_ok=True)
        claim.write_text(json.dumps({"owner": "live", "ts": time.time()}))
        plan(str(tmp_path))
        assert json.loads(claim.read_text())["owner"] == "live"


# -- worker / merge ------------------------------------------------------------


class TestWorkerAndMerge:
    def test_full_campaign_matches_serial_sweep(self, tmp_path):
        """create -> plan -> run_worker -> merge, byte-identical to the
        serial path and re-runnable as a pure no-op."""
        make_campaign(tmp_path)
        assert plan(str(tmp_path))["execute"] == 4
        counters = run_worker(str(tmp_path), owner="solo")
        assert counters["cells_executed"] == 4
        assert counters["failures"] == 0 and counters["steals"] == 0
        merged = merge(str(tmp_path))
        reference = accuracy_sweep(
            FAMILIES, BUDGETS, benchmarks=BENCHMARKS, instructions=INSTRUCTIONS
        )
        assert [row["payload"]["misprediction_percent"] for row in merged["rows"]] == [
            cell.misprediction_percent for cell in reference
        ]
        # A rescan classifies everything completed; replanning queues nothing.
        assert class_counts(scan(str(tmp_path)))["completed"] == 4
        assert plan(str(tmp_path)) == {"execute": 0, "regenerate": 0, "skip": 4}
        assert run_worker(str(tmp_path), owner="again")["cells_executed"] == 0

    def test_merge_refuses_incomplete_campaign(self, tmp_path):
        shards = make_campaign(tmp_path)
        write_checkpoint(tmp_path, shards[0])
        with pytest.raises(CampaignError, match="not complete"):
            merge(str(tmp_path))

    def test_regenerate_assembles_from_result_store(self, tmp_path, monkeypatch):
        """results_missing cells cost zero predictor work: the worker
        assembles checkpoints straight from the store."""
        monkeypatch.setenv("REPRO_RESULT_STORE", str(tmp_path / "store"))
        from repro.harness.resultstore import active_result_store
        from repro.predictors import registry

        shards = make_campaign(tmp_path / "run")
        store = active_result_store()
        for shard in shards:
            key, cell = _shard_result_key(shard, CFG["accuracy"])
            store.save(key, cell, {"misprediction_percent": 7.5})
        cells = scan(str(tmp_path / "run"))
        assert {c.status for c in cells} == {"results_missing"}
        assert plan(str(tmp_path / "run"), cells=cells)["regenerate"] == 4
        registry.reset_build_count()
        counters = run_worker(str(tmp_path / "run"), owner="assembler")
        assert counters["cells_regenerated"] == 4
        assert counters["cells_executed"] == 0
        assert registry.build_count() == 0  # no predictor was ever built
        merged = merge(str(tmp_path / "run"))
        assert all(
            row["payload"] == {"misprediction_percent": 7.5} for row in merged["rows"]
        )

    def test_failure_exhausts_retries_into_failed_class(self, tmp_path, monkeypatch):
        """A cell that keeps failing is requeued with budget, then marked
        failed; `rerun --status failed` clears the marker and reconverges."""
        monkeypatch.setenv("REPRO_PARALLEL_FAIL_SHARD", "gcc__gshare")
        monkeypatch.setenv("REPRO_PARALLEL_FAIL_ATTEMPTS", "99")
        make_campaign(tmp_path)
        plan(str(tmp_path))
        counters = run_worker(str(tmp_path), owner="w1", max_retries=1)
        assert counters["failures"] == 2  # initial attempt + one retry
        assert counters["requeues"] == 1
        assert counters["cells_executed"] == 3
        cells = scan(str(tmp_path))
        counts = class_counts(cells)
        assert counts["failed"] == 1 and counts["completed"] == 3
        with pytest.raises(CampaignError):
            merge(str(tmp_path))

        monkeypatch.delenv("REPRO_PARALLEL_FAIL_SHARD")
        monkeypatch.delenv("REPRO_PARALLEL_FAIL_ATTEMPTS")
        planned = plan(str(tmp_path), statuses=normalize_statuses("failed,partial"))
        assert planned["execute"] == 1
        assert run_worker(str(tmp_path), owner="w2")["cells_executed"] == 1
        assert class_counts(scan(str(tmp_path)))["completed"] == 4
        merge(str(tmp_path))

    def test_killed_worker_rescan_selective_rerun_merges_identically(
        self, tmp_path, monkeypatch
    ):
        """The satellite drill: kill a worker mid-campaign (holding a
        claim), rescan, rerun only failed+partial, and the final merge is
        byte-identical to an uninterrupted campaign's."""
        # Uninterrupted reference campaign.
        ref_dir = tmp_path / "ref"
        make_campaign(ref_dir)
        plan(str(ref_dir))
        run_worker(str(ref_dir), owner="ref")
        reference = merge(str(ref_dir))

        run_dir = tmp_path / "run"
        make_campaign(run_dir)
        plan(str(run_dir))
        monkeypatch.setenv("REPRO_CAMPAIGN_ABORT_AFTER", "1")
        with pytest.raises(RuntimeError, match="REPRO_CAMPAIGN_ABORT_AFTER"):
            run_worker(str(run_dir), owner="victim")
        monkeypatch.delenv("REPRO_CAMPAIGN_ABORT_AFTER")

        # The victim completed one cell and died holding its next claim.
        counts = class_counts(scan(str(run_dir)))
        assert counts["completed"] == 1
        assert counts["partial"] == 1  # the held claim, no checkpoint
        assert counts["missing"] == 2

        # Rerun only the evidence-of-trouble classes; the still-queued
        # missing cells are already planned work the worker drains too.
        plan(str(run_dir), statuses=normalize_statuses("failed,partial"))
        counters = run_worker(str(run_dir), owner="medic", stale_seconds=0.0001)
        assert counters["steals"] == 1  # the victim's abandoned claim
        assert counters["cells_executed"] == 3
        assert class_counts(scan(str(run_dir)))["completed"] == 4

        merged = merge(str(run_dir))
        assert json.dumps(merged["rows"], sort_keys=True) == json.dumps(
            reference["rows"], sort_keys=True
        )
        # Byte-identity of the artifact itself (label and all).
        ref_bytes = (ref_dir / "merged.json").read_bytes()
        assert (run_dir / "merged.json").read_bytes() == ref_bytes

    def test_worker_events_feed_campaign_rollup(self, tmp_path, monkeypatch):
        """claim/classify/requeue events land on the bus and the obs
        campaign rollup reconstructs per-worker cell counters from them."""
        from repro.obs.aggregate import campaign_rollup
        from repro.obs.events import read_run_events, validate_event

        log = tmp_path / "events.jsonl"
        monkeypatch.setenv("REPRO_LOG", str(log))
        monkeypatch.delenv("REPRO_LOG_OWNER_PID", raising=False)
        make_campaign(tmp_path / "run")
        plan(str(tmp_path / "run"))
        run_worker(str(tmp_path / "run"), owner="tracked")
        events = read_run_events(log)
        assert events and all(validate_event(e) == [] for e in events)
        assert [e for e in events if e["event"] == "classify"]
        claims = [e for e in events if e["event"] == "claim"]
        assert len(claims) == 4 and all(e["owner"] == "tracked" for e in claims)
        rollup = campaign_rollup(events)
        assert rollup["workers"]["tracked"]["cells_executed"] == 4
        assert rollup["claim_events"] == 4 and rollup["steal_events"] == 0
        assert rollup["totals"]["cells_executed"] == 4
