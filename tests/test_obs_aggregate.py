"""Tests for run aggregation: span-tree reconstruction, phase/worker/store
rollups, critical path, and the regression gate."""

from __future__ import annotations

import pytest

from repro.obs import aggregate


def span(name, span_id, parent_id=None, pid=1, start=0.0, duration=1.0, **attrs):
    return {
        "event": "span",
        "name": name,
        "trace_id": "t1",
        "span_id": span_id,
        "parent_id": parent_id,
        "pid": pid,
        "start_unix": start,
        "duration_seconds": duration,
        "ts": start + duration,
        "attrs": attrs,
    }


@pytest.fixture
def run_events():
    """A two-worker parallel run: sweep > run > four shards, one straggler."""
    return [
        span("accuracy_sweep", "s-root", None, pid=1, start=0.0, duration=10.0),
        span("parallel.run", "s-run", "s-root", pid=1, start=0.1, duration=9.8),
        span("parallel.shard", "s-a", "s-run", pid=2, start=0.2, duration=2.0,
             shard="gcc__gshare"),
        span("parallel.shard", "s-b", "s-run", pid=3, start=0.3, duration=2.5,
             shard="gcc__bimodal"),
        span("parallel.shard", "s-c", "s-run", pid=2, start=2.2, duration=1.5,
             shard="eon__gshare"),
        span("parallel.shard", "s-d", "s-run", pid=3, start=2.7, duration=7.0,
             shard="eon__bimodal"),
        {"event": "store", "store": "trace", "op": "hits", "n": 3, "ts": 1.0, "pid": 2},
        {"event": "store", "store": "trace", "op": "misses", "n": 1, "ts": 1.1, "pid": 3},
        {"event": "store", "store": "result", "op": "writes", "n": 4, "ts": 1.2, "pid": 2},
        {"event": "store", "store": "result", "op": "evictions", "n": 2, "ts": 1.3, "pid": 2},
        {"event": "counter", "counters": {"trace_cache.hits": 6}, "ts": 9.0, "pid": 1},
        {
            "event": "run_summary",
            "label": "accuracy_sweep",
            "summary": {
                "shards": {"executed": 4, "resumed": 0, "incomplete": 0},
                "retries": 1,
                "trace_store": {"hits": 3, "misses": 1},
                "result_store": {"writes": 4},
            },
            "ts": 9.9,
            "pid": 1,
        },
    ]


class TestSpanTree:
    def test_tree_links_across_pids(self, run_events):
        tree = aggregate.build_span_tree(run_events)
        assert [n.name for n in tree.roots] == ["accuracy_sweep"]
        assert not tree.orphans and not tree.unclosed
        run = tree.roots[0].children[0]
        assert run.name == "parallel.run"
        assert sorted(c.attrs["shard"] for c in run.children) == [
            "eon__bimodal", "eon__gshare", "gcc__bimodal", "gcc__gshare",
        ]
        assert {c.pid for c in run.children} == {2, 3}

    def test_orphan_and_unclosed_detection(self):
        events = [
            span("lost", "s-x", "s-never-closed"),
            {"event": "span_open", "name": "crashed", "span_id": "s-open",
             "trace_id": "t1", "ts": 0.0, "pid": 1},
        ]
        tree = aggregate.build_span_tree(events)
        assert [n.name for n in tree.orphans] == ["lost"]
        assert [r["name"] for r in tree.unclosed] == ["crashed"]

    def test_walk_orders_children_by_start(self, run_events):
        tree = aggregate.build_span_tree(run_events)
        names = [(depth, node.attrs.get("shard", node.name)) for depth, node in tree.walk()]
        assert names == [
            (0, "accuracy_sweep"),
            (1, "parallel.run"),
            (2, "gcc__gshare"),
            (2, "gcc__bimodal"),
            (2, "eon__gshare"),
            (2, "eon__bimodal"),
        ]


class TestRollups:
    def test_phase_stats_self_time_clamps(self, run_events):
        phases = aggregate.phase_stats(aggregate.build_span_tree(run_events))
        assert phases["parallel.shard"]["count"] == 4
        assert phases["parallel.shard"]["total_seconds"] == pytest.approx(13.0)
        assert phases["parallel.shard"]["max_seconds"] == pytest.approx(7.0)
        # Children (13s of concurrent shards) exceed the run span's 9.8s
        # wall: self time floors at zero instead of going negative.
        assert phases["parallel.run"]["self_seconds"] == 0.0
        assert phases["accuracy_sweep"]["self_seconds"] == pytest.approx(0.2)

    def test_worker_stats_and_utilization(self, run_events):
        workers = aggregate.worker_stats(aggregate.build_span_tree(run_events))
        assert set(workers) == {"2", "3"}
        assert workers["2"]["spans"] == 2
        assert workers["2"]["busy_seconds"] == pytest.approx(3.5)
        assert workers["3"]["busy_seconds"] == pytest.approx(9.5)
        assert workers["3"]["utilization"] == pytest.approx(9.5 / 9.8)

    def test_straggler_report_names_slowest_shard(self, run_events):
        stats = aggregate.straggler_stats(aggregate.build_span_tree(run_events))
        assert stats["count"] == 4
        assert stats["slowest"][0]["shard"] == "eon__bimodal"
        assert stats["max_seconds"] == pytest.approx(7.0)
        assert stats["max_over_mean"] == pytest.approx(7.0 / 3.25)

    def test_critical_path_descends_latest_end(self, run_events):
        path = aggregate.critical_path(aggregate.build_span_tree(run_events))
        assert [step["name"] for step in path] == [
            "accuracy_sweep", "parallel.run", "parallel.shard",
        ]
        assert path[-1]["shard"] == "eon__bimodal"  # ends at 9.7, the latest
        assert path[0]["start_offset_seconds"] == 0.0

    def test_store_rollup_rates(self, run_events):
        stores = aggregate.store_rollup(run_events)
        assert stores["trace"]["hits"] == 3
        assert stores["trace"]["hit_rate"] == pytest.approx(0.75)
        assert stores["result"]["hit_rate"] is None  # no lookups yet
        assert stores["result"]["eviction_pressure"] == pytest.approx(0.5)

    def test_counter_totals_merge_events_and_summary(self, run_events):
        totals = aggregate.counter_totals(run_events)
        assert totals["shards.executed"] == 4
        assert totals["retries"] == 1
        assert totals["trace_store.hits"] == 3
        assert totals["result_store.writes"] == 4
        assert totals["trace_cache.hits"] == 6

    def test_aggregate_run_report(self, run_events):
        report = aggregate.aggregate_run(run_events)
        assert report["schema"] == aggregate.AGGREGATE_SCHEMA
        assert report["trace_ids"] == ["t1"]
        assert report["wall_seconds"] == pytest.approx(10.0)
        assert report["spans"]["total"] == 6
        assert report["spans"]["orphans"] == []

    def test_empty_event_log(self):
        report = aggregate.aggregate_run([])
        assert report["wall_seconds"] == 0.0
        assert report["phases"] == {}
        assert report["critical_path"] == []


class TestRegressionGate:
    def baseline(self, run_events):
        return aggregate.baseline_snapshot(aggregate.aggregate_run(run_events))

    def test_baseline_excludes_volatile_counters(self, run_events):
        snapshot = self.baseline(run_events)
        assert "trace_cache.hits" not in snapshot["counters"]
        assert snapshot["counters"]["shards.executed"] == 4
        assert snapshot["phases"]["parallel.run"] == pytest.approx(9.8)

    def test_identical_run_passes(self, run_events):
        agg = aggregate.aggregate_run(run_events)
        assert aggregate.regress(agg, self.baseline(run_events)) == []

    def test_slowdown_past_threshold_fails(self, run_events):
        snapshot = self.baseline(run_events)
        slow = [dict(e) for e in run_events]
        for event in slow:
            if event.get("span_id") == "s-d":  # straggler gets 2x slower
                event["duration_seconds"] = 14.0
        agg = aggregate.aggregate_run(slow)
        kinds = {(v["kind"], v["name"]) for v in aggregate.regress(agg, snapshot)}
        assert ("phase", "parallel.shard") in kinds
        assert ("wall", "run") in kinds

    def test_slowdown_within_threshold_passes(self, run_events):
        snapshot = self.baseline(run_events)
        agg = aggregate.aggregate_run(run_events)
        agg["wall_seconds"] *= 1.1
        assert aggregate.regress(agg, snapshot, threshold=0.25) == []

    def test_counter_drift_always_fails(self, run_events):
        snapshot = self.baseline(run_events)
        agg = aggregate.aggregate_run(run_events)
        agg["counters"]["retries"] = 5
        violations = aggregate.regress(agg, snapshot, counters_only=True)
        assert violations == [
            {
                "kind": "counter",
                "name": "retries",
                "baseline": 1,
                "current": 5,
                "ratio": None,
            }
        ]

    def test_counters_only_ignores_timings(self, run_events):
        snapshot = self.baseline(run_events)
        agg = aggregate.aggregate_run(run_events)
        agg["wall_seconds"] *= 100
        assert aggregate.regress(agg, snapshot, counters_only=True) == []

    def test_missing_phase_is_reported(self, run_events):
        snapshot = self.baseline(run_events)
        snapshot["phases"]["vanished_phase"] = 1.0
        agg = aggregate.aggregate_run(run_events)
        kinds = {(v["kind"], v["name"]) for v in aggregate.regress(agg, snapshot)}
        assert ("phase-missing", "vanished_phase") in kinds

    def test_new_phase_in_run_is_ignored(self, run_events):
        snapshot = self.baseline(run_events)
        del snapshot["phases"]["parallel.shard"]
        agg = aggregate.aggregate_run(run_events)
        assert aggregate.regress(agg, snapshot) == []
