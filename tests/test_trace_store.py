"""Tests for the content-addressed on-disk trace store.

Covers the trust model (a store entry is never believed without its
checksum; corruption means regenerate-and-count, never crash or wrong
data), the cache layering under the in-process LRU, digest stability
across independent processes, and capacity eviction.
"""

from __future__ import annotations

import os
import subprocess
import sys

import numpy as np
import pytest

from repro import obs
from repro.common.errors import ConfigurationError, TraceError
from repro.workloads.io import load_columns, save_trace
from repro.workloads.spec2000 import (
    clear_trace_cache,
    executor_run_count,
    get_profile,
    reset_executor_runs,
    spec2000_trace,
    warm_trace_store,
)
from repro.workloads.store import (
    ColumnarTrace,
    TraceStore,
    active_store,
    reset_store_stats,
    store_stats,
    trace_digest,
)

INSTRUCTIONS = 20_000


@pytest.fixture
def store_env(tmp_path, monkeypatch):
    """A fresh store directory wired into the environment, with clean
    in-process caches and statistics on both sides of the test."""
    store_dir = tmp_path / "traces"
    monkeypatch.setenv("REPRO_TRACE_STORE", str(store_dir))
    clear_trace_cache()
    reset_store_stats()
    reset_executor_runs()
    yield store_dir
    clear_trace_cache()
    reset_store_stats()
    reset_executor_runs()


def replay(trace) -> list[tuple[int, bool]]:
    return list(trace.conditional_branches())


class TestStoreBasics:
    def test_cold_then_warm(self, store_env):
        cold = spec2000_trace("gcc", instructions=INSTRUCTIONS)
        assert isinstance(cold, ColumnarTrace)
        assert store_stats()["misses"] == 1
        assert store_stats()["writes"] == 1
        assert executor_run_count() == 1

        clear_trace_cache()
        warm = spec2000_trace("gcc", instructions=INSTRUCTIONS)
        assert isinstance(warm, ColumnarTrace)
        assert store_stats()["hits"] == 1
        assert executor_run_count() == 1  # nothing regenerated
        assert replay(warm) == replay(cold)

    def test_lru_layers_over_store(self, store_env):
        """A same-process re-request hits the LRU, not the disk."""
        spec2000_trace("gcc", instructions=INSTRUCTIONS)
        before = store_stats()
        spec2000_trace("gcc", instructions=INSTRUCTIONS)
        assert store_stats() == before

    def test_store_inactive_without_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE_STORE", raising=False)
        assert active_store() is None

    def test_entry_is_loadable_columns(self, store_env):
        spec2000_trace("gcc", instructions=INSTRUCTIONS)
        entries = active_store().entries()
        assert len(entries) == 1
        assert entries[0].name.startswith("gcc__")
        name, columns = load_columns(entries[0])
        assert name == "gcc"
        assert columns["pc"].dtype == np.int64


class TestDigest:
    def test_digest_depends_on_every_input(self):
        profile = get_profile("gcc")
        base = trace_digest(profile, INSTRUCTIONS, 1)
        assert trace_digest(profile, INSTRUCTIONS, 2) != base
        assert trace_digest(profile, INSTRUCTIONS + 6, 1) != base
        assert trace_digest(get_profile("eon"), INSTRUCTIONS, 1) != base
        assert trace_digest(profile, INSTRUCTIONS, 1) == base

    def test_digest_stable_across_processes(self):
        """The digest is a pure function of the config — a second
        interpreter computes the identical key (no per-process hash
        randomization, dict ordering, or repr leakage)."""
        profile = get_profile("gcc")
        here = trace_digest(profile, INSTRUCTIONS, 1)
        script = (
            "from repro.workloads.spec2000 import get_profile\n"
            "from repro.workloads.store import trace_digest\n"
            f"print(trace_digest(get_profile('gcc'), {INSTRUCTIONS}, 1))\n"
        )
        env = dict(os.environ, PYTHONPATH="src")
        there = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            check=True,
            env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        ).stdout.strip()
        assert there == here


class TestFaultInjection:
    """Corrupted store entries are detected, counted, and regenerated —
    results never change and nothing crashes."""

    def _entry(self, store_dir):
        entries = active_store().entries()
        assert len(entries) == 1
        return entries[0]

    def _assert_recovers(self, store_env, reference):
        clear_trace_cache()
        reset_store_stats()
        runs_before = executor_run_count()
        recovered = spec2000_trace("gcc", instructions=INSTRUCTIONS)
        stats = store_stats()
        assert stats["corrupt"] == 1
        assert stats["hits"] == 0
        assert stats["misses"] == 1
        assert stats["writes"] == 1  # entry was rewritten
        assert executor_run_count() == runs_before + 1
        assert replay(recovered) == reference
        # The rewritten entry is sound: a further warm load succeeds.
        clear_trace_cache()
        reset_store_stats()
        again = spec2000_trace("gcc", instructions=INSTRUCTIONS)
        assert store_stats()["hits"] == 1
        assert store_stats()["corrupt"] == 0
        assert replay(again) == reference

    def test_truncated_entry_regenerates(self, store_env):
        reference = replay(spec2000_trace("gcc", instructions=INSTRUCTIONS))
        path = self._entry(store_env)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        self._assert_recovers(store_env, reference)

    def test_bit_flip_regenerates(self, store_env):
        reference = replay(spec2000_trace("gcc", instructions=INSTRUCTIONS))
        path = self._entry(store_env)
        data = bytearray(path.read_bytes())
        # Flip bytes in the compressed payload region, past the zip header.
        for offset in (len(data) // 2, len(data) // 2 + 1, 3 * len(data) // 4):
            data[offset] ^= 0xFF
        path.write_bytes(bytes(data))
        self._assert_recovers(store_env, reference)

    def test_wrong_content_under_right_name_regenerates(self, store_env):
        """An intact .npz holding the *wrong* trace is refused too: the
        store cross-checks the embedded trace name against the requested
        profile, so a hand-copied foreign file cannot smuggle in a wrong
        trace even though its internal checksum is self-consistent."""
        reference = replay(spec2000_trace("gcc", instructions=INSTRUCTIONS))
        gcc_entry = self._entry(store_env)
        eon = spec2000_trace("eon", instructions=INSTRUCTIONS)
        # Overwrite gcc's entry with a valid eon trace file, then drop
        # eon's own entry so only the imposter remains.
        save_trace(eon.to_trace(), gcc_entry)
        for entry in active_store().entries():
            if entry != gcc_entry:
                entry.unlink()
        clear_trace_cache()
        reset_store_stats()
        warm = spec2000_trace("gcc", instructions=INSTRUCTIONS)
        assert warm.name == "gcc"
        assert replay(warm) == reference
        assert store_stats()["corrupt"] == 1

    def test_corrupt_counter_reaches_obs(self, store_env, obs_enabled):
        spec2000_trace("gcc", instructions=INSTRUCTIONS)
        path = self._entry(store_env)
        path.write_bytes(b"garbage")
        clear_trace_cache()
        spec2000_trace("gcc", instructions=INSTRUCTIONS)
        assert obs_enabled.counter("trace_store.corrupt").value == 1

    def test_half_written_tmp_is_ignored_and_cleaned(self, store_env):
        reference = replay(spec2000_trace("gcc", instructions=INSTRUCTIONS))
        path = self._entry(store_env)
        tmp = path.parent / f"{path.name}.tmp.99999"
        tmp.write_bytes(b"\x00" * 100)  # a writer died mid-write
        clear_trace_cache()
        reset_store_stats()
        warm = spec2000_trace("gcc", instructions=INSTRUCTIONS)
        assert replay(warm) == reference
        assert store_stats()["hits"] == 1  # the real entry, not the tmp
        # The dropping is swept on the next write to the same entry.
        path.unlink()
        clear_trace_cache()
        spec2000_trace("gcc", instructions=INSTRUCTIONS)
        assert not tmp.exists()

    def test_missing_store_file_raises_trace_error(self, tmp_path):
        with pytest.raises(TraceError):
            load_columns(tmp_path / "absent.npz")


class TestEviction:
    def test_capacity_bounds_entries(self, tmp_path):
        store = TraceStore(tmp_path / "s", capacity=2)
        for i, name in enumerate(["gcc", "eon", "gzip"]):
            trace = spec2000_trace(name, instructions=INSTRUCTIONS)
            profile = get_profile(name)
            store.save(trace, profile, INSTRUCTIONS, 1)
            # Distinct mtimes so eviction order is deterministic.
            entry = store.entry_path(profile, INSTRUCTIONS, 1)
            os.utime(entry, (1_000_000 + i, 1_000_000 + i))
        assert len(store.entries()) == 2
        # Oldest (gcc) was evicted.
        assert store.load(get_profile("gcc"), INSTRUCTIONS, 1) is None
        assert store.load(get_profile("gzip"), INSTRUCTIONS, 1) is not None

    def test_capacity_env_validation(self, monkeypatch, tmp_path):
        from repro.workloads.store import store_capacity

        monkeypatch.setenv("REPRO_TRACE_STORE_CAPACITY", "nope")
        with pytest.raises(ConfigurationError):
            store_capacity()
        monkeypatch.setenv("REPRO_TRACE_STORE_CAPACITY", "0")
        with pytest.raises(ConfigurationError):
            store_capacity()
        monkeypatch.setenv("REPRO_TRACE_STORE_CAPACITY", "7")
        assert store_capacity() == 7


class TestWarmHelper:
    def test_warm_requires_store(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE_STORE", raising=False)
        with pytest.raises(ConfigurationError):
            warm_trace_store(benchmarks=["gcc"], instruction_counts=[INSTRUCTIONS])

    def test_warm_populates_and_reports(self, store_env):
        report = warm_trace_store(
            benchmarks=["gcc", "eon"], instruction_counts=[INSTRUCTIONS]
        )
        assert report["generated"] == 2
        assert report["already_present"] == 0
        report = warm_trace_store(
            benchmarks=["gcc", "eon"], instruction_counts=[INSTRUCTIONS]
        )
        assert report["generated"] == 0
        assert report["already_present"] == 2

    def test_warm_bypasses_lru(self, store_env):
        """Prewarming must not seed the in-process LRU — forked workers
        would inherit it and never demonstrate store hits."""
        warm_trace_store(benchmarks=["gcc"], instruction_counts=[INSTRUCTIONS])
        from repro.workloads.spec2000 import trace_cache_info

        assert trace_cache_info()["entries"] == 0

    def test_warm_repairs_corrupt_entry(self, store_env):
        warm_trace_store(benchmarks=["gcc"], instruction_counts=[INSTRUCTIONS])
        entry = active_store().entries()[0]
        entry.write_bytes(b"rot")
        reset_store_stats()
        report = warm_trace_store(benchmarks=["gcc"], instruction_counts=[INSTRUCTIONS])
        assert report["generated"] == 1
        assert store_stats()["corrupt"] == 1
        clear_trace_cache()
        trace = spec2000_trace("gcc", instructions=INSTRUCTIONS)
        trace.validate()


class TestColumnarSimulation:
    def test_cycle_simulator_accepts_columnar(self, store_env):
        """The lazy blocks view feeds the cycle simulator; IPC matches the
        Block-object trace exactly."""
        from repro.predictors.gshare import GsharePredictor
        from repro.uarch.policies import SingleCyclePolicy
        from repro.uarch.simulator import CycleSimulator

        columnar = spec2000_trace("gcc", instructions=INSTRUCTIONS)
        assert isinstance(columnar, ColumnarTrace)
        blocks = columnar.to_trace()

        def ipc(trace):
            policy = SingleCyclePolicy(GsharePredictor(4096))
            return CycleSimulator(policy, ilp=get_profile("gcc").ilp).run(trace).ipc

        assert ipc(columnar) == ipc(blocks)

    def test_validate_catches_discontinuity(self):
        from repro.workloads.trace import Block, BranchKind, Trace

        good = Trace(
            name="x",
            blocks=[
                Block(
                    pc=0x1000,
                    instructions=4,
                    branch_kind=BranchKind.CONDITIONAL,
                    branch_pc=0x100C,
                    taken=True,
                    target=0x2000,
                ),
                Block(pc=0x2000, instructions=4),
            ],
        )
        ColumnarTrace.from_trace(good).validate()
        bad = Trace(
            name="x",
            blocks=[
                Block(
                    pc=0x1000,
                    instructions=4,
                    branch_kind=BranchKind.CONDITIONAL,
                    branch_pc=0x100C,
                    taken=True,
                    target=0x3000,  # does not match the next block
                ),
                Block(pc=0x2000, instructions=4),
            ],
        )
        with pytest.raises(TraceError):
            ColumnarTrace.from_trace(bad).validate()
