"""Behavioural tests for the table-based predictors: bimodal, gshare,
Bi-Mode, e-gskew/2Bc-gskew, local, and tournament."""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigurationError
from repro.predictors.bimodal import BimodalPredictor
from repro.predictors.bimode import BiModePredictor
from repro.predictors.gshare import GsharePredictor
from repro.predictors.gskew import EGskewPredictor, TwoBcGskewPredictor, skew_index
from repro.predictors.local import LocalPredictor
from repro.predictors.tournament import TournamentPredictor
from tests.conftest import alternating_stream, biased_stream, loop_stream, run_stream


class TestBimodal:
    def test_learns_constant_branch(self):
        predictor = BimodalPredictor(256)
        wrong = run_stream(predictor, [(0x1000, True)] * 50)
        assert wrong <= 2  # only the cold-start errors

    def test_tracks_bias(self):
        predictor = BimodalPredictor(256)
        wrong = run_stream(predictor, biased_stream(500, 0.95))
        assert wrong / 500 < 0.12

    def test_fails_on_alternation(self):
        # The classic bimodal pathology: TNTN... mispredicts heavily.
        predictor = BimodalPredictor(256)
        wrong = run_stream(predictor, alternating_stream(200))
        assert wrong / 200 > 0.4


class TestGshare:
    def test_learns_alternation_via_history(self):
        predictor = GsharePredictor(1024)
        wrong = run_stream(predictor, alternating_stream(400))
        assert wrong / 400 < 0.05

    def test_learns_fixed_loop_exit(self):
        predictor = GsharePredictor(65536)
        wrong = run_stream(predictor, loop_stream(reps=100, trips=8))
        assert wrong / 800 < 0.05

    def test_learns_cross_branch_correlation(self):
        # Second branch copies the first: history makes it deterministic.
        predictor = GsharePredictor(4096, history_length=4)
        import random

        rng = random.Random(3)
        wrong_second = 0
        for _ in range(1000):
            outcome = rng.random() < 0.5
            predictor.predict(0x1000)
            predictor.update(0x1000, outcome)
            predictor.predict(0x1004)
            if not predictor.update(0x1004, outcome):
                wrong_second += 1
        assert wrong_second / 1000 < 0.05

    def test_history_length_cap(self):
        with pytest.raises(ConfigurationError):
            GsharePredictor(1024, history_length=11)

    def test_storage_accounting(self):
        predictor = GsharePredictor(1024, history_length=10)
        assert predictor.storage_bits == 2048 + 10


class TestBiMode:
    def test_learns_constant_branches_of_both_biases(self):
        predictor = BiModePredictor(1024)
        stream = []
        for i in range(300):
            stream.append((0x1000, True))
            stream.append((0x2000, False))
        wrong = run_stream(predictor, stream)
        assert wrong / 600 < 0.05

    def test_better_than_shared_table_on_opposite_bias_aliasing(self):
        # Two branches with opposite bias that alias in a tiny gshare
        # thrash it; Bi-Mode's separation keeps them apart.
        small_gshare = GsharePredictor(64, history_length=0)
        bimode = BiModePredictor(64, choice_entries=256, history_length=0)
        # 0x1000 and 0x40 XOR-fold to the same 6-bit direction-table index
        # but keep distinct choice-table entries.
        pc_taken, pc_not_taken = 0x1000, 0x40
        assert small_gshare.index(pc_taken) == small_gshare.index(pc_not_taken)
        stream = []
        for i in range(400):
            stream.append((pc_taken, True))
            stream.append((pc_not_taken, False))
        gshare_wrong = run_stream(small_gshare, stream)
        bimode_wrong = run_stream(bimode, stream)
        assert bimode_wrong < gshare_wrong

    def test_storage_counts_three_tables(self):
        predictor = BiModePredictor(256, choice_entries=256)
        assert predictor.storage_bits >= 3 * 512


class TestSkewing:
    def test_banks_use_different_indices(self):
        indices = {
            bank: skew_index(0x1234, 0b1011, 4, 10, bank) for bank in range(3)
        }
        assert len(set(indices.values())) >= 2

    def test_index_in_range(self):
        for bank in range(3):
            for pc in (0x1000, 0xFFFC, 0x40_0000):
                assert 0 <= skew_index(pc, 0x5A, 8, 12, bank) < 4096


class TestEGskew:
    def test_majority_learns_biased_branch(self):
        predictor = EGskewPredictor(1024)
        wrong = run_stream(predictor, biased_stream(600, 0.97))
        assert wrong / 600 < 0.10

    def test_learns_alternation(self):
        predictor = EGskewPredictor(4096)
        wrong = run_stream(predictor, alternating_stream(400))
        assert wrong / 400 < 0.10


class Test2BcGskew:
    def test_learns_biased_branch_fast_via_bimodal_bank(self):
        predictor = TwoBcGskewPredictor(1024)
        wrong = run_stream(predictor, [(0x1000, True)] * 100)
        assert wrong <= 4

    def test_learns_history_pattern(self):
        predictor = TwoBcGskewPredictor(4096)
        wrong = run_stream(predictor, alternating_stream(500))
        assert wrong / 500 < 0.10

    def test_storage_counts_four_banks(self):
        predictor = TwoBcGskewPredictor(1024)
        assert predictor.storage_bits >= 4 * 2048


class TestLocal:
    def test_learns_private_pattern(self):
        predictor = LocalPredictor(history_entries=64, history_length=8)
        # Period-3 pattern: local history identifies the phase exactly.
        pattern = [True, True, False]
        stream = [(0x1000, pattern[i % 3]) for i in range(600)]
        wrong = run_stream(predictor, stream)
        assert wrong / 600 < 0.05

    def test_interleaved_private_patterns(self):
        # Global-history predictors struggle here; local nails it.
        predictor = LocalPredictor(history_entries=64, history_length=10)
        stream = []
        for i in range(400):
            stream.append((0x1000, i % 2 == 0))
            stream.append((0x2000, i % 3 == 0))
        wrong = run_stream(predictor, stream)
        assert wrong / 800 < 0.10


class TestTournament:
    def test_learns_both_pattern_kinds(self):
        predictor = TournamentPredictor()
        stream = []
        for i in range(500):
            stream.append((0x1000, i % 2 == 0))  # local-friendly
            stream.append((0x2000, True))  # trivially biased
        wrong = run_stream(predictor, stream)
        assert wrong / 1000 < 0.10

    def test_storage_counts_all_structures(self):
        predictor = TournamentPredictor(
            global_entries=4096,
            local_histories=1024,
            local_history_length=10,
            local_pht_entries=1024,
            chooser_entries=4096,
        )
        expected_minimum = 4096 * 2 + 1024 * 10 + 1024 * 3 + 4096 * 2
        assert predictor.storage_bits >= expected_minimum
