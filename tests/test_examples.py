"""The examples must stay runnable: execute the fast ones end-to-end."""

from __future__ import annotations

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, argv: list[str], capsys) -> str:
    old_argv = sys.argv
    sys.argv = [name, *argv]
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out


def test_pipelined_predictor_deep_dive(capsys):
    out = run_example("pipelined_predictor_deep_dive.py", [], capsys)
    assert "delivered latency: 1 cycle" in out
    assert "500/500 identical predictions" in out


def test_quickstart(capsys):
    out = run_example("quickstart.py", [], capsys)
    assert "gshare.fast" in out
    assert "IPC" in out
    assert "mispredict %" in out


def test_example_scripts_exist_and_have_docstrings():
    scripts = sorted(EXAMPLES.glob("*.py"))
    assert len(scripts) >= 4
    for script in scripts:
        text = script.read_text()
        assert text.lstrip().startswith(('#!/usr/bin/env python3\n"""', '"""')), script
        assert "Run:" in text, f"{script} lacks a Run: hint"


def test_budget_sweep_rejects_unknown_benchmark(capsys):
    with pytest.raises(SystemExit):
        run_example("budget_sweep.py", ["nonexistent"], capsys)
