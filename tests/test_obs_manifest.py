"""Tests for run manifests: build, write/load, digest stability, diffing,
and the repro-stats renderer."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.obs.cli import main as stats_main, render_diff, render_manifest
from repro.obs.manifest import (
    MANIFEST_VERSION,
    build_manifest,
    diff_manifests,
    environment_info,
    load_manifest,
    manifest_path_for,
    output_digest,
    write_manifest,
)
from repro.obs.registry import MetricsRegistry


def make_manifest(target="table2", text="hello\n", config=None, registry=None):
    return build_manifest(
        target,
        text,
        duration_seconds=1.25,
        registry=registry or MetricsRegistry(),
        config=config or {"scale": 1.0},
    )


class TestBuild:
    def test_structure(self):
        manifest = make_manifest()
        assert manifest["manifest_version"] == MANIFEST_VERSION
        assert manifest["target"] == "table2"
        assert manifest["duration_seconds"] == 1.25
        assert manifest["config"] == {"scale": 1.0}
        assert manifest["output"] == output_digest("hello\n")
        assert manifest["phases"] == {}
        assert manifest["metrics"]["counters"] == {}

    def test_default_config_is_resolved_config(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.25")
        monkeypatch.setenv("REPRO_BENCHMARKS", "gcc,eon")
        manifest = build_manifest("x", "", 0.0, registry=MetricsRegistry())
        assert manifest["config"]["scale"] == 0.25
        assert manifest["config"]["benchmarks"] == ["gcc", "eon"]

    def test_environment_fields(self):
        info = environment_info()
        assert set(info) == {
            "python",
            "implementation",
            "numpy",
            "platform",
            "argv",
            "git_sha",
        }
        assert info["python"].count(".") == 2

    def test_output_digest_stable(self):
        a, b = output_digest("same text"), output_digest("same text")
        assert a == b
        assert a["bytes"] == len(b"same text")
        assert output_digest("other")["sha256"] != a["sha256"]

    def test_phases_extracted_from_span_timers(self):
        registry = MetricsRegistry()
        registry.timer("span.figure1.sweep").observe(0.5)
        registry.timer("span.figure1.sweep").observe(0.3)
        registry.timer("not_a_span").observe(9.0)
        manifest = make_manifest(registry=registry)
        assert set(manifest["phases"]) == {"figure1.sweep"}
        phase = manifest["phases"]["figure1.sweep"]
        assert phase["count"] == 2
        assert phase["total_seconds"] == pytest.approx(0.8)


class TestWriteLoad:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "out" / "table2.manifest.json")
        manifest = make_manifest()
        assert write_manifest(manifest, path) == path
        assert load_manifest(path) == manifest

    def test_written_json_is_pretty_and_sorted(self, tmp_path):
        path = str(tmp_path / "m.json")
        write_manifest(make_manifest(), path)
        text = open(path).read()
        assert text.startswith("{\n")
        assert text.endswith("\n")
        keys = list(json.loads(text))
        assert keys == sorted(keys)

    def test_manifest_path_for(self):
        assert manifest_path_for("results/figure1.txt") == (
            "results/figure1.manifest.json"
        )
        assert manifest_path_for("figure1") == "figure1.manifest.json"


class TestDiff:
    def test_identical_manifests_have_no_diff(self):
        manifest = make_manifest()
        assert diff_manifests(manifest, manifest) == []

    def test_volatile_fields_ignored(self):
        a, b = make_manifest(), make_manifest()
        b["created_unix"] = a["created_unix"] + 100
        b["duration_seconds"] = 9.0
        b["environment"] = dict(a["environment"], argv="something else")
        assert diff_manifests(a, b) == []

    def test_config_and_output_differences_reported(self):
        a = make_manifest(config={"scale": 1.0, "engine": "batch"})
        b = make_manifest(
            text="different\n", config={"scale": 0.5, "engine": "batch"}
        )
        rows = diff_manifests(a, b)
        assert {"section": "config", "key": "scale", "a": 1.0, "b": 0.5} in rows
        sections = {(row["section"], row["key"]) for row in rows}
        assert ("output", "sha256") in sections
        assert ("output", "bytes") in sections

    def test_phase_and_counter_deltas(self):
        reg_a, reg_b = MetricsRegistry(), MetricsRegistry()
        reg_a.timer("span.sweep").observe(1.0)
        reg_b.timer("span.sweep").observe(2.0)
        reg_a.counter("accuracy.branches").inc(10)
        reg_b.counter("accuracy.branches").inc(20)
        rows = diff_manifests(make_manifest(registry=reg_a), make_manifest(registry=reg_b))
        by_section = {(row["section"], row["key"]): row for row in rows}
        assert by_section[("phases", "sweep")]["a"] == "1.000s"
        assert by_section[("phases", "sweep")]["b"] == "2.000s"
        assert by_section[("counters", "accuracy.branches")]["a"] == 10


class TestDiffEdgeCases:
    def test_empty_metrics_sections(self):
        """Manifests with no metrics at all diff cleanly (not KeyError)."""
        a, b = make_manifest(), make_manifest()
        a.pop("metrics", None)
        b["metrics"] = {}
        assert diff_manifests(a, b) == []

    def test_missing_phases_section(self):
        """A phase present on one side only is reported with a None peer."""
        registry = MetricsRegistry()
        registry.timer("span.sweep").observe(1.0)
        a = make_manifest(registry=registry)
        b = make_manifest()
        b.pop("phases", None)
        (row,) = diff_manifests(a, b)
        assert row["section"] == "phases" and row["key"] == "sweep"
        assert row["a"] == "1.000s" and row["b"] is None

    def test_ragged_counter_sets(self):
        """Counters only one manifest recorded show up as one-sided rows."""
        reg_a, reg_b = MetricsRegistry(), MetricsRegistry()
        reg_a.counter("only.in.a").inc(1)
        reg_b.counter("only.in.b").inc(2)
        rows = diff_manifests(make_manifest(registry=reg_a), make_manifest(registry=reg_b))
        by_key = {row["key"]: row for row in rows}
        assert by_key["only.in.a"]["a"] == 1 and by_key["only.in.a"]["b"] is None
        assert by_key["only.in.b"]["b"] == 2 and by_key["only.in.b"]["a"] is None

    def test_mixed_serial_parallel_manifests(self):
        """The parallel run reports and the trace id are volatile: a serial
        manifest and a parallel one of the same run must not diff on them."""
        a, b = make_manifest(), make_manifest()
        b["parallel"] = [{"label": "accuracy_sweep", "jobs": 4, "wall_seconds": 1.0}]
        b["trace_id"] = "feed" * 4
        a.pop("parallel", None)
        a["trace_id"] = None
        assert diff_manifests(a, b) == []
        assert diff_manifests(b, a) == []


class TestStatsCli:
    def test_render_manifest_sections(self):
        registry = MetricsRegistry()
        registry.timer("span.sweep").observe(0.5)
        registry.counter("accuracy.branches").inc(100)
        registry.record_attribution(
            "gshare/gcc", [{"pc": 0x400, "executions": 10, "mispredictions": 4}]
        )
        text = render_manifest(make_manifest(registry=registry))
        assert "Run manifest: table2" in text
        assert "Config" in text and "scale" in text
        assert "Environment" in text and "numpy" in text
        assert "Phases" in text and "sweep" in text
        assert "Hard-to-predict branches: gshare/gcc" in text

    def test_render_diff_empty(self):
        assert render_diff([]).startswith("Manifests match")

    def test_show_and_diff_subcommands(self, tmp_path, capsys):
        path_a = str(tmp_path / "a.manifest.json")
        path_b = str(tmp_path / "b.manifest.json")
        write_manifest(make_manifest(config={"scale": 1.0}), path_a)
        write_manifest(make_manifest(config={"scale": 0.5}), path_b)

        assert stats_main(["show", path_a]) == 0
        out = capsys.readouterr().out
        assert "Run manifest: table2" in out

        assert stats_main(["diff", path_a, path_b]) == 0
        out = capsys.readouterr().out
        assert "Manifest differences" in out
        assert "scale" in out and "0.5" in out

    def test_diff_identical_files(self, tmp_path, capsys):
        path = str(tmp_path / "same.manifest.json")
        write_manifest(make_manifest(), path)
        assert stats_main(["diff", path, path]) == 0
        assert "Manifests match" in capsys.readouterr().out
