"""Tests for the gshare.fast functional model."""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigurationError
from repro.core.gshare_fast import (
    GshareFastPredictor,
    build_gshare_fast,
    default_buffer_bits,
)
from repro.predictors.gshare import GsharePredictor
from tests.conftest import alternating_stream, biased_stream, loop_stream, run_stream


class TestConfiguration:
    def test_default_buffer_bits(self):
        assert default_buffer_bits(3, 16) == 3
        assert default_buffer_bits(1, 16) == 3  # at least the 8-entry buffer
        assert default_buffer_bits(11, 16) == 10  # capped
        assert default_buffer_bits(3, 4) == 3

    def test_rejects_bad_configs(self):
        with pytest.raises(ConfigurationError):
            GshareFastPredictor(entries=1000)  # not a power of two
        with pytest.raises(ConfigurationError):
            GshareFastPredictor(entries=1024, pht_latency=0)
        with pytest.raises(ConfigurationError):
            GshareFastPredictor(entries=16, buffer_bits=4)
        with pytest.raises(ConfigurationError):
            GshareFastPredictor(entries=1024, update_delay=-1)

    def test_staleness_rule(self):
        predictor = GshareFastPredictor(entries=4096, pht_latency=3, buffer_bits=3)
        assert predictor.staleness == 3
        predictor = GshareFastPredictor(entries=4096, pht_latency=7, buffer_bits=3)
        assert predictor.staleness == 7

    def test_history_covers_staleness_window(self):
        predictor = GshareFastPredictor(entries=4096, pht_latency=5)
        assert predictor.history.length == predictor.index_bits + predictor.staleness


class TestIndexStructure:
    def test_index_in_range(self):
        predictor = GshareFastPredictor(entries=1024, pht_latency=3)
        for i in range(200):
            pc = 0x1000 + i * 4
            index = predictor.index(pc)
            assert 0 <= index < 1024
            predictor.predict(pc)
            predictor.update(pc, i % 2 == 0)

    def test_line_address_ignores_newest_history(self):
        """The line address must not depend on the newest (in-flight)
        history bits — the hardware constraint that makes prefetch work."""
        predictor = GshareFastPredictor(entries=4096, pht_latency=3, buffer_bits=3)
        pc = 0x2000
        predictor.history._value = 0b101010101010  # arbitrary
        line_before = predictor.line_address(pc)
        # Perturb only the newest `staleness` bits.
        predictor.history._value ^= 0b111
        assert predictor.line_address(pc) == line_before

    def test_pc_affects_only_low_bits(self):
        predictor = GshareFastPredictor(entries=4096, pht_latency=3, buffer_bits=3)
        indices = {predictor.index(0x1000 + i * 4) for i in range(64)}
        lines = {index >> predictor.buffer_bits for index in indices}
        assert len(lines) == 1  # same history -> same line, any PC


class TestAccuracy:
    def test_learns_alternation(self):
        predictor = GshareFastPredictor(entries=4096, pht_latency=3)
        wrong = run_stream(predictor, alternating_stream(400))
        assert wrong / 400 < 0.10

    def test_learns_loop_exits(self):
        predictor = GshareFastPredictor(entries=65536, pht_latency=3)
        wrong = run_stream(predictor, loop_stream(reps=100, trips=8))
        assert wrong / 800 < 0.08

    def test_close_to_gshare_on_shared_workload(self, small_trace):
        """gshare.fast trades a few PC bits for pipelinability; its accuracy
        should be in the neighbourhood of plain gshare (the paper's
        Figure 5 shows it slightly worse than the complex predictors)."""
        fast = build_gshare_fast(16 * 1024)
        gshare = GsharePredictor(entries=16 * 1024 * 4, history_length=14)
        fast_wrong = run_stream(fast, list(small_trace.conditional_branches()))
        gshare_wrong = run_stream(gshare, list(small_trace.conditional_branches()))
        branches = small_trace.conditional_branch_count
        assert abs(fast_wrong - gshare_wrong) / branches < 0.06


class TestDelayedUpdate:
    def test_zero_delay_updates_immediately(self):
        predictor = GshareFastPredictor(entries=1024, pht_latency=3, update_delay=0)
        index = predictor.index(0x1000)
        predictor.predict(0x1000)
        predictor.update(0x1000, True)
        assert predictor.table.value(index) == 2

    def test_delayed_update_defers_training(self):
        predictor = GshareFastPredictor(entries=1024, pht_latency=3, update_delay=4)
        index = predictor.index(0x1000)
        predictor.predict(0x1000)
        predictor.update(0x1000, True)
        assert predictor.table.value(index) == 1  # still pending
        predictor.flush_updates()
        assert predictor.table.value(index) == 2

    def test_delay_64_costs_little_accuracy(self, small_trace):
        """Section 3.2: a 64-branch predict-to-update distance moves the
        misprediction rate by only a whisker."""
        stream = list(small_trace.conditional_branches())
        immediate = run_stream(build_gshare_fast(64 * 1024, update_delay=0), stream)
        delayed = run_stream(build_gshare_fast(64 * 1024, update_delay=64), stream)
        assert abs(delayed - immediate) / len(stream) < 0.02

    def test_queue_length_bounded(self):
        predictor = GshareFastPredictor(entries=1024, pht_latency=3, update_delay=8)
        for i in range(100):
            pc = 0x1000 + (i % 16) * 4
            predictor.predict(pc)
            predictor.update(pc, i % 2 == 0)
        assert len(predictor._deferred_updates) <= 8


class TestMultiBranchBufferSizing:
    """Section 3.3.1: PHT-buffer sizing for multiple-branch prediction."""

    def test_paper_example(self):
        from repro.core.gshare_fast import multi_branch_buffer_entries

        # 8 branches per fetch block, 3-cycle PHT latency -> 64 entries.
        assert multi_branch_buffer_entries(3, 8) == 64

    def test_single_branch_case(self):
        from repro.core.gshare_fast import multi_branch_buffer_entries

        assert multi_branch_buffer_entries(3, 1) == 8

    def test_scaling(self):
        from repro.core.gshare_fast import multi_branch_buffer_entries

        assert multi_branch_buffer_entries(4, 2) == 32
        assert multi_branch_buffer_entries(5, 4) == 128

    def test_validation(self):
        from repro.core.gshare_fast import multi_branch_buffer_entries

        with pytest.raises(ConfigurationError):
            multi_branch_buffer_entries(0, 4)
        with pytest.raises(ConfigurationError):
            multi_branch_buffer_entries(3, 0)
