"""Tests for bimode.fast — the pipelined Bi-Mode extension."""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigurationError
from repro.core.bimode_fast import (
    MAX_CHOICE_ENTRIES,
    BiModeFastPredictor,
    build_bimode_fast,
)
from repro.core.gshare_fast import build_gshare_fast
from repro.harness.experiment import measure_accuracy
from tests.conftest import alternating_stream, biased_stream, loop_stream, run_stream


class TestConfiguration:
    def test_rejects_multi_cycle_choice_table(self):
        with pytest.raises(ConfigurationError):
            BiModeFastPredictor(direction_entries=4096, choice_entries=2048)

    def test_rejects_bad_direction_tables(self):
        with pytest.raises(ConfigurationError):
            BiModeFastPredictor(direction_entries=1000)
        with pytest.raises(ConfigurationError):
            BiModeFastPredictor(direction_entries=4096, pht_latency=0)
        with pytest.raises(ConfigurationError):
            BiModeFastPredictor(direction_entries=16, buffer_bits=4)

    def test_staleness_mirrors_gshare_fast(self):
        predictor = BiModeFastPredictor(direction_entries=4096, pht_latency=7, buffer_bits=3)
        assert predictor.staleness == 7
        predictor = BiModeFastPredictor(direction_entries=4096, pht_latency=2, buffer_bits=3)
        assert predictor.staleness == 3

    def test_budget_sizing(self):
        predictor = build_bimode_fast(64 * 1024)
        assert predictor.storage_bytes <= 64 * 1024 * 1.05
        assert predictor.choice_table.size == MAX_CHOICE_ENTRIES

    def test_storage_counts_all_structures(self):
        predictor = BiModeFastPredictor(direction_entries=1024, choice_entries=256)
        assert predictor.storage_bits >= 2 * 2048 + 512


class TestPipelineConstraints:
    def test_line_address_ignores_newest_history(self):
        """Both direction-table line fetches must depend only on history
        old enough to be known at launch — the pipelinability invariant."""
        predictor = BiModeFastPredictor(direction_entries=4096, pht_latency=3, buffer_bits=3)
        predictor._history = 0b1100_1010_0101
        line_before = predictor.line_address(0x2000)
        predictor._history ^= 0b111  # perturb only in-flight bits
        assert predictor.line_address(0x2000) == line_before

    def test_pc_affects_only_line_offset(self):
        predictor = BiModeFastPredictor(direction_entries=4096, pht_latency=3, buffer_bits=3)
        lines = {predictor.line_address(0x1000 + i * 4) for i in range(64)}
        assert len(lines) == 1

    def test_choice_table_is_single_cycle_sized(self):
        from repro.timing.sram import table_access_cycles

        assert table_access_cycles(MAX_CHOICE_ENTRIES) == 1


class TestAccuracy:
    def test_learns_both_bias_directions_fast(self):
        predictor = BiModeFastPredictor(direction_entries=4096)
        stream = []
        for _ in range(200):
            stream.append((0x1000, True))
            stream.append((0x2000, False))
        assert run_stream(predictor, stream) / 400 < 0.05

    def test_learns_history_patterns(self):
        predictor = BiModeFastPredictor(direction_entries=4096, pht_latency=3)
        assert run_stream(predictor, alternating_stream(400)) / 400 < 0.10

    def test_learns_loop_exits(self):
        predictor = BiModeFastPredictor(direction_entries=65536, pht_latency=3)
        assert run_stream(predictor, loop_stream(reps=100, trips=8)) / 800 < 0.10

    def test_tracks_bias(self):
        predictor = BiModeFastPredictor(direction_entries=4096)
        assert run_stream(predictor, biased_stream(500, 0.95)) / 500 < 0.12

    def test_beats_gshare_fast_on_real_workloads(self, small_trace, eon_trace):
        """The extension's payoff: bias separation + PC-indexed choice make
        bimode.fast clearly more accurate than gshare.fast at equal budget,
        while remaining just as pipelineable (single-cycle delivery)."""
        budget = 64 * 1024
        for trace in (small_trace, eon_trace):
            fast = measure_accuracy(build_gshare_fast(budget), trace)
            bimode = measure_accuracy(build_bimode_fast(budget), trace)
            assert bimode.misprediction_rate < fast.misprediction_rate
