"""Tests for the loop predictor and the multi-component hybrid."""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigurationError
from repro.predictors.bimodal import BimodalPredictor
from repro.predictors.gshare import GsharePredictor
from repro.predictors.loop import LoopPredictor
from repro.predictors.multicomponent import MultiComponentPredictor
from tests.conftest import loop_stream, run_stream


class TestLoopPredictor:
    def test_learns_fixed_trip_count(self):
        predictor = LoopPredictor(64)
        # After confidence builds, exit iterations are called exactly.
        wrong = run_stream(predictor, loop_stream(reps=50, trips=12))
        # First few loops train; afterwards near-perfect.
        assert wrong <= 3 + 12

    def test_long_trip_counts_beyond_history_reach(self):
        predictor = LoopPredictor(64)
        gshare = GsharePredictor(1024)  # 10-bit history < 40-trip loops
        stream = loop_stream(reps=30, trips=40)
        assert run_stream(predictor, stream) < run_stream(gshare, stream)

    def test_changing_trip_count_resets_confidence(self):
        predictor = LoopPredictor(64)
        run_stream(predictor, loop_stream(reps=10, trips=8))
        assert predictor.is_confident(0x40_0200)
        run_stream(predictor, loop_stream(reps=1, trips=9))
        run_stream(predictor, loop_stream(reps=1, trips=11))
        assert not predictor.is_confident(0x40_0200)

    def test_not_taken_body_direction(self):
        # A loop whose back edge is mostly NOT taken (inverted sense).
        predictor = LoopPredictor(64, confidence_threshold=2)
        stream = []
        for _ in range(40):
            for i in range(6):
                stream.append((0x5000, not (i < 5)))
        wrong = run_stream(predictor, stream)
        assert wrong / len(stream) < 0.25

    def test_rejects_bad_config(self):
        with pytest.raises(ConfigurationError):
            LoopPredictor(12)
        with pytest.raises(ConfigurationError):
            LoopPredictor(64, confidence_threshold=0)

    def test_storage(self):
        assert LoopPredictor(64).storage_bits == 64 * LoopPredictor.ENTRY_BITS


class TestMultiComponent:
    def _build(self):
        return MultiComponentPredictor(
            [
                BimodalPredictor(256),
                LoopPredictor(64),
                GsharePredictor(1024),
            ],
            selector_entries=256,
        )

    def test_requires_two_components(self):
        with pytest.raises(ConfigurationError):
            MultiComponentPredictor([BimodalPredictor(64)])

    def test_learns_biased_branch(self):
        predictor = self._build()
        wrong = run_stream(predictor, [(0x1000, True)] * 80)
        assert wrong <= 4

    def test_selects_best_component_per_branch(self):
        """Mixed workload: a biased branch, an alternating branch, and a
        long fixed loop — each best served by a different component."""
        predictor = self._build()
        stream = []
        for rep in range(60):
            stream.append((0x1000, True))
            stream.append((0x2000, rep % 2 == 0))
            for i in range(20):
                stream.append((0x3000, i < 19))
        wrong = run_stream(predictor, stream)
        assert wrong / len(stream) < 0.10

    def test_beats_worst_component_on_mixed_stream(self):
        stream = []
        for rep in range(80):
            stream.append((0x1000, True))
            for i in range(25):
                stream.append((0x3000, i < 24))
        hybrid_wrong = run_stream(self._build(), stream)
        bimodal_wrong = run_stream(BimodalPredictor(256), stream)
        assert hybrid_wrong <= bimodal_wrong

    def test_peek_is_pure(self):
        predictor = self._build()
        run_stream(predictor, [(0x1000, True)] * 20)
        before = predictor._counters.copy()
        for _ in range(5):
            predictor.peek(0x1000)
        assert (predictor._counters == before).all()
        # protocol still clean after peeks
        predictor.predict(0x1000)
        predictor.update(0x1000, True)

    def test_storage_counts_components_and_selector(self):
        predictor = self._build()
        component_bits = sum(s.predictor.storage_bits for s in predictor.slots)
        assert predictor.storage_bits == component_bits + 256 * 3 * 2

    def test_component_names(self):
        assert predictor_names_unique(self._build().component_names())


def predictor_names_unique(names: list[str]) -> bool:
    return len(names) == len(set(names)) or len(names) >= 2
