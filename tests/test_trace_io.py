"""Tests for trace serialization round-trips."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import TraceError
from repro.harness.experiment import measure_accuracy
from repro.predictors.gshare import GsharePredictor
from repro.workloads.io import save_trace, load_trace
from repro.workloads.store import ColumnarTrace
from repro.workloads.trace import Block, BranchKind, Trace


def traces_equal(a: Trace, b: Trace) -> bool:
    if a.name != b.name or len(a) != len(b):
        return False
    return all(x == y for x, y in zip(a.blocks, b.blocks))


class TestRoundTrip:
    def test_exact_roundtrip(self, small_trace, tmp_path):
        path = save_trace(small_trace, tmp_path / "gcc_trace")
        assert path.suffix == ".npz"
        loaded = load_trace(path)
        assert traces_equal(small_trace, loaded)
        loaded.validate()

    def test_predictions_identical_on_loaded_trace(self, small_trace, tmp_path):
        """The reloaded trace must drive predictors to bit-identical
        results — the property that makes serialized traces pinnable."""
        loaded = load_trace(save_trace(small_trace, tmp_path / "t"))
        original = measure_accuracy(GsharePredictor(16384), small_trace)
        replayed = measure_accuracy(GsharePredictor(16384), loaded)
        assert original.mispredictions == replayed.mispredictions
        assert original.branches == replayed.branches

    def test_empty_memory_blocks(self, tmp_path):
        trace = Trace(
            name="tiny",
            blocks=[
                Block(pc=0x1000, instructions=3),
                Block(
                    pc=0x100C,
                    instructions=1,
                    branch_kind=BranchKind.CONDITIONAL,
                    branch_pc=0x100C,
                    taken=False,
                    target=0x2000,
                ),
            ],
        )
        loaded = load_trace(save_trace(trace, tmp_path / "tiny"))
        assert traces_equal(trace, loaded)

    def test_memory_addresses_preserved(self, tmp_path):
        trace = Trace(
            name="mem",
            blocks=[
                Block(pc=0x1000, instructions=4, loads=(0xA000, 0xB000), stores=(0xC000,)),
                Block(pc=0x1010, instructions=2, loads=(0xD000,)),
            ],
        )
        loaded = load_trace(save_trace(trace, tmp_path / "mem"))
        assert loaded.blocks[0].loads == (0xA000, 0xB000)
        assert loaded.blocks[0].stores == (0xC000,)
        assert loaded.blocks[1].loads == (0xD000,)


class TestErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceError):
            load_trace(tmp_path / "nope.npz")

    def test_malformed_file(self, tmp_path):
        import numpy as np

        path = tmp_path / "bad.npz"
        np.savez(path, junk=np.zeros(3))
        with pytest.raises(TraceError):
            load_trace(path)

    def test_future_version_rejected(self, tmp_path, small_trace):
        import numpy as np

        path = save_trace(small_trace, tmp_path / "v")
        with np.load(path) as data:
            arrays = {key: data[key] for key in data.files}
        arrays["version"] = np.int64(99)
        np.savez(path, **arrays)
        with pytest.raises(TraceError):
            load_trace(path)


ADDRESS = st.integers(min_value=0, max_value=2**48)


@st.composite
def arbitrary_blocks(draw) -> Block:
    """Any legal fetch block: every BranchKind (incl. NONE terminators),
    empty or populated load/store lists."""
    kind = draw(st.sampled_from(list(BranchKind)))
    pc = draw(ADDRESS)
    instructions = draw(st.integers(min_value=1, max_value=40))
    loads = tuple(draw(st.lists(ADDRESS, max_size=4)))
    stores = tuple(draw(st.lists(ADDRESS, max_size=4)))
    if kind == BranchKind.NONE:
        return Block(pc=pc, instructions=instructions, loads=loads, stores=stores)
    return Block(
        pc=pc,
        instructions=instructions,
        loads=loads,
        stores=stores,
        branch_kind=kind,
        branch_pc=draw(st.integers(min_value=1, max_value=2**48)),
        taken=draw(st.booleans()),
        target=draw(ADDRESS),
    )


arbitrary_traces = st.builds(
    Trace,
    name=st.text(
        alphabet=st.characters(whitelist_categories=["L", "N"]), min_size=1, max_size=12
    ),
    blocks=st.lists(arbitrary_blocks(), min_size=1, max_size=60),
)


class TestHypothesisRoundTrip:
    """Property-based round-trips: any legal block stream survives
    serialization and columnarization with field-exact equality."""

    @settings(max_examples=60, deadline=None)
    @given(trace=arbitrary_traces)
    def test_save_load_roundtrip_exact(self, trace, tmp_path_factory):
        path = save_trace(trace, tmp_path_factory.mktemp("rt") / "trace")
        loaded = load_trace(path)
        assert loaded.name == trace.name
        assert loaded.blocks == trace.blocks  # dataclass eq: every field

    @settings(max_examples=60, deadline=None)
    @given(trace=arbitrary_traces)
    def test_columnar_roundtrip_exact(self, trace):
        columnar = ColumnarTrace.from_trace(trace)
        assert columnar.to_trace().blocks == trace.blocks
        assert columnar.instruction_count == trace.instruction_count
        assert list(columnar.conditional_branches()) == list(
            trace.conditional_branches()
        )
        assert columnar.conditional_branch_count == trace.conditional_branch_count
        assert columnar.static_branch_count() == trace.static_branch_count()
        assert columnar.taken_rate == trace.taken_rate
        pcs_a, takens_a = columnar.branch_arrays()
        pcs_b, takens_b = trace.branch_arrays()
        assert np.array_equal(pcs_a, pcs_b)
        assert np.array_equal(takens_a, takens_b)

    @settings(max_examples=40, deadline=None)
    @given(trace=arbitrary_traces)
    def test_zero_branch_traces_roundtrip(self, trace):
        stripped = Trace(
            name=trace.name,
            blocks=[
                Block(pc=b.pc, instructions=b.instructions, loads=b.loads, stores=b.stores)
                for b in trace.blocks
            ],
        )
        columnar = ColumnarTrace.from_trace(stripped)
        assert columnar.conditional_branch_count == 0
        assert columnar.taken_rate == 0.0
        assert list(columnar.conditional_branches()) == []
        assert columnar.to_trace().blocks == stripped.blocks


class TestTextImport:
    def _write(self, tmp_path, text):
        path = tmp_path / "branches.txt"
        path.write_text(text)
        return path

    def test_parses_common_formats(self, tmp_path):
        from repro.workloads.io import read_branch_trace

        path = self._write(
            tmp_path,
            "# a comment\n"
            "0x401000 T\n"
            "0x401000 N\n"
            "4198400 1\n"
            "0x401010 taken\n"
            "\n"
            "0x401010 not-taken\n",
        )
        trace = read_branch_trace(path)
        outcomes = [taken for _, taken in trace.conditional_branches()]
        assert outcomes == [True, False, True, True, False]
        assert trace.name == "branches"

    def test_drives_predictors(self, tmp_path):
        from repro.predictors.gshare import GsharePredictor
        from repro.workloads.io import read_branch_trace

        lines = "\n".join(f"0x401000 {'T' if i % 2 == 0 else 'N'}" for i in range(200))
        trace = read_branch_trace(self._write(tmp_path, lines))
        result = measure_accuracy(GsharePredictor(1024), trace)
        assert result.branches == 200
        assert result.misprediction_rate < 0.10  # TNTN is learnable

    def test_rejects_garbage(self, tmp_path):
        from repro.workloads.io import read_branch_trace

        with pytest.raises(TraceError):
            read_branch_trace(self._write(tmp_path, "0x1000 maybe\n"))
        with pytest.raises(TraceError):
            read_branch_trace(self._write(tmp_path, "justonefield\n"))
        with pytest.raises(TraceError):
            read_branch_trace(self._write(tmp_path, "# only comments\n"))
        with pytest.raises(TraceError):
            read_branch_trace(tmp_path / "missing.txt")
