"""Tests for the BranchPredictor protocol and stats."""

from __future__ import annotations

import pytest

from repro.common.errors import ProtocolError
from repro.predictors.base import PredictorStats
from repro.predictors.bimodal import BimodalPredictor


class TestProtocol:
    def test_predict_then_update(self):
        predictor = BimodalPredictor(64)
        prediction = predictor.predict(0x1000)
        assert isinstance(prediction, bool)
        correct = predictor.update(0x1000, True)
        assert correct == (prediction is True)

    def test_double_predict_rejected(self):
        predictor = BimodalPredictor(64)
        predictor.predict(0x1000)
        with pytest.raises(ProtocolError):
            predictor.predict(0x1004)

    def test_update_without_predict_rejected(self):
        predictor = BimodalPredictor(64)
        with pytest.raises(ProtocolError):
            predictor.update(0x1000, True)

    def test_update_pc_mismatch_rejected(self):
        predictor = BimodalPredictor(64)
        predictor.predict(0x1000)
        with pytest.raises(ProtocolError):
            predictor.update(0x2000, True)

    def test_peek_does_not_enter_protocol(self):
        predictor = BimodalPredictor(64)
        predictor.peek(0x1000)
        predictor.predict(0x1000)  # would raise if peek left pending state
        predictor.update(0x1000, True)

    def test_peek_does_not_train(self):
        predictor = BimodalPredictor(64)
        before = predictor.table.value(predictor.index(0x1000))
        for _ in range(5):
            predictor.peek(0x1000)
        assert predictor.table.value(predictor.index(0x1000)) == before


class TestStats:
    def test_counts(self):
        predictor = BimodalPredictor(64)
        for taken in (True, True, False, True):
            predictor.predict(0x1000)
            predictor.update(0x1000, taken)
        assert predictor.stats.predictions == 4
        assert 0 <= predictor.stats.mispredictions <= 4

    def test_rate_of_empty_stats(self):
        assert PredictorStats().misprediction_rate == 0.0

    def test_rate_math(self):
        stats = PredictorStats(predictions=10, mispredictions=3)
        assert stats.misprediction_rate == pytest.approx(0.3)

    def test_storage_bytes_rounds_up(self):
        predictor = BimodalPredictor(64)  # 128 bits
        assert predictor.storage_bytes == 16
