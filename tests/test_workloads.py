"""Tests for the workload substrate: traces, predicates, programs."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ConfigurationError, TraceError
from repro.common.rng import derive
from repro.workloads.cfg import (
    Call,
    Function,
    If,
    Loop,
    Program,
    StraightCode,
    TripSampler,
    layout_program,
)
from repro.workloads.predicates import (
    BiasedPredicate,
    GlobalParityPredicate,
    HiddenStatePredicate,
    PatternPredicate,
    ProgramState,
)
from repro.workloads.program import MemoryConfig, ProgramExecutor
from repro.workloads.spec2000 import get_profile, spec2000_names, spec2000_trace
from repro.workloads.synth import WorkloadProfile, build_program
from repro.workloads.trace import Block, BranchKind, Trace


class TestBlock:
    def test_requires_instructions(self):
        with pytest.raises(TraceError):
            Block(pc=0x1000, instructions=0)

    def test_branch_requires_branch_pc(self):
        with pytest.raises(TraceError):
            Block(pc=0x1000, instructions=1, branch_kind=BranchKind.CONDITIONAL)

    def test_has_conditional(self):
        block = Block(
            pc=0x1000,
            instructions=2,
            branch_kind=BranchKind.CONDITIONAL,
            branch_pc=0x1004,
            taken=True,
            target=0x2000,
        )
        assert block.has_conditional


class TestTrace:
    def _trace(self):
        blocks = [
            Block(
                pc=0x1000,
                instructions=3,
                branch_kind=BranchKind.CONDITIONAL,
                branch_pc=0x1008,
                taken=True,
                target=0x2000,
            ),
            Block(pc=0x2000, instructions=2),
        ]
        return Trace(name="t", blocks=blocks)

    def test_counts(self):
        trace = self._trace()
        assert trace.instruction_count == 5
        assert trace.conditional_branch_count == 1
        assert trace.taken_rate == 1.0
        assert trace.static_branch_count() == 1

    def test_validate_accepts_continuous_flow(self):
        self._trace().validate()

    def test_validate_rejects_discontinuity(self):
        trace = self._trace()
        trace.blocks[1] = Block(pc=0x3000, instructions=2)
        with pytest.raises(TraceError):
            trace.validate()

    def test_branch_iterator(self):
        assert list(self._trace().conditional_branches()) == [(0x1008, True)]


class TestPredicates:
    def _state(self, seed=1):
        return ProgramState(derive(seed, "test"), hidden_bits=4)

    def test_biased_validates(self):
        with pytest.raises(ConfigurationError):
            BiasedPredicate(bias=1.5)

    def test_biased_rate(self):
        state = self._state()
        predicate = BiasedPredicate(bias=0.9)
        taken = sum(predicate.evaluate(state) for _ in range(2000))
        assert 1650 <= taken <= 1950

    def test_pattern_cycles(self):
        state = self._state()
        predicate = PatternPredicate(pattern=(True, False, False))
        outcomes = [predicate.evaluate(state) for _ in range(6)]
        assert outcomes == [True, False, False, True, False, False]

    def test_pattern_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            PatternPredicate(pattern=())

    def test_parity_xor_deterministic_given_history(self):
        state = self._state()
        state.record_outcome(True)
        state.record_outcome(False)  # history (newest first): F, T
        predicate = GlobalParityPredicate(lags=(1, 2), noise=0.0)
        assert predicate.evaluate(state) == (False ^ True)

    def test_parity_and_or(self):
        state = self._state()
        state.record_outcome(True)
        state.record_outcome(True)
        assert GlobalParityPredicate(lags=(1, 2), op="and").evaluate(state)
        state.record_outcome(False)
        assert not GlobalParityPredicate(lags=(1, 2), op="and").evaluate(state)
        assert GlobalParityPredicate(lags=(1, 2), op="or").evaluate(state)

    def test_parity_validates(self):
        with pytest.raises(ConfigurationError):
            GlobalParityPredicate(lags=())
        with pytest.raises(ConfigurationError):
            GlobalParityPredicate(lags=(1,), op="nand")

    def test_hidden_tracks_bit(self):
        state = self._state()
        state.hidden[2] = True
        predicate = HiddenStatePredicate(index=2, noise=0.0)
        assert predicate.evaluate(state)
        state.hidden[2] = False
        assert not predicate.evaluate(state)

    def test_outcome_at_lag_bounds(self):
        state = self._state()
        with pytest.raises(ConfigurationError):
            state.outcome_at_lag(0)


class TestTripSampler:
    def test_fixed(self):
        sampler = TripSampler(kind="fixed", mean=7)
        rng = derive(1, "trips")
        assert all(sampler.sample(rng) == 7 for _ in range(10))

    def test_uniform_range(self):
        sampler = TripSampler(kind="uniform", low=3, high=6)
        rng = derive(1, "trips")
        samples = [sampler.sample(rng) for _ in range(200)]
        assert min(samples) >= 3 and max(samples) <= 6

    def test_geometric_at_least_one(self):
        sampler = TripSampler(kind="geometric", mean=4)
        rng = derive(1, "trips")
        assert all(sampler.sample(rng) >= 1 for _ in range(200))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TripSampler(kind="poisson")
        with pytest.raises(ConfigurationError):
            TripSampler(kind="uniform", low=5, high=2)


class TestLayout:
    def _program(self):
        inner = [StraightCode(instructions=4)]
        body = [
            StraightCode(instructions=2),
            If(predicate=BiasedPredicate(0.5), then_body=list(inner), else_body=[StraightCode(instructions=3)]),
            Loop(body=[StraightCode(instructions=1)], trips=TripSampler(kind="fixed", mean=3)),
            Call(callee_index=1),
        ]
        callee = Function(name="fn1", body=[StraightCode(instructions=5)])
        return Program(name="p", functions=[Function(name="main", body=body), callee])

    def test_layout_assigns_monotone_addresses(self):
        program = layout_program(self._program())
        assert program.code_size_bytes > 0
        main = program.main
        assert main.entry_address == program.code_base
        addresses = [node.address for node in main.body]
        assert addresses == sorted(addresses)

    def test_if_layout_targets(self):
        program = layout_program(self._program())
        if_node = program.main.body[1]
        assert if_node.branch_address == if_node.address
        # taken target lands at the else side, before the join.
        assert if_node.branch_address < if_node.taken_target <= if_node.join_address

    def test_loop_layout(self):
        program = layout_program(self._program())
        loop = program.main.body[2]
        assert loop.head_address < loop.back_edge_address < loop.exit_address

    def test_static_branch_enumeration(self):
        program = layout_program(self._program())
        sites = program.static_conditional_branches()
        assert len(sites) == 2  # the if and the loop back edge
        assert len(set(sites)) == 2


class TestExecutor:
    def _run(self, budget=5000, seed=3):
        program = layout_program(self._make_program())
        executor = ProgramExecutor(program, seed=seed)
        return executor.run(budget)

    @staticmethod
    def _make_program():
        body = [
            StraightCode(instructions=3),
            Loop(
                body=[StraightCode(instructions=2)],
                trips=TripSampler(kind="fixed", mean=4),
            ),
            If(
                predicate=BiasedPredicate(0.7),
                then_body=[StraightCode(instructions=2)],
                else_body=[StraightCode(instructions=2)],
            ),
            Call(callee_index=1),
        ]
        callee = Function(name="fn1", body=[StraightCode(instructions=4)])
        return Program(name="p", functions=[Function(name="main", body=body), callee])

    def test_budget_respected(self):
        trace = self._run(budget=5000)
        assert 5000 <= trace.instruction_count <= 5010

    def test_control_flow_is_continuous(self):
        self._run().validate()

    def test_deterministic(self):
        a = self._run(seed=9)
        b = self._run(seed=9)
        assert [bl.pc for bl in a.blocks] == [bl.pc for bl in b.blocks]
        assert [bl.taken for bl in a.blocks] == [bl.taken for bl in b.blocks]

    def test_different_seeds_differ(self):
        a = self._run(seed=1, budget=3000)
        b = self._run(seed=2, budget=3000)
        assert [bl.taken for bl in a.blocks] != [bl.taken for bl in b.blocks]

    def test_fixed_loop_emits_trip_pattern(self):
        trace = self._run(budget=2000)
        program_loop_taken = [
            block.taken
            for block in trace.blocks
            if block.has_conditional and block.target == block.pc - 0  # loop back edges target head
        ]
        assert trace.conditional_branch_count > 0

    def test_calls_and_returns_balance(self):
        trace = self._run(budget=8000)
        calls = sum(1 for b in trace.blocks if b.branch_kind == BranchKind.CALL)
        returns = sum(1 for b in trace.blocks if b.branch_kind == BranchKind.RETURN)
        assert abs(calls - returns) <= 1

    def test_requires_layout(self):
        with pytest.raises(ConfigurationError):
            ProgramExecutor(self._make_program(), seed=1)

    def test_memory_config_validation(self):
        with pytest.raises(ConfigurationError):
            MemoryConfig(working_set_bytes=1024)
        with pytest.raises(ConfigurationError):
            MemoryConfig(hot_bytes=1 << 22, working_set_bytes=1 << 20)


class TestSynthesis:
    def test_deterministic_build(self):
        profile = get_profile("gzip")
        a = build_program(profile)
        b = build_program(profile)
        assert a.code_size_bytes == b.code_size_bytes
        assert a.static_conditional_branches() == b.static_conditional_branches()

    def test_cost_budgeting_bounds_main_iteration(self):
        """One main iteration must stay near the profile's main_cost, so a
        trace revisits the whole program many times."""
        profile = get_profile("gzip")
        program = build_program(profile)
        executor = ProgramExecutor(program, seed=1, memory=profile.memory)
        trace = executor.run(int(profile.main_cost * 30))
        loop_pc = program.main.return_site_address
        iterations = sum(1 for b in trace.blocks if b.branch_pc == loop_pc)
        assert iterations >= 10

    def test_profile_validation(self):
        with pytest.raises(ConfigurationError):
            WorkloadProfile(name="bad", functions=0)
        with pytest.raises(ConfigurationError):
            WorkloadProfile(name="bad", ilp=0)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=1, max_value=10_000))
    def test_any_seed_builds_and_runs(self, seed):
        profile = WorkloadProfile(name="fuzz", seed=seed, functions=3, main_cost=800.0)
        program = build_program(profile)
        trace = ProgramExecutor(program, seed=seed).run(3000)
        trace.validate()
        assert trace.instruction_count >= 3000


class TestSpec2000:
    def test_twelve_benchmarks(self):
        assert len(spec2000_names()) == 12

    def test_profiles_exist_for_all(self):
        for name in spec2000_names():
            assert get_profile(name).name == name

    def test_unknown_benchmark(self):
        with pytest.raises(ConfigurationError):
            get_profile("specjbb")

    def test_trace_api_validation(self):
        with pytest.raises(ConfigurationError):
            spec2000_trace("gcc")
        with pytest.raises(ConfigurationError):
            spec2000_trace("gcc", instructions=1000, branches=1000)

    def test_trace_caching(self):
        a = spec2000_trace("gzip", instructions=20_000)
        b = spec2000_trace("gzip", instructions=20_000)
        assert a is b

    def test_branch_budget_conversion(self):
        trace = spec2000_trace("gzip", branches=5000)
        assert trace.instruction_count == 5000 * 6

    def test_traces_have_realistic_structure(self, small_trace):
        assert small_trace.conditional_branch_count > 1000
        assert 0.4 < small_trace.taken_rate < 0.85
        assert small_trace.static_branch_count() > 50
