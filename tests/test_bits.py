"""Unit and property tests for repro.common.bits."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.bits import (
    bit_reverse,
    fold,
    hash_pc,
    is_power_of_two,
    log2_exact,
    mask,
    rotate_left,
)
from repro.common.errors import ConfigurationError


class TestPowerOfTwo:
    def test_accepts_powers(self):
        for k in range(20):
            assert is_power_of_two(1 << k)

    def test_rejects_non_powers(self):
        for value in (0, -1, -8, 3, 6, 12, 100):
            assert not is_power_of_two(value)

    def test_log2_exact(self):
        assert log2_exact(1) == 0
        assert log2_exact(1024) == 10

    def test_log2_rejects_non_power(self):
        with pytest.raises(ConfigurationError):
            log2_exact(12)


class TestMask:
    def test_values(self):
        assert mask(0) == 0
        assert mask(1) == 1
        assert mask(3) == 0b111
        assert mask(16) == 0xFFFF

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            mask(-1)


class TestFold:
    def test_identity_when_widths_match(self):
        assert fold(0b1011, 4, 4) == 0b1011

    def test_folds_high_bits(self):
        # 8 bits folded to 4: high nibble XOR low nibble.
        assert fold(0xA5, 8, 4) == (0xA ^ 0x5)

    def test_fold_to_zero_width(self):
        assert fold(0xFFFF, 16, 0) == 0

    def test_masks_input(self):
        # Bits above in_width must not contribute.
        assert fold(0x1F, 4, 4) == 0xF

    @given(st.integers(min_value=0, max_value=2**32 - 1), st.integers(min_value=1, max_value=16))
    def test_result_fits_out_width(self, value, out_width):
        assert 0 <= fold(value, 32, out_width) <= mask(out_width)

    @given(st.integers(min_value=0, max_value=2**20 - 1))
    def test_deterministic(self, value):
        assert fold(value, 20, 7) == fold(value, 20, 7)


class TestBitReverse:
    def test_small(self):
        assert bit_reverse(0b001, 3) == 0b100
        assert bit_reverse(0b110, 3) == 0b011

    @given(st.integers(min_value=0, max_value=2**12 - 1))
    def test_involution(self, value):
        assert bit_reverse(bit_reverse(value, 12), 12) == value


class TestRotate:
    def test_basic(self):
        assert rotate_left(0b0001, 1, 4) == 0b0010
        assert rotate_left(0b1000, 1, 4) == 0b0001

    def test_full_rotation_is_identity(self):
        assert rotate_left(0b1011, 4, 4) == 0b1011

    def test_zero_width_rejected(self):
        with pytest.raises(ConfigurationError):
            rotate_left(1, 1, 0)

    @given(
        st.integers(min_value=0, max_value=2**10 - 1),
        st.integers(min_value=0, max_value=30),
    )
    def test_preserves_popcount(self, value, amount):
        rotated = rotate_left(value, amount, 10)
        assert bin(rotated).count("1") == bin(value).count("1")


class TestHashPc:
    def test_ignores_alignment_bits(self):
        assert hash_pc(0x1000, 10) == hash_pc(0x1001, 10) == hash_pc(0x1003, 10)

    def test_distinguishes_nearby_instructions(self):
        assert hash_pc(0x1000, 10) != hash_pc(0x1004, 10)

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_in_range(self, pc):
        assert 0 <= hash_pc(pc, 12) <= mask(12)
