"""Tests for the experiment harness: measurements, aggregation, reporting,
scale control and sweeps."""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigurationError
from repro.core.overriding import OverridingPredictor
from repro.harness.aggregate import arithmetic_mean, geometric_mean, harmonic_mean
from repro.harness.experiment import measure_accuracy, measure_override
from repro.harness.report import format_budget, render_series_table, render_table
from repro.harness.scale import benchmark_names, scale_factor, warmup_branches
from repro.harness.sweep import (
    FULL_BUDGETS,
    LARGE_BUDGETS,
    accuracy_sweep,
    build_family,
    hmean_ipc_by_family_budget,
    ipc_sweep,
    make_policy,
    mean_by_family_budget,
)
from repro.predictors.bimodal import BimodalPredictor
from repro.predictors.gshare import GsharePredictor


class TestAggregates:
    def test_arithmetic(self):
        assert arithmetic_mean([1.0, 2.0, 3.0]) == 2.0

    def test_harmonic(self):
        assert harmonic_mean([1.0, 1.0]) == 1.0
        assert harmonic_mean([2.0, 4.0]) == pytest.approx(8.0 / 3.0)

    def test_harmonic_below_arithmetic(self):
        values = [0.5, 1.2, 2.0, 1.7]
        assert harmonic_mean(values) < arithmetic_mean(values)

    def test_geometric(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_empty_rejected(self):
        for fn in (arithmetic_mean, harmonic_mean, geometric_mean):
            with pytest.raises(ConfigurationError):
                fn([])

    def test_nonpositive_rejected(self):
        with pytest.raises(ConfigurationError):
            harmonic_mean([1.0, 0.0])


class TestMeasurement:
    def test_accuracy_on_constant_stream(self, small_trace):
        predictor = BimodalPredictor(4096)
        result = measure_accuracy(predictor, small_trace)
        assert result.branches == small_trace.conditional_branch_count
        assert 0 < result.misprediction_rate < 1

    def test_warmup_excluded_from_score(self, small_trace):
        predictor_a = BimodalPredictor(4096)
        predictor_b = BimodalPredictor(4096)
        full = measure_accuracy(predictor_a, small_trace)
        warm = measure_accuracy(predictor_b, small_trace, warmup_branches=1000)
        assert warm.branches == full.branches - 1000
        # Scoring after warm-up should not be worse than including cold start.
        assert warm.misprediction_rate <= full.misprediction_rate + 0.02

    def test_override_measurement(self, small_trace):
        overriding = OverridingPredictor(GsharePredictor(16384), slow_latency=3)
        result = measure_override(overriding, small_trace)
        assert result.branches == small_trace.conditional_branch_count
        assert 0 <= result.override_rate < 1
        assert result.quick_mispredictions >= 0
        # quick(2K gshare) should not beat the bigger slow gshare overall
        assert result.final_mispredictions <= result.quick_mispredictions * 1.3


class TestReport:
    def test_format_budget(self):
        assert format_budget(65536) == "64K"
        assert format_budget(100) == "100"

    def test_render_table_alignment(self):
        text = render_table("T", ["a", "bb"], [[1, 2], [33, 4]])
        lines = text.splitlines()
        assert lines[0] == "T"
        assert len({len(line) for line in lines[2:]}) == 1  # aligned rows

    def test_render_series(self):
        text = render_series_table(
            "S", "Budget", [1024, 2048], {"x": {1024: 1.0, 2048: 2.0}}
        )
        assert "1K" in text and "2K" in text and "2.00" in text

    def test_render_series_missing_cell(self):
        text = render_series_table("S", "B", [1024], {"x": {}})
        assert "-" in text


class TestScale:
    def test_default_scale(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert scale_factor() == 1.0

    def test_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "2.5")
        assert scale_factor() == 2.5

    def test_bad_scale(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "lots")
        with pytest.raises(ConfigurationError):
            scale_factor()

    def test_benchmark_subset(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCHMARKS", "gcc,eon")
        assert benchmark_names() == ["gcc", "eon"]

    def test_benchmark_subset_validated(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCHMARKS", "gcc,doom")
        with pytest.raises(ConfigurationError):
            benchmark_names()

    def test_warmup_fraction(self):
        assert warmup_branches(1000) == 200

    def test_benchmark_subset_dedupes_preserving_order(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCHMARKS", "eon,gcc,eon,gcc,gzip")
        assert benchmark_names() == ["eon", "gcc", "gzip"]

    def test_resolved_config_keys(self, monkeypatch):
        from repro.harness.scale import resolved_config

        monkeypatch.setenv("REPRO_SCALE", "0.5")
        monkeypatch.setenv("REPRO_BENCHMARKS", "gcc,eon")
        monkeypatch.setenv("REPRO_ENGINE", "scalar")
        monkeypatch.setenv("REPRO_JOBS", "3")
        config = resolved_config()
        assert set(config) == {
            "scale",
            "benchmarks",
            "engine",
            "jobs",
            "trace_store",
            "result_store",
            "accuracy_instructions",
            "ipc_instructions",
            "warmup_fraction",
            "campaign",
            "service",
            "families",
        }
        assert set(config["campaign"]) == {"run_dir", "stale_seconds", "poll_seconds"}
        assert config["campaign"]["stale_seconds"] == 600.0
        assert set(config["service"]) == {
            "data_dir",
            "workers",
            "max_pending",
            "body_limit",
            "request_timeout",
            "max_wait",
            "drain_timeout",
        }
        from repro.predictors import registry

        assert sorted(config["families"]) == registry.family_names()
        assert config["families"]["gshare_fast"]["single_cycle"] is True
        assert config["families"]["gshare"]["batch_kernel"] == "gshare"
        assert config["scale"] == 0.5
        assert config["benchmarks"] == ["gcc", "eon"]
        assert config["engine"] == "scalar"
        assert config["jobs"] == 3
        assert config["accuracy_instructions"] == 300_000


class TestSweeps:
    def test_budget_ladders(self):
        assert FULL_BUDGETS[0] == 2 * 1024
        assert FULL_BUDGETS[-1] == 512 * 1024
        assert LARGE_BUDGETS[0] == 16 * 1024

    def test_build_family_includes_gshare_fast(self):
        predictor = build_family("gshare_fast", 16 * 1024)
        assert predictor.name == "gshare_fast"

    def test_accuracy_sweep_shape(self):
        cells = accuracy_sweep(
            ["bimodal", "gshare"], [8 * 1024], benchmarks=["gzip"], instructions=30_000
        )
        assert len(cells) == 2
        means = mean_by_family_budget(cells)
        assert ("bimodal", 8 * 1024) in means

    def test_make_policy_modes(self):
        assert make_policy("gshare_fast", 16 * 1024, "ideal").name.startswith("1cyc")
        assert "override" in make_policy("perceptron", 16 * 1024, "overriding").name
        with pytest.raises(ValueError):
            make_policy("perceptron", 16 * 1024, "telepathy")

    def test_ipc_sweep_shape(self):
        cells = ipc_sweep(
            ["gshare_fast"], [16 * 1024], mode="ideal", benchmarks=["gzip"], instructions=30_000
        )
        assert len(cells) == 1
        assert cells[0].ipc > 0
        hmeans = hmean_ipc_by_family_budget(cells)
        assert hmeans[("gshare_fast", 16 * 1024)] == pytest.approx(cells[0].ipc)
