"""Shared fixtures: small deterministic traces and branch streams."""

from __future__ import annotations

import random

import pytest

from repro import obs
from repro.workloads.spec2000 import spec2000_trace


@pytest.fixture
def obs_enabled():
    """Turn observability collection on, with a clean default registry, and
    restore the env-driven disabled state afterwards."""
    obs.set_enabled(True)
    obs.reset()
    yield obs.registry()
    obs.set_enabled(None)
    obs.reset()


@pytest.fixture(scope="session")
def small_trace():
    """A small cached gcc trace shared by integration-style tests."""
    return spec2000_trace("gcc", instructions=60_000)


@pytest.fixture(scope="session")
def eon_trace():
    return spec2000_trace("eon", instructions=60_000)


def biased_stream(n: int, bias: float, seed: int = 7, pc: int = 0x40_0000):
    """(pc, taken) pairs from a biased coin — one static branch."""
    rng = random.Random(seed)
    return [(pc, rng.random() < bias) for _ in range(n)]


def alternating_stream(n: int, pc: int = 0x40_0100):
    return [(pc, i % 2 == 0) for i in range(n)]


def loop_stream(reps: int, trips: int, pc: int = 0x40_0200):
    """A fixed-trip loop back edge: taken trips-1 times, then not taken."""
    out = []
    for _ in range(reps):
        for i in range(trips):
            out.append((pc, i < trips - 1))
    return out


def run_stream(predictor, stream):
    """Drive a predictor over (pc, taken) pairs; return mispredict count."""
    wrong = 0
    for pc, taken in stream:
        predictor.predict(pc)
        if not predictor.update(pc, taken):
            wrong += 1
    return wrong
