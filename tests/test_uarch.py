"""Tests for caches, BTB/RAS, and the cycle simulator."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ConfigurationError
from repro.core.dualpath import DualPathPolicy
from repro.core.gshare_fast import build_gshare_fast
from repro.core.overriding import OverridingPredictor
from repro.predictors.gshare import GsharePredictor
from repro.uarch.btb import BranchTargetBuffer, ReturnAddressStack
from repro.uarch.caches import Cache, MemoryHierarchy, paper_hierarchy
from repro.uarch.config import PAPER_MACHINE, MachineConfig
from repro.uarch.policies import DualPathFetchPolicy, OverridingPolicy, SingleCyclePolicy
from repro.uarch.simulator import CycleSimulator


class TestCache:
    def test_hit_after_fill(self):
        cache = Cache(1024, 64, ways=1)
        assert not cache.access(0x1000)
        assert cache.access(0x1000)
        assert cache.access(0x1004)  # same line

    def test_direct_mapped_conflict(self):
        cache = Cache(1024, 64, ways=1)  # 16 sets
        cache.access(0x0000)
        cache.access(0x0000 + 1024)  # same set, evicts
        assert not cache.access(0x0000)

    def test_two_way_avoids_simple_conflict(self):
        cache = Cache(1024, 64, ways=2)  # 8 sets
        cache.access(0x0000)
        cache.access(0x0000 + 512)
        assert cache.access(0x0000)
        assert cache.access(0x0000 + 512)

    def test_lru_eviction(self):
        cache = Cache(256, 64, ways=2)  # 2 sets
        a, b, c = 0x0000, 0x0080, 0x0100  # same set (set stride 128)
        cache.access(a)
        cache.access(b)
        cache.access(a)  # a most recent
        cache.access(c)  # evicts b
        assert cache.probe(a)
        assert not cache.probe(b)

    def test_stats(self):
        cache = Cache(1024, 64)
        cache.access(0x0)
        cache.access(0x0)
        assert cache.stats.accesses == 2
        assert cache.stats.misses == 1
        assert cache.stats.miss_rate == 0.5

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Cache(1000, 60)
        with pytest.raises(ConfigurationError):
            Cache(128, 64, ways=3)

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=1 << 20), min_size=1, max_size=200))
    def test_rereference_always_hits(self, addresses):
        cache = Cache(64 * 1024, 64)
        for address in addresses:
            cache.access(address)
            assert cache.access(address)


class TestHierarchy:
    def test_l1_hit_costs_nothing(self):
        hierarchy = paper_hierarchy()
        hierarchy.access_data(0x1000)
        assert hierarchy.access_data(0x1000) == 0

    def test_l2_hit_cost(self):
        hierarchy = paper_hierarchy(l2_hit_cycles=12)
        hierarchy.access_data(0x1000)  # fills both levels
        hierarchy.access_data(0x1000 + 64 * 1024)  # evicts L1 line (same set)
        assert hierarchy.access_data(0x1000) == 12

    def test_memory_cost_on_cold_access(self):
        hierarchy = paper_hierarchy(memory_cycles=200)
        assert hierarchy.access_data(0x5000) == 200


class TestBtb:
    def test_miss_then_hit(self):
        btb = BranchTargetBuffer(entries=64, ways=2)
        assert btb.lookup(0x1000) is None
        btb.install(0x1000, 0x2000)
        assert btb.lookup(0x1000) == 0x2000

    def test_update_existing(self):
        btb = BranchTargetBuffer(entries=64, ways=2)
        btb.install(0x1000, 0x2000)
        btb.install(0x1000, 0x3000)
        assert btb.lookup(0x1000) == 0x3000

    def test_lru_within_set(self):
        btb = BranchTargetBuffer(entries=4, ways=2)  # 2 sets
        # Three pcs mapping to set 0 (pc>>2 even).
        btb.install(0x0, 0xA)
        btb.install(0x10, 0xB)
        btb.lookup(0x0)  # refresh
        btb.install(0x20, 0xC)  # evicts 0x10
        assert btb.lookup(0x0) == 0xA
        assert btb.lookup(0x10) is None

    def test_stats(self):
        btb = BranchTargetBuffer(entries=64, ways=2)
        btb.lookup(0x1000)
        btb.install(0x1000, 0x2000)
        btb.lookup(0x1000)
        assert btb.stats.lookups == 2
        assert btb.stats.misses == 1


class TestRas:
    def test_push_pop(self):
        ras = ReturnAddressStack(depth=4)
        ras.push(0x100)
        ras.push(0x200)
        assert ras.pop() == 0x200
        assert ras.pop() == 0x100
        assert ras.pop() is None

    def test_overflow_drops_oldest(self):
        ras = ReturnAddressStack(depth=2)
        ras.push(0x1)
        ras.push(0x2)
        ras.push(0x3)
        assert ras.overflows == 1
        assert ras.pop() == 0x3
        assert ras.pop() == 0x2
        assert ras.pop() is None


class TestMachineConfig:
    def test_paper_defaults(self):
        assert PAPER_MACHINE.issue_width == 8
        assert PAPER_MACHINE.pipeline_depth == 20
        assert PAPER_MACHINE.btb_entries == 512

    def test_front_depth(self):
        assert PAPER_MACHINE.front_depth == 14

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MachineConfig(issue_width=0)
        with pytest.raises(ConfigurationError):
            MachineConfig(pipeline_depth=4)


class TestSimulator:
    def _run(self, policy, trace, ilp=2.8, config=PAPER_MACHINE):
        return CycleSimulator(policy, config=config, ilp=ilp).run(trace)

    def test_ipc_bounds(self, small_trace):
        result = self._run(SingleCyclePolicy(build_gshare_fast(16 * 1024)), small_trace)
        assert 0.05 < result.ipc < PAPER_MACHINE.issue_width
        assert result.instructions == small_trace.instruction_count

    def test_better_predictor_means_better_ipc(self, small_trace):
        # A trained gshare.fast against a static not-taken predictor on a
        # taken-heavy trace: accuracy must translate into IPC.
        from repro.predictors.base import BranchPredictor

        class AlwaysNotTaken(BranchPredictor):
            name = "always-nt"

            @property
            def storage_bits(self):
                return 0

            def _predict(self, pc):
                return False, None

            def _update(self, pc, taken, predicted, context):
                pass

        good = self._run(SingleCyclePolicy(build_gshare_fast(64 * 1024)), small_trace)
        bad = self._run(SingleCyclePolicy(AlwaysNotTaken()), small_trace)
        assert good.ipc > bad.ipc
        assert good.misprediction_rate < bad.misprediction_rate

    def test_deeper_pipeline_hurts(self, small_trace):
        shallow = self._run(
            SingleCyclePolicy(build_gshare_fast(16 * 1024)),
            small_trace,
            config=MachineConfig(pipeline_depth=10),
        )
        deep = self._run(
            SingleCyclePolicy(build_gshare_fast(16 * 1024)),
            small_trace,
            config=MachineConfig(pipeline_depth=40),
        )
        assert deep.ipc < shallow.ipc

    def test_override_bubbles_cost_cycles(self, small_trace):
        """The same slow predictor with a larger override latency must lose
        IPC — the core mechanism behind Figure 2/7's right panel."""
        def run_with_latency(latency):
            overriding = OverridingPredictor(
                GsharePredictor(64 * 1024, history_length=14), slow_latency=latency
            )
            return self._run(OverridingPolicy(overriding), small_trace)

        fast = run_with_latency(2)
        slow = run_with_latency(10)
        assert slow.ipc < fast.ipc
        assert slow.stalls.override_bubble > fast.stalls.override_bubble

    def test_override_counts_reported(self, small_trace):
        overriding = OverridingPredictor(
            GsharePredictor(64 * 1024, history_length=14), slow_latency=4
        )
        result = self._run(OverridingPolicy(overriding), small_trace)
        assert result.overrides > 0
        assert result.overrides <= result.conditional_branches

    def test_dualpath_costs_bandwidth(self, small_trace):
        single = self._run(SingleCyclePolicy(GsharePredictor(8192)), small_trace)
        dual = self._run(
            DualPathFetchPolicy(DualPathPolicy(GsharePredictor(8192), latency=4)),
            small_trace,
        )
        assert dual.ipc < single.ipc

    def test_higher_ilp_helps(self, small_trace):
        low = self._run(SingleCyclePolicy(build_gshare_fast(16 * 1024)), small_trace, ilp=1.5)
        high = self._run(SingleCyclePolicy(build_gshare_fast(16 * 1024)), small_trace, ilp=4.0)
        assert high.ipc > low.ipc

    def test_stall_breakdown_populated(self, small_trace):
        result = self._run(SingleCyclePolicy(build_gshare_fast(16 * 1024)), small_trace)
        assert result.stalls.mispredict > 0
        assert result.stalls.dcache > 0

    def test_ilp_validation(self):
        with pytest.raises(ConfigurationError):
            CycleSimulator(SingleCyclePolicy(GsharePredictor(1024)), ilp=0)


class TestMultiBlockFetch:
    """Section 3.3.1: multiple fetch blocks (branch predictions) per cycle."""

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MachineConfig(blocks_per_cycle=0)

    def test_never_hurts(self, small_trace):
        base = CycleSimulator(
            SingleCyclePolicy(build_gshare_fast(16 * 1024)),
            config=MachineConfig(blocks_per_cycle=1),
            ilp=2.8,
        ).run(small_trace)
        dual = CycleSimulator(
            SingleCyclePolicy(build_gshare_fast(16 * 1024)),
            config=MachineConfig(blocks_per_cycle=2),
            ilp=2.8,
        ).run(small_trace)
        assert dual.ipc >= base.ipc - 1e-9

    def test_helps_frontend_bound_machines(self, small_trace):
        """With the backend wide open (ilp = issue width) fetch bandwidth is
        the limiter, so consuming two blocks per cycle must gain IPC."""
        base = CycleSimulator(
            SingleCyclePolicy(build_gshare_fast(16 * 1024)),
            config=MachineConfig(blocks_per_cycle=1),
            ilp=8.0,
        ).run(small_trace)
        dual = CycleSimulator(
            SingleCyclePolicy(build_gshare_fast(16 * 1024)),
            config=MachineConfig(blocks_per_cycle=2),
            ilp=8.0,
        ).run(small_trace)
        assert dual.ipc > base.ipc

    def test_buffer_sizing_matches_fetch_width(self):
        """The gshare.fast PHT buffer must grow with predictions per cycle
        (the 2**k * p rule), tying the front-end knob to the predictor."""
        from repro.core.gshare_fast import multi_branch_buffer_entries

        for blocks in (1, 2, 4, 8):
            entries = multi_branch_buffer_entries(3, blocks)
            assert entries == 8 * blocks
