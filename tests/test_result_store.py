"""Tests for the content-addressed sweep-result store.

Mirrors ``test_trace_store.py`` one layer up: the trust model (no entry is
believed without its checksum, its key, and its cell identity; corruption
means recompute-and-count, never crash or wrong data), the key recipe
(every input that determines a cell's floats changes the key; dict
ordering does not), zero-work warm sweeps, capacity eviction, and digest
stability across independent processes.
"""

from __future__ import annotations

import json
import os
import shutil
import subprocess
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.common.errors import ConfigurationError
from repro.harness.resultstore import (
    ResultCell,
    ResultStore,
    accuracy_key_payload,
    accuracy_result_key,
    active_result_store,
    ipc_key_payload,
    ipc_result_key,
    reset_result_store_stats,
    result_digest,
    result_store_capacity,
    result_store_stats,
)
from repro.harness.sweep import accuracy_sweep, ipc_sweep
from repro.predictors import registry
from repro.workloads.spec2000 import clear_trace_cache, reset_executor_runs

INSTRUCTIONS = 20_000
ENGINE = "scalar"
WARMUP = 0.2


@pytest.fixture
def store_env(tmp_path, monkeypatch):
    """A fresh result store wired into the environment, with clean caches,
    statistics and build counters on both sides of the test."""
    store_dir = tmp_path / "results"
    monkeypatch.setenv("REPRO_RESULT_STORE", str(store_dir))
    monkeypatch.setenv("REPRO_SCALE", "0.05")
    clear_trace_cache()
    reset_result_store_stats()
    reset_executor_runs()
    registry.reset_build_count()
    yield store_dir
    clear_trace_cache()
    reset_result_store_stats()
    reset_executor_runs()
    registry.reset_build_count()


def gshare_cells():
    return accuracy_sweep(["gshare"], [4096], benchmarks=["gcc"])


class TestStoreBasics:
    def test_cold_then_warm_zero_builds(self, store_env):
        cold = gshare_cells()
        stats = result_store_stats()
        assert stats["misses"] == 1
        assert stats["writes"] == 1
        assert registry.build_count() == 1

        registry.reset_build_count()
        clear_trace_cache()
        warm = gshare_cells()
        assert result_store_stats()["hits"] == 1
        assert registry.build_count() == 0  # the predictor was never built
        assert warm == cold  # identical floats, not just close

    def test_store_inactive_without_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_RESULT_STORE", raising=False)
        assert active_result_store() is None

    def test_ipc_cells_cached_too(self, store_env):
        cold = ipc_sweep(["gshare"], [4096], mode="ideal", benchmarks=["gcc"])
        assert result_store_stats()["writes"] == 1
        registry.reset_build_count()
        clear_trace_cache()
        warm = ipc_sweep(["gshare"], [4096], mode="ideal", benchmarks=["gcc"])
        assert result_store_stats()["hits"] == 1
        assert registry.build_count() == 0
        assert warm == cold

    def test_parallel_workers_share_store(self, store_env, tmp_path):
        """A parallel cold run populates the store (manifest records the
        writes); a serial warm run then hits every cell with zero builds."""
        run_dir = tmp_path / "run"
        cold = accuracy_sweep(
            ["gshare"], [2048, 4096], benchmarks=["gcc"], jobs=2,
            run_dir=str(run_dir),
        )
        with open(run_dir / "manifest.json", encoding="utf-8") as handle:
            manifest = json.load(handle)
        assert manifest["result_store"]["writes"] == 2
        assert manifest["result_store"]["hits"] == 0

        registry.reset_build_count()
        clear_trace_cache()
        warm = accuracy_sweep(["gshare"], [2048, 4096], benchmarks=["gcc"])
        assert result_store_stats()["hits"] == 2
        assert registry.build_count() == 0
        assert warm == cold


class TestKeys:
    def base_key(self):
        return accuracy_result_key("gcc", "gshare", 4096, INSTRUCTIONS, ENGINE, WARMUP)

    def test_key_depends_on_every_input(self):
        base = self.base_key()
        assert accuracy_result_key("eon", "gshare", 4096, INSTRUCTIONS, ENGINE, WARMUP) != base
        assert accuracy_result_key("gcc", "bimode", 4096, INSTRUCTIONS, ENGINE, WARMUP) != base
        assert accuracy_result_key("gcc", "gshare", 8192, INSTRUCTIONS, ENGINE, WARMUP) != base
        assert accuracy_result_key("gcc", "gshare", 4096, INSTRUCTIONS + 6, ENGINE, WARMUP) != base
        assert accuracy_result_key("gcc", "gshare", 4096, INSTRUCTIONS, "batch", WARMUP) != base
        assert accuracy_result_key("gcc", "gshare", 4096, INSTRUCTIONS, ENGINE, 0.3) != base
        assert accuracy_result_key("gcc", "gshare", 4096, INSTRUCTIONS, ENGINE, WARMUP, seed=2) != base
        assert self.base_key() == base

    def test_sizing_config_change_misses(self):
        """The key digests the *serialized sizing config*, not the family
        name: the same family resolving to a different config (a sizing
        rule change) is a different key, never a false hit."""
        payload = accuracy_key_payload("gcc", "gshare", 4096, INSTRUCTIONS, ENGINE, WARMUP)
        base = result_digest(payload)
        mutated = json.loads(json.dumps(payload))
        config = mutated["spec"]["config"]
        field = sorted(config)[0]
        config[field] = (config[field] + 1) if isinstance(config[field], int) else "other"
        assert result_digest(mutated) != base

    def test_ipc_key_depends_on_mode_and_machine(self):
        machine = {"issue_width": 4, "pipeline_depth": 20}
        base = ipc_result_key("gcc", "gshare", 4096, "ideal", INSTRUCTIONS, machine)
        assert ipc_result_key("gcc", "gshare", 4096, "overriding", INSTRUCTIONS, machine) != base
        deeper = dict(machine, pipeline_depth=30)
        assert ipc_result_key("gcc", "gshare", 4096, "ideal", INSTRUCTIONS, deeper) != base
        # Distinct kinds: an accuracy key can never collide with an IPC key.
        assert base != self.base_key()

    def test_key_invariant_to_machine_dict_order(self):
        forward = {"issue_width": 4, "pipeline_depth": 20, "btb_entries": 2048}
        backward = dict(reversed(list(forward.items())))
        assert list(forward) != list(backward)
        assert ipc_result_key("gcc", "gshare", 4096, "ideal", INSTRUCTIONS, forward) == \
            ipc_result_key("gcc", "gshare", 4096, "ideal", INSTRUCTIONS, backward)

    def test_key_stable_across_processes(self):
        """The key is a pure function of the config — a second interpreter
        computes the identical digest (no hash randomization, dict
        ordering, or repr leakage)."""
        here = self.base_key()
        script = (
            "from repro.harness.resultstore import accuracy_result_key\n"
            f"print(accuracy_result_key('gcc', 'gshare', 4096, {INSTRUCTIONS}, "
            f"'{ENGINE}', {WARMUP}))\n"
        )
        env = dict(os.environ, PYTHONPATH="src")
        there = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            check=True,
            env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        ).stdout.strip()
        assert there == here


class TestFaultInjection:
    """Corrupted store entries are detected, counted, and recomputed —
    results never change and nothing crashes."""

    def _entry(self):
        entries = active_result_store().entries()
        assert len(entries) == 1
        return entries[0]

    def _assert_recovers(self, reference):
        clear_trace_cache()
        reset_result_store_stats()
        registry.reset_build_count()
        recovered = gshare_cells()
        stats = result_store_stats()
        assert stats["corrupt"] == 1
        assert stats["hits"] == 0
        assert stats["misses"] == 1
        assert stats["writes"] == 1  # the entry was recomputed and rewritten
        assert registry.build_count() == 1
        assert recovered == reference
        # The rewritten entry is sound: a further warm load succeeds.
        clear_trace_cache()
        reset_result_store_stats()
        again = gshare_cells()
        assert result_store_stats()["hits"] == 1
        assert result_store_stats()["corrupt"] == 0
        assert again == reference

    def test_truncated_entry_recomputes(self, store_env):
        reference = gshare_cells()
        path = self._entry()
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        self._assert_recovers(reference)

    def test_bit_flipped_payload_recomputes(self, store_env):
        """A payload whose floats changed under an intact structure fails
        the checksum — bit rot cannot smuggle in wrong numbers."""
        reference = gshare_cells()
        path = self._entry()
        entry = json.loads(path.read_text(encoding="utf-8"))
        entry["payload"]["misprediction_percent"] += 0.5
        path.write_text(json.dumps(entry, indent=2, sort_keys=True), encoding="utf-8")
        self._assert_recovers(reference)

    def test_checksum_mismatch_recomputes(self, store_env):
        reference = gshare_cells()
        path = self._entry()
        entry = json.loads(path.read_text(encoding="utf-8"))
        entry["checksum"] = "0" * len(entry["checksum"])
        path.write_text(json.dumps(entry, indent=2, sort_keys=True), encoding="utf-8")
        self._assert_recovers(reference)

    def test_foreign_entry_under_right_name_recomputes(self, store_env):
        """An internally-consistent entry answering a *different* question
        (hand-copied under this cell's filename) is refused: the stored key
        and cell identity are both cross-checked on load."""
        reference = gshare_cells()
        gcc_entry = self._entry()
        accuracy_sweep(["gshare"], [8192], benchmarks=["gcc"])
        other = [e for e in active_result_store().entries() if e != gcc_entry]
        assert len(other) == 1
        shutil.copyfile(other[0], gcc_entry)
        other[0].unlink()
        self._assert_recovers(reference)

    def test_garbage_bytes_recompute(self, store_env):
        reference = gshare_cells()
        self._entry().write_bytes(b"garbage")
        self._assert_recovers(reference)

    def test_corrupt_counter_reaches_obs(self, store_env, obs_enabled):
        gshare_cells()
        self._entry().write_bytes(b"garbage")
        clear_trace_cache()
        gshare_cells()
        assert obs_enabled.counter("result_store.corrupt").value == 1

    def test_stale_tmp_sibling_ignored_and_cleaned(self, store_env):
        reference = gshare_cells()
        path = self._entry()
        tmp = path.parent / f"{path.name}.tmp.99999"
        tmp.write_bytes(b"\x00" * 50)  # a writer died mid-write
        clear_trace_cache()
        reset_result_store_stats()
        warm = gshare_cells()
        assert warm == reference
        assert result_store_stats()["hits"] == 1  # the real entry, not the tmp
        # The dropping is swept on the next write to the same entry.
        path.unlink()
        clear_trace_cache()
        gshare_cells()
        assert not tmp.exists()

    def test_probe_is_non_mutating(self, store_env):
        """Dry-run classification must not repair, delete, or count."""
        gshare_cells()
        path = self._entry()
        path.write_bytes(b"garbage")
        store = active_result_store()
        key = accuracy_result_key(
            "gcc", "gshare", 4096,
            *self._sweep_key_tail(),
        )
        cell = ResultCell("accuracy", "gcc", "gshare", 4096)
        before = result_store_stats()
        assert store.probe(key, cell) is False
        assert path.exists()  # still there for the real run to repair
        assert result_store_stats() == before

    @staticmethod
    def _sweep_key_tail():
        from repro.harness.experiment import default_engine
        from repro.harness.scale import WARMUP_FRACTION, accuracy_instructions

        return (accuracy_instructions(), default_engine(), WARMUP_FRACTION)


class TestEviction:
    def test_capacity_bounds_entries(self, tmp_path):
        reset_result_store_stats()
        store = ResultStore(tmp_path / "s", capacity=2)
        for i, budget in enumerate([2048, 4096, 8192]):
            cell = ResultCell("accuracy", "gcc", "gshare", budget)
            key = result_digest({"budget": budget})
            store.save(key, cell, {"misprediction_percent": float(i)})
            entry = store.entry_path(key, cell)
            os.utime(entry, (1_000_000 + i, 1_000_000 + i))
        assert len(store.entries()) == 2
        assert result_store_stats()["evictions"] == 1
        # Oldest (2048) was evicted.
        oldest = result_digest({"budget": 2048})
        assert store.load(oldest, ResultCell("accuracy", "gcc", "gshare", 2048)) is None

    def test_capacity_env_validation(self, monkeypatch):
        monkeypatch.setenv("REPRO_RESULT_STORE_CAPACITY", "nope")
        with pytest.raises(ConfigurationError):
            result_store_capacity()
        monkeypatch.setenv("REPRO_RESULT_STORE_CAPACITY", "0")
        with pytest.raises(ConfigurationError):
            result_store_capacity()
        monkeypatch.setenv("REPRO_RESULT_STORE_CAPACITY", "7")
        assert result_store_capacity() == 7


# -- property tests ------------------------------------------------------------

payload_values = st.one_of(
    st.floats(allow_nan=False, allow_infinity=False),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.booleans(),
    st.text(max_size=20),
)
payloads = st.dictionaries(
    st.text(min_size=1, max_size=20), payload_values, min_size=1, max_size=8
)


@pytest.fixture(scope="module")
def property_store(tmp_path_factory):
    """One store directory shared by every Hypothesis example (keys are
    content digests, so distinct payloads never collide)."""
    return ResultStore(tmp_path_factory.mktemp("prop-results"), capacity=100_000)


@settings(max_examples=100, deadline=None)
@given(payload=payloads)
def test_payload_round_trips_bit_identical(property_store, payload):
    """save -> load returns the exact payload: equal values *and* equal
    canonical JSON bytes (float repr round-trips exactly)."""
    key = result_digest(payload)
    cell = ResultCell("accuracy", "gcc", "gshare", 4096)
    saved = property_store.save(key, cell, payload)
    loaded = property_store.load(key, cell)
    canonical = lambda p: json.dumps(p, sort_keys=True, separators=(",", ":"))
    assert loaded == payload
    assert canonical(saved) == canonical(payload) == canonical(loaded)
    assert result_digest(loaded) == result_digest(payload)


@settings(max_examples=100, deadline=None)
@given(payload=payloads, seed=st.randoms(use_true_random=False))
def test_digest_invariant_to_dict_ordering(payload, seed):
    items = list(payload.items())
    seed.shuffle(items)
    assert result_digest(dict(items)) == result_digest(payload)


@settings(max_examples=50, deadline=None)
@given(
    family=st.sampled_from(["gshare", "bimode", "perceptron", "gshare_fast"]),
    budget_exp=st.integers(min_value=11, max_value=19),
    mode=st.sampled_from(["ideal", "overriding"]),
    benchmark=st.sampled_from(["gcc", "eon", "gzip"]),
)
def test_key_payloads_serialize_bit_identical(family, budget_exp, mode, benchmark):
    """For arbitrary family/budget/mode combinations the key payload
    survives a JSON round-trip bit-identically (same digest), and two
    independent derivations agree — the preconditions for cross-process
    cache sharing."""
    budget = 2**budget_exp
    machine = {"issue_width": 4, "pipeline_depth": 20}
    for payload in (
        accuracy_key_payload(benchmark, family, budget, INSTRUCTIONS, ENGINE, WARMUP),
        ipc_key_payload(benchmark, family, budget, mode, INSTRUCTIONS, machine),
    ):
        roundtrip = json.loads(json.dumps(payload))
        assert result_digest(roundtrip) == result_digest(payload)
    again = accuracy_key_payload(benchmark, family, budget, INSTRUCTIONS, ENGINE, WARMUP)
    assert result_digest(again) == result_digest(
        accuracy_key_payload(benchmark, family, budget, INSTRUCTIONS, ENGINE, WARMUP)
    )
