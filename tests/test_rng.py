"""Tests for deterministic RNG stream derivation."""

from __future__ import annotations

from repro.common.rng import derive, derive_seed


class TestDerive:
    def test_same_path_same_stream(self):
        a = derive(42, "workload", "gcc")
        b = derive(42, "workload", "gcc")
        assert a.integers(0, 1 << 30, size=16).tolist() == b.integers(
            0, 1 << 30, size=16
        ).tolist()

    def test_different_names_differ(self):
        a = derive(42, "workload", "gcc")
        b = derive(42, "workload", "gzip")
        assert a.integers(0, 1 << 30, size=16).tolist() != b.integers(
            0, 1 << 30, size=16
        ).tolist()

    def test_different_seeds_differ(self):
        a = derive(1, "x")
        b = derive(2, "x")
        assert a.integers(0, 1 << 30, size=16).tolist() != b.integers(
            0, 1 << 30, size=16
        ).tolist()

    def test_path_is_not_concatenation_ambiguous(self):
        # ("ab", "c") must not collide with ("a", "bc").
        a = derive_seed(7, "ab", "c")
        b = derive_seed(7, "a", "bc")
        assert a != b

    def test_integer_names_supported(self):
        assert derive_seed(7, "fn", 1) != derive_seed(7, "fn", 2)

    def test_derive_seed_matches_derive(self):
        import numpy as np

        seed = derive_seed(9, "s")
        from_seed = np.random.default_rng(seed).integers(0, 1 << 30, size=8).tolist()
        from_derive = derive(9, "s").integers(0, 1 << 30, size=8).tolist()
        assert from_seed == from_derive
