"""Determinism guarantees: same seed, same results — bit for bit.

The whole experiment pipeline must be a pure function of its seeds (the
``repro.common.rng`` contract): two fresh runs of the workload generator
and of an accuracy sweep must agree exactly, with no hidden global state.
Trace caching is defeated explicitly so these tests exercise regeneration,
not cache hits.
"""

from __future__ import annotations

import numpy as np

from repro.common.rng import derive, derive_seed
from repro.harness.sweep import accuracy_sweep
from repro.workloads.spec2000 import clear_trace_cache, spec2000_trace


def fresh_trace(name: str, instructions: int, seed: int = 1):
    """Generate a trace bypassing the trace cache (forces a fresh executor)."""
    clear_trace_cache()
    return spec2000_trace(name, instructions=instructions, seed=seed)


def test_same_seed_same_trace():
    first = fresh_trace("gcc", 40_000)
    second = fresh_trace("gcc", 40_000)
    assert first.blocks == second.blocks
    assert first.instruction_count == second.instruction_count


def test_different_seed_different_trace():
    first = fresh_trace("gcc", 40_000, seed=1)
    second = fresh_trace("gcc", 40_000, seed=2)
    assert first.blocks != second.blocks


def test_sweep_statistics_are_reproducible():
    """Two fresh sweeps (caches cleared in between) agree cell for cell,
    on both engines."""
    kwargs = dict(
        families=["gshare", "bimode"],
        budgets=[4 * 1024],
        benchmarks=["gcc", "eon"],
        instructions=30_000,
    )
    clear_trace_cache()
    first = accuracy_sweep(**kwargs, engine="batch")
    clear_trace_cache()
    second = accuracy_sweep(**kwargs, engine="batch")
    clear_trace_cache()
    scalar = accuracy_sweep(**kwargs, engine="scalar")
    assert first == second
    assert first == scalar


def test_derive_is_deterministic_and_independent():
    a = derive(7, "workload", "gcc").integers(0, 1 << 30, size=16)
    b = derive(7, "workload", "gcc").integers(0, 1 << 30, size=16)
    np.testing.assert_array_equal(a, b)
    # A different name path yields an independent stream, and adding a new
    # consumer never perturbs existing ones (seed derivation is by name,
    # not by draw order).
    c = derive(7, "workload", "eon").integers(0, 1 << 30, size=16)
    assert not np.array_equal(a, c)
    assert derive_seed(7, "workload", "gcc") != derive_seed(7, "workload", "eon")
    assert derive_seed(7, "workload", "gcc") == derive_seed(7, "workload", "gcc")
