"""Property-based tests: arbitrary client interleavings, monotone jobs.

Hypothesis drives random submit/poll/fetch/drain sequences against a
fresh service instance per example (all examples share one result/trace
store, so only the first example pays for predictor work — later ones
exercise the same state machine purely from cache).  The pinned
invariants:

* **Monotonicity** — once any observation reports a job ``completed``,
  every later observation reports ``completed`` (terminal states are
  absorbing; nothing a client does can un-complete a job).
* **Idempotence** — every successful figure/result fetch of one job
  returns byte-identical payloads, no matter where in the interleaving
  it happens.
* **Identity** — resubmitting the same spec always yields the same
  content-addressed job id.
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from tests.service_helpers import SCALE, make_app, mini_spec

OPS = ("submit", "poll", "figure", "result", "drain")

#: States a job may legally report.
LEGAL = {"queued", "running", "partial", "failed", "completed"}


@pytest.fixture(scope="module", autouse=True)
def module_env(tmp_path_factory):
    """Module-wide env: shared stores so examples after the first are
    pure cache traffic (Hypothesis runs dozens of them)."""
    root = tmp_path_factory.mktemp("svcprop")
    patcher = pytest.MonkeyPatch()
    patcher.setenv("REPRO_SCALE", SCALE)
    patcher.setenv("REPRO_BENCHMARKS", "gcc,eon")
    patcher.setenv("REPRO_TRACE_STORE", str(root / "traces"))
    patcher.setenv("REPRO_RESULT_STORE", str(root / "results"))
    for var in ("REPRO_LOG", "REPRO_RUN_DIR", "REPRO_CAMPAIGN_ABORT_AFTER"):
        patcher.delenv(var, raising=False)
    yield root
    patcher.undo()


def fresh_service(root: Path):
    data_dir = Path(tempfile.mkdtemp(prefix="svc", dir=root))
    return make_app(data_dir)


@settings(max_examples=25, deadline=None)
@given(ops=st.lists(st.sampled_from(OPS), min_size=1, max_size=14))
def test_interleavings_never_regress_completed(module_env, ops):
    app, executor = fresh_service(module_env)
    spec = mini_spec()
    job_id: str | None = None
    seen_completed = False
    figure_payloads: set[bytes] = set()
    result_payloads: set[bytes] = set()

    def observe(state: str) -> None:
        nonlocal seen_completed
        assert state in LEGAL
        if seen_completed:
            assert state == "completed", (
                f"status regressed from completed to {state!r} after {ops}"
            )
        if state == "completed":
            seen_completed = True

    for op in ops:
        if op == "submit":
            code, payload, _ = app.handle(
                "POST", "/v1/jobs", {}, json.dumps(spec).encode()
            )
            assert code in (200, 202)
            doc = json.loads(payload)
            if job_id is None:
                job_id = doc["job_id"]
            assert doc["job_id"] == job_id  # content-addressed identity
            observe(doc["state"])
            executor.enqueue(job_id)
        elif op == "drain":
            executor.run_pending()
        elif job_id is None:
            continue  # poll/fetch before any submit: nothing to observe
        elif op == "poll":
            code, payload, _ = app.handle("GET", f"/v1/jobs/{job_id}")
            assert code == 200
            observe(json.loads(payload)["state"])
        elif op == "figure":
            code, payload, _ = app.handle("GET", f"/v1/jobs/{job_id}/figure")
            assert code in (200, 409)
            if code == 200:
                figure_payloads.add(bytes(payload))
                observe("completed")  # a served figure implies completion
        elif op == "result":
            code, status_payload, _ = app.handle("GET", f"/v1/jobs/{job_id}")
            digest = json.loads(status_payload).get("figure_digest")
            if digest:
                code, payload, _ = app.handle("GET", f"/v1/results/{digest}")
                assert code == 200
                result_payloads.add(bytes(payload))

    # Idempotence: however many fetches happened, one distinct payload.
    assert len(figure_payloads) <= 1
    assert len(result_payloads) <= 1
    if figure_payloads and result_payloads:
        assert figure_payloads == result_payloads


@settings(max_examples=10, deadline=None)
@given(data=st.data())
def test_fetches_idempotent_after_completion(module_env, data):
    """Any number of fetches after completion: byte-identical payloads."""
    app, executor = fresh_service(module_env)
    spec = mini_spec()
    code, payload, _ = app.handle("POST", "/v1/jobs", {}, json.dumps(spec).encode())
    doc = json.loads(payload)
    executor.enqueue(doc["job_id"])
    executor.run_pending()
    code, payload, _ = app.handle("GET", f"/v1/jobs/{doc['job_id']}")
    status = json.loads(payload)
    assert status["state"] == "completed"

    fetches = data.draw(
        st.lists(st.sampled_from(["figure", "manifest", "result"]), min_size=2, max_size=8)
    )
    by_kind: dict[str, set[bytes]] = {}
    for kind in fetches:
        if kind == "figure":
            code, payload, _ = app.handle("GET", f"/v1/jobs/{doc['job_id']}/figure")
        elif kind == "manifest":
            code, payload, _ = app.handle("GET", f"/v1/jobs/{doc['job_id']}/manifest")
        else:
            code, payload, _ = app.handle(
                "GET", f"/v1/results/{status['figure_digest']}"
            )
        assert code == 200
        by_kind.setdefault(kind, set()).add(bytes(payload))
    for kind, payloads in by_kind.items():
        assert len(payloads) == 1, f"{kind} fetches were not idempotent"
