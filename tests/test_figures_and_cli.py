"""Smoke tests for figure regeneration and the CLI (tiny scale)."""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.harness import figures
from repro.harness.cli import RUNNERS, main

#: The shipped declarative target configs (consumed by --config).
CONFIGS = Path(__file__).resolve().parent.parent / "configs"


@pytest.fixture(autouse=True)
def tiny_scale(monkeypatch):
    """Shrink every figure to a two-benchmark, short-trace configuration."""
    monkeypatch.setenv("REPRO_SCALE", "0.1")
    monkeypatch.setenv("REPRO_BENCHMARKS", "gzip,eon")


SMALL_BUDGETS = [8 * 1024, 64 * 1024]


class TestFigures:
    def test_figure1(self):
        figure = figures.figure1(budgets=SMALL_BUDGETS)
        assert set(figure.series) == set(figures.FIGURE1_FAMILIES)
        for family in figure.series:
            assert set(figure.series[family]) == set(SMALL_BUDGETS)
        text = figure.render()
        assert "Figure 1" in text and "64K" in text

    def test_figure5(self):
        figure = figures.figure5(budgets=SMALL_BUDGETS)
        assert "gshare_fast" in figure.series
        assert all(0 <= v < 100 for values in figure.series.values() for v in values.values())

    def test_figure6(self):
        figure = figures.figure6(budget_bytes=64 * 1024)
        assert figure.benchmarks == ["gzip", "eon"]
        assert "perceptron" in figure.series
        assert figure.means["perceptron"] > 0
        assert "arith.mean" in figure.render()

    def test_figure2(self):
        figure = figures.figure2(budgets=[16 * 1024])
        labels = set(figure.series)
        assert any("(no delay)" in label for label in labels)
        assert any("(overriding)" in label for label in labels)

    def test_figure7_two_panels(self):
        left, right = figures.figure7(budgets=[16 * 1024])
        assert "ideal" in left.title
        assert "overriding" in right.title
        for panel in (left, right):
            assert "gshare_fast" in panel.series
            for values in panel.series.values():
                for ipc in values.values():
                    assert 0 < ipc < 8

    def test_figure8(self):
        figure = figures.figure8(budget_bytes=16 * 1024)
        assert figure.mean_label == "harm.mean"
        assert set(figure.series) == {"multicomponent", "perceptron", "gshare_fast"}

    def test_table1_contents(self):
        text = figures.table1()
        assert "64 KB" in text
        assert "2 MB" in text
        assert "512 entry" in text
        assert "20" in text

    def test_table2_contents(self):
        text = figures.table2()
        assert "18K" in text and "512K" in text

    def test_delayed_update_study(self):
        result = figures.delayed_update_study(budget_bytes=64 * 1024, delays=(0, 64))
        assert set(result.delays) == {0, 64}
        # Section 3.2: slow update costs almost nothing.
        delta = abs(result.misprediction_percent[64] - result.misprediction_percent[0])
        assert delta < 1.0
        ipc_ratio = result.ipc[64] / result.ipc[0]
        assert 0.97 < ipc_ratio < 1.03
        assert "update delay" in result.render()

    def test_extension_pipelined_families(self):
        figure = figures.extension_pipelined_families(budgets=[16 * 1024])
        assert set(figure.series) == {"gshare_fast", "bimode_fast"}
        assert (
            figure.series["bimode_fast"][16 * 1024]
            < figure.series["gshare_fast"][16 * 1024]
        )

    def test_override_disagreement(self):
        result = figures.override_disagreement("perceptron", budget_bytes=16 * 1024)
        assert set(result.per_benchmark) == {"gzip", "eon"}
        assert 0 < result.mean_rate < 0.5
        assert "override" in result.render()


class TestCli:
    def test_runner_registry_covers_all_experiments(self):
        expected = {
            "figure1",
            "figure2",
            "table1",
            "table2",
            "figure5",
            "figure6",
            "figure7",
            "figure8",
            "delayed-update",
            "override",
            "extension",
        }
        assert set(RUNNERS) == expected

    def test_cli_runs_tables(self, capsys):
        assert main(["table1", "table2"]) == 0
        output = capsys.readouterr().out
        assert "Table 1" in output and "Table 2" in output

    def test_cli_rejects_unknown(self):
        with pytest.raises(SystemExit):
            main(["figure9"])

    def test_cli_rejects_empty_invocation(self):
        with pytest.raises(SystemExit):
            main([])

    def test_cli_list_families(self, capsys):
        from repro.predictors import registry

        assert main(["--list-families"]) == 0
        output = capsys.readouterr().out
        for family in registry.family_names():
            assert family in output
        assert "gshare_fast" in output

    def test_default_run_writes_no_sidecars(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["table2"]) == 0
        assert list(tmp_path.iterdir()) == []
        output = capsys.readouterr().out
        assert "Counters" not in output  # no metrics tables by default

    def test_output_dir_writes_text_and_manifest(self, tmp_path, capsys):
        out_dir = tmp_path / "results"
        assert main(["table2", "--output-dir", str(out_dir)]) == 0
        text_path = out_dir / "table2.txt"
        manifest_path = out_dir / "table2.manifest.json"
        assert text_path.exists() and manifest_path.exists()
        rendered = capsys.readouterr().out
        assert text_path.read_text() == rendered.rstrip("\n") + "\n"

        from repro.obs.manifest import load_manifest, output_digest

        manifest = load_manifest(str(manifest_path))
        assert manifest["target"] == "table2"
        assert manifest["output"] == output_digest(text_path.read_text()[:-1])
        assert manifest["config"]["benchmarks"] == ["gzip", "eon"]

    def test_profile_prints_metrics_and_writes_manifest(self, tmp_path, capsys):
        from repro import obs
        from repro.obs.manifest import load_manifest

        out_dir = tmp_path / "results"
        assert main(["extension", "--profile", "--output-dir", str(out_dir)]) == 0
        output = capsys.readouterr().out
        assert "Counters" in output
        assert "accuracy.measurements" in output
        assert "Hard-to-predict branches:" in output

        manifest = load_manifest(str(out_dir / "extension.manifest.json"))
        assert "extension" in manifest["phases"]
        assert "extension.sweep" in manifest["phases"]
        assert manifest["metrics"]["counters"]["accuracy.measurements"] > 0
        assert manifest["metrics"]["attributions"]
        # The flag is scoped to the run: observability is off again after.
        assert obs.enabled_override() is None
        assert not obs.enabled()

    def test_profile_output_text_matches_unprofiled(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)  # --profile writes its manifest to cwd
        assert main(["table2"]) == 0
        plain = capsys.readouterr().out
        assert main(["table2", "--profile"]) == 0
        profiled = capsys.readouterr().out
        assert profiled.startswith(plain)  # figure text is byte-identical


def parse_dry_run(output: str) -> dict[str, dict]:
    """The --dry-run classification table as {target: {mode, cells, ...}}.

    Columns follow ``report.CLASSIFICATION_COLUMNS``; ``hit``/``miss`` are
    derived the way the planner groups the five classes (hit = nothing to
    execute, miss = must run).
    """
    rows = {}
    for line in output.splitlines():
        parts = line.split()
        if len(parts) >= 10 and parts[1] in ("runner", "sweep", "inferred"):
            row = {
                "mode": parts[1],
                "cells": int(parts[2]),
                "completed": int(parts[3]),
                "results_missing": int(parts[4]),
                "failed": int(parts[5]),
                "partial": int(parts[6]),
                "missing": int(parts[7]),
                "inferred": parts[8] == "yes",
            }
            row["hit"] = row["completed"] + row["results_missing"]
            row["miss"] = row["failed"] + row["partial"] + row["missing"]
            rows[parts[0]] = row
    return rows


class TestConfigTargets:
    """The --config path: declarative targets match the legacy CLI byte for
    byte, --dry-run classifies cells against the result store, inferred
    targets resolve purely from other configs' stored results, and an
    external family gets a figure with zero harness edits."""

    #: Cells in the full Figure 1 grid at the two-benchmark test scale.
    FIGURE1_CELLS = 4 * 9 * 2

    @pytest.fixture(scope="class")
    def warmed(self, tmp_path_factory):
        """One cold legacy figure1 run feeding a class-shared result store
        (the expensive sweep is paid once; every test below runs warm)."""
        from repro.harness.resultstore import reset_result_store_stats
        from repro.workloads.spec2000 import clear_trace_cache

        store = tmp_path_factory.mktemp("cfg-results")
        out = tmp_path_factory.mktemp("cfg-out")
        env = {
            "REPRO_SCALE": "0.05",
            "REPRO_BENCHMARKS": "gzip,eon",
            "REPRO_RESULT_STORE": str(store),
        }
        saved = {key: os.environ.get(key) for key in env}
        os.environ.update(env)
        clear_trace_cache()
        reset_result_store_stats()
        try:
            assert main(["figure1", "--output-dir", str(out / "legacy")]) == 0
            yield {
                "store": store,
                "out": out,
                "legacy": (out / "legacy" / "figure1.txt").read_bytes(),
            }
        finally:
            for key, value in saved.items():
                if value is None:
                    os.environ.pop(key, None)
                else:
                    os.environ[key] = value

    @pytest.fixture(autouse=True)
    def tiny_scale(self, monkeypatch, warmed):
        """Override the module fixture: same scale/benchmarks as the cold
        run, pointed at the class-shared store, with clean counters."""
        from repro.harness.resultstore import reset_result_store_stats
        from repro.predictors import registry
        from repro.workloads.spec2000 import clear_trace_cache

        monkeypatch.setenv("REPRO_SCALE", "0.05")
        monkeypatch.setenv("REPRO_BENCHMARKS", "gzip,eon")
        monkeypatch.setenv("REPRO_RESULT_STORE", str(warmed["store"]))
        clear_trace_cache()
        reset_result_store_stats()
        registry.reset_build_count()

    def test_explicit_config_matches_legacy_with_zero_builds(self, warmed, capsys):
        from repro.predictors import registry

        out = warmed["out"] / "explicit"
        assert main(["--config", str(CONFIGS / "figure1.json"), "--output-dir", str(out)]) == 0
        capsys.readouterr()
        assert (out / "figure1.txt").read_bytes() == warmed["legacy"]
        assert registry.build_count() == 0  # served entirely from the store

    def test_inferred_config_matches_legacy_with_zero_builds(self, warmed, capsys):
        from repro.predictors import registry

        out = warmed["out"] / "inferred"
        assert (
            main(
                [
                    "--config", str(CONFIGS / "figure1.json"),
                    "--config", str(CONFIGS / "figure1_inferred.json"),
                    "--output-dir", str(out),
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert (out / "figure1_inferred.txt").read_bytes() == warmed["legacy"]
        assert registry.build_count() == 0

    def test_dry_run_classifies_hits_and_misses(self, warmed, capsys, monkeypatch):
        from repro.predictors import registry

        args = [
            "--config", str(CONFIGS / "figure1.json"),
            "--config", str(CONFIGS / "figure1_inferred.json"),
            "--dry-run",
        ]
        assert main(args) == 0
        rows = parse_dry_run(capsys.readouterr().out)
        figure1 = rows["figure1"]
        assert figure1["mode"] == "runner"
        assert figure1["cells"] == self.FIGURE1_CELLS
        assert figure1["hit"] == self.FIGURE1_CELLS and figure1["miss"] == 0
        assert figure1["inferred"] is False
        assert rows["figure1_inferred"]["inferred"] is True
        assert rows["figure1_inferred"]["hit"] == self.FIGURE1_CELLS
        assert registry.build_count() == 0  # classification executes nothing

        # Against an empty store every cell is a miss.
        monkeypatch.setenv("REPRO_RESULT_STORE", str(warmed["out"] / "empty-store"))
        assert main(args) == 0
        rows = parse_dry_run(capsys.readouterr().out)
        assert rows["figure1"]["miss"] == self.FIGURE1_CELLS
        assert rows["figure1"]["hit"] == 0

    def test_toy_family_config_needs_no_harness_edits(self, warmed, tmp_path, capsys):
        """A config naming an external family (registered by its own module,
        listed in family_modules) renders a figure through the stock CLI."""
        config = {
            "schema": 1,
            "target": "toy_figure",
            "mode": "sweep",
            "title": "Toy family: mean misprediction (%)",
            "family_modules": ["tests.toy_family"],
            "grids": [
                {
                    "kind": "accuracy",
                    "families": ["toy_direct"],
                    "budgets": [8192, 65536],
                }
            ],
        }
        path = tmp_path / "toy.json"
        path.write_text(json.dumps(config), encoding="utf-8")
        out = tmp_path / "out"
        assert main(["--config", str(path), "--output-dir", str(out)]) == 0
        capsys.readouterr()
        text = (out / "toy_figure.txt").read_text(encoding="utf-8")
        assert "Toy family" in text and "toy_direct" in text and "64K" in text

    def test_config_directory_loads_every_file(self, capsys):
        """--config with a directory loads all *.json, and the shipped
        configs/ directory itself is a valid, classifiable set."""
        assert main(["--config", str(CONFIGS), "--dry-run"]) == 0
        rows = parse_dry_run(capsys.readouterr().out)
        assert set(rows) >= {"figure1", "figure7", "table1", "figure1_inferred", "table_mid_accuracy"}
        assert rows["table1"]["cells"] == 0  # static table: nothing to sweep

    def test_inferred_requires_loaded_base(self):
        with pytest.raises(SystemExit):
            main(["--config", str(CONFIGS / "figure1_inferred.json"), "--dry-run"])

    def test_inferred_cells_must_be_covered(self, tmp_path):
        config = {
            "schema": 1,
            "target": "uncovered",
            "mode": "inferred",
            "title": "x",
            "based_on": ["figure1"],
            "grids": [
                {"kind": "accuracy", "families": ["gshare"], "budgets": [1024]}
            ],
        }
        path = tmp_path / "uncovered.json"
        path.write_text(json.dumps(config), encoding="utf-8")
        with pytest.raises(SystemExit):
            main(["--config", str(CONFIGS / "figure1.json"), "--config", str(path), "--dry-run"])

    def test_bad_schema_and_bad_mode_rejected(self, tmp_path):
        bad_schema = tmp_path / "bad_schema.json"
        bad_schema.write_text('{"schema": 99, "target": "x", "mode": "runner"}')
        with pytest.raises(SystemExit):
            main(["--config", str(bad_schema), "--dry-run"])
        bad_mode = tmp_path / "bad_mode.json"
        bad_mode.write_text('{"schema": 1, "target": "x", "mode": "psychic"}')
        with pytest.raises(SystemExit):
            main(["--config", str(bad_mode), "--dry-run"])

    def test_dry_run_requires_config(self):
        with pytest.raises(SystemExit):
            main(["--dry-run"])
