"""Smoke tests for figure regeneration and the CLI (tiny scale)."""

from __future__ import annotations

import pytest

from repro.harness import figures
from repro.harness.cli import RUNNERS, main


@pytest.fixture(autouse=True)
def tiny_scale(monkeypatch):
    """Shrink every figure to a two-benchmark, short-trace configuration."""
    monkeypatch.setenv("REPRO_SCALE", "0.1")
    monkeypatch.setenv("REPRO_BENCHMARKS", "gzip,eon")


SMALL_BUDGETS = [8 * 1024, 64 * 1024]


class TestFigures:
    def test_figure1(self):
        figure = figures.figure1(budgets=SMALL_BUDGETS)
        assert set(figure.series) == set(figures.FIGURE1_FAMILIES)
        for family in figure.series:
            assert set(figure.series[family]) == set(SMALL_BUDGETS)
        text = figure.render()
        assert "Figure 1" in text and "64K" in text

    def test_figure5(self):
        figure = figures.figure5(budgets=SMALL_BUDGETS)
        assert "gshare_fast" in figure.series
        assert all(0 <= v < 100 for values in figure.series.values() for v in values.values())

    def test_figure6(self):
        figure = figures.figure6(budget_bytes=64 * 1024)
        assert figure.benchmarks == ["gzip", "eon"]
        assert "perceptron" in figure.series
        assert figure.means["perceptron"] > 0
        assert "arith.mean" in figure.render()

    def test_figure2(self):
        figure = figures.figure2(budgets=[16 * 1024])
        labels = set(figure.series)
        assert any("(no delay)" in label for label in labels)
        assert any("(overriding)" in label for label in labels)

    def test_figure7_two_panels(self):
        left, right = figures.figure7(budgets=[16 * 1024])
        assert "ideal" in left.title
        assert "overriding" in right.title
        for panel in (left, right):
            assert "gshare_fast" in panel.series
            for values in panel.series.values():
                for ipc in values.values():
                    assert 0 < ipc < 8

    def test_figure8(self):
        figure = figures.figure8(budget_bytes=16 * 1024)
        assert figure.mean_label == "harm.mean"
        assert set(figure.series) == {"multicomponent", "perceptron", "gshare_fast"}

    def test_table1_contents(self):
        text = figures.table1()
        assert "64 KB" in text
        assert "2 MB" in text
        assert "512 entry" in text
        assert "20" in text

    def test_table2_contents(self):
        text = figures.table2()
        assert "18K" in text and "512K" in text

    def test_delayed_update_study(self):
        result = figures.delayed_update_study(budget_bytes=64 * 1024, delays=(0, 64))
        assert set(result.delays) == {0, 64}
        # Section 3.2: slow update costs almost nothing.
        delta = abs(result.misprediction_percent[64] - result.misprediction_percent[0])
        assert delta < 1.0
        ipc_ratio = result.ipc[64] / result.ipc[0]
        assert 0.97 < ipc_ratio < 1.03
        assert "update delay" in result.render()

    def test_extension_pipelined_families(self):
        figure = figures.extension_pipelined_families(budgets=[16 * 1024])
        assert set(figure.series) == {"gshare_fast", "bimode_fast"}
        assert (
            figure.series["bimode_fast"][16 * 1024]
            < figure.series["gshare_fast"][16 * 1024]
        )

    def test_override_disagreement(self):
        result = figures.override_disagreement("perceptron", budget_bytes=16 * 1024)
        assert set(result.per_benchmark) == {"gzip", "eon"}
        assert 0 < result.mean_rate < 0.5
        assert "override" in result.render()


class TestCli:
    def test_runner_registry_covers_all_experiments(self):
        expected = {
            "figure1",
            "figure2",
            "table1",
            "table2",
            "figure5",
            "figure6",
            "figure7",
            "figure8",
            "delayed-update",
            "override",
            "extension",
        }
        assert set(RUNNERS) == expected

    def test_cli_runs_tables(self, capsys):
        assert main(["table1", "table2"]) == 0
        output = capsys.readouterr().out
        assert "Table 1" in output and "Table 2" in output

    def test_cli_rejects_unknown(self):
        with pytest.raises(SystemExit):
            main(["figure9"])

    def test_cli_rejects_empty_invocation(self):
        with pytest.raises(SystemExit):
            main([])

    def test_cli_list_families(self, capsys):
        from repro.predictors import registry

        assert main(["--list-families"]) == 0
        output = capsys.readouterr().out
        for family in registry.family_names():
            assert family in output
        assert "gshare_fast" in output

    def test_default_run_writes_no_sidecars(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["table2"]) == 0
        assert list(tmp_path.iterdir()) == []
        output = capsys.readouterr().out
        assert "Counters" not in output  # no metrics tables by default

    def test_output_dir_writes_text_and_manifest(self, tmp_path, capsys):
        out_dir = tmp_path / "results"
        assert main(["table2", "--output-dir", str(out_dir)]) == 0
        text_path = out_dir / "table2.txt"
        manifest_path = out_dir / "table2.manifest.json"
        assert text_path.exists() and manifest_path.exists()
        rendered = capsys.readouterr().out
        assert text_path.read_text() == rendered.rstrip("\n") + "\n"

        from repro.obs.manifest import load_manifest, output_digest

        manifest = load_manifest(str(manifest_path))
        assert manifest["target"] == "table2"
        assert manifest["output"] == output_digest(text_path.read_text()[:-1])
        assert manifest["config"]["benchmarks"] == ["gzip", "eon"]

    def test_profile_prints_metrics_and_writes_manifest(self, tmp_path, capsys):
        from repro import obs
        from repro.obs.manifest import load_manifest

        out_dir = tmp_path / "results"
        assert main(["extension", "--profile", "--output-dir", str(out_dir)]) == 0
        output = capsys.readouterr().out
        assert "Counters" in output
        assert "accuracy.measurements" in output
        assert "Hard-to-predict branches:" in output

        manifest = load_manifest(str(out_dir / "extension.manifest.json"))
        assert "extension" in manifest["phases"]
        assert "extension.sweep" in manifest["phases"]
        assert manifest["metrics"]["counters"]["accuracy.measurements"] > 0
        assert manifest["metrics"]["attributions"]
        # The flag is scoped to the run: observability is off again after.
        assert obs.enabled_override() is None
        assert not obs.enabled()

    def test_profile_output_text_matches_unprofiled(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)  # --profile writes its manifest to cwd
        assert main(["table2"]) == 0
        plain = capsys.readouterr().out
        assert main(["table2", "--profile"]) == 0
        profiled = capsys.readouterr().out
        assert profiled.startswith(plain)  # figure text is byte-identical
