"""Shared plumbing for the prediction-service test suites.

Builds tiny sweep specs, in-process apps/executors, and socket-backed
daemons (the real asyncio server on an ephemeral loopback port, driven
from a background thread) so the protocol, fault, and property suites
share one vocabulary.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import threading

from repro.service.app import ServiceApp
from repro.service.config import ServiceConfig
from repro.service.daemon import JobExecutor, ServiceDaemon

#: Environment the service suites pin: tiny traces, one benchmark by
#: default (specs pin their own benchmark lists), stores under tmp dirs.
SCALE = "0.02"


def mini_spec(
    name: str = "mini",
    families: tuple[str, ...] = ("gshare",),
    budgets: tuple[int, ...] = (1024,),
    benchmarks: tuple[str, ...] = ("gcc",),
    title: str = "Mini sweep",
) -> dict:
    """A small sweep-mode config document (the service's submission unit)."""
    return {
        "schema": 1,
        "target": name,
        "mode": "sweep",
        "title": title,
        "grids": [
            {
                "kind": "accuracy",
                "families": list(families),
                "budgets": list(budgets),
                "benchmarks": list(benchmarks),
            }
        ],
    }


def set_service_env(monkeypatch, tmp_path, trace_store) -> None:
    """Pin scale, benchmarks, and both stores for one test."""
    monkeypatch.setenv("REPRO_SCALE", SCALE)
    monkeypatch.setenv("REPRO_BENCHMARKS", "gcc,eon")
    monkeypatch.setenv("REPRO_TRACE_STORE", str(trace_store))
    monkeypatch.setenv("REPRO_RESULT_STORE", str(tmp_path / "results"))
    for var in (
        "REPRO_LOG",
        "REPRO_RUN_DIR",
        "REPRO_CAMPAIGN_ABORT_AFTER",
        "REPRO_SERVICE_MAX_PENDING",
        "REPRO_SERVICE_WORKERS",
    ):
        monkeypatch.delenv(var, raising=False)


def make_app(tmp_path, workers: int = 0, **config_kwargs):
    """An app + executor over ``tmp_path/svc`` (workers=0: run_pending)."""
    config = ServiceConfig(
        data_dir=str(tmp_path / "svc"), workers=workers, **config_kwargs
    )
    app = ServiceApp(config)
    executor = JobExecutor(app, config)
    return app, executor


def submit(app: ServiceApp, spec: dict) -> tuple[int, dict]:
    code, payload, _ = app.handle("POST", "/v1/jobs", {}, json.dumps(spec).encode())
    return code, json.loads(payload)


def get_json(app: ServiceApp, path: str) -> tuple[int, dict]:
    code, payload, _ = app.handle("GET", path)
    return code, json.loads(payload)


def run_job(app: ServiceApp, executor: JobExecutor, spec: dict) -> dict:
    """Submit + drain synchronously; returns the settled status."""
    code, doc = submit(app, spec)
    assert code in (200, 202), doc
    if code == 202:
        executor.enqueue(doc["job_id"])
        executor.run_pending()
    code, status = get_json(app, f"/v1/jobs/{doc['job_id']}")
    assert code == 200
    return status


class DaemonHarness:
    """The real asyncio daemon on an ephemeral port, in a thread."""

    def __init__(self, config: ServiceConfig) -> None:
        self.daemon = ServiceDaemon(config)
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._ready = threading.Event()

    def _run(self) -> None:
        async def amain() -> None:
            await self.daemon.start()
            self._ready.set()
            await self.daemon.run_until_shutdown()

        asyncio.run(amain())

    def __enter__(self) -> "DaemonHarness":
        self._thread.start()
        if not self._ready.wait(timeout=10):
            raise RuntimeError("daemon failed to start")
        return self

    def __exit__(self, *exc) -> None:
        self.daemon.request_shutdown()
        self._thread.join(timeout=self.daemon.config.drain_timeout + 10)

    @property
    def port(self) -> int:
        return self.daemon.port

    def connect(self, timeout: float = 30.0) -> http.client.HTTPConnection:
        return http.client.HTTPConnection("127.0.0.1", self.port, timeout=timeout)

    def request_json(
        self, method: str, path: str, body: dict | None = None
    ) -> tuple[int, dict]:
        conn = self.connect()
        try:
            conn.request(method, path, None if body is None else json.dumps(body))
            response = conn.getresponse()
            return response.status, json.loads(response.read())
        finally:
            conn.close()

    def wait_settled(self, job_id: str, tries: int = 60) -> dict:
        """Long-poll until the job leaves queued/running."""
        for _ in range(tries):
            status, doc = self.request_json("GET", f"/v1/jobs/{job_id}?wait=5")
            assert status == 200, doc
            if doc["state"] not in ("queued", "running"):
                return doc
        raise AssertionError(f"job {job_id} never settled: {doc}")
