"""Property tests for the string-matching oracle and its workload generator.

Two families of invariants, checked across *random* patterns, alphabets
and sources rather than the handful of registered kernels:

* oracle math — failure-table well-formedness, closed-form counter-rate
  bounds, and the information-monotonicity of the Bayes context rate
  (conditioning on a longer outcome window can never hurt the optimal
  predictor: the ISSUE's "longer history => no-worse expected rate").
* trace generation — every randomly profiled matcher emits a valid trace
  with exactly one static conditional site, a sane branch density, and a
  taken rate inside the matcher chain's own analytic confidence interval.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.oracle import (
    bayes_context_rate,
    build_matcher_chain,
    counter_rate_iid,
    counter_training_excess,
    taken_rate_oracle,
)
from repro.workloads.spec2000 import _generate_trace
from repro.workloads.stringmatch import (
    StringMatchProfile,
    border_table,
    failure_table,
    pattern_symbols,
)

#: Small-but-diverse pattern space: lengths 1..6 over alphabets of 2-3
#: letters keeps every chain tiny while covering periodic, self-overlapping
#: and border-free shapes.
patterns = st.text(alphabet="abc", min_size=1, max_size=6)
algorithms = st.sampled_from(["mp", "kmp"])


def profile_for(pattern: str, algorithm: str, bernoulli_p: float | None) -> StringMatchProfile:
    """A profile over the smallest alphabet covering ``pattern``."""
    alphabet = max(3 if "c" in pattern else 2, 2)
    if bernoulli_p is not None and alphabet == 2:
        return StringMatchProfile(
            name="prop",
            pattern=pattern,
            algorithm=algorithm,
            source_kind="bernoulli",
            bernoulli_p=bernoulli_p,
        )
    return StringMatchProfile(
        name="prop", pattern=pattern, algorithm=algorithm, alphabet=alphabet
    )


@given(pattern=patterns)
def test_border_table_is_well_formed(pattern):
    border = border_table(pattern)
    assert border[0] == 0 and border[1] == 0
    symbols = pattern_symbols(pattern)
    for j in range(1, len(symbols) + 1):
        k = border[j]
        assert 0 <= k < j
        assert symbols[:k] == symbols[j - k : j]  # it really is a border


@given(pattern=patterns, algorithm=algorithms)
def test_failure_table_is_well_formed(pattern, algorithm):
    symbols = pattern_symbols(pattern)
    fail = failure_table(pattern, algorithm)
    assert len(fail) == len(symbols)
    assert fail[0] == -1
    for j, link in enumerate(fail):
        assert -1 <= link < j or j == 0
        if algorithm == "kmp" and link >= 0:
            # Strictness: the retried comparison can never repeat the one
            # that just failed.
            assert symbols[link] != symbols[j]


@given(q=st.floats(min_value=0.0, max_value=1.0), bits=st.sampled_from([1, 2, 3]))
def test_counter_rate_bounds(q, bits):
    rate = counter_rate_iid(q, bits)
    assert 0.0 <= rate <= 0.5 + 1e-12
    # No predictor beats the Bayes rate of the i.i.d. source.
    assert rate >= min(q, 1.0 - q) - 1e-12
    # Symmetric sources are direction-agnostic.
    assert rate == pytest.approx(counter_rate_iid(1.0 - q, bits), abs=1e-12)


@given(q=st.floats(min_value=0.0, max_value=1.0))
def test_training_excess_is_small_and_nonnegative(q):
    excess = counter_training_excess(q, bits=2)
    assert 0.0 <= excess <= 4.0
    if q <= 0.5:
        # Init (weakly not-taken) already favours the likely direction.
        assert excess <= 1.0 + 1e-9


@settings(max_examples=40, deadline=None)
@given(
    pattern=patterns,
    algorithm=algorithms,
    bernoulli_p=st.one_of(st.none(), st.floats(min_value=0.1, max_value=0.9)),
)
def test_bayes_context_rate_monotone_in_history(pattern, algorithm, bernoulli_p):
    """Longer outcome windows refine the context partition, so the optimal
    context-keyed rate is monotone non-increasing in the history length —
    on periodic and aperiodic patterns alike."""
    profile = profile_for(pattern, algorithm, bernoulli_p)
    rates = [bayes_context_rate(profile, h) for h in range(6)]
    for shorter, longer in zip(rates, rates[1:]):
        assert longer <= shorter + 1e-9
    # And it is a genuine misprediction rate throughout.
    for rate in rates:
        assert 0.0 <= rate <= 0.5 + 1e-9


@settings(max_examples=15, deadline=None)
@given(
    pattern=patterns,
    algorithm=algorithms,
    bernoulli_p=st.one_of(st.none(), st.floats(min_value=0.15, max_value=0.85)),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_generated_traces_satisfy_matcher_invariants(pattern, algorithm, bernoulli_p, seed):
    """Any randomly profiled matcher emits a structurally sound trace whose
    taken rate lands inside its own chain's analytic confidence interval."""
    profile = profile_for(pattern, algorithm, bernoulli_p)
    instructions = 12_000
    trace = _generate_trace(profile, instructions, seed)
    trace.validate()
    branches = [(pc, taken) for pc, taken in trace.conditional_branches()]
    # Exactly one static conditional site: the comparison branch.
    assert len({pc for pc, _ in branches}) == 1
    # One comparison costs 6-7 instructions; the density must match.
    assert instructions // 10 <= len(branches) <= instructions // 4
    measured = sum(taken for _, taken in branches) / len(branches)
    bound = taken_rate_oracle(profile)
    assert abs(measured - bound.rate) <= bound.tolerance(len(branches))


@given(pattern=patterns, algorithm=algorithms)
def test_chain_is_a_probability_model(pattern, algorithm):
    """Stationary weights and per-state outcome laws are proper."""
    chain = build_matcher_chain(profile_for(pattern, algorithm, None))
    assert math.isclose(float(chain.pi.sum()), 1.0, abs_tol=1e-9)
    for s, edges in enumerate(chain.edges):
        assert math.isclose(sum(e.prob for e in edges), 1.0, abs_tol=1e-9)
        assert 0.0 <= float(chain.taken_prob[s]) <= 1.0
