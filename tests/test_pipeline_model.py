"""Tests for the cycle-accurate gshare.fast pipeline model."""

from __future__ import annotations

import random

import pytest

from repro.common.errors import ProtocolError
from repro.core.gshare_fast import GshareFastPredictor
from repro.core.pipeline_model import GshareFastPipeline


def make_pair(entries=4096, latency=3, buffer_bits=3):
    functional = GshareFastPredictor(
        entries=entries, pht_latency=latency, buffer_bits=buffer_bits
    )
    reference = GshareFastPredictor(
        entries=entries, pht_latency=latency, buffer_bits=buffer_bits
    )
    return GshareFastPipeline(functional), reference


def dense_stream(n, seed=5):
    """One branch per cycle: pcs cycle over a few sites, outcomes mixed."""
    rng = random.Random(seed)
    pcs = [0x1000 + i * 4 for i in range(6)]
    stream = []
    for i in range(n):
        pc = pcs[i % len(pcs)]
        taken = rng.random() < 0.7 if i % 3 else i % 2 == 0
        stream.append((pc, taken))
    return stream


class TestSingleCycleDelivery:
    def test_prediction_delivered_same_tick(self):
        pipeline, _ = make_pair()
        prediction = None
        for _ in range(10):
            prediction = pipeline.tick(branch_pc=0x1000)
            assert prediction is not None
            assert prediction.cycle == pipeline.cycle  # same cycle
            pipeline.resolve(prediction, True)
        assert pipeline.delivered_latency_cycles() == 1

    def test_branch_free_cycles_return_none(self):
        pipeline, _ = make_pair()
        assert pipeline.tick() is None
        assert pipeline.tick() is None


class TestProtocol:
    def test_unresolved_prediction_blocks_tick(self):
        pipeline, _ = make_pair()
        prediction = pipeline.tick(branch_pc=0x1000)
        with pytest.raises(ProtocolError):
            pipeline.tick(branch_pc=0x1004)
        pipeline.resolve(prediction, True)
        pipeline.tick(branch_pc=0x1004)

    def test_resolve_requires_matching_prediction(self):
        pipeline, _ = make_pair()
        first = pipeline.tick(branch_pc=0x1000)
        pipeline.resolve(first, True)
        with pytest.raises(ProtocolError):
            pipeline.resolve(first, True)


class TestEquivalence:
    def test_matches_functional_model_on_dense_stream(self):
        """On a branch-every-cycle stream the pipelined predictor must be
        bit-identical to the functional model — the paper's claim that
        pipelining costs nothing beyond the index restructuring."""
        pipeline, reference = make_pair()
        for pc, taken in dense_stream(600):
            pipelined = pipeline.tick(branch_pc=pc)
            expected = reference.predict(pc)
            assert pipelined.taken == expected, f"diverged at pc={pc:#x}"
            pipeline.resolve(pipelined, taken)
            reference.update(pc, taken)

    def test_matches_functional_with_larger_latency(self):
        pipeline, reference = make_pair(entries=16384, latency=7, buffer_bits=7)
        for pc, taken in dense_stream(400, seed=9):
            pipelined = pipeline.tick(branch_pc=pc)
            expected = reference.predict(pc)
            assert pipelined.taken == expected
            pipeline.resolve(pipelined, taken)
            reference.update(pc, taken)

    def test_buffer_hits_after_warmup_on_dense_stream(self):
        pipeline, _ = make_pair()
        for i, (pc, taken) in enumerate(dense_stream(200)):
            prediction = pipeline.tick(branch_pc=pc)
            pipeline.resolve(prediction, taken)
        # Only the first `latency` predictions can miss the buffer.
        assert pipeline.buffer_misses <= pipeline.latency
        assert pipeline.buffer_hits >= 200 - pipeline.latency


class TestRecovery:
    def test_mispredict_restores_history(self):
        pipeline, _ = make_pair()
        # Warm up.
        for pc, taken in dense_stream(50):
            pipeline.resolve(pipeline.tick(branch_pc=pc), taken)
        before = pipeline.spec_history
        prediction = pipeline.tick(branch_pc=0x2000)
        actual = not prediction.taken  # force a misprediction
        pipeline.resolve(prediction, actual)
        # Speculative history must now equal the checkpoint plus the truth.
        expected = ((before << 1) | int(actual)) & ((1 << pipeline.functional.history.length) - 1)
        assert pipeline.spec_history == expected

    def test_correct_prediction_keeps_speculative_bit(self):
        pipeline, _ = make_pair()
        for pc, taken in dense_stream(50):
            pipeline.resolve(pipeline.tick(branch_pc=pc), taken)
        before = pipeline.spec_history
        prediction = pipeline.tick(branch_pc=0x2000)
        pipeline.resolve(prediction, prediction.taken)
        expected = ((before << 1) | int(prediction.taken)) & (
            (1 << pipeline.functional.history.length) - 1
        )
        assert pipeline.spec_history == expected

    def test_training_happens_on_resolve(self):
        pipeline, _ = make_pair()
        prediction = pipeline.tick(branch_pc=0x1000)
        value_before = pipeline.table.value(prediction.pht_index)
        pipeline.resolve(prediction, True)
        assert pipeline.table.value(prediction.pht_index) == value_before + 1


class TestSparseStreams:
    def test_gaps_between_branches_are_fine(self):
        pipeline, _ = make_pair()
        rng = random.Random(2)
        predictions = 0
        for i in range(300):
            if i % 4 == 0:
                prediction = pipeline.tick(branch_pc=0x1000 + (i % 3) * 4)
                pipeline.resolve(prediction, rng.random() < 0.6)
                predictions += 1
            else:
                pipeline.tick()
        assert predictions == 75
        assert pipeline.buffer_hits + pipeline.buffer_misses == 75
