"""Tests for the perceptron predictor."""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigurationError
from repro.predictors.perceptron import (
    WEIGHT_MAX,
    WEIGHT_MIN,
    PerceptronPredictor,
    training_threshold,
)
from tests.conftest import alternating_stream, biased_stream, run_stream


class TestConfiguration:
    def test_threshold_formula(self):
        assert training_threshold(10) == int(1.93 * 10 + 14)
        assert training_threshold(59) == int(1.93 * 59 + 14)

    def test_rejects_bad_configs(self):
        with pytest.raises(ConfigurationError):
            PerceptronPredictor(0, global_history=10)
        with pytest.raises(ConfigurationError):
            PerceptronPredictor(16, global_history=0)
        with pytest.raises(ConfigurationError):
            PerceptronPredictor(16, global_history=8, local_history=-1)

    def test_storage_accounting(self):
        predictor = PerceptronPredictor(64, global_history=15, local_history=0)
        assert predictor.storage_bits == 64 * 16 * 8 + 15

    def test_storage_includes_local_table(self):
        with_local = PerceptronPredictor(
            64, global_history=12, local_history=4, local_history_entries=256
        )
        assert with_local.storage_bits == 64 * 17 * 8 + 12 + 256 * 4


class TestLearning:
    def test_learns_constant(self):
        predictor = PerceptronPredictor(64, global_history=12)
        wrong = run_stream(predictor, [(0x1000, True)] * 100)
        assert wrong <= 3

    def test_learns_alternation(self):
        predictor = PerceptronPredictor(64, global_history=12)
        wrong = run_stream(predictor, alternating_stream(400))
        assert wrong / 400 < 0.05

    def test_learns_long_range_correlation_beyond_table_reach(self):
        """A branch equal to the outcome 20 branches ago, with 19 noisy
        branches in between — linearly separable, so the perceptron learns
        it even though the intervening noise fragments table contexts."""
        import random

        rng = random.Random(11)
        predictor = PerceptronPredictor(128, global_history=24)
        past: list[bool] = []
        wrong = 0
        scored = 0
        total = 6000
        for i in range(total):
            if i % 20 == 19 and len(past) >= 19:
                outcome = past[-19]  # copies a 19-branch-old outcome
                predictor.predict(0x9000)
                correct = predictor.update(0x9000, outcome)
                if i > total // 2:  # score after training converges
                    scored += 1
                    if not correct:
                        wrong += 1
            else:
                outcome = rng.random() < 0.5
                pc = 0x1000 + (i % 8) * 4
                predictor.predict(pc)
                predictor.update(pc, outcome)
            past.append(outcome)
        assert scored > 100
        assert wrong / scored < 0.15

    def test_tracks_bias(self):
        predictor = PerceptronPredictor(64, global_history=12)
        wrong = run_stream(predictor, biased_stream(600, 0.95))
        assert wrong / 600 < 0.12

    def test_local_history_captures_private_pattern(self):
        predictor = PerceptronPredictor(
            64, global_history=8, local_history=8, local_history_entries=64
        )
        pattern = [True, False, False]
        stream = [(0x4000, pattern[i % 3]) for i in range(600)]
        wrong = run_stream(predictor, stream)
        assert wrong / 600 < 0.08


class TestWeights:
    def test_weights_saturate(self):
        predictor = PerceptronPredictor(4, global_history=4)
        for _ in range(600):
            predictor.predict(0x1000)
            predictor.update(0x1000, True)
        assert predictor.weights.max() <= WEIGHT_MAX
        assert predictor.weights.min() >= WEIGHT_MIN

    def test_no_training_when_confident_and_correct(self):
        predictor = PerceptronPredictor(4, global_history=4)
        # Drive far past threshold.
        for _ in range(400):
            predictor.predict(0x1000)
            predictor.update(0x1000, True)
        snapshot = predictor.weights.copy()
        predictor.predict(0x1000)
        predictor.update(0x1000, True)
        assert (predictor.weights == snapshot).all()
