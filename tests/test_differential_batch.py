"""Differential tests: the batch engine must be bit-exact vs the scalar
reference.

The scalar ``predict``/``update`` protocol is the specification.  For every
predictor with a batch kernel these tests assert, via
:func:`repro.batch.diff.diff_engines`, that the vectorized engine produces

* the identical per-branch prediction stream,
* the identical final contents of every counter table,
* the identical history register and pending-update queue, and
* the identical stats counters,

on synthetic streams, real workload traces, a recorded golden stream
(``tests/golden/branch_stream.csv``) and Hypothesis-generated random
traces — across chunk sizes that do and do not divide the stream length.
"""

from __future__ import annotations

import random
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.batch import diff_engines, evaluate_stream, evaluate_trace, supports_batch
from repro.common.errors import ProtocolError
from repro.core.gshare_fast import GshareFastPredictor
from repro.harness.experiment import measure_accuracy
from repro.predictors.bimodal import BimodalPredictor
from repro.predictors.bimode import BiModePredictor
from repro.predictors.gshare import GsharePredictor
from repro.predictors.perceptron import PerceptronPredictor
from tests.conftest import alternating_stream, biased_stream, loop_stream

GOLDEN_STREAM = Path(__file__).parent / "golden" / "branch_stream.csv"

#: One factory per batch kernel, plus shape variants that stress the
#: index/counter/delay parameter space.
FACTORIES = {
    "bimodal": lambda: BimodalPredictor(512),
    "bimodal_3bit": lambda: BimodalPredictor(256, counter_bits=3),
    "gshare": lambda: GsharePredictor(1024),
    "gshare_short_history": lambda: GsharePredictor(1024, history_length=4),
    "gshare_fast": lambda: GshareFastPredictor(entries=4096, pht_latency=3),
    "gshare_fast_delayed": lambda: GshareFastPredictor(
        entries=1024, pht_latency=2, update_delay=16
    ),
    "bimode": lambda: BiModePredictor(512),
}


def _assert_exact(factory, stream, chunk_branches=1 << 12):
    pcs = [pc for pc, _ in stream]
    takens = [taken for _, taken in stream]
    report = diff_engines(factory, pcs, takens, chunk_branches=chunk_branches)
    assert report.matches, report.describe()


@pytest.mark.parametrize("name", sorted(FACTORIES))
def test_synthetic_streams_bit_exact(name):
    factory = FACTORIES[name]
    _assert_exact(factory, biased_stream(3000, 0.9))
    _assert_exact(factory, alternating_stream(3000))
    _assert_exact(factory, loop_stream(reps=60, trips=9))


@pytest.mark.parametrize("name", sorted(FACTORIES))
def test_interleaved_branches_bit_exact(name):
    """Many static branches sharing tables — the aliasing-heavy case."""
    rng = random.Random(13)
    pool = [0x40_0000 + 4 * rng.randrange(800) for _ in range(96)]
    stream = [(rng.choice(pool), rng.random() < 0.6) for _ in range(8000)]
    _assert_exact(FACTORIES[name], stream)


@pytest.mark.parametrize("name", sorted(FACTORIES))
def test_workload_trace_bit_exact(name, small_trace):
    pcs, takens = small_trace.branch_arrays()
    report = diff_engines(FACTORIES[name], pcs, takens)
    assert report.matches, report.describe()


@pytest.mark.parametrize("name", sorted(FACTORIES))
def test_golden_stream_bit_exact(name):
    """Replay the recorded stream pinned in tests/golden/branch_stream.csv."""
    lines = GOLDEN_STREAM.read_text().splitlines()[1:]
    stream = []
    for line in lines:
        pc, taken = line.split(",")
        stream.append((int(pc, 16), taken == "1"))
    assert len(stream) >= 1000
    _assert_exact(FACTORIES[name], stream)


@pytest.mark.parametrize("chunk", [1, 7, 64, 777, 100_000])
def test_chunk_size_invariance(chunk):
    """The chunk size is an implementation detail: any value, including ones
    that straddle the stream unevenly, must give identical results."""
    stream = loop_stream(reps=40, trips=7) + biased_stream(1500, 0.8)
    _assert_exact(FACTORIES["gshare"], stream, chunk_branches=chunk)
    _assert_exact(FACTORIES["gshare_fast_delayed"], stream, chunk_branches=chunk)


@settings(max_examples=40, deadline=None)
@given(
    data=st.lists(
        st.tuples(st.integers(0, 31), st.booleans()), min_size=1, max_size=400
    ),
    chunk=st.sampled_from([3, 50, 4096]),
    name=st.sampled_from(sorted(FACTORIES)),
)
def test_random_traces_bit_exact(data, chunk, name):
    """Hypothesis-generated streams over a small PC pool (small pools
    maximize table aliasing, the hardest case for the scan)."""
    stream = [(0x40_0000 + 4 * slot, taken) for slot, taken in data]
    _assert_exact(FACTORIES[name], stream, chunk_branches=chunk)


def test_empty_and_single_branch_streams():
    for factory in FACTORIES.values():
        _assert_exact(factory, [])
        _assert_exact(factory, [(0x40_0000, True)])


def test_supports_batch_is_exact_type():
    """Subclasses may override behaviour the kernels don't model; they must
    fall back to the scalar engine rather than be silently mis-evaluated."""

    class TweakedGshare(GsharePredictor):
        pass

    assert supports_batch(GsharePredictor(1024))
    assert not supports_batch(TweakedGshare(1024))
    assert not supports_batch(PerceptronPredictor(256, global_history=12))


def test_batch_refuses_mid_prediction(small_trace):
    """The scalar protocol's in-flight state cannot be represented by the
    batch engine; evaluating mid-prediction is a protocol error."""
    predictor = GsharePredictor(1024)
    predictor.predict(0x40_0000)
    pcs, takens = small_trace.branch_arrays()
    with pytest.raises(ProtocolError):
        evaluate_stream(predictor, pcs, takens)


def test_batch_matches_scalar_measure_accuracy(small_trace):
    """The harness-level entry points agree, including warmup handling."""
    scalar = measure_accuracy(
        GsharePredictor(4096), small_trace, warmup_branches=500, engine="scalar"
    )
    batch = measure_accuracy(
        GsharePredictor(4096), small_trace, warmup_branches=500, engine="batch"
    )
    assert scalar == batch


def test_evaluate_trace_counts(small_trace):
    result = evaluate_trace(GsharePredictor(4096), small_trace)
    assert len(result.predictions) == small_trace.conditional_branch_count
    np.testing.assert_array_equal(
        result.outcomes, small_trace.branch_arrays()[1]
    )


def test_batch_predictor_usable_after_writeback(small_trace):
    """After a batch run the predictor must be a valid scalar predictor:
    continuing with predict/update equals having run scalar throughout."""
    pcs, takens = small_trace.branch_arrays()
    half = len(pcs) // 2

    hybrid = GshareFastPredictor(entries=1024, pht_latency=2, update_delay=8)
    evaluate_stream(hybrid, pcs[:half], takens[:half])
    for pc, taken in zip(pcs[half:], takens[half:]):
        hybrid.predict(int(pc))
        hybrid.update(int(pc), bool(taken))

    scalar = GshareFastPredictor(entries=1024, pht_latency=2, update_delay=8)
    for pc, taken in zip(pcs, takens):
        scalar.predict(int(pc))
        scalar.update(int(pc), bool(taken))

    np.testing.assert_array_equal(
        hybrid.table.snapshot(), scalar.table.snapshot()
    )
    assert hybrid.history.value == scalar.history.value
    assert hybrid._deferred_updates.snapshot() == scalar._deferred_updates.snapshot()
