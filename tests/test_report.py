"""Edge-case tests for the text-table renderer in harness/report.py."""

from __future__ import annotations

from repro.harness.report import (
    CLASSIFICATION_COLUMNS,
    format_budget,
    render_classification,
    render_series_table,
    render_table,
)


class TestFormatBudget:
    def test_kib_multiples(self):
        assert format_budget(1024) == "1K"
        assert format_budget(64 * 1024) == "64K"

    def test_non_kib_values_stay_exact(self):
        assert format_budget(100) == "100"
        assert format_budget(1500) == "1500"
        assert format_budget(0) == "0K"  # 0 % 1024 == 0


class TestRenderTableEdgeCases:
    def test_empty_rows_render_header_only(self):
        text = render_table("Empty", ["a", "bb"], [])
        lines = text.splitlines()
        assert lines[0] == "Empty"
        assert lines[1] == "=" * len("Empty")
        assert lines[2].split() == ["a", "bb"]
        assert set(lines[3]) <= {"-", " "}
        assert len(lines) == 4

    def test_no_columns_at_all(self):
        assert render_table("Bare", [], []) == "Bare\n====\n\n"

    def test_short_rows_padded(self):
        text = render_table("T", ["x", "y", "z"], [[1], [1, 2, 3]])
        lines = text.splitlines()
        # Both data rows align to three columns; the short one pads with "".
        assert len(lines) == 6
        assert lines[4].rstrip() == "1"
        assert lines[5].split() == ["1", "2", "3"]

    def test_long_rows_grow_unnamed_columns(self):
        text = render_table("T", ["x"], [[1, 2, 3]])
        lines = text.splitlines()
        assert lines[-1].split() == ["1", "2", "3"]
        # The dashes rule covers all three columns, not just the named one.
        assert lines[3].count("-") >= 3

    def test_width_driven_by_widest_cell(self):
        text = render_table("T", ["c"], [["wide-value"], ["x"]])
        lines = text.splitlines()
        width = len("wide-value")
        assert lines[2] == "c".ljust(width)
        assert lines[3] == "-" * width
        assert lines[-1] == "x".rjust(width)

    def test_well_formed_tables_unchanged(self):
        """The ragged-input hardening must not alter regular tables."""
        text = render_table(
            "Accuracy", ["budget", "rate"], [["1K", "4.52"], ["64K", "2.31"]]
        )
        assert text == (
            "Accuracy\n"
            "========\n"
            "budget  rate\n"
            "------  ----\n"
            "    1K  4.52\n"
            "   64K  2.31"
        )


class TestRenderClassification:
    """The shared dry-run/scan table: one renderer, two callers."""

    def test_config_target_row(self):
        text = render_classification(
            "Dry run",
            [
                {
                    "target": "figure1",
                    "mode": "runner",
                    "cells": 72,
                    "counts": {"completed": 70, "missing": 2},
                    "inferred": False,
                    "based_on": [],
                }
            ],
        )
        lines = text.splitlines()
        assert lines[2].split() == [
            "target", "mode", "cells", "completed", "results", "failed",
            "partial", "missing", "inferred", "based", "on",
        ]
        row = lines[4].split()
        assert row == ["figure1", "runner", "72", "70", "0", "0", "0", "2", "no", "-"]

    def test_campaign_row_defaults_and_based_on(self):
        """Campaign rows omit inferred/based_on; inferred targets list
        their base configs comma-joined."""
        text = render_classification(
            "Scan",
            [
                {"target": "run", "mode": "campaign", "cells": 8, "counts": {}},
                {
                    "target": "f1i",
                    "mode": "inferred",
                    "cells": 4,
                    "counts": {"results_missing": 1, "failed": 1, "partial": 2},
                    "inferred": True,
                    "based_on": ["figure1", "figure5"],
                },
            ],
        )
        campaign_row, inferred_row = text.splitlines()[4:6]
        assert campaign_row.split() == ["run", "campaign", "8", "0", "0", "0", "0", "0", "no", "-"]
        assert inferred_row.split() == [
            "f1i", "inferred", "4", "0", "1", "1", "2", "0", "yes", "figure1,figure5",
        ]

    def test_columns_cover_all_campaign_classes(self):
        from repro.harness.campaign import CLASSES

        short = {"results_missing": "results"}
        for cls in CLASSES:
            assert short.get(cls, cls) in CLASSIFICATION_COLUMNS


class TestRenderSeriesTable:
    def test_missing_points_render_dash(self):
        text = render_series_table(
            "S",
            "budget",
            [1024, 2048],
            {"gshare": {1024: 4.5}, "bimodal": {1024: 6.0, 2048: 5.5}},
        )
        lines = text.splitlines()
        assert lines[2].split() == ["budget", "bimodal", "gshare"]
        assert lines[4].split() == ["1K", "6.00", "4.50"]
        assert lines[5].split() == ["2K", "5.50", "-"]

    def test_non_kib_budget_axis(self):
        text = render_series_table("S", "n", [100], {"s": {100: 1.0}})
        assert "100" in text.splitlines()[4]
