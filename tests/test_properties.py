"""Cross-cutting property-based tests (hypothesis) over all predictors.

Invariants every predictor must satisfy on *any* branch stream:

* the predict/update protocol never corrupts internal state;
* stats add up (predictions = correct + mispredictions);
* predictions are deterministic functions of the visible state (predict is
  repeatable via peek);
* a long constant-direction suffix is eventually predicted correctly.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.gshare_fast import GshareFastPredictor
from repro.predictors.bimodal import BimodalPredictor
from repro.predictors.bimode import BiModePredictor
from repro.predictors.gshare import GsharePredictor
from repro.predictors.gskew import TwoBcGskewPredictor
from repro.predictors.local import LocalPredictor
from repro.predictors.loop import LoopPredictor
from repro.predictors.multicomponent import MultiComponentPredictor
from repro.predictors.perceptron import PerceptronPredictor
from repro.predictors.tournament import TournamentPredictor


def build_all():
    return [
        BimodalPredictor(128),
        GsharePredictor(512),
        BiModePredictor(256),
        TwoBcGskewPredictor(256),
        LocalPredictor(history_entries=64, history_length=6),
        TournamentPredictor(
            global_entries=256,
            local_histories=64,
            local_history_length=6,
            local_pht_entries=64,
            chooser_entries=256,
        ),
        PerceptronPredictor(32, global_history=8, local_history=4, local_history_entries=64),
        LoopPredictor(64),
        GshareFastPredictor(entries=512, pht_latency=3),
        MultiComponentPredictor(
            [BimodalPredictor(128), GsharePredictor(256)], selector_entries=128
        ),
    ]


branch_streams = st.lists(
    st.tuples(
        st.sampled_from([0x1000, 0x1004, 0x2000, 0x2040, 0x3330]),
        st.booleans(),
    ),
    min_size=1,
    max_size=120,
)


@settings(max_examples=25, deadline=None)
@given(stream=branch_streams)
def test_protocol_and_stats_hold_on_any_stream(stream):
    for predictor in build_all():
        correct = 0
        for pc, taken in stream:
            predictor.predict(pc)
            if predictor.update(pc, taken):
                correct += 1
        assert predictor.stats.predictions == len(stream)
        assert predictor.stats.mispredictions == len(stream) - correct
        assert 0.0 <= predictor.stats.misprediction_rate <= 1.0


@settings(max_examples=15, deadline=None)
@given(stream=branch_streams)
def test_peek_matches_subsequent_predict(stream):
    for predictor in build_all():
        for pc, taken in stream:
            peeked = predictor.peek(pc)
            predicted = predictor.predict(pc)
            assert peeked == predicted
            predictor.update(pc, taken)


@settings(max_examples=10, deadline=None)
@given(prefix=branch_streams, direction=st.booleans())
def test_constant_suffix_is_learned(prefix, direction):
    """After arbitrary history, 40 constant outcomes at one site must end
    with correct predictions (every predictor converges on a constant)."""
    for predictor in build_all():
        for pc, taken in prefix:
            predictor.predict(pc)
            predictor.update(pc, taken)
        last_correct = 0
        for i in range(40):
            predictor.predict(0x5550)
            if predictor.update(0x5550, direction):
                last_correct = i
        assert last_correct >= 35  # correct near the end of the run


@settings(max_examples=15, deadline=None)
@given(stream=branch_streams)
def test_storage_bits_stable_under_use(stream):
    """Training must never change a predictor's hardware footprint."""
    for predictor in build_all():
        before = predictor.storage_bits
        for pc, taken in stream:
            predictor.predict(pc)
            predictor.update(pc, taken)
        assert predictor.storage_bits == before


# -- cycle-simulator invariants on arbitrary small traces ---------------------


def _block_strategy():
    """Strategy for one well-formed fetch block."""
    return st.builds(
        _make_block,
        pc=st.integers(min_value=0x1000, max_value=0x2000).map(lambda v: v & ~3),
        instructions=st.integers(min_value=1, max_value=12),
        kind=st.sampled_from(["none", "cond_taken", "cond_not_taken"]),
    )


def _make_block(pc, instructions, kind):
    from repro.workloads.trace import Block, BranchKind

    if kind == "none":
        return Block(pc=pc, instructions=instructions)
    taken = kind == "cond_taken"
    return Block(
        pc=pc,
        instructions=instructions,
        branch_kind=BranchKind.CONDITIONAL,
        branch_pc=pc + (instructions - 1) * 4,
        taken=taken,
        target=0x3000,
    )


@settings(max_examples=25, deadline=None)
@given(blocks=st.lists(_block_strategy(), min_size=1, max_size=60))
def test_simulator_cycle_bounds_on_any_trace(blocks):
    """Invariants: the machine can never beat its issue width, never takes
    fewer cycles than blocks fetched, and accounts every instruction."""
    from repro.uarch.config import MachineConfig
    from repro.uarch.policies import SingleCyclePolicy
    from repro.uarch.simulator import CycleSimulator
    from repro.workloads.trace import Trace

    trace = Trace(name="fuzz", blocks=blocks)
    result = CycleSimulator(
        SingleCyclePolicy(GsharePredictor(1024)), config=MachineConfig(), ilp=4.0
    ).run(trace)
    assert result.instructions == trace.instruction_count
    assert result.conditional_branches == trace.conditional_branch_count
    assert result.cycles >= len(blocks)  # at most one block per cycle here
    assert result.ipc <= 8.0 + 1e-9
    assert result.mispredictions <= result.conditional_branches


@settings(max_examples=15, deadline=None)
@given(blocks=st.lists(_block_strategy(), min_size=1, max_size=60))
def test_simulator_is_deterministic(blocks):
    from repro.uarch.policies import SingleCyclePolicy
    from repro.uarch.simulator import CycleSimulator
    from repro.workloads.trace import Trace

    trace = Trace(name="fuzz", blocks=blocks)
    first = CycleSimulator(SingleCyclePolicy(GsharePredictor(1024)), ilp=3.0).run(trace)
    second = CycleSimulator(SingleCyclePolicy(GsharePredictor(1024)), ilp=3.0).run(trace)
    assert first.cycles == second.cycles
    assert first.mispredictions == second.mispredictions
