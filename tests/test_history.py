"""Unit and property tests for history registers."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import ConfigurationError
from repro.common.history import HistoryRegister, LocalHistoryTable


class TestHistoryRegister:
    def test_push_order_newest_in_bit0(self):
        history = HistoryRegister(4)
        history.push(True)
        history.push(False)
        history.push(True)
        assert history.value == 0b101

    def test_length_masking(self):
        history = HistoryRegister(3)
        for _ in range(10):
            history.push(True)
        assert history.value == 0b111

    def test_zero_length_is_inert(self):
        history = HistoryRegister(0)
        history.push(True)
        assert history.value == 0

    def test_bit_access(self):
        history = HistoryRegister(4)
        history.push(True)
        history.push(False)
        assert history.bit(0) is False
        assert history.bit(1) is True

    def test_bit_out_of_range(self):
        history = HistoryRegister(4)
        with pytest.raises(ConfigurationError):
            history.bit(4)

    def test_checkpoint_restore(self):
        history = HistoryRegister(8)
        history.push(True)
        snapshot = history.checkpoint()
        history.push(False)
        history.push(False)
        history.restore(snapshot)
        assert history.value == 1

    def test_negative_length_rejected(self):
        with pytest.raises(ConfigurationError):
            HistoryRegister(-1)

    @given(st.lists(st.booleans(), min_size=1, max_size=64))
    def test_value_matches_reference(self, outcomes):
        history = HistoryRegister(16)
        reference = 0
        for taken in outcomes:
            history.push(taken)
            reference = ((reference << 1) | int(taken)) & 0xFFFF
        assert history.value == reference


class TestLocalHistoryTable:
    def test_rows_are_independent(self):
        table = LocalHistoryTable(16, 8)
        table.push(0x1000, True)
        assert table.read(0x1000) == 1
        assert table.read(0x1004) == 0

    def test_row_aliasing(self):
        table = LocalHistoryTable(16, 8)
        # PCs 16 entries apart share a row.
        table.push(0x1000, True)
        assert table.read(0x1000 + 16 * 4) == 1

    def test_checkpoint_roundtrip(self):
        table = LocalHistoryTable(8, 4)
        table.push(0x2000, True)
        snapshot = table.checkpoint(0x2000)
        table.push(0x2000, True)
        table.restore(snapshot)
        assert table.read(0x2000) == 1

    def test_storage_bits(self):
        assert LocalHistoryTable(1024, 10).storage_bits == 10240

    def test_rejects_bad_config(self):
        with pytest.raises(ConfigurationError):
            LocalHistoryTable(12, 8)
        with pytest.raises(ConfigurationError):
            LocalHistoryTable(16, 0)

    @given(st.lists(st.booleans(), min_size=1, max_size=40))
    def test_length_mask(self, outcomes):
        table = LocalHistoryTable(4, 6)
        for taken in outcomes:
            table.push(0x3000, taken)
        assert 0 <= table.read(0x3000) < (1 << 6)

    def test_clear(self):
        table = LocalHistoryTable(4, 6)
        table.push(0x3000, True)
        table.clear()
        assert table.read(0x3000) == 0
