"""The prediction service: protocol, round-trips, concurrency, drain.

Socket-level tests run the real asyncio daemon on an ephemeral loopback
port (via :class:`tests.service_helpers.DaemonHarness`); dispatch-level
tests drive :class:`ServiceApp` directly.  The graceful-drain drill runs
``repro-serve`` as a genuine subprocess and SIGTERMs it mid-campaign.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.predictors.registry import build_count
from repro.service.config import ServiceConfig
from repro.service.jobs import JOB_STATES
from repro.service.protocol import (
    HttpRequest,
    ProtocolError,
    build_response,
    parse_head,
)
from tests.service_helpers import (
    DaemonHarness,
    get_json,
    make_app,
    mini_spec,
    run_job,
    set_service_env,
    submit,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def trace_store(tmp_path_factory):
    """One warm trace store shared by every test in this module."""
    return tmp_path_factory.mktemp("traces")


@pytest.fixture
def env(monkeypatch, tmp_path, trace_store):
    set_service_env(monkeypatch, tmp_path, trace_store)
    return tmp_path


# -- protocol units (no sockets) -----------------------------------------------


class TestProtocol:
    def test_parse_head_roundtrip(self):
        head = (
            b"GET /v1/jobs/abc?wait=2.5 HTTP/1.1\r\n"
            b"Host: x\r\nContent-Length: 7\r\nConnection: close\r\n\r\n"
        )
        request = parse_head(head)
        assert request.method == "GET"
        assert request.path == "/v1/jobs/abc"
        assert request.query == {"wait": "2.5"}
        assert request.content_length == 7
        assert not request.keep_alive

    def test_malformed_request_line(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_head(b"BOGUS\r\n\r\n")
        assert excinfo.value.status == 400

    def test_unsupported_method(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_head(b"PATCH /x HTTP/1.1\r\n\r\n")
        assert excinfo.value.status == 405

    def test_unsupported_version(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_head(b"GET /x HTTP/2\r\n\r\n")
        assert excinfo.value.status == 400

    def test_bad_header_line(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_head(b"GET /x HTTP/1.1\r\nnocolonhere\r\n\r\n")
        assert excinfo.value.status == 400

    def test_bad_content_length(self):
        request = HttpRequest(
            "POST", "/v1/jobs", headers={"content-length": "banana"}
        )
        with pytest.raises(ProtocolError) as excinfo:
            request.content_length
        assert excinfo.value.status == 400

    def test_oversize_head_refused(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_head(b"GET /" + b"x" * 20000 + b" HTTP/1.1\r\n\r\n")
        assert excinfo.value.status == 431

    def test_build_response_framing(self):
        response = build_response(200, b'{"ok": true}')
        head, _, body = response.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 200 OK\r\n")
        assert b"Content-Length: 12" in head
        assert body == b'{"ok": true}'


# -- submit -> poll -> fetch over a real socket --------------------------------


class TestRoundTrip:
    def test_submit_poll_fetch_byte_identical(self, env, tmp_path, capsys):
        """The served figure matches ``repro-figures --config`` exactly."""
        spec = mini_spec()
        config = ServiceConfig(data_dir=str(tmp_path / "svc"), workers=1)
        with DaemonHarness(config) as harness:
            code, doc = harness.request_json("POST", "/v1/jobs", spec)
            assert code == 202
            assert doc["state"] == "queued"
            status = harness.wait_settled(doc["job_id"])
            assert status["state"] == "completed"
            assert status["counts"]["completed"] == 1

            conn = harness.connect()
            conn.request("GET", f"/v1/jobs/{doc['job_id']}/figure")
            response = conn.getresponse()
            assert response.status == 200
            served = response.read()
            # Same bytes again via the content-addressed results endpoint.
            conn.request("GET", f"/v1/results/{status['figure_digest']}")
            assert conn.getresponse().read() == served
            # And again: the daemon's response cache must be transparent.
            conn.request("GET", f"/v1/results/{status['figure_digest']}")
            assert conn.getresponse().read() == served
            conn.close()

        # The CLI, pointed at the same stores, renders the same bytes.
        from repro.harness.cli import main as figures_main

        config_path = tmp_path / "mini.json"
        config_path.write_text(json.dumps(spec))
        out_dir = tmp_path / "out"
        assert figures_main(["--config", str(config_path), "--output-dir", str(out_dir)]) == 0
        capsys.readouterr()
        assert (out_dir / "mini.txt").read_bytes() == served + b"\n"

    def test_resubmit_completed_is_pure_cache_hit(self, env, tmp_path):
        app, executor = make_app(tmp_path)
        spec = mini_spec()
        status = run_job(app, executor, spec)
        assert status["state"] == "completed"
        before = build_count()
        code, doc = submit(app, spec)
        assert code == 200  # not 202: nothing to do
        assert doc["state"] == "completed"
        assert doc["figure_digest"] == status["figure_digest"]
        assert executor.run_pending() == 0
        assert build_count() == before

    def test_manifest_endpoint(self, env, tmp_path):
        app, executor = make_app(tmp_path)
        status = run_job(app, executor, mini_spec())
        code, payload, ctype = app.handle(
            "GET", f"/v1/jobs/{status['job_id']}/manifest"
        )
        assert code == 200 and ctype == "application/json"
        manifest = json.loads(payload)
        assert manifest["target"] == "mini"
        assert manifest["output"]["bytes"] > 0

    def test_long_poll_blocks_until_wait(self, env, tmp_path):
        """With no workers the job stays queued; ?wait= holds the reply."""
        config = ServiceConfig(data_dir=str(tmp_path / "svc"), workers=0)
        with DaemonHarness(config) as harness:
            code, doc = harness.request_json("POST", "/v1/jobs", mini_spec())
            assert code == 202
            started = time.perf_counter()
            code, status = harness.request_json(
                "GET", f"/v1/jobs/{doc['job_id']}?wait=1"
            )
            elapsed = time.perf_counter() - started
            assert code == 200 and status["state"] == "queued"
            assert elapsed >= 0.9

    def test_attribution_endpoint_memoizes(self, env, tmp_path):
        app, _ = make_app(tmp_path)
        code, first = get_json(app, "/v1/attribution/gcc/gshare/1024")
        assert code == 200
        assert first["sites"] and first["benchmark"] == "gcc"
        before = build_count()
        code, second = get_json(app, "/v1/attribution/gcc/gshare/1024")
        assert code == 200
        assert second == first  # idempotent payload
        assert build_count() == before  # zero predictor work on the hit


# -- concurrent clients --------------------------------------------------------


class TestConcurrency:
    def test_concurrent_submissions_share_work(self, env, tmp_path, obs_enabled):
        """N clients, same spec: the grid executes exactly once."""
        spec = mini_spec(families=("gshare", "bimodal"), budgets=(1024, 2048))
        cells = 2 * 2  # families x budgets, one benchmark
        config = ServiceConfig(data_dir=str(tmp_path / "svc"), workers=2)
        before = build_count()
        with DaemonHarness(config) as harness:
            results: list[dict] = []
            errors: list[Exception] = []

            def client() -> None:
                try:
                    code, doc = harness.request_json("POST", "/v1/jobs", spec)
                    assert code in (200, 202), doc
                    results.append(harness.wait_settled(doc["job_id"]))
                except Exception as exc:  # surfaced below
                    errors.append(exc)

            threads = [threading.Thread(target=client) for _ in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
            assert not errors
            assert len(results) == 6
            assert {doc["state"] for doc in results} == {"completed"}
            assert len({doc["job_id"] for doc in results}) == 1
            assert len({doc["figure_digest"] for doc in results}) == 1
        # Zero duplicated cell executions: one build per distinct cell,
        # visible both in the global count and the obs counter.
        assert build_count() - before == cells
        assert obs_enabled.counter("predictors.builds").value == cells


# -- error paths ---------------------------------------------------------------


class TestErrorPaths:
    def test_malformed_json_body(self, env, tmp_path):
        app, _ = make_app(tmp_path)
        code, payload, _ = app.handle("POST", "/v1/jobs", {}, b"{nope")
        assert code == 400
        assert "JSON" in json.loads(payload)["error"]

    def test_invalid_spec_rejected(self, env, tmp_path):
        app, _ = make_app(tmp_path)
        bad = mini_spec()
        bad["mode"] = "inferred"
        code, payload, _ = app.handle("POST", "/v1/jobs", {}, json.dumps(bad).encode())
        assert code == 400
        code, _, _ = app.handle("POST", "/v1/jobs", {}, b'["not an object"]')
        assert code == 400

    def test_unknown_job_and_digest(self, env, tmp_path):
        app, _ = make_app(tmp_path)
        assert app.handle("GET", "/v1/jobs/feedface")[0] == 404
        assert app.handle("GET", "/v1/results/feedface")[0] == 404
        assert app.handle("GET", "/v1/attribution/gcc/nosuch/1024")[0] == 404
        assert app.handle("GET", "/v1/attribution/nosuch/gshare/1024")[0] == 404
        assert app.handle("GET", "/v1/attribution/gcc/gshare/abc")[0] == 400
        assert app.handle("GET", "/nope")[0] == 404

    def test_artifact_before_completion_conflicts(self, env, tmp_path):
        app, _ = make_app(tmp_path)
        code, doc = submit(app, mini_spec())
        assert code == 202
        code, payload, _ = app.handle("GET", f"/v1/jobs/{doc['job_id']}/figure")
        assert code == 409
        assert "queued" in json.loads(payload)["error"]

    def test_method_not_allowed(self, env, tmp_path):
        app, _ = make_app(tmp_path)
        assert app.handle("DELETE", "/healthz")[0] == 405
        assert app.handle("POST", "/v1/results/abc")[0] == 405

    def test_backpressure_429_when_queue_full(self, env, tmp_path, obs_enabled):
        app, _ = make_app(tmp_path, max_pending=1)
        code, _ = submit(app, mini_spec(name="one"))
        assert code == 202
        code, payload, _ = app.handle(
            "POST", "/v1/jobs", {}, json.dumps(mini_spec(name="two")).encode()
        )
        assert code == 429
        assert "retry" in json.loads(payload)["error"]
        # Re-submitting the *pending* spec is not new work: no 429.
        code, _ = submit(app, mini_spec(name="one"))
        assert code == 202

    def test_socket_level_garbage_and_oversize(self, env, tmp_path):
        config = ServiceConfig(
            data_dir=str(tmp_path / "svc"), workers=0, body_limit=1024
        )
        with DaemonHarness(config) as harness:
            raw = socket.create_connection(("127.0.0.1", harness.port), timeout=10)
            raw.sendall(b"BOGUS /x\r\n\r\n")
            assert raw.recv(400).startswith(b"HTTP/1.1 400 ")
            raw.close()

            conn = harness.connect(timeout=10)
            conn.request(
                "POST", "/v1/jobs", "x" * 2048, {"Content-Type": "application/json"}
            )
            assert conn.getresponse().status == 413
            conn.close()

    def test_healthz_and_metrics(self, env, tmp_path, obs_enabled):
        app, executor = make_app(tmp_path)
        code, health = get_json(app, "/healthz")
        assert code == 200 and health["ok"] is True
        run_job(app, executor, mini_spec())
        code, metrics = get_json(app, "/metrics")
        assert code == 200
        assert metrics["predictor_builds"] >= 1
        assert "counters" in metrics["metrics"]


# -- graceful drain (real subprocess, real SIGTERM) ----------------------------


class TestGracefulDrain:
    def test_sigterm_drains_without_torn_state(self, env, tmp_path):
        """SIGTERM mid-campaign: clean exit, no torn files, resumable."""
        data_dir = tmp_path / "svc"
        child_env = dict(os.environ)
        child_env["PYTHONPATH"] = str(REPO_ROOT / "src")
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.service.daemon",
                "--data-dir",
                str(data_dir),
                "--port",
                "0",
                "--workers",
                "1",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=child_env,
        )
        try:
            line = proc.stdout.readline()
            assert "listening on" in line, line
            port = int(line.rsplit(":", 1)[1].split()[0])
            spec = mini_spec(
                name="drain", families=("gshare", "bimodal"), budgets=(1024, 2048)
            )
            conn = __import__("http.client", fromlist=["x"]).HTTPConnection(
                "127.0.0.1", port, timeout=30
            )
            conn.request("POST", "/v1/jobs", json.dumps(spec))
            doc = json.loads(conn.getresponse().read())
            job_id = doc["job_id"]
            conn.close()
            time.sleep(0.8)  # let a worker claim cells
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=60) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()

        # No torn store entries anywhere under the service state.
        leftovers = [
            str(path)
            for path in data_dir.rglob("*")
            if ".tmp." in path.name
        ]
        assert leftovers == []
        # Whatever state the job landed in is a legal one...
        status_path = data_dir / "jobs" / job_id / "status.json"
        state = json.loads(status_path.read_text())["state"]
        assert state in JOB_STATES
        # ...and a fresh service instance finishes it to the same bytes a
        # clean run produces.
        app, executor = make_app(tmp_path)  # same data_dir: tmp_path/svc
        for resumable_id in app.recover():
            executor.enqueue(resumable_id)
        executor.run_pending()
        code, status = get_json(app, f"/v1/jobs/{job_id}")
        assert code == 200 and status["state"] == "completed"
        served, _ = app.jobs.figure_bytes(job_id)

        from repro.harness.cli import RUNNERS
        from repro.harness.figconfig import parse_config, run_target

        assert served.decode() == run_target(parse_config(spec), RUNNERS)
