#!/usr/bin/env python3
"""Override-cost study: why a more accurate predictor can lose.

Recreates the paper's central argument on one benchmark: sweep the
perceptron predictor across budgets and compare

* its *ideal* IPC (pretending it answers in one cycle), against
* its *realistic* IPC behind an overriding quick predictor, where every
  quick/slow disagreement costs a bubble equal to the access latency,
* with single-cycle gshare.fast as the yardstick.

Run:  python examples/override_cost_study.py [benchmark]
"""

from __future__ import annotations

import sys

from repro import build_predictor
from repro.core import OverridingPredictor, build_gshare_fast
from repro.harness.report import format_budget, render_table
from repro.timing import predictor_latency
from repro.uarch import CycleSimulator, OverridingPolicy, SingleCyclePolicy
from repro.workloads import get_profile, spec2000_trace

BUDGETS = [16 * 1024, 64 * 1024, 256 * 1024, 512 * 1024]


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "gcc"
    trace = spec2000_trace(benchmark, instructions=250_000)
    ilp = get_profile(benchmark).ilp

    rows = []
    for budget in BUDGETS:
        latency = predictor_latency("perceptron", budget)

        ideal = CycleSimulator(
            SingleCyclePolicy(build_predictor("perceptron", budget)), ilp=ilp
        ).run(trace)

        overriding = OverridingPredictor(
            build_predictor("perceptron", budget), slow_latency=latency
        )
        realistic = CycleSimulator(OverridingPolicy(overriding), ilp=ilp).run(trace)

        fast = CycleSimulator(
            SingleCyclePolicy(build_gshare_fast(budget)), ilp=ilp
        ).run(trace)

        override_rate = realistic.overrides / max(realistic.conditional_branches, 1)
        rows.append(
            (
                format_budget(budget),
                latency,
                f"{ideal.ipc:.3f}",
                f"{realistic.ipc:.3f}",
                f"{100 * override_rate:.1f}%",
                f"{fast.ipc:.3f}",
            )
        )

    print(
        render_table(
            f"Perceptron ideal vs overriding IPC on {benchmark} "
            "(gshare.fast for reference)",
            ["budget", "latency", "ideal IPC", "overriding IPC", "override rate", "gshare.fast IPC"],
            rows,
        )
    )
    print(
        "\nNote how the ideal-vs-overriding gap widens with budget: the\n"
        "bigger (more accurate) the slow predictor, the longer its access\n"
        "latency and the more each disagreement costs — the paper's reason\n"
        "to pipeline the predictor instead."
    )


if __name__ == "__main__":
    main()
