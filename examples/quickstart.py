#!/usr/bin/env python3
"""Quickstart: predict a synthetic benchmark's branches and get an IPC.

Shows the three layers a user touches:

1. workloads  — generate a SPECint-2000 stand-in trace;
2. predictors — build predictors at a hardware budget and measure accuracy;
3. uarch      — run the cycle simulator to turn accuracy + latency into IPC.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import build_gshare_fast, build_predictor, measure_accuracy
from repro.harness.report import render_table
from repro.timing import predictor_latency
from repro.uarch import CycleSimulator, SingleCyclePolicy
from repro.workloads import get_profile, spec2000_trace

BUDGET = 64 * 1024  # 64KB of predictor state
BENCHMARK = "gcc"


def main() -> None:
    # 1. A deterministic synthetic trace standing in for 176.gcc.
    trace = spec2000_trace(BENCHMARK, instructions=300_000)
    print(
        f"{BENCHMARK}: {trace.instruction_count} instructions, "
        f"{trace.conditional_branch_count} conditional branches, "
        f"{trace.static_branch_count()} static branch sites, "
        f"taken rate {trace.taken_rate:.2f}\n"
    )

    # 2. Compare predictor accuracy at the same hardware budget.
    rows = []
    for family in ("bimodal", "gshare", "bimode", "2bcgskew", "multicomponent", "perceptron"):
        predictor = build_predictor(family, BUDGET)
        result = measure_accuracy(predictor, trace)
        latency = predictor_latency(family, BUDGET)
        rows.append((family, f"{result.misprediction_percent:.2f}", latency))
    fast = build_gshare_fast(BUDGET)
    fast_result = measure_accuracy(fast, trace)
    rows.append(("gshare.fast", f"{fast_result.misprediction_percent:.2f}", 1))
    print(
        render_table(
            f"Accuracy and access latency at a {BUDGET // 1024}KB budget",
            ["predictor", "mispredict %", "latency (cycles)"],
            rows,
        )
    )
    print()

    # 3. Cycle-simulate the pipelined gshare.fast for an IPC number.
    simulator = CycleSimulator(
        SingleCyclePolicy(build_gshare_fast(BUDGET)), ilp=get_profile(BENCHMARK).ilp
    )
    result = simulator.run(trace)
    print(
        f"gshare.fast on {BENCHMARK}: IPC {result.ipc:.3f} over {result.cycles} cycles "
        f"({result.mispredictions} mispredictions)"
    )
    print(f"stall breakdown: {result.stalls}")


if __name__ == "__main__":
    main()
