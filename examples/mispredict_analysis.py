#!/usr/bin/env python3
"""Misprediction forensics: where do a predictor's errors come from?

Uses the analysis toolkit to break a benchmark's mispredictions down by
static branch site, compare two predictors head-to-head, and profile the
trace's history-context density (the quantity that controls how well
table predictors can train at a given trace length).

Run:  python examples/mispredict_analysis.py [benchmark]
"""

from __future__ import annotations

import sys

from repro import build_predictor
from repro.harness.analysis import (
    compare_predictors,
    history_context_profile,
    per_site_accuracy,
)
from repro.harness.report import render_table
from repro.workloads import spec2000_trace

BUDGET = 64 * 1024


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "twolf"
    trace = spec2000_trace(benchmark, instructions=250_000)

    # 1. Top offender sites for the perceptron.
    sites = per_site_accuracy(build_predictor("perceptron", BUDGET), trace, top=10)
    rows = [
        (
            f"{site.pc:#x}",
            site.executions,
            site.mispredictions,
            f"{100 * site.misprediction_rate:.1f}%",
            f"{site.taken_rate:.2f}",
        )
        for site in sites
    ]
    print(
        render_table(
            f"Top-10 mispredicting sites on {benchmark} (perceptron, 64KB)",
            ["site", "execs", "wrong", "site rate", "taken rate"],
            rows,
        )
    )
    print()

    # 2. Head-to-head: which sites does the perceptron win over gshare?
    comparisons = compare_predictors(
        build_predictor("gshare", BUDGET), build_predictor("perceptron", BUDGET), trace
    )
    wins = sum(1 for c in comparisons if c.delta > 0)
    losses = sum(1 for c in comparisons if c.delta < 0)
    saved = sum(c.delta for c in comparisons)
    print(
        f"perceptron vs gshare on {benchmark}: wins {wins} sites, loses {losses}, "
        f"saves {saved} mispredictions net"
    )
    biggest = comparisons[0]
    print(
        f"largest swing: site {biggest.pc:#x} "
        f"(gshare {biggest.mispredictions_a} wrong vs perceptron {biggest.mispredictions_b})"
    )
    print()

    # 3. Training density: why table predictors are scale-sensitive.
    for bits in (8, 14, 20):
        profile = history_context_profile(trace, history_bits=bits)
        print(
            f"history {bits:2d} bits: {profile.contexts:6d} distinct (site, history) "
            f"contexts, {profile.visits_per_context:5.1f} visits each, "
            f"{100 * profile.cold_fraction:4.1f}% of branches are cold first-visits"
        )
    print(
        "\nLonger histories fragment the context space; a 2-bit-counter table\n"
        "needs each context visited a few times to train, which is why the\n"
        "paper's billion-instruction runs support longer histories than the\n"
        "short traces used in CI (see EXPERIMENTS.md, 'Known scale artifacts')."
    )


if __name__ == "__main__":
    main()
