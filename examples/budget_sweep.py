#!/usr/bin/env python3
"""Budget sweep over a benchmark subset — a miniature Figure 1 + Figure 7.

Sweeps hardware budgets for several predictor families over a configurable
benchmark subset, printing both the accuracy table (Figure 1 style) and the
realistic-IPC table (Figure 7 right-panel style).

Run:  python examples/budget_sweep.py [benchmark ...]
      (defaults to gcc and eon; pass SPECint names for more)
"""

from __future__ import annotations

import sys

from repro.harness.report import render_series_table
from repro.harness.sweep import accuracy_sweep, hmean_ipc_by_family_budget, ipc_sweep, mean_by_family_budget
from repro.workloads import spec2000_names

BUDGETS = [8 * 1024, 32 * 1024, 128 * 1024, 512 * 1024]
FAMILIES = ["gshare", "bimode", "multicomponent", "perceptron", "gshare_fast"]


def main() -> None:
    benchmarks = sys.argv[1:] or ["gcc", "eon"]
    unknown = set(benchmarks) - set(spec2000_names())
    if unknown:
        raise SystemExit(f"unknown benchmarks: {sorted(unknown)}; pick from {spec2000_names()}")

    print(f"benchmarks: {', '.join(benchmarks)}\n")

    cells = accuracy_sweep(FAMILIES, BUDGETS, benchmarks=benchmarks, instructions=250_000)
    means = mean_by_family_budget(cells)
    accuracy_series: dict[str, dict[int, float]] = {}
    for (family, budget), value in means.items():
        accuracy_series.setdefault(family, {})[budget] = value
    print(
        render_series_table(
            "Mean misprediction rate (%)", "Budget", BUDGETS, accuracy_series
        )
    )
    print()

    ipc_cells = ipc_sweep(
        FAMILIES, BUDGETS, mode="overriding", benchmarks=benchmarks, instructions=150_000
    )
    ipc_series: dict[str, dict[int, float]] = {}
    for (family, budget), value in hmean_ipc_by_family_budget(ipc_cells).items():
        ipc_series.setdefault(family, {})[budget] = value
    print(
        render_series_table(
            "Harmonic mean IPC with realistic (overriding) latency",
            "Budget",
            BUDGETS,
            ipc_series,
            "{:.3f}",
        )
    )
    print(
        "\ngshare.fast is single-cycle at every budget; the others pay an\n"
        "override bubble that grows with their access latency."
    )


if __name__ == "__main__":
    main()
