#!/usr/bin/env python3
"""Deep dive into the gshare.fast predictor pipeline (Figure 4).

Drives the cycle-accurate pipeline model tick by tick on a small branch
stream and prints what the hardware does each cycle: line fetches launched
with stale history, Branch Present / New History Bit latches carrying the
in-flight speculative bits, single-cycle prediction delivery, and
checkpoint-based misprediction recovery.

Run:  python examples/pipelined_predictor_deep_dive.py
"""

from __future__ import annotations

import random

from repro.core import GshareFastPipeline, GshareFastPredictor


def main() -> None:
    functional = GshareFastPredictor(entries=4096, pht_latency=3, buffer_bits=3)
    pipeline = GshareFastPipeline(functional)
    print(
        f"gshare.fast: {functional.table.size}-entry PHT, "
        f"{functional.pht_latency}-cycle read, "
        f"{1 << functional.buffer_bits}-entry PHT buffer, "
        f"history length {functional.history.length}\n"
    )

    rng = random.Random(42)
    pcs = [0x40_1000, 0x40_1010, 0x40_1044]
    mispredicts = 0
    for cycle in range(1, 25):
        if cycle % 2:  # a branch every other cycle
            pc = pcs[cycle % len(pcs)]
            prediction = pipeline.tick(branch_pc=pc)
            actual = rng.random() < 0.7
            correct = pipeline.resolve(prediction, actual)
            if not correct:
                mispredicts += 1
            print(
                f"cycle {cycle:2d}: branch {pc:#x} -> predict "
                f"{'T' if prediction.taken else 'N'} "
                f"(index {prediction.pht_index:4d}, "
                f"{'buffer hit' if prediction.buffer_hit else 'warm-up miss'}), "
                f"actual {'T' if actual else 'N'}"
                + ("  << recovery: history restored from checkpoint" if not correct else "")
            )
        else:
            pipeline.tick()
            print(
                f"cycle {cycle:2d}: no branch; latches carry "
                f"{pipeline.in_flight_bits} in-flight history bit(s)"
            )

    print(
        f"\ndelivered latency: {pipeline.delivered_latency_cycles()} cycle "
        f"(every prediction above was produced in its own tick)"
    )
    print(
        f"buffer hits {pipeline.buffer_hits}, warm-up misses {pipeline.buffer_misses}, "
        f"mispredictions {mispredicts}"
    )

    # The functional model makes bit-identical predictions on dense streams
    # — demonstrate on a fresh pair.
    functional2 = GshareFastPredictor(entries=4096, pht_latency=3, buffer_bits=3)
    reference = GshareFastPredictor(entries=4096, pht_latency=3, buffer_bits=3)
    pipeline2 = GshareFastPipeline(functional2)
    agreements = 0
    for i in range(500):
        pc = pcs[i % len(pcs)]
        taken = rng.random() < 0.6
        p = pipeline2.tick(branch_pc=pc)
        if p.taken == reference.predict(pc):
            agreements += 1
        pipeline2.resolve(p, taken)
        reference.update(pc, taken)
    print(
        f"\npipeline vs functional model on a dense 500-branch stream: "
        f"{agreements}/500 identical predictions"
    )


if __name__ == "__main__":
    main()
