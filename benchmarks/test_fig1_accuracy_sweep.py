"""Figure 1: arithmetic-mean misprediction rate vs hardware budget for
gshare, Bi-Mode, multi-component and perceptron."""

from __future__ import annotations

from benchmarks.conftest import FIG1_BUDGETS, accuracy_instructions, write_result
from repro.harness.figures import figure1


def test_figure1_accuracy_sweep(once):
    figure = once(figure1, budgets=FIG1_BUDGETS, instructions=accuracy_instructions())
    write_result("figure1", figure.render())

    # Shape checks (paper's Figure 1): the perceptron is the most accurate
    # family at every budget, and every family beats plain gshare at the
    # largest budget.
    largest = FIG1_BUDGETS[-1]
    for budget in FIG1_BUDGETS:
        perceptron = figure.series["perceptron"][budget]
        # The perceptron and the multi-hybrid are the accuracy leaders
        # (they trade places on hard-benchmark subsets); both clearly beat
        # plain gshare.
        assert perceptron <= figure.series["gshare"][budget]
        for family in ("bimode", "multicomponent"):
            assert perceptron <= figure.series[family][budget] + 1.0
    for family in ("bimode", "multicomponent", "perceptron"):
        assert figure.series[family][largest] < figure.series["gshare"][largest]
    # Accuracy improves (or at worst saturates) from the smallest budget.
    for family in figure.series:
        assert figure.series[family][largest] <= figure.series[family][FIG1_BUDGETS[0]] + 0.5
