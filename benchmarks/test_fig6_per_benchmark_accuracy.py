"""Figure 6: per-benchmark misprediction rates at the mid (53-64KB)
budget for the complex predictors and gshare.fast."""

from __future__ import annotations

from benchmarks.conftest import accuracy_instructions, write_result
from repro.harness.figures import MID_BUDGET, figure6
from repro.harness.scale import benchmark_names


def test_figure6_per_benchmark(once):
    figure = once(figure6, budget_bytes=MID_BUDGET, instructions=accuracy_instructions())
    write_result("figure6", figure.render())

    assert figure.benchmarks == benchmark_names()
    # Mean ordering matches the paper: complex predictors beat gshare.fast.
    assert figure.means["perceptron"] < figure.means["gshare_fast"]
    assert figure.means["multicomponent"] < figure.means["gshare_fast"]
    # The hard benchmarks are hard for everyone (twolf worst-or-near-worst,
    # when the full benchmark list is in play).
    if "twolf" in figure.benchmarks and "vortex" in figure.benchmarks:
        for family in figure.series:
            assert figure.series[family]["twolf"] > figure.series[family]["vortex"]
