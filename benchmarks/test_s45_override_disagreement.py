"""Section 4.5: how often the slow predictor overrides the quick one.

Paper: the perceptron overrides its quick predictor 7.38% of the time on
average; the multi-component predictor disagrees on 18.1% of twolf's
branches.  Every override pays a bubble equal to the slow predictor's
access latency — the mechanism that erases the complex predictors' ideal
advantage.
"""

from __future__ import annotations

from benchmarks.conftest import write_result
from repro.harness.figures import MID_BUDGET, override_disagreement


def test_override_disagreement_rates(once):
    perceptron = once(override_disagreement, "perceptron", MID_BUDGET)
    multicomponent = override_disagreement("multicomponent", MID_BUDGET)
    write_result(
        "s45_override",
        perceptron.render() + "\n\n" + multicomponent.render(),
    )

    # Mean disagreement is a sizeable single-digit-to-teens percentage.
    assert 0.02 < perceptron.mean_rate < 0.30
    assert 0.02 < multicomponent.mean_rate < 0.30
    # Hard benchmarks disagree far more than easy ones (twolf vs vortex).
    if "twolf" in perceptron.per_benchmark and "vortex" in perceptron.per_benchmark:
        assert (
            multicomponent.per_benchmark["twolf"] > multicomponent.per_benchmark["vortex"]
        )
