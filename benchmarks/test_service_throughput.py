"""Cached-fetch throughput of the prediction service daemon.

Gated behind pytest-benchmark's opt-in flag::

    PYTHONPATH=src python -m pytest benchmarks/test_service_throughput.py --benchmark-enable

Pins the serving-layer performance claim: with one tiny figure job
completed, the daemon answers >= 10k ``GET /v1/results/<digest>``
requests per second over loopback keep-alive connections with pipelining,
with **zero predictor builds** during the load phase (tracing proves the
fetches never left the content-addressed fast path), and reports p50/p95/
p99 latency.
"""

from __future__ import annotations

import json
import subprocess
import sys
import time
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

#: The gate: cached fetches per second the daemon must sustain.
THROUGHPUT_FLOOR = 10_000


@pytest.fixture(autouse=True)
def require_benchmarks(request):
    if not request.config.getoption("--benchmark-enable"):
        pytest.skip("service throughput suite runs only with --benchmark-enable")


@pytest.fixture
def service_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "0.02")
    monkeypatch.setenv("REPRO_BENCHMARKS", "gcc")
    monkeypatch.setenv("REPRO_TRACE_STORE", str(tmp_path / "traces"))
    monkeypatch.setenv("REPRO_RESULT_STORE", str(tmp_path / "results"))
    monkeypatch.delenv("REPRO_LOG", raising=False)
    return tmp_path


def test_cached_fetch_throughput(service_env, tmp_path):
    from repro.predictors.registry import build_count
    from repro.service.config import ServiceConfig
    from tests.service_helpers import DaemonHarness, mini_spec

    config = ServiceConfig(data_dir=str(tmp_path / "svc"), workers=1)
    with DaemonHarness(config) as harness:
        code, doc = harness.request_json("POST", "/v1/jobs", mini_spec())
        assert code in (200, 202)
        status = harness.wait_settled(doc["job_id"])
        assert status["state"] == "completed"
        digest = status["figure_digest"]

        builds_before = build_count()
        started = time.perf_counter()
        proc = subprocess.run(
            [
                sys.executable,
                str(REPO_ROOT / "scripts" / "service_loadtest.py"),
                "--port",
                str(harness.port),
                "--path",
                f"/v1/results/{digest}",
                "--connections",
                "4",
                "--pipeline",
                "16",
                "--duration",
                "5",
                "--floor",
                str(THROUGHPUT_FLOOR),
            ],
            capture_output=True,
            text=True,
            timeout=120,
        )
        elapsed = time.perf_counter() - started
        assert proc.returncode == 0, f"loadtest failed:\n{proc.stdout}\n{proc.stderr}"
        report = json.loads(proc.stdout)
        builds_after = build_count()

    print()
    print(
        f"cached fetches: {report['requests']} in {report['seconds']:.2f}s "
        f"= {report['requests_per_second']:.0f} req/s "
        f"(p50 {report['p50_ms']:.2f}ms, p95 {report['p95_ms']:.2f}ms, "
        f"p99 {report['p99_ms']:.2f}ms; loadtest wall {elapsed:.2f}s)"
    )
    assert report["requests_per_second"] >= THROUGHPUT_FLOOR
    assert report["errors"] == 0
    # Zero predictor work during the load phase: every response came from
    # the content-addressed stores, never a recompute.
    assert builds_after == builds_before
