"""Figure 2: ideal (zero-delay) vs realistic (overriding) IPC for the
perceptron and multi-component predictors across large budgets."""

from __future__ import annotations

from benchmarks.conftest import LARGE_BUDGETS, ipc_instructions, write_result
from repro.harness.figures import figure2


def test_figure2_ideal_vs_overriding(once):
    figure = once(figure2, budgets=LARGE_BUDGETS, instructions=ipc_instructions())
    write_result("figure2", figure.render("Budget", "{:.3f}"))

    largest = LARGE_BUDGETS[-1]
    smallest = LARGE_BUDGETS[0]
    for family in ("multicomponent", "perceptron"):
        ideal = figure.series[f"{family} (no delay)"]
        real = figure.series[f"{family} (overriding)"]
        # Realistic never beats ideal, and the gap widens with budget —
        # the paper's core observation.
        for budget in LARGE_BUDGETS:
            assert real[budget] <= ideal[budget] + 1e-9
        assert (ideal[largest] - real[largest]) >= (ideal[smallest] - real[smallest]) - 1e-9
