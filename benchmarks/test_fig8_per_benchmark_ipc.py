"""Figure 8: per-benchmark IPC at the mid (53-64KB) budget, overriding for
the complex predictors against single-cycle gshare.fast."""

from __future__ import annotations

from benchmarks.conftest import ipc_instructions, write_result
from repro.harness.figures import MID_BUDGET, figure8


def test_figure8_per_benchmark_ipc(once):
    figure = once(figure8, budget_bytes=MID_BUDGET, instructions=ipc_instructions())
    write_result("figure8", figure.render("{:.3f}"))

    # Every IPC is physical (0 < ipc < issue width) and the per-benchmark
    # spread is wide (mcf-like workloads far below eon-like ones).
    for family, values in figure.series.items():
        for benchmark, ipc in values.items():
            assert 0 < ipc < 8
    if "mcf" in figure.benchmarks and "eon" in figure.benchmarks:
        for family in figure.series:
            assert figure.series[family]["mcf"] < figure.series[family]["eon"]
    # The paper's point at this budget: the realistic IPCs of complex
    # predictors and gshare.fast are "about the same" — within ~15%.
    fast = figure.means["gshare_fast"]
    for family in ("multicomponent", "perceptron"):
        assert abs(figure.means[family] - fast) / fast < 0.25
