"""Table 1: the simulated machine parameters."""

from __future__ import annotations

from benchmarks.conftest import write_result
from repro.harness.figures import table1


def test_table1_parameters(once):
    text = once(table1)
    write_result("table1", text)
    for expected in ("64 KB", "2 MB", "512 entry", "Issue width", "20"):
        assert expected in text
