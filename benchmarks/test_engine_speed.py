"""Scalar vs batch engine throughput on a fixed gshare workload.

Gated behind pytest-benchmark's opt-in flag so the figure-regeneration
suite stays unaffected::

    PYTHONPATH=src python -m pytest benchmarks/test_engine_speed.py --benchmark-enable

The comparison pins the tentpole performance claim: at the default
REPRO_SCALE the batch engine evaluates a 64KB-budget gshare over the gcc
trace at >= 10x the scalar protocol's speed while producing bit-identical
results (the differential suite proves the latter; this file measures the
former).
"""

from __future__ import annotations

import time

import pytest

from repro.harness.experiment import measure_accuracy
from repro.harness.scale import accuracy_instructions
from repro.predictors.gshare import GsharePredictor
from repro.workloads.spec2000 import spec2000_trace

#: 2**18 two-bit counters = 64KB — the paper's mid-budget gshare.
ENTRIES = 262_144


@pytest.fixture(autouse=True)
def require_benchmarks(request):
    if not request.config.getoption("--benchmark-enable"):
        pytest.skip("engine speed suite runs only with --benchmark-enable")


@pytest.fixture(scope="module")
def trace():
    trace = spec2000_trace("gcc", instructions=accuracy_instructions())
    trace.branch_arrays()  # pay the array extraction outside the timings
    return trace


def test_scalar_gshare_throughput(benchmark, trace):
    result = benchmark(
        lambda: measure_accuracy(GsharePredictor(ENTRIES), trace, engine="scalar")
    )
    assert result.branches > 0


def test_batch_gshare_throughput(benchmark, trace):
    result = benchmark(
        lambda: measure_accuracy(GsharePredictor(ENTRIES), trace, engine="batch")
    )
    assert result.branches > 0


def test_batch_speedup_at_least_10x(trace):
    """Head-to-head: best-of-N wall time, identical results required."""

    def best_of(n, engine):
        best = float("inf")
        result = None
        for _ in range(n):
            start = time.perf_counter()
            result = measure_accuracy(GsharePredictor(ENTRIES), trace, engine=engine)
            best = min(best, time.perf_counter() - start)
        return best, result

    scalar_time, scalar_result = best_of(3, "scalar")
    batch_time, batch_result = best_of(5, "batch")
    assert scalar_result == batch_result
    speedup = scalar_time / batch_time
    print(
        f"\nscalar {scalar_time * 1e3:.1f}ms  batch {batch_time * 1e3:.1f}ms  "
        f"speedup {speedup:.1f}x"
    )
    assert speedup >= 10.0
