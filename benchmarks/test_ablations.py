"""Ablation studies for the design choices DESIGN.md calls out.

These go beyond the paper's headline figures and probe the knobs of the
gshare.fast design and the delay-hiding schemes:

* PHT-buffer size vs accuracy (Section 3.3.1's buffer sizing discussion);
* pipeline depth vs the override penalty (the paper's motivating trend),
  including dual-path fetch as the alternative scheme of Section 2.6.2;
* gshare.fast history/staleness behaviour at fixed budget;
* quick-predictor size vs disagreement rate (Section 4.1.2 grants 2K
  entries; what do 1K or 4K buy?).
"""

from __future__ import annotations

from benchmarks.conftest import accuracy_instructions, ipc_instructions, write_result
from repro.core.dualpath import DualPathPolicy
from repro.core.gshare_fast import GshareFastPredictor
from repro.core.overriding import OverridingPredictor
from repro.harness.experiment import measure_accuracy, measure_override
from repro.harness.report import render_table
from repro.harness.scale import warmup_branches
from repro.predictors.factory import build_predictor
from repro.predictors.gshare import GsharePredictor
from repro.timing.latency import predictor_latency
from repro.uarch.config import MachineConfig
from repro.uarch.policies import DualPathFetchPolicy, OverridingPolicy, SingleCyclePolicy
from repro.uarch.simulator import CycleSimulator
from repro.workloads.spec2000 import get_profile, spec2000_trace

BENCH = "gcc"
ENTRIES_64KB = 64 * 1024 * 4


def _trace(instructions):
    return spec2000_trace(BENCH, instructions=instructions)


def test_ablation_buffer_size(once):
    """Sweep the PHT-buffer width at fixed PHT size and latency."""
    trace = _trace(accuracy_instructions())
    warmup = warmup_branches(trace.conditional_branch_count)

    def sweep():
        rows = []
        for buffer_bits in (3, 5, 7, 10):
            predictor = GshareFastPredictor(
                entries=ENTRIES_64KB, pht_latency=7, buffer_bits=buffer_bits
            )
            result = measure_accuracy(predictor, trace, warmup_branches=warmup)
            rows.append((1 << buffer_bits, f"{result.misprediction_percent:.2f}"))
        return rows

    rows = once(sweep)
    write_result(
        "abl_buffer_size",
        render_table(
            "Ablation: gshare.fast PHT-buffer size (64KB PHT, latency 7)",
            ["buffer entries", "mispredict %"],
            rows,
        ),
    )
    rates = [float(rate) for _, rate in rows]
    # All buffer sizes must function.  A wider buffer folds more PC bits
    # into the single-cycle select, so the 128-entry buffer should not be
    # worse than the paper's 8-entry one at this latency.
    assert rates[2] <= rates[0] + 0.5
    assert max(rates) - min(rates) < 10.0


def test_ablation_pipeline_depth(once):
    """Depth sweep: how pipeline depth amplifies predictor-induced bubbles
    for overriding, dual-path and gshare.fast."""
    trace = _trace(ipc_instructions())
    ilp = get_profile(BENCH).ilp
    budget = 256 * 1024
    latency = predictor_latency("perceptron", budget)

    def run(depth):
        config = MachineConfig(pipeline_depth=depth)
        fast = CycleSimulator(
            SingleCyclePolicy(GshareFastPredictor(entries=budget * 4)), config=config, ilp=ilp
        ).run(trace)
        overriding = CycleSimulator(
            OverridingPolicy(
                OverridingPredictor(build_predictor("perceptron", budget), slow_latency=latency)
            ),
            config=config,
            ilp=ilp,
        ).run(trace)
        dualpath = CycleSimulator(
            DualPathFetchPolicy(
                DualPathPolicy(build_predictor("perceptron", budget), latency=latency)
            ),
            config=config,
            ilp=ilp,
        ).run(trace)
        return fast.ipc, overriding.ipc, dualpath.ipc

    def sweep():
        return {depth: run(depth) for depth in (10, 20, 40)}

    results = once(sweep)
    rows = [
        (depth, f"{fast:.3f}", f"{over:.3f}", f"{dual:.3f}")
        for depth, (fast, over, dual) in sorted(results.items())
    ]
    write_result(
        "abl_pipeline_depth",
        render_table(
            "Ablation: pipeline depth vs IPC (256KB predictors, gcc)",
            ["depth", "gshare.fast", "perceptron overriding", "perceptron dual-path"],
            rows,
        ),
    )
    # Deeper pipelines hurt everyone; dual-path never beats overriding by
    # much (it halves fetch bandwidth for the whole latency window).
    for ipcs in zip(*[results[d] for d in (10, 20, 40)]):
        assert ipcs[0] > ipcs[2]


def test_ablation_history_length(once):
    """Classic gshare history-length sweep at a fixed 64KB PHT — shows the
    training-dilution tradeoff that motivates GSHARE_MAX_HISTORY."""
    trace = _trace(accuracy_instructions())
    warmup = warmup_branches(trace.conditional_branch_count)

    def sweep():
        rows = []
        for history in (4, 8, 12, 14, 18):
            predictor = GsharePredictor(entries=ENTRIES_64KB, history_length=history)
            result = measure_accuracy(predictor, trace, warmup_branches=warmup)
            rows.append((history, f"{result.misprediction_percent:.2f}"))
        return rows

    rows = once(sweep)
    write_result(
        "abl_history_length",
        render_table(
            "Ablation: gshare history length at 64KB (gcc)",
            ["history bits", "mispredict %"],
            rows,
        ),
    )
    rates = {h: float(r) for h, r in rows}
    # The dilution side of the tradeoff is robust at any scale: the longest
    # history is never the best configuration on short traces.
    assert min(rates[h] for h in (8, 12, 14)) < rates[18]


def test_ablation_quick_predictor_size(once):
    """Quick-predictor size vs override (disagreement) rate."""
    trace = _trace(accuracy_instructions())
    budget = 64 * 1024
    latency = predictor_latency("perceptron", budget)

    def sweep():
        rows = []
        for entries in (1024, 2048, 4096, 8192):
            overriding = OverridingPredictor(
                build_predictor("perceptron", budget),
                slow_latency=latency,
                quick=GsharePredictor(entries=entries),
            )
            result = measure_override(overriding, trace)
            rows.append(
                (entries, f"{100 * result.override_rate:.2f}", f"{result.misprediction_rate:.4f}")
            )
        return rows

    rows = once(sweep)
    write_result(
        "abl_quick_size",
        render_table(
            "Ablation: quick-predictor size vs override rate (perceptron slow, gcc)",
            ["quick entries", "override %", "final mispredict rate"],
            rows,
        ),
    )
    override_rates = [float(row[1]) for row in rows]
    final_rates = {row[2] for row in rows}
    # Disagreement stays in a plausible band at every quick size, and the
    # *final* accuracy is entirely the slow predictor's — the quick
    # predictor only affects how often the override bubble is paid.
    assert all(2.0 < rate < 40.0 for rate in override_rates)
    assert len(final_rates) == 1


def test_ablation_pipelined_families(once):
    """Extension study: gshare.fast vs bimode.fast across budgets.

    Both deliver single-cycle predictions by construction; bimode.fast adds
    Bi-Mode's bias separation.  This quantifies the paper's closing
    conjecture that other predictors can be reorganized the same way.
    """
    from benchmarks.conftest import LARGE_BUDGETS
    from repro.harness.scale import benchmark_names
    from repro.harness.sweep import accuracy_sweep, mean_by_family_budget

    def sweep():
        cells = accuracy_sweep(
            ["gshare_fast", "bimode_fast"],
            LARGE_BUDGETS,
            benchmarks=benchmark_names(),
            instructions=accuracy_instructions(),
        )
        return mean_by_family_budget(cells)

    means = once(sweep)
    rows = [
        (
            f"{budget // 1024}K",
            f"{means[('gshare_fast', budget)]:.2f}",
            f"{means[('bimode_fast', budget)]:.2f}",
        )
        for budget in LARGE_BUDGETS
    ]
    write_result(
        "abl_pipelined_families",
        render_table(
            "Ablation: pipelined single-cycle families, mean mispredict %",
            ["budget", "gshare.fast", "bimode.fast"],
            rows,
        ),
    )
    # bimode.fast must beat gshare.fast at every budget while keeping the
    # same single-cycle property — the reorganization pays.
    for budget in LARGE_BUDGETS:
        assert means[("bimode_fast", budget)] < means[("gshare_fast", budget)]
