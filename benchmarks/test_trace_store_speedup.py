"""Warm-start speedup of the content-addressed trace store.

Gated behind pytest-benchmark's opt-in flag so the figure-regeneration
suite stays unaffected::

    PYTHONPATH=src python -m pytest benchmarks/test_trace_store_speedup.py --benchmark-enable

Pins the tentpole performance claim: on a small-scale Figure 1 grid,
acquiring every benchmark trace from a warm store is >= 3x faster than
generating it, with zero ``ProgramExecutor`` invocations and replay-exact
content.
"""

from __future__ import annotations

import time

import pytest

from repro.workloads.spec2000 import (
    clear_trace_cache,
    executor_run_count,
    reset_executor_runs,
    spec2000_names,
    spec2000_trace,
)

#: Small-scale grid: every benchmark at a short trace length.
INSTRUCTIONS = 60_000


@pytest.fixture(autouse=True)
def require_benchmarks(request):
    if not request.config.getoption("--benchmark-enable"):
        pytest.skip("trace store suite runs only with --benchmark-enable")


@pytest.fixture
def store_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_STORE", str(tmp_path / "store"))
    clear_trace_cache()
    reset_executor_runs()
    yield
    clear_trace_cache()
    reset_executor_runs()


def acquire_grid():
    """Fetch every benchmark's trace (the per-sweep startup cost)."""
    return [
        spec2000_trace(name, instructions=INSTRUCTIONS) for name in spec2000_names()
    ]


def test_warm_start_at_least_3x(store_env):
    """Cold (generate + persist) vs warm (load columns): >= 3x, exact."""
    start = time.perf_counter()
    cold = acquire_grid()
    cold_seconds = time.perf_counter() - start
    assert executor_run_count() == len(spec2000_names())

    best_warm = float("inf")
    warm = None
    for _ in range(3):
        clear_trace_cache()
        start = time.perf_counter()
        warm = acquire_grid()
        best_warm = min(best_warm, time.perf_counter() - start)
    assert executor_run_count() == len(spec2000_names())  # nothing regenerated

    for a, b in zip(cold, warm):
        assert list(a.conditional_branches()) == list(b.conditional_branches())
    speedup = cold_seconds / best_warm
    print(
        f"\ncold {cold_seconds * 1e3:.0f}ms  warm {best_warm * 1e3:.0f}ms  "
        f"speedup {speedup:.1f}x"
    )
    assert speedup >= 3.0
