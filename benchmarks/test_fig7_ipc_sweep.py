"""Figure 7: harmonic-mean IPC vs budget — ideal single-cycle (left panel)
vs realistic overriding (right panel) for the complex predictors, with
gshare.fast in both panels (it is single-cycle by construction)."""

from __future__ import annotations

from benchmarks.conftest import LARGE_BUDGETS, ipc_instructions, write_result
from repro.harness.figures import figure7


def test_figure7_ipc_panels(once):
    left, right = once(figure7, budgets=LARGE_BUDGETS, instructions=ipc_instructions())
    write_result("figure7_ideal", left.render("Budget", "{:.3f}"))
    write_result("figure7_overriding", right.render("Budget", "{:.3f}"))

    smallest, largest = LARGE_BUDGETS[0], LARGE_BUDGETS[-1]

    # gshare.fast pays no override penalty: identical in both panels.
    for budget in LARGE_BUDGETS:
        assert abs(left.series["gshare_fast"][budget] - right.series["gshare_fast"][budget]) < 1e-9

    for family in ("2bcgskew", "multicomponent", "perceptron"):
        # Overriding loses IPC relative to ideal, more at larger budgets
        # where access latency (and therefore the override bubble) grows.
        assert right.series[family][largest] < left.series[family][largest]
        ideal_gain = left.series[family][largest] - left.series[family][smallest]
        real_gain = right.series[family][largest] - right.series[family][smallest]
        assert real_gain < ideal_gain + 1e-9

    # The realistic panel shows the paper's key reversal pressure: the
    # complex predictors' margin over gshare.fast shrinks once override
    # bubbles are charged.
    for family in ("2bcgskew", "multicomponent", "perceptron"):
        ideal_margin = left.series[family][largest] - left.series["gshare_fast"][largest]
        real_margin = right.series[family][largest] - right.series["gshare_fast"][largest]
        assert real_margin < ideal_margin
