"""Shared plumbing for the figure-regeneration benchmarks.

Each benchmark regenerates one of the paper's tables/figures (see
DESIGN.md's experiment index), asserts its headline *shape* property, and
writes the rendered text to ``results/<id>.txt`` next to this directory.

Scale: benchmarks default to a reduced trace length so the full suite
finishes in tens of minutes; ``REPRO_SCALE`` multiplies it (values >= 3
approach the asymptotic numbers recorded in EXPERIMENTS.md), and
``REPRO_BENCHMARKS`` selects a benchmark subset.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.harness.scale import scale_factor

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

#: Reduced per-benchmark trace lengths for the benchmark suite.
ACCURACY_INSTRUCTIONS = 300_000
IPC_INSTRUCTIONS = 200_000

#: Reduced budget grids (paper ladders thinned to keep runtime sane).
FIG1_BUDGETS = [4 * 1024, 32 * 1024, 256 * 1024]
LARGE_BUDGETS = [16 * 1024, 64 * 1024, 512 * 1024]


def accuracy_instructions() -> int:
    return max(int(ACCURACY_INSTRUCTIONS * scale_factor()), 10_000)


def ipc_instructions() -> int:
    return max(int(IPC_INSTRUCTIONS * scale_factor()), 10_000)


def write_result(name: str, text: str) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)


@pytest.fixture
def once(benchmark):
    """Run the figure generator exactly once under pytest-benchmark timing."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
