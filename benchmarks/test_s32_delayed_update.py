"""Section 3.2: the cost of updating the gshare.fast PHT slowly.

Paper measurement: allowing 64 branches between predict and update moves a
256KB budget from 4.03% to 4.07% mispredictions, with under 1% IPC loss.
"""

from __future__ import annotations

from benchmarks.conftest import write_result
from repro.harness.figures import delayed_update_study


def test_delayed_update_cost(once):
    result = once(delayed_update_study, budget_bytes=256 * 1024, delays=(0, 16, 64, 256))
    write_result("s32_delayed_update", result.render())

    base = result.misprediction_percent[0]
    delayed = result.misprediction_percent[64]
    # The 64-branch delay costs only a sliver of accuracy...
    assert abs(delayed - base) < 0.5
    # ...and within 1% of IPC (the paper's claim).
    assert result.ipc[64] >= result.ipc[0] * 0.99
    # Extreme delays cost more than moderate ones.
    assert result.misprediction_percent[256] >= result.misprediction_percent[16] - 0.1
