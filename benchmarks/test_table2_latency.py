"""Table 2: predictor access latencies from the SRAM delay model."""

from __future__ import annotations

from benchmarks.conftest import write_result
from repro.harness.figures import table2
from repro.timing.latency import table2 as latency_rows


def test_table2_latencies(once):
    text = once(table2)
    write_result("table2", text)

    rows = latency_rows()
    # Paper shape: ~3 cycles at the small end, ~9-11 at 512KB-class
    # budgets, monotonically nondecreasing in every column.
    assert 2 <= rows[0].multicomponent_cycles <= 3
    assert 2 <= rows[0].gskew_cycles <= 3
    assert 9 <= rows[-1].gskew_cycles <= 12
    assert 7 <= rows[-1].perceptron_cycles <= 10
    for column in ("multicomponent_cycles", "gskew_cycles", "perceptron_cycles"):
        values = [getattr(row, column) for row in rows]
        assert values == sorted(values)
