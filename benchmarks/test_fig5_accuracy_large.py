"""Figure 5: mean misprediction of the four large predictors (2Bc-gskew,
multi-component, perceptron, gshare.fast) at large budgets."""

from __future__ import annotations

from benchmarks.conftest import LARGE_BUDGETS, accuracy_instructions, write_result
from repro.harness.figures import figure5


def test_figure5_large_budget_accuracy(once):
    figure = once(figure5, budgets=LARGE_BUDGETS, instructions=accuracy_instructions())
    write_result("figure5", figure.render())

    # Paper shape: the complex predictors are more accurate than
    # gshare.fast at every budget (gshare.fast trades accuracy for a
    # single-cycle pipeline), and the perceptron leads.
    for budget in LARGE_BUDGETS:
        fast = figure.series["gshare_fast"][budget]
        assert figure.series["perceptron"][budget] < fast
        assert figure.series["multicomponent"][budget] < fast
        assert figure.series["perceptron"][budget] <= (
            figure.series["multicomponent"][budget] + 1.0
        )
