"""Timing substrate: FO4 clock model, SRAM access-time surrogate, Table 2."""

from repro.timing.fo4 import PAPER_CLOCK, ClockModel
from repro.timing.latency import (
    QUICK_PREDICTOR_CYCLES,
    QUICK_PREDICTOR_ENTRIES,
    LatencyRow,
    predictor_latency,
    table2,
)
from repro.timing.sram import SramArray, pht_array, table_access_cycles

__all__ = [
    "PAPER_CLOCK",
    "ClockModel",
    "LatencyRow",
    "QUICK_PREDICTOR_CYCLES",
    "QUICK_PREDICTOR_ENTRIES",
    "SramArray",
    "pht_array",
    "predictor_latency",
    "table2",
    "table_access_cycles",
]
