"""Predictor access-latency estimation (reproduces Table 2).

Per the paper's optimistic assumptions (Section 4.1.2 / 4.1.5):

* table-based predictors (2Bc-gskew, multi-component, Bi-Mode): latency is
  the access time of the *largest table component* plus a single FO4
  inverter delay for the combining computation (majority vote, chooser mux);
* the perceptron pays its largest table access plus one additional full
  cycle for the dot-product computation (optimistically assumed down from
  the >= 2 cycles estimated in the perceptron paper);
* the quick predictor of an overriding pair is a 2K-entry gshare that is
  optimistically assumed to answer in a single cycle;
* gshare.fast delivers every prediction in one cycle by construction; its
  *internal* PHT read latency (which sizes the prefetch buffer) is the plain
  PHT access time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigurationError
from repro.predictors.sizing import (
    floor_pow2,
    size_2bcgskew,
    size_bimode,
    size_gshare,
    size_multicomponent,
    size_perceptron,
)
from repro.timing.fo4 import PAPER_CLOCK, ClockModel
from repro.timing.sram import SramArray, pht_array

#: One fan-out-of-four inverter of combining logic (optimistic).
COMBINE_FO4 = 1.0

#: The quick predictor the paper grants to overriding schemes: a 2K-entry
#: gshare optimistically assumed to answer in one cycle (Section 4.1.2).
QUICK_PREDICTOR_ENTRIES = 2048
QUICK_PREDICTOR_CYCLES = 1


def gshare_pht_latency(budget_bytes: int, clock: ClockModel = PAPER_CLOCK) -> int:
    """Raw PHT read latency for a gshare/gshare.fast of ``budget_bytes``."""
    config = size_gshare(budget_bytes)
    return pht_array(config.entries).access_cycles(clock)


def bimode_latency(budget_bytes: int, clock: ClockModel = PAPER_CLOCK) -> int:
    """Bi-Mode access latency: direction-table read plus a combine FO4."""
    config = size_bimode(budget_bytes)
    table_fo4 = pht_array(config.direction_entries).access_delay_fo4()
    return clock.cycles_for_fo4(table_fo4 + COMBINE_FO4)


def gskew_latency(budget_bytes: int, clock: ClockModel = PAPER_CLOCK) -> int:
    """2Bc-gskew latency: one bank read plus the majority/meta FO4."""
    config = size_2bcgskew(budget_bytes)
    bank_fo4 = pht_array(config.bank_entries).access_delay_fo4()
    return clock.cycles_for_fo4(bank_fo4 + COMBINE_FO4)


def multicomponent_latency(budget_bytes: int, clock: ClockModel = PAPER_CLOCK) -> int:
    """Multi-hybrid latency: largest component table plus a chooser FO4."""
    config = size_multicomponent(budget_bytes)
    largest_fo4 = max(
        pht_array(config.gshare_long_entries).access_delay_fo4(),
        pht_array(config.bimodal_entries).access_delay_fo4(),
        pht_array(max(config.local_pht_entries, 64), 2).access_delay_fo4(),
        SramArray(
            rows=config.local_histories, bits_per_row=config.local_history_length
        ).access_delay_fo4(),
    )
    return clock.cycles_for_fo4(largest_fo4 + COMBINE_FO4)


def perceptron_latency(budget_bytes: int, clock: ClockModel = PAPER_CLOCK) -> int:
    """Perceptron latency: weight-table read plus one compute cycle."""
    config = size_perceptron(budget_bytes)
    history = config.global_history + config.local_history
    table = SramArray(rows=max(config.num_perceptrons, 2), bits_per_row=(history + 1) * 8)
    # Table access plus one full (optimistic) cycle of dot-product logic.
    return table.access_cycles(clock) + 1


def bimodal_latency(budget_bytes: int, clock: ClockModel = PAPER_CLOCK) -> int:
    """Bimodal latency: a plain PC-indexed counter-table read."""
    entries = floor_pow2(budget_bytes * 4)
    return pht_array(entries).access_cycles(clock)


_LATENCY_FUNCTIONS = {
    "gshare": gshare_pht_latency,
    "gshare_fast_pht": gshare_pht_latency,
    "bimodal": bimodal_latency,
    "bimode": bimode_latency,
    "2bcgskew": gskew_latency,
    "egskew": gskew_latency,
    "multicomponent": multicomponent_latency,
    "perceptron": perceptron_latency,
}


def predictor_latency(family: str, budget_bytes: int, clock: ClockModel = PAPER_CLOCK) -> int:
    """Access latency in cycles for ``family`` at ``budget_bytes``.

    For ``gshare_fast`` the *delivered* latency is one cycle (it is
    pipelined); use ``gshare_fast_pht`` for its internal PHT read latency.
    """
    if family == "gshare_fast":
        return 1
    try:
        function = _LATENCY_FUNCTIONS[family]
    except KeyError:
        raise ConfigurationError(
            f"no latency model for predictor family {family!r}"
        ) from None
    return function(budget_bytes, clock)


@dataclass(frozen=True)
class LatencyRow:
    """One row of the reproduced Table 2."""

    multicomponent_budget: int
    multicomponent_cycles: int
    budget: int
    gskew_cycles: int
    perceptron_cycles: int


def table2(clock: ClockModel = PAPER_CLOCK) -> list[LatencyRow]:
    """Reproduce Table 2: access latencies across the paper's budgets.

    The multi-component column uses the paper's 18KB-based budget ladder;
    the 2Bc-gskew and perceptron columns use the power-of-two ladder.
    """
    multicomponent_budgets = [18, 36, 72, 143, 286, 572]
    pow2_budgets = [16, 32, 64, 128, 256, 512]
    rows = []
    for mc_kb, p2_kb in zip(multicomponent_budgets, pow2_budgets):
        rows.append(
            LatencyRow(
                multicomponent_budget=mc_kb * 1024,
                multicomponent_cycles=multicomponent_latency(mc_kb * 1024, clock),
                budget=p2_kb * 1024,
                gskew_cycles=gskew_latency(p2_kb * 1024, clock),
                perceptron_cycles=perceptron_latency(p2_kb * 1024, clock),
            )
        )
    return rows
