"""Analytic SRAM access-time model (simplified CACTI 3.0 stand-in).

The paper estimates pattern-history-table access times with a modified
CACTI 3.0 at 100 nm.  We reproduce the *outputs that matter to the
experiments* — access delays in FO4 that grow from one 8-FO4 cycle at 1K
entries (the single-cycle PHT limit from Jiménez et al. [7]) to ~11 cycles
for a 512K-entry bank (Table 2) — with a two-term analytic model:

    delay_fo4 = DECODE_FO4 * log2(rows) + WIRE_COEFFICIENT * C ** WIRE_EXPONENT
    C         = rows * min(bits_per_row, WIDTH_CAP_BITS)

* the decode term models decoder depth (a PHT decodes one row per entry, the
  paper's Section 2.3.1 point that PHTs decode far more entries than an
  equal-size cache);
* the wire term models word/bit-line RC, superlinear in capacity to reflect
  resistive wire scaling at small feature sizes;
* the width cap models CACTI's banking: beyond WIDTH_CAP_BITS the row is
  split into column banks read in parallel, so extra width stops adding wire
  delay (this is why the paper's wide-row perceptron table is not slower
  than a narrow PHT of equal capacity).

Constants are fit to the anchors recoverable from the paper: 1K x 2b = 1
cycle, 16K x 2b = 2 cycles, 512K x 2b = 11 cycles (with one FO4 of combining
logic).  This is a *calibrated surrogate*, not a transistor-level model;
DESIGN.md records the substitution.  Everything downstream consumes only the
per-budget cycle counts, which match the paper's Table 2 shape.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.common.errors import ConfigurationError
from repro.timing.fo4 import PAPER_CLOCK, ClockModel

#: FO4 per level of row decode (fit).
DECODE_FO4 = 0.7135
#: Wire RC coefficient (fit).
WIRE_COEFFICIENT = 0.004149
#: Wire-growth exponent on capacity (fit).
WIRE_EXPONENT = 0.70
#: Row width beyond which extra bits are column-banked (no extra wire delay).
WIDTH_CAP_BITS = 64


@dataclass(frozen=True)
class SramArray:
    """A logical SRAM array: ``rows`` words of ``bits_per_row`` bits."""

    rows: int
    bits_per_row: int

    def __post_init__(self) -> None:
        if self.rows < 1:
            raise ConfigurationError(f"SRAM needs at least one row, got {self.rows}")
        if self.bits_per_row < 1:
            raise ConfigurationError(
                f"SRAM rows need at least one bit, got {self.bits_per_row}"
            )

    @property
    def total_bits(self) -> int:
        """Capacity in bits."""
        return self.rows * self.bits_per_row

    @property
    def total_bytes(self) -> int:
        """Capacity in whole bytes (rounded up)."""
        return (self.total_bits + 7) // 8

    def access_delay_fo4(self) -> float:
        """Access time in FO4 delays at 100 nm."""
        decode = DECODE_FO4 * math.log2(max(self.rows, 2))
        capacity = self.rows * min(self.bits_per_row, WIDTH_CAP_BITS)
        wire = WIRE_COEFFICIENT * capacity**WIRE_EXPONENT
        return decode + wire

    def access_cycles(self, clock: ClockModel = PAPER_CLOCK) -> int:
        """Access latency in (whole) cycles of ``clock``."""
        return clock.cycles_for_fo4(self.access_delay_fo4())


def pht_array(entries: int, counter_bits: int = 2) -> SramArray:
    """SRAM array for a pattern history table of saturating counters."""
    if entries < 8:
        raise ConfigurationError(f"PHT must have at least 8 entries, got {entries}")
    return SramArray(rows=entries, bits_per_row=counter_bits)


def table_access_cycles(
    entries: int, counter_bits: int = 2, clock: ClockModel = PAPER_CLOCK
) -> int:
    """Convenience: access latency in cycles for a counter table."""
    return pht_array(entries, counter_bits).access_cycles(clock)
