"""Clock model in fan-out-of-four (FO4) inverter delays.

The paper's timing frame (Section 4.1.2): an aggressive clock period of
8 FO4 — 6 FO4 of useful logic plus 2 FO4 of latch overhead per Hrishikesh et
al. — which at 100 nm corresponds to roughly 3.5 GHz.  All structure delays
are expressed in FO4 and converted to cycles against this period.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.common.errors import ConfigurationError

#: FO4 inverter delay rule of thumb: ~360 ps per micron of drawn gate length.
PS_PER_FO4_PER_MICRON = 360.0


@dataclass(frozen=True)
class ClockModel:
    """A clock defined by its period in FO4 delays at a process node."""

    period_fo4: float = 8.0
    process_nm: float = 100.0

    def __post_init__(self) -> None:
        if self.period_fo4 <= 0:
            raise ConfigurationError(f"clock period must be positive, got {self.period_fo4}")
        if self.process_nm <= 0:
            raise ConfigurationError(f"process node must be positive, got {self.process_nm}")

    @property
    def fo4_ps(self) -> float:
        """One FO4 delay in picoseconds at this node."""
        return PS_PER_FO4_PER_MICRON * (self.process_nm / 1000.0)

    @property
    def period_ps(self) -> float:
        """Clock period in picoseconds."""
        return self.period_fo4 * self.fo4_ps

    @property
    def frequency_ghz(self) -> float:
        """Clock frequency in GHz."""
        return 1000.0 / self.period_ps

    def cycles_for_fo4(self, delay_fo4: float) -> int:
        """Clock cycles needed to cover ``delay_fo4`` of logic (>= 1).

        A small tolerance keeps structures calibrated to land exactly on a
        cycle boundary from spilling into the next cycle through floating-
        point noise.
        """
        if delay_fo4 < 0:
            raise ConfigurationError(f"delay must be non-negative, got {delay_fo4}")
        return max(1, math.ceil(delay_fo4 / self.period_fo4 - 1e-6))


#: The paper's clock: 8 FO4 at 100 nm, ~3.5 GHz.
PAPER_CLOCK = ClockModel(period_fo4=8.0, process_nm=100.0)
