"""Cycle-level processor model: trace + fetch policy -> IPC.

A SimpleScalar stand-in built for the effects this paper measures.  The
front end is modelled cycle by cycle — every fetch block pays for I-cache
misses, fetch-width limits, BTB misses, override bubbles and misprediction
redirects — because all of the paper's phenomena live there.  The back end
is an interval model: an in-order retirement cursor paced by the workload's
exploitable ILP, data-cache stalls (with a memory-level-parallelism
factor), and a ROB window that throttles fetch when the back end falls too
far behind.  DESIGN.md records this substitution for the authors' full
out-of-order SimpleScalar/Alpha.

Event accounting per block:

    fetch_start  = next free fetch slot (after bubbles/redirects)
    fetch_end    = fetch_start + icache stalls + ceil(instrs / width)
    exec_ready   = fetch_end + front_depth          (decode/rename/issue)
    backend_end  = max(backend_end, exec_ready) + instrs/min(ilp, width)
                   + dcache stalls / MLP
    mispredict   -> next fetch_start = max(exec_ready, prev backend_end)+1
                    (the branch must reach execute before redirecting)

IPC = instructions / cycles at the last block's completion.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro import obs
from repro.common.errors import ConfigurationError
from repro.uarch.btb import BranchTargetBuffer, ReturnAddressStack
from repro.uarch.caches import MemoryHierarchy, paper_hierarchy
from repro.uarch.config import PAPER_MACHINE, MachineConfig
from repro.uarch.policies import FetchPolicy
from repro.workloads.trace import BranchKind, Trace


@dataclass
class StallBreakdown:
    """Where the cycles went (beyond ideal single-cycle fetch flow)."""

    icache: int = 0
    dcache: int = 0
    mispredict: int = 0
    override_bubble: int = 0
    btb_miss: int = 0
    ras_miss: int = 0


@dataclass
class SimulationResult:
    """Outcome of one simulation run."""

    trace: str
    policy: str
    instructions: int
    cycles: int
    conditional_branches: int
    mispredictions: int
    overrides: int
    stalls: StallBreakdown = field(default_factory=StallBreakdown)

    @property
    def ipc(self) -> float:
        """Instructions per cycle over the whole run."""
        if self.cycles == 0:
            return 0.0
        return self.instructions / self.cycles

    @property
    def misprediction_rate(self) -> float:
        """Fraction of conditional branches the policy got wrong."""
        if self.conditional_branches == 0:
            return 0.0
        return self.mispredictions / self.conditional_branches


class CycleSimulator:
    """Runs one trace through the machine under a given fetch policy."""

    def __init__(
        self,
        policy: FetchPolicy,
        config: MachineConfig = PAPER_MACHINE,
        ilp: float = 2.8,
        hierarchy: MemoryHierarchy | None = None,
    ) -> None:
        if ilp <= 0:
            raise ConfigurationError("ilp must be positive")
        self.policy = policy
        self.config = config
        self.ilp = min(ilp, float(config.issue_width))
        self.hierarchy = hierarchy or paper_hierarchy(
            l2_hit_cycles=config.l2_hit_cycles, memory_cycles=config.memory_cycles
        )
        self.btb = BranchTargetBuffer(entries=config.btb_entries, ways=config.btb_ways)
        self.ras = ReturnAddressStack(depth=config.ras_depth)

    def run(self, trace: Trace) -> SimulationResult:
        """Simulate ``trace`` start to finish and return cycles/IPC/stats."""
        config = self.config
        stalls = StallBreakdown()
        next_fetch = 0.0  # next free fetch cycle
        backend_end = float(config.front_depth)  # in-order retirement cursor
        half_width_until = 0.0  # dual-path window
        rob_lead = config.rob_size / self.ilp  # max cycles fetch may lead
        last_branch_fetch_end = 0.0  # for gap-aware (cascading) policies
        gap_aware = hasattr(self.policy, "note_gap")
        # Multi-block fetch group (Section 3.3.1): consecutive blocks share
        # a fetch cycle while the group has slots and width to spare.
        group_end = -1.0
        group_count = 0
        group_instructions = 0
        mispredictions = 0
        overrides = 0
        branches = 0
        instructions = 0

        for block in trace.blocks:
            instructions += block.instructions
            # ROB throttle: fetch cannot run arbitrarily ahead of retire.
            if next_fetch < backend_end - rob_lead:
                next_fetch = backend_end - rob_lead

            fetch_start = next_fetch
            # I-cache: charge the block's first line; long blocks touch more.
            icache_stall = self.hierarchy.access_instruction(block.pc)
            last_byte = block.pc + block.instructions * 4 - 1
            if (last_byte >> 6) != (block.pc >> 6):
                icache_stall += self.hierarchy.access_instruction(last_byte)
            stalls.icache += icache_stall

            width = config.issue_width
            if fetch_start < half_width_until:
                width = max(width // 2, 1)
            # EV8-style multi-block fetch: each block in a group gets a full
            # fetch-block's width (bandwidth scales with blocks_per_cycle),
            # so a block joins the open group when slots remain, it follows
            # immediately (no bubble/redirect in between), it hit the
            # I-cache, and it fits one fetch block by itself.
            same_cycle = (
                config.blocks_per_cycle > 1
                and group_count < config.blocks_per_cycle
                and fetch_start == group_end
                and icache_stall == 0
                and block.instructions <= width
            )
            if same_cycle:
                fetch_end = group_end
                group_count += 1
                group_instructions += block.instructions
            else:
                fetch_cycles = math.ceil(block.instructions / width)
                fetch_end = fetch_start + icache_stall + fetch_cycles
                group_end = fetch_end
                group_count = 1
                group_instructions = block.instructions
            next_fetch = fetch_end

            # Back end: pace retirement by ILP and data stalls.
            data_stall = 0.0
            for address in block.loads:
                data_stall += self.hierarchy.access_data(address)
            for address in block.stores:
                self.hierarchy.access_data(address)  # fills, no retire stall
            data_stall /= config.memory_level_parallelism
            stalls.dcache += int(data_stall)
            exec_ready = fetch_end + config.front_depth
            prev_backend_end = backend_end
            backend_end = (
                max(backend_end, exec_ready) + block.instructions / self.ilp + data_stall
            )

            if block.branch_kind == BranchKind.NONE:
                continue

            # -- branch handling at the block terminator -------------------
            if block.branch_kind == BranchKind.CONDITIONAL:
                branches += 1
                if gap_aware:
                    self.policy.note_gap(int(fetch_end - last_branch_fetch_end))
                last_branch_fetch_end = fetch_end
                prediction = self.policy.predict(block.branch_pc)
                correct = self.policy.update(block.branch_pc, block.taken)
                if prediction.bubble_cycles:
                    overrides += 1
                    next_fetch += prediction.bubble_cycles
                    stalls.override_bubble += prediction.bubble_cycles
                if prediction.half_width_cycles:
                    # A second branch inside an open window cannot fork
                    # again: fetch waits for the window to close first.
                    if fetch_end < half_width_until:
                        stall = half_width_until - fetch_end
                        next_fetch += stall
                        stalls.override_bubble += int(stall)
                    half_width_until = next_fetch + prediction.half_width_cycles
                if prediction.taken:
                    target = self.btb.lookup(block.branch_pc)
                    if target is None or target != block.target:
                        # Redirect waits for decode to compute the target.
                        next_fetch += config.btb_miss_penalty
                        stalls.btb_miss += config.btb_miss_penalty
                    self.btb.install(block.branch_pc, block.target)
                if not correct:
                    mispredictions += 1
                    resolve = max(exec_ready, prev_backend_end) + 1
                    if resolve > next_fetch:
                        stalls.mispredict += int(resolve - next_fetch)
                        next_fetch = resolve
            elif block.branch_kind == BranchKind.CALL:
                self.ras.push(block.branch_pc + 4)
                target = self.btb.lookup(block.branch_pc)
                if target is None or target != block.target:
                    next_fetch += config.btb_miss_penalty
                    stalls.btb_miss += config.btb_miss_penalty
                self.btb.install(block.branch_pc, block.target)
            elif block.branch_kind == BranchKind.RETURN:
                predicted = self.ras.pop()
                if predicted != block.target:
                    # RAS miss: treated like a mispredicted branch.
                    resolve = max(exec_ready, prev_backend_end) + 1
                    if resolve > next_fetch:
                        stalls.ras_miss += int(resolve - next_fetch)
                        next_fetch = resolve
            else:  # unconditional direct jump
                target = self.btb.lookup(block.branch_pc)
                if target is None or target != block.target:
                    next_fetch += config.btb_miss_penalty
                    stalls.btb_miss += config.btb_miss_penalty
                self.btb.install(block.branch_pc, block.target)

        cycles = int(math.ceil(max(next_fetch, backend_end)))
        result = SimulationResult(
            trace=trace.name,
            policy=self.policy.name,
            instructions=instructions,
            cycles=max(cycles, 1),
            conditional_branches=branches,
            mispredictions=mispredictions,
            overrides=overrides,
            stalls=stalls,
        )
        if obs.enabled():
            self._publish(result)
        return result

    def _publish(self, result: SimulationResult) -> None:
        """Account this run's cycles — bubbles broken down by cause — into
        the default metrics registry (once per run, never per block)."""
        registry = obs.registry()
        registry.counter("sim.runs").inc()
        registry.counter("sim.instructions").inc(result.instructions)
        registry.counter("sim.cycles").inc(result.cycles)
        registry.counter("sim.branches").inc(result.conditional_branches)
        registry.counter("sim.mispredictions").inc(result.mispredictions)
        registry.counter("sim.overrides").inc(result.overrides)
        stalls = result.stalls
        for cause, amount in (
            ("icache", stalls.icache),
            ("dcache", stalls.dcache),
            ("mispredict", stalls.mispredict),
            ("override_bubble", stalls.override_bubble),
            ("btb_miss", stalls.btb_miss),
            ("ras_miss", stalls.ras_miss),
        ):
            registry.counter(f"sim.stall.{cause}").inc(amount)
        overriding = getattr(self.policy, "overriding", None)
        if overriding is not None and hasattr(overriding, "record_stats"):
            overriding.record_stats(registry)
