"""Fetch-engine branch-direction policies.

The cycle simulator is agnostic to how directions are produced; a policy
wraps a predictor (or predictor pair) and reports, per conditional branch,
the final direction plus the front-end cost of obtaining it:

* :class:`SingleCyclePolicy` — a predictor that answers in one cycle with
  no extra cost.  Used for gshare.fast (which earns this by construction)
  and for the *ideal* zero-delay versions of the complex predictors
  (Figure 2 / Figure 7-left).
* :class:`OverridingPolicy` — quick + slow pair; every disagreement costs
  an override bubble equal to the slow predictor's latency (Figure 2 /
  Figure 7-right).
* :class:`DualPathPolicy` wrapper — no bubbles, but fetch runs at half
  width while the slow prediction is in flight, and a second branch inside
  the window stalls fetch (Section 2.6.2's scalability problem).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.core.cascading import CascadingPredictor
from repro.core.dualpath import DualPathPolicy
from repro.core.overriding import OverridingPredictor
from repro.predictors.base import BranchPredictor


@dataclass(frozen=True)
class PolicyPrediction:
    """Front-end product of a direction prediction."""

    taken: bool
    bubble_cycles: int = 0
    half_width_cycles: int = 0


class FetchPolicy(ABC):
    """Per-branch predict/update driven by the simulator, in trace order."""

    name: str = "abstract"

    @abstractmethod
    def predict(self, pc: int) -> PolicyPrediction:
        """Direction for the conditional branch at ``pc`` plus its cost."""

    @abstractmethod
    def update(self, pc: int, taken: bool) -> bool:
        """Resolve the branch; True when the final prediction was correct."""


class SingleCyclePolicy(FetchPolicy):
    """A predictor treated as answering within the fetch cycle."""

    def __init__(self, predictor: BranchPredictor) -> None:
        self.predictor = predictor
        self.name = f"1cyc({predictor.name})"

    def predict(self, pc: int) -> PolicyPrediction:
        return PolicyPrediction(taken=self.predictor.predict(pc))

    def update(self, pc: int, taken: bool) -> bool:
        return self.predictor.update(pc, taken)


class OverridingPolicy(FetchPolicy):
    """Quick/slow overriding pair: disagreement costs the slow latency."""

    def __init__(self, overriding: OverridingPredictor) -> None:
        self.overriding = overriding
        self.name = overriding.name
        self.override_bubbles = 0

    def predict(self, pc: int) -> PolicyPrediction:
        outcome = self.overriding.predict(pc)
        bubble = self.overriding.override_penalty_cycles if outcome.overridden else 0
        if outcome.overridden:
            self.override_bubbles += bubble
        return PolicyPrediction(taken=outcome.final_taken, bubble_cycles=bubble)

    def update(self, pc: int, taken: bool) -> bool:
        return self.overriding.update(pc, taken)


class DualPathFetchPolicy(FetchPolicy):
    """Slow predictor hidden by dual-path fetch: half-width windows."""

    def __init__(self, dualpath: DualPathPolicy) -> None:
        self.dualpath = dualpath
        self.name = dualpath.name

    def predict(self, pc: int) -> PolicyPrediction:
        return PolicyPrediction(
            taken=self.dualpath.predict(pc),
            half_width_cycles=self.dualpath.half_bandwidth_window(),
        )

    def update(self, pc: int, taken: bool) -> bool:
        return self.dualpath.update(pc, taken)


class CascadingFetchPolicy(FetchPolicy):
    """Cascading/lookahead prediction: the slow predictor's answer is used
    only when the fetch gap since the previous branch covers its latency.

    The simulator reports gaps through :meth:`note_gap` before each
    ``predict`` call; with no report the gap is assumed zero (quick path).
    """

    def __init__(self, cascading: CascadingPredictor) -> None:
        self.cascading = cascading
        self.name = cascading.name
        self._gap_cycles = 0

    def note_gap(self, cycles: int) -> None:
        self._gap_cycles = max(int(cycles), 0)

    def predict(self, pc: int) -> PolicyPrediction:
        taken = self.cascading.predict(pc, self._gap_cycles)
        self._gap_cycles = 0
        return PolicyPrediction(taken=taken)

    def update(self, pc: int, taken: bool) -> bool:
        return self.cascading.update(pc, taken)
