"""Branch target prediction: BTB and return-address stack.

Table 1: a 512-entry, 2-way set-associative branch target buffer.  The BTB
supplies targets for taken branches; a miss means the front end cannot
redirect until the target is computed in decode, a short bubble.  Returns
are predicted by a classic return-address stack pushed by calls.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.bits import is_power_of_two
from repro.common.errors import ConfigurationError


@dataclass
class BtbStats:
    """Lookup/miss counters for the BTB."""

    lookups: int = 0
    misses: int = 0

    @property
    def miss_rate(self) -> float:
        """Misses per lookup (0.0 before any lookup)."""
        if self.lookups == 0:
            return 0.0
        return self.misses / self.lookups


class BranchTargetBuffer:
    """Set-associative PC -> target cache with LRU replacement."""

    def __init__(self, entries: int = 512, ways: int = 2) -> None:
        if ways < 1:
            raise ConfigurationError(f"BTB associativity must be >= 1, got {ways}")
        if entries % ways:
            raise ConfigurationError(f"{entries} entries cannot be {ways}-way")
        self.sets = entries // ways
        if not is_power_of_two(self.sets):
            raise ConfigurationError(f"BTB set count must be a power of two, got {self.sets}")
        self.ways = ways
        self.stats = BtbStats()
        # Per set: list of (tag, target), most recent last.
        self._sets: list[list[tuple[int, int]]] = [[] for _ in range(self.sets)]

    def _index(self, pc: int) -> tuple[int, int]:
        line = pc >> 2
        return line % self.sets, line // self.sets

    def lookup(self, pc: int) -> int | None:
        """Predicted target for the branch at ``pc``, or None on miss."""
        set_index, tag = self._index(pc)
        entries = self._sets[set_index]
        self.stats.lookups += 1
        for position, (entry_tag, target) in enumerate(entries):
            if entry_tag == tag:
                entries.append(entries.pop(position))  # LRU bump
                return target
        self.stats.misses += 1
        return None

    def install(self, pc: int, target: int) -> None:
        """Insert or refresh the target for the branch at ``pc``."""
        set_index, tag = self._index(pc)
        entries = self._sets[set_index]
        for position, (entry_tag, _) in enumerate(entries):
            if entry_tag == tag:
                entries.pop(position)
                break
        entries.append((tag, target))
        if len(entries) > self.ways:
            entries.pop(0)


class ReturnAddressStack:
    """Fixed-depth RAS; overflow discards the oldest entry (as hardware
    does), so deeply recursive call chains can mispredict on unwind."""

    def __init__(self, depth: int = 16) -> None:
        if depth < 1:
            raise ConfigurationError(f"RAS depth must be >= 1, got {depth}")
        self.depth = depth
        self._stack: list[int] = []
        self.overflows = 0

    def push(self, return_address: int) -> None:
        """Record a call's return address."""
        self._stack.append(return_address)
        if len(self._stack) > self.depth:
            self._stack.pop(0)
            self.overflows += 1

    def pop(self) -> int | None:
        """Predicted return target, or None when the stack is empty."""
        if self._stack:
            return self._stack.pop()
        return None

    def __len__(self) -> int:
        return len(self._stack)
