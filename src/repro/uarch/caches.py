"""Cache models for the cycle simulator.

Table 1 of the paper fixes the hierarchy: 64KB direct-mapped L1 I- and
D-caches with 64-byte lines, and a 2MB 4-way L2 with 128-byte lines.  The
model tracks tags only (no data), with LRU replacement for the set-
associative L2; latencies are charged by the simulator, not here.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.common.bits import is_power_of_two, log2_exact
from repro.common.errors import ConfigurationError


@dataclass
class CacheStats:
    """Access/miss counters for one cache level."""

    accesses: int = 0
    misses: int = 0

    @property
    def miss_rate(self) -> float:
        """Misses per access (0.0 before any access)."""
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses


class Cache:
    """A tag-only cache model: ``size_bytes`` with ``line_bytes`` lines and
    ``ways`` associativity (1 = direct mapped), true-LRU replacement."""

    def __init__(self, size_bytes: int, line_bytes: int, ways: int = 1) -> None:
        if not is_power_of_two(line_bytes):
            raise ConfigurationError(f"line size must be a power of two, got {line_bytes}")
        if ways < 1:
            raise ConfigurationError(f"associativity must be >= 1, got {ways}")
        lines = size_bytes // line_bytes
        if lines < ways or lines % ways:
            raise ConfigurationError(
                f"cache of {size_bytes}B / {line_bytes}B lines cannot be {ways}-way"
            )
        self.size_bytes = size_bytes
        self.line_bytes = line_bytes
        self.ways = ways
        self.sets = lines // ways
        if not is_power_of_two(self.sets):
            raise ConfigurationError(f"cache must have a power-of-two set count, got {self.sets}")
        self.line_shift = log2_exact(line_bytes)
        self.stats = CacheStats()
        # tags[set, way]; -1 = invalid.  lru[set, way]: higher = more recent.
        self._tags = np.full((self.sets, ways), -1, dtype=np.int64)
        self._lru = np.zeros((self.sets, ways), dtype=np.int64)
        self._clock = 0

    def _locate(self, address: int) -> tuple[int, int]:
        line = address >> self.line_shift
        return line % self.sets, line // self.sets

    def access(self, address: int) -> bool:
        """Access (and fill on miss); returns True on hit."""
        set_index, tag = self._locate(address)
        self._clock += 1
        self.stats.accesses += 1
        ways = self._tags[set_index]
        hits = np.nonzero(ways == tag)[0]
        if hits.size:
            self._lru[set_index, hits[0]] = self._clock
            return True
        self.stats.misses += 1
        victim = int(np.argmin(self._lru[set_index]))
        self._tags[set_index, victim] = tag
        self._lru[set_index, victim] = self._clock
        return False

    def probe(self, address: int) -> bool:
        """Check residency without updating state (used by tests)."""
        set_index, tag = self._locate(address)
        return bool((self._tags[set_index] == tag).any())

    def flush(self) -> None:
        """Invalidate every line."""
        self._tags.fill(-1)
        self._lru.fill(0)


@dataclass
class MemoryHierarchy:
    """L1 I/D backed by a shared L2 and a flat memory latency.

    ``access_*`` methods return the *additional* stall cycles beyond an L1
    hit, so an L1 hit costs 0 here (its latency is part of the pipeline).
    """

    l1i: Cache
    l1d: Cache
    l2: Cache
    l2_hit_cycles: int = 12
    memory_cycles: int = 200
    stats_l2_from_i: CacheStats = field(default_factory=CacheStats)

    def access_instruction(self, address: int) -> int:
        """Stall cycles for an instruction fetch beyond an L1I hit."""
        if self.l1i.access(address):
            return 0
        if self.l2.access(address):
            return self.l2_hit_cycles
        return self.memory_cycles

    def access_data(self, address: int) -> int:
        """Stall cycles for a data access beyond an L1D hit."""
        if self.l1d.access(address):
            return 0
        if self.l2.access(address):
            return self.l2_hit_cycles
        return self.memory_cycles


def paper_hierarchy(l2_hit_cycles: int = 12, memory_cycles: int = 200) -> MemoryHierarchy:
    """The Table 1 configuration."""
    return MemoryHierarchy(
        l1i=Cache(64 * 1024, 64, ways=1),
        l1d=Cache(64 * 1024, 64, ways=1),
        l2=Cache(2 * 1024 * 1024, 128, ways=4),
        l2_hit_cycles=l2_hit_cycles,
        memory_cycles=memory_cycles,
    )
