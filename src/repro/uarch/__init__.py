"""Microarchitecture substrate: caches, BTB, fetch policies, cycle simulator."""

from repro.uarch.btb import BranchTargetBuffer, ReturnAddressStack
from repro.uarch.caches import Cache, CacheStats, MemoryHierarchy, paper_hierarchy
from repro.uarch.config import PAPER_MACHINE, MachineConfig
from repro.uarch.policies import (
    CascadingFetchPolicy,
    DualPathFetchPolicy,
    FetchPolicy,
    OverridingPolicy,
    PolicyPrediction,
    SingleCyclePolicy,
)
from repro.uarch.simulator import CycleSimulator, SimulationResult, StallBreakdown

__all__ = [
    "BranchTargetBuffer",
    "Cache",
    "CacheStats",
    "CascadingFetchPolicy",
    "CycleSimulator",
    "DualPathFetchPolicy",
    "FetchPolicy",
    "MachineConfig",
    "MemoryHierarchy",
    "OverridingPolicy",
    "PAPER_MACHINE",
    "PolicyPrediction",
    "ReturnAddressStack",
    "SimulationResult",
    "SingleCyclePolicy",
    "StallBreakdown",
    "paper_hierarchy",
]
