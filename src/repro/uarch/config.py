"""Machine configuration (Table 1 of the paper, plus model constants).

The paper's simulated machine: 64KB direct-mapped L1 I/D (64-byte lines),
2MB 4-way L2 (128-byte lines), 512-entry 2-way BTB, issue width 8,
pipeline depth 20.  Constants the paper does not pin down (miss latencies,
BTB-miss bubble, ROB size) are set to values conventional for the era and
are exposed for ablation sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigurationError


@dataclass(frozen=True)
class MachineConfig:
    """Parameters of the simulated out-of-order machine."""

    issue_width: int = 8
    pipeline_depth: int = 20
    #: caches (Table 1)
    l1_size: int = 64 * 1024
    l1_line: int = 64
    l2_size: int = 2 * 1024 * 1024
    l2_line: int = 128
    l2_ways: int = 4
    l2_hit_cycles: int = 12
    memory_cycles: int = 200
    #: branch target machinery (Table 1)
    btb_entries: int = 512
    btb_ways: int = 2
    ras_depth: int = 16
    btb_miss_penalty: int = 6
    #: backend model
    rob_size: int = 128
    memory_level_parallelism: float = 4.0
    #: multiple-branch prediction (Section 3.3.1 / EV8-style): how many
    #: fetch blocks — and therefore how many branch predictions — the front
    #: end can consume per cycle.  1 = the paper's base machine.
    blocks_per_cycle: int = 1

    def __post_init__(self) -> None:
        if self.issue_width < 1:
            raise ConfigurationError("issue width must be >= 1")
        if self.pipeline_depth < 8:
            raise ConfigurationError("pipeline depth must be >= 8")
        if self.memory_level_parallelism < 1.0:
            raise ConfigurationError("MLP factor must be >= 1")
        if self.blocks_per_cycle < 1:
            raise ConfigurationError("blocks per cycle must be >= 1")

    @property
    def front_depth(self) -> int:
        """Stages from fetch to execute; a mispredicted branch cannot
        redirect fetch until it reaches execute, so this dominates the
        misprediction penalty."""
        return max(self.pipeline_depth - 6, 1)


#: The paper's Table 1 machine.
PAPER_MACHINE = MachineConfig()
