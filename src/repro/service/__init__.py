"""Prediction-as-a-service: an asyncio HTTP/JSON daemon over the stores.

The ROADMAP's north star is a production-scale system serving heavy
traffic; this package is the serving layer.  ``repro-serve`` runs a
long-lived single-process daemon (stdlib asyncio streams — no new runtime
dependencies) that answers:

* ``POST /v1/jobs`` — submit a figure-config spec (the same JSON documents
  ``repro-figures --config`` consumes); the response carries a
  content-addressed job id derived from the spec *and* the resolved sweep
  configuration, so two clients submitting the same question share one job.
* ``GET /v1/jobs/<id>[?wait=S]`` — poll (or long-poll) job status, backed
  by the campaign scanner's five-class cell classification.
* ``GET /v1/jobs/<id>/figure`` / ``.../manifest`` — the rendered figure
  text (byte-identical to ``repro-figures --config``) and its run
  manifest, both content-addressed blobs.
* ``GET /v1/results/<digest>`` — any blob by digest: the microsecond
  cache-hit fast path the load generator hammers.
* ``GET /v1/attribution/<benchmark>/<family>/<budget>`` — per-branch
  misprediction attribution, memoized under the accuracy cell's content
  key.
* ``GET /healthz`` and ``GET /metrics`` — liveness and the full obs
  counter registry (plus store and service statistics).

Misses become campaigns: a submitted spec's grids are pinned as a
:mod:`repro.harness.campaign` in the job's run directory, planned onto the
shared work queue, and drained by in-process worker threads (or spawned
worker processes with ``--worker-mode spawn``).  Every request opens an
obs span, and the submitting request's span context parents the campaign
worker's spans, so ``repro-stats`` shows server-side critical paths.

Degradation is graceful by construction: request read timeouts, a bounded
pending-job queue answering 429 when full, oversize bodies answered 413,
and a SIGTERM drain that finishes in-flight cells (atomic checkpoint and
store writes mean a re-scan after any exit re-converges).
"""

from repro.service.config import ServiceConfig, service_env_summary

__all__ = ["ServiceConfig", "service_env_summary"]
