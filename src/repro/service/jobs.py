"""Job and blob stores backing the prediction service.

A *job* is one submitted figure-config spec.  Its identity is a content
digest over the spec document **plus** the per-kind sweep configuration
the daemon's environment resolves to (instructions, engine, warm-up
fraction, machine config) — the same recipe the result store keys cells
with one level down — so two clients asking the same question at the same
scale share one job, while a scale or engine change is a different job,
never a false hit.

On disk, one directory per job under ``<data>/jobs/<job_id>``::

    spec.json      the submitted config document + pinned cfg + trace ctx
    status.json    the job state machine (atomic writes, monotone terminal)
    run/           the campaign run directory (campaign.json, shards/,
                   queue/, claims/) — the execution backend is exactly
                   :mod:`repro.harness.campaign`

States move ``queued -> running -> completed | failed | partial``;
``failed``/``partial`` jobs go back to ``queued`` on resubmission (the
rerun path), and ``completed`` is terminal and immutable: once
``status.json`` says completed, no write path will ever regress it — the
invariant the service's Hypothesis suite pins.

Rendered artifacts (figure text, run manifest, attribution tables) are
content-addressed: figures and manifests land in the :class:`BlobStore`
(sha256 of the bytes *is* the name, verified on every read, corrupt blobs
deleted and re-rendered from the result store), attribution tables in a
:class:`repro.harness.resultstore.ResultStore` keyed by the accuracy
cell's content key plus a view marker, so repeated fetches are pure cache
hits with zero predictor work.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from pathlib import Path

from repro import obs
from repro.common.atomic import atomic_path, atomic_write_json
from repro.common.errors import ConfigurationError, ReproError
from repro.harness.figconfig import (
    TargetConfig,
    grid_cfg,
    grid_shards,
    parse_config,
)
from repro.harness.resultstore import ResultCell, ResultStore, result_digest

#: Bumped when the job/spec/status layout changes.
JOB_SCHEMA = 1

#: Every job state, in lifecycle order.
JOB_STATES = ("queued", "running", "partial", "failed", "completed")

#: States no write path may leave.
TERMINAL_STATES = ("completed",)

#: Config modes a submission may use (``inferred`` needs its base configs
#: loaded alongside it, which a single-document submission cannot supply).
SUBMITTABLE_MODES = ("runner", "sweep")


class JobError(ReproError):
    """A job operation failed (unknown id, bad spec, unrenderable state)."""


def is_terminal(state: str) -> bool:
    """True for states a job can never leave."""
    return state in TERMINAL_STATES


# -- blob store ----------------------------------------------------------------


class BlobStore:
    """Content-addressed bytes: the digest of the content is the name.

    Every read recomputes the digest; a mismatch (bit rot, truncation)
    deletes the blob and reports a miss, so the fetch path re-renders from
    the result store instead of serving garbage.
    """

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path(self, digest: str) -> Path:
        return self.root / digest

    def save(self, data: bytes) -> str:
        """Persist ``data``; returns its sha256 digest (idempotent)."""
        digest = hashlib.sha256(data).hexdigest()
        path = self.path(digest)
        if not path.exists():
            with atomic_path(path) as tmp:
                with open(tmp, "wb") as handle:
                    handle.write(data)
        _count("blob_writes")
        return digest

    def load(self, digest: str) -> bytes | None:
        """The blob's bytes, or None when absent or corrupt (deleted)."""
        path = self.path(digest)
        try:
            with open(path, "rb") as handle:
                data = handle.read()
        except OSError:
            return None
        if hashlib.sha256(data).hexdigest() != digest:
            _count("blob_corrupt")
            try:
                path.unlink()
            except OSError:
                pass
            return None
        _count("blob_hits")
        return data


def _count(key: str, n: int = 1) -> None:
    if obs.enabled():
        obs.counter(f"service.{key}").inc(n)


# -- job identity --------------------------------------------------------------


def normalize_spec(doc: dict) -> dict:
    """The spec document in canonical (JSON round-tripped) form."""
    return json.loads(json.dumps(doc, sort_keys=True))


def job_id_for(doc: dict, cfg_by_kind: dict, benchmarks: list[str]) -> str:
    """Content-addressed job id: spec + resolved sweep configuration.

    ``cfg_by_kind`` carries instructions/engine/warm-up (accuracy) and
    machine config (ipc); ``benchmarks`` pins the grid the environment
    resolves for configs that omit an explicit benchmark list.  The result
    store's schema/code versions ride inside the cell keys, not here: a
    version bump changes cell keys (forcing recomputation) without
    changing which *job* a spec names.
    """
    return result_digest(
        {
            "job_schema": JOB_SCHEMA,
            "spec": normalize_spec(doc),
            "cfg": cfg_by_kind,
            "benchmarks": list(benchmarks),
        }
    )


# -- the job store -------------------------------------------------------------


class JobStore:
    """All jobs under one service data directory."""

    def __init__(self, jobs_root: str, blobs: BlobStore) -> None:
        self.root = Path(jobs_root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.blobs = blobs

    # -- paths -----------------------------------------------------------

    def job_dir(self, job_id: str) -> Path:
        return self.root / job_id

    def spec_path(self, job_id: str) -> Path:
        return self.job_dir(job_id) / "spec.json"

    def status_path(self, job_id: str) -> Path:
        return self.job_dir(job_id) / "status.json"

    def run_dir(self, job_id: str) -> str:
        return str(self.job_dir(job_id) / "run")

    def exists(self, job_id: str) -> bool:
        return self.spec_path(job_id).exists()

    def job_ids(self) -> list[str]:
        """Every job id on disk (sorted for determinism)."""
        try:
            return sorted(
                entry for entry in os.listdir(self.root)
                if (self.root / entry / "spec.json").exists()
            )
        except OSError:
            return []

    # -- submission ------------------------------------------------------

    def parse_submission(self, doc: object) -> TargetConfig:
        """Validate one submitted config document (raises on any problem)."""
        if not isinstance(doc, dict):
            raise ConfigurationError("submission body must be a JSON object")
        config = parse_config(doc, path="<submitted>")
        if config.mode not in SUBMITTABLE_MODES:
            raise ConfigurationError(
                f"mode {config.mode!r} cannot be submitted directly "
                f"(submit one of {SUBMITTABLE_MODES}; inferred targets need "
                f"their base configs, which a single submission cannot carry)"
            )
        if not config.grids:
            raise ConfigurationError(
                "submission declares no grids — the service plans campaigns "
                "from declared grids, so at least one is required"
            )
        return config

    def submit(self, doc: dict, trace_ctx: dict | None = None) -> dict:
        """Create (or re-touch) the job for ``doc``; returns its status.

        New spec -> job dir + campaign + plan, state ``queued``.  Existing
        job: ``completed`` returns as-is (the zero-work fast path);
        ``failed``/``partial`` is re-planned and set back to ``queued``
        (the rerun path); ``queued``/``running`` is returned untouched
        (the executor dedupes in-flight ids).
        """
        from repro.harness import campaign
        from repro.harness.scale import benchmark_names

        config = self.parse_submission(doc)
        cfg_by_kind = {grid.kind: grid_cfg(grid.kind) for grid in config.grids}
        benchmarks = benchmark_names()
        job_id = job_id_for(doc, cfg_by_kind, benchmarks)
        job_dir = self.job_dir(job_id)
        job_dir.mkdir(parents=True, exist_ok=True)
        shards = [shard for grid in config.grids for shard in grid_shards(grid)]
        if not self.spec_path(job_id).exists():
            atomic_write_json(
                self.spec_path(job_id),
                {
                    "schema": JOB_SCHEMA,
                    "job_id": job_id,
                    "spec": normalize_spec(doc),
                    "cfg": cfg_by_kind,
                    "benchmarks": benchmarks,
                    "trace": trace_ctx,
                    "created_unix": time.time(),
                },
            )
        campaign.create_campaign(
            self.run_dir(job_id), shards, cfg_by_kind, label=f"service:{config.name}"
        )
        status = self.status(job_id)
        if status["state"] == "completed":
            _count("submit_hits")
            return status
        if status["state"] in ("failed", "partial"):
            # Rerun: re-plan the damaged classes so the queue holds work.
            campaign.plan(self.run_dir(job_id))
            return self._set_state(job_id, "queued", error=None)
        if status["state"] == "running":
            return status
        campaign.plan(self.run_dir(job_id))
        _count("submits")
        return self._set_state(job_id, "queued")

    def spec(self, job_id: str) -> dict:
        """The pinned spec document (raises JobError for unknown ids)."""
        try:
            with open(self.spec_path(job_id), encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, json.JSONDecodeError):
            raise JobError(f"unknown job {job_id!r}") from None
        if not isinstance(data, dict) or data.get("schema") != JOB_SCHEMA:
            raise JobError(f"job {job_id!r} has an unreadable spec")
        return data

    def config(self, job_id: str) -> TargetConfig:
        """The job's parsed TargetConfig."""
        return self.parse_submission(self.spec(job_id)["spec"])

    # -- status ----------------------------------------------------------

    def _read_status(self, job_id: str) -> dict | None:
        try:
            with open(self.status_path(job_id), encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None
        return data if isinstance(data, dict) else None

    def status(self, job_id: str) -> dict:
        """The job's current status document (classifying live cells).

        Terminal jobs serve their frozen ``status.json`` untouched — no
        scan, no store probes: the poll fast path.  Non-terminal jobs fold
        in a fresh campaign scan so the five-class counts are live.
        """
        if not self.exists(job_id):
            raise JobError(f"unknown job {job_id!r}")
        status = self._read_status(job_id) or {
            "schema": JOB_SCHEMA,
            "job_id": job_id,
            "state": "queued",
            "error": None,
            "updated_unix": time.time(),
        }
        if is_terminal(status.get("state", "")):
            return status
        from repro.harness import campaign

        try:
            cells = campaign.scan(self.run_dir(job_id))
            counts = campaign.class_counts(cells)
            status["counts"] = counts
            status["cells"] = len(cells)
        except ReproError:
            pass  # campaign not pinned yet: submission raced us
        return status

    def _set_state(self, job_id: str, state: str, **fields: object) -> dict:
        """Atomically move the job to ``state`` (monotone at terminal).

        A job already in a terminal state is never rewritten — late
        writers (a worker finishing after a rerun already completed the
        job) lose silently, keeping observed histories monotone.
        """
        if state not in JOB_STATES:
            raise JobError(f"unknown job state {state!r}")
        current = self._read_status(job_id)
        if current is not None and is_terminal(current.get("state", "")):
            return current
        status = dict(current or {})
        status.update(
            {
                "schema": JOB_SCHEMA,
                "job_id": job_id,
                "state": state,
                "updated_unix": time.time(),
            }
        )
        status.update(fields)
        atomic_write_json(self.status_path(job_id), status)
        return status

    # -- execution -------------------------------------------------------

    def execute(self, job_id: str, should_stop=None, drain=None) -> dict:
        """Drain the job's campaign and render; returns the final status.

        ``drain(run_dir, trace_ctx)`` overrides how the campaign queue is
        worked (the spawn-mode executor runs it in a child process); the
        default runs :func:`repro.harness.campaign.run_worker` in-process.
        ``should_stop`` is forwarded so a SIGTERM drain finishes the
        current cell and returns with the job back in ``queued``.
        """
        from repro.harness import campaign

        spec = self.spec(job_id)
        if is_terminal(self.status(job_id)["state"]):
            return self.status(job_id)
        self._set_state(job_id, "running")
        run_dir = self.run_dir(job_id)
        trace_ctx = spec.get("trace")
        adopted = trace_ctx is not None
        if adopted:
            obs.adopt_context(trace_ctx)
        try:
            if drain is not None:
                drain(run_dir, trace_ctx)
            else:
                campaign.run_worker(run_dir, should_stop=should_stop)
        except Exception as exc:  # a dead worker is a classified state
            _count("worker_errors")
            return self._finalize(job_id, error=f"{type(exc).__name__}: {exc}")
        finally:
            if adopted:
                obs.adopt_context(None)
        if should_stop is not None and should_stop():
            status = self._finalize(job_id, stopped=True)
        else:
            status = self._finalize(job_id)
        return status

    def _finalize(
        self, job_id: str, error: str | None = None, stopped: bool = False
    ) -> dict:
        """Classify the drained campaign and land the job in its state."""
        from repro.harness import campaign

        cells = campaign.scan(self.run_dir(job_id))
        counts = campaign.class_counts(cells)
        done = counts["completed"] + counts["results_missing"]
        fields = {"counts": counts, "cells": len(cells), "error": error}
        if done == len(cells) and cells:
            try:
                rendered = self.render(job_id)
            except Exception as exc:
                _count("render_errors")
                return self._set_state(
                    job_id, "failed", **fields, error=f"{type(exc).__name__}: {exc}"
                )
            fields.update(rendered)
            return self._set_state(job_id, "completed", **fields)
        if stopped:
            # Graceful drain: the queue still holds work; a restarted
            # daemon's recovery sweep re-enqueues queued jobs.
            return self._set_state(job_id, "queued", **fields)
        if counts["failed"]:
            return self._set_state(job_id, "failed", **fields)
        return self._set_state(job_id, "partial", **fields)

    # -- rendering & fetch -----------------------------------------------

    def render(self, job_id: str) -> dict:
        """Render the job's figure + manifest into the blob store.

        Rendering resolves through the ordinary sweeps with the result
        store active, so a drained campaign renders with zero predictor
        builds; the returned digests are recorded in ``status.json``.
        """
        from repro.harness.cli import RUNNERS
        from repro.harness.figconfig import run_target
        from repro.obs.manifest import build_manifest

        config = self.config(job_id)
        started = time.perf_counter()
        with obs.span("service.render", job=job_id, target=config.name):
            text = run_target(config, RUNNERS)
        duration = time.perf_counter() - started
        figure_digest = self.blobs.save(text.encode("utf-8"))
        manifest = build_manifest(config.name, text, duration)
        manifest_bytes = (
            json.dumps(manifest, indent=2, sort_keys=True, default=str) + "\n"
        ).encode("utf-8")
        manifest_digest = self.blobs.save(manifest_bytes)
        return {
            "target": config.name,
            "figure_digest": figure_digest,
            "manifest_digest": manifest_digest,
            "render_seconds": duration,
        }

    def figure_bytes(self, job_id: str) -> tuple[bytes, str]:
        """(bytes, digest) of the job's rendered figure.

        Blob hit -> serve; corrupt/missing blob -> re-render from the
        result store (warm: zero predictor work) and serve the fresh copy.
        """
        status = self.status(job_id)
        if status.get("state") != "completed":
            raise JobError(
                f"job {job_id!r} is {status.get('state', 'unknown')!r}; "
                f"the figure exists only once it completes"
            )
        digest = status.get("figure_digest", "")
        data = self.blobs.load(digest) if digest else None
        if data is None:
            _count("figure_reheals")
            rendered = self.render(job_id)
            digest = rendered["figure_digest"]
            data = self.blobs.load(digest)
            if data is None:  # pragma: no cover - the blob was just written
                raise JobError(f"job {job_id!r} figure blob unreadable after re-render")
        return data, digest

    def manifest_bytes(self, job_id: str) -> tuple[bytes, str]:
        """(bytes, digest) of the job's run manifest (self-healing)."""
        status = self.status(job_id)
        if status.get("state") != "completed":
            raise JobError(
                f"job {job_id!r} is {status.get('state', 'unknown')!r}; "
                f"the manifest exists only once it completes"
            )
        digest = status.get("manifest_digest", "")
        data = self.blobs.load(digest) if digest else None
        if data is None:
            rendered = self.render(job_id)
            digest = rendered["manifest_digest"]
            data = self.blobs.load(digest)
            if data is None:  # pragma: no cover
                raise JobError(f"job {job_id!r} manifest blob unreadable after re-render")
        return data, digest


# -- attribution cache ---------------------------------------------------------


class AttributionCache:
    """Per-branch attribution tables, memoized under accuracy cell keys.

    The cache is an ordinary :class:`ResultStore` (checksummed entries,
    corruption self-healing, eviction), keyed by the accuracy cell's
    content-key payload plus a ``view`` marker so an attribution entry can
    never collide with a sweep result.
    """

    def __init__(self, root: str) -> None:
        self.store = ResultStore(root)

    def key_for(self, benchmark: str, family: str, budget_bytes: int) -> str:
        from repro.harness.resultstore import accuracy_key_payload

        cfg = grid_cfg("accuracy")
        payload = accuracy_key_payload(
            benchmark,
            family,
            budget_bytes,
            cfg["instructions"],
            cfg["engine"],
            cfg["warmup_fraction"],
        )
        return result_digest({**payload, "view": "attribution"})

    def fetch(self, benchmark: str, family: str, budget_bytes: int) -> dict:
        """The attribution table for one cell (computed once, then cached)."""
        from repro.harness.experiment import measure_accuracy
        from repro.harness.scale import warmup_branches
        from repro.workloads.spec2000 import spec2000_trace

        cfg = grid_cfg("accuracy")
        key = self.key_for(benchmark, family, budget_bytes)
        cell = ResultCell("accuracy", benchmark, family, budget_bytes)

        def compute() -> dict:
            from repro.predictors import registry

            trace = spec2000_trace(benchmark, instructions=cfg["instructions"])
            predictor = registry.build(family, budget_bytes)
            result = measure_accuracy(
                predictor,
                trace,
                warmup_branches=warmup_branches(trace.conditional_branch_count),
                engine=cfg["engine"],
                attribution=True,
            )
            return {
                "benchmark": benchmark,
                "family": family,
                "budget_bytes": budget_bytes,
                "branches": result.branches,
                "mispredictions": result.mispredictions,
                "misprediction_percent": result.misprediction_percent,
                "sites": result.attribution.to_rows(),
            }

        payload = self.store.get_or_compute(key, cell, compute)
        return {"digest": key, **payload}
