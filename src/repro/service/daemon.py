"""The asyncio daemon: transport, long-polls, workers, graceful drain.

One process, one event loop, stdlib only.  The loop thread owns every
socket and never computes: requests that resolve from stores answer
inline (the hot path keeps a small LRU of prebuilt response *bytes* for
``GET /v1/results/<digest>`` — content addressing makes those responses
immutable, so the cache can never serve stale data), while submissions
that need predictor work enqueue their job onto the :class:`JobExecutor`.

The executor drains jobs either on in-process worker threads (default;
obs tracing is thread-local so request spans and campaign spans coexist)
or by spawning ``python -m repro.service.worker`` per job
(``--worker-mode spawn``), which exercises the same cross-process trace
parenting and per-PID event sidecars the parallel harness uses.

Graceful shutdown (SIGTERM/SIGINT): stop accepting, wake long-polls,
signal workers via the campaign drain hook (finish the current cell, not
the queue), wait up to ``drain_timeout``, then exit.  Every store write
along the way is atomic, so a drained-or-killed daemon restarts by
re-scanning: :meth:`ServiceApp.recover` re-enqueues unfinished jobs.
"""

from __future__ import annotations

import argparse
import asyncio
import collections
import json
import os
import signal
import subprocess
import sys
import threading

from repro import obs
from repro.service.app import ServiceApp
from repro.service.config import ServiceConfig
from repro.service.protocol import (
    HEAD_END,
    MAX_HEAD_BYTES,
    ProtocolError,
    build_response,
    parse_head,
)

#: Prebuilt ``GET /v1/results/<digest>`` responses kept hot (bytes each).
RESPONSE_CACHE_SIZE = 256


class JobExecutor:
    """Drains queued jobs on worker threads (or spawned processes)."""

    def __init__(self, app: ServiceApp, config: ServiceConfig) -> None:
        self.app = app
        self.config = config
        self._queue: collections.deque[str] = collections.deque()
        self._queued: set[str] = set()
        self._cond = threading.Condition()
        self._stop = threading.Event()
        self._threads: list[threading.Thread] = []

    def start(self) -> None:
        for index in range(self.config.workers):
            thread = threading.Thread(
                target=self._worker_loop, name=f"repro-worker-{index}", daemon=True
            )
            thread.start()
            self._threads.append(thread)

    def enqueue(self, job_id: str) -> None:
        """Queue a job for draining (idempotent while it waits)."""
        with self._cond:
            if job_id in self._queued:
                return
            self._queued.add(job_id)
            self._queue.append(job_id)
            self._cond.notify()

    def run_pending(self) -> int:
        """Drain the queue synchronously on *this* thread (workers=0 mode).

        Deterministic single-threaded execution for tests and the property
        suite; returns the number of jobs run.
        """
        ran = 0
        while True:
            with self._cond:
                if not self._queue:
                    return ran
                job_id = self._queue.popleft()
                self._queued.discard(job_id)
            self._run_one(job_id)
            ran += 1

    def stop(self, wait_seconds: float) -> None:
        """Signal workers to finish their current cell and join them."""
        self._stop.set()
        with self._cond:
            self._cond.notify_all()
        for thread in self._threads:
            thread.join(timeout=wait_seconds)

    def _worker_loop(self) -> None:
        while not self._stop.is_set():
            with self._cond:
                while not self._queue and not self._stop.is_set():
                    self._cond.wait(timeout=0.5)
                if self._stop.is_set():
                    return
                job_id = self._queue.popleft()
                self._queued.discard(job_id)
            self._run_one(job_id)

    def _run_one(self, job_id: str) -> None:
        drain = self._spawn_drain if self.config.worker_mode == "spawn" else None
        try:
            self.app.execute_job(
                job_id, should_stop=self._stop.is_set, drain=drain
            )
        except Exception:
            # execute_job classifies failures into job state; anything
            # escaping is a harness bug — count it, keep the worker alive.
            if obs.enabled():
                obs.counter("service.executor_errors").inc()

    def _spawn_drain(self, run_dir: str, trace_ctx: dict | None) -> None:
        """Drain one campaign in a child process (spawn worker mode)."""
        obs.claim_log_ownership()
        cmd = [sys.executable, "-m", "repro.service.worker", run_dir]
        if trace_ctx:
            cmd += ["--trace-context", json.dumps(trace_ctx)]
        proc = subprocess.run(cmd, capture_output=True, text=True)
        if proc.returncode != 0:
            raise RuntimeError(
                f"spawned worker exited {proc.returncode}: {proc.stderr.strip()[-500:]}"
            )


class ServiceDaemon:
    """Binds the app to a listening socket and runs until shutdown."""

    def __init__(self, config: ServiceConfig, app: ServiceApp | None = None) -> None:
        self.config = config
        self.app = app or ServiceApp(config)
        self.executor = JobExecutor(self.app, config)
        self._server: asyncio.AbstractServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._shutdown = asyncio.Event()
        self._job_events: dict[str, asyncio.Event] = {}
        self._response_cache: collections.OrderedDict[str, bytes] = (
            collections.OrderedDict()
        )
        self.port: int | None = None

    # -- lifecycle --------------------------------------------------------

    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self.app.on_job_update = self._notify_job_update
        for job_id in self.app.recover():
            self.executor.enqueue(job_id)
        self.executor.start()
        self._server = await asyncio.start_server(
            self._serve_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        obs.log_event("service_start", host=self.config.host, port=self.port)

    async def run_until_shutdown(self) -> None:
        """Serve until :meth:`request_shutdown`; then drain gracefully."""
        assert self._server is not None
        async with self._server:
            await self._shutdown.wait()
        # Sockets are closed; let workers finish their current cell.
        for event in self._job_events.values():
            event.set()
        await asyncio.get_running_loop().run_in_executor(
            None, self.executor.stop, self.config.drain_timeout
        )
        obs.log_event("service_stop", port=self.port)

    def request_shutdown(self) -> None:
        """Threadsafe: begin the graceful drain."""
        loop = self._loop
        if loop is None:
            return
        loop.call_soon_threadsafe(self._shutdown.set)

    def install_signal_handlers(self) -> None:
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(signum, self._shutdown.set)

    # -- long-poll plumbing -----------------------------------------------

    def _notify_job_update(self, job_id: str) -> None:
        """Called from worker threads whenever a job changes state."""
        loop = self._loop
        if loop is None:
            return

        def wake() -> None:
            event = self._job_events.pop(job_id, None)
            if event is not None:
                event.set()

        loop.call_soon_threadsafe(wake)

    async def _wait_for_update(self, job_id: str, timeout: float) -> None:
        event = self._job_events.setdefault(job_id, asyncio.Event())
        try:
            await asyncio.wait_for(event.wait(), timeout=timeout)
        except asyncio.TimeoutError:
            pass

    # -- connection handling ----------------------------------------------

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while not self._shutdown.is_set():
                try:
                    head = await asyncio.wait_for(
                        reader.readuntil(HEAD_END),
                        timeout=self.config.request_timeout,
                    )
                except asyncio.CancelledError:
                    return  # loop teardown during shutdown: close quietly
                except (asyncio.IncompleteReadError, ConnectionError):
                    return  # client closed between requests: normal
                except asyncio.LimitOverrunError:
                    writer.write(build_response(431, keep_alive=False))
                    await writer.drain()
                    return
                except asyncio.TimeoutError:
                    writer.write(build_response(408, keep_alive=False))
                    await writer.drain()
                    return
                response = await self._serve_request(reader, head)
                if response is None:
                    return
                writer.write(response)
                await writer.drain()
                if b"Connection: close" in response[:256]:
                    return
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _serve_request(
        self, reader: asyncio.StreamReader, head: bytes
    ) -> bytes | None:
        try:
            request = parse_head(head)
            length = request.content_length
        except ProtocolError as exc:
            return build_response(
                exc.status,
                (json.dumps({"error": exc.message}) + "\n").encode(),
                keep_alive=False,
            )
        if length > self.config.body_limit:
            return build_response(
                413,
                (
                    json.dumps(
                        {"error": f"body of {length} bytes exceeds limit "
                                  f"{self.config.body_limit}"}
                    )
                    + "\n"
                ).encode(),
                keep_alive=False,
            )
        body = b""
        if length:
            try:
                body = await asyncio.wait_for(
                    reader.readexactly(length), timeout=self.config.request_timeout
                )
            except (asyncio.IncompleteReadError, ConnectionError):
                return None
            except asyncio.TimeoutError:
                return build_response(408, keep_alive=False)

        # Hot path: immutable content-addressed fetches served from the
        # prebuilt-response cache without touching the app.
        if request.method == "GET" and request.path.startswith("/v1/results/"):
            cached = self._response_cache.get(request.path)
            if cached is not None:
                self._response_cache.move_to_end(request.path)
                if obs.enabled():
                    obs.counter("service.response_cache_hits").inc()
                return cached

        status_code, payload, content_type = await self._dispatch(request, body)

        # Long-poll: an unsettled job status with ?wait= blocks until the
        # job changes state (or the wait cap), then re-reads.
        wait = self._wait_seconds(request)
        if (
            wait > 0
            and status_code == 200
            and request.method == "GET"
            and self._is_unsettled_status(request.path, payload)
        ):
            job_id = request.path.rsplit("/", 1)[-1]
            await self._wait_for_update(job_id, wait)
            status_code, payload, content_type = await self._dispatch(request, b"")

        response = build_response(
            status_code,
            b"" if request.method == "HEAD" else payload,
            content_type,
            keep_alive=request.keep_alive,
        )
        if (
            status_code == 200
            and request.method == "GET"
            and request.path.startswith("/v1/results/")
        ):
            self._response_cache[request.path] = response
            self._response_cache.move_to_end(request.path)
            while len(self._response_cache) > RESPONSE_CACHE_SIZE:
                self._response_cache.popitem(last=False)
        return response

    async def _dispatch(self, request, body: bytes) -> tuple[int, bytes, str]:
        """Run the app's synchronous handler off the loop thread."""
        loop = asyncio.get_running_loop()
        with obs.span("service.request", method=request.method, path=request.path):
            # The handler runs on a pool thread whose tracing stack is
            # empty; hand it the request span's context so submissions
            # record it as the campaign's trace parent.
            ctx = obs.current_context()

            def call() -> tuple[int, bytes, str]:
                obs.adopt_context(ctx)
                try:
                    return self.app.handle(
                        request.method, request.path, request.query, body
                    )
                finally:
                    obs.adopt_context(None)

            status_code, payload, content_type = await loop.run_in_executor(None, call)
        if request.method == "POST" and request.path == "/v1/jobs" and status_code == 202:
            try:
                job_id = json.loads(payload).get("job_id", "")
            except json.JSONDecodeError:
                job_id = ""
            if job_id:
                self.executor.enqueue(job_id)
        return status_code, payload, content_type

    def _wait_seconds(self, request) -> float:
        raw = request.query.get("wait", "")
        if not raw:
            return 0.0
        try:
            wait = float(raw)
        except ValueError:
            return 0.0
        return max(0.0, min(wait, self.config.max_wait))

    @staticmethod
    def _is_unsettled_status(path: str, payload: bytes) -> bool:
        parts = [p for p in path.split("/") if p]
        if len(parts) != 3 or parts[:2] != ["v1", "jobs"]:
            return False
        try:
            state = json.loads(payload).get("state", "")
        except json.JSONDecodeError:
            return False
        return state in ("queued", "running")


async def _amain(config: ServiceConfig, announce) -> None:
    daemon = ServiceDaemon(config)
    await daemon.start()
    daemon.install_signal_handlers()
    announce(daemon)
    await daemon.run_until_shutdown()


def main(argv: list[str] | None = None) -> int:
    """``repro-serve``: run the prediction service daemon."""
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Serve figure configs, sweep results, and attribution "
        "over HTTP/JSON, backed by the content-addressed stores.",
    )
    parser.add_argument(
        "--data-dir",
        default=os.environ.get("REPRO_SERVICE_DIR", "").strip() or "service-data",
        help="service state root (jobs, blobs, stores); default %(default)s",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8321)
    parser.add_argument(
        "--workers", type=int, default=None, help="campaign worker threads"
    )
    parser.add_argument(
        "--worker-mode",
        choices=("thread", "spawn"),
        default="thread",
        help="drain campaigns on threads (default) or spawned processes",
    )
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args(argv)

    kwargs = {}
    if args.workers is not None:
        kwargs["workers"] = args.workers
    config = ServiceConfig(
        data_dir=args.data_dir,
        host=args.host,
        port=args.port,
        worker_mode=args.worker_mode,
        **kwargs,
    )
    obs.set_enabled(True)
    if args.verbose:
        obs.set_verbose(True)
    obs.claim_log_ownership()

    def announce(daemon: ServiceDaemon) -> None:
        print(
            f"repro-serve: listening on http://{config.host}:{daemon.port} "
            f"(data {config.data_dir}, {config.workers} {config.worker_mode} workers)",
            flush=True,
        )

    try:
        asyncio.run(_amain(config, announce))
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
