"""Service configuration: flags, environment knobs, and their defaults.

Everything the daemon resolves from the environment lives here so
:func:`repro.harness.scale.resolved_config` can record it in run manifests
(the same pattern the campaign/store knobs follow), and so tests construct
:class:`ServiceConfig` directly without touching ``os.environ``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.common.errors import ConfigurationError

#: Default bound on jobs queued but not yet finished (429 beyond it).
DEFAULT_MAX_PENDING = 64

#: Default cap on request body size in bytes (413 beyond it).
DEFAULT_BODY_LIMIT = 1 << 20

#: Default seconds a connection may sit idle mid-request before the read
#: is abandoned and the connection closed.
DEFAULT_REQUEST_TIMEOUT = 10.0

#: Default cap on one long-poll's ``?wait=`` seconds.
DEFAULT_MAX_WAIT = 30.0

#: Default in-process campaign worker threads.
DEFAULT_WORKERS = 2

#: Default seconds the SIGTERM drain waits for in-flight work.
DEFAULT_DRAIN_TIMEOUT = 30.0

_ENV_FLOATS = {
    "REPRO_SERVICE_REQUEST_TIMEOUT": DEFAULT_REQUEST_TIMEOUT,
    "REPRO_SERVICE_MAX_WAIT": DEFAULT_MAX_WAIT,
    "REPRO_SERVICE_DRAIN_TIMEOUT": DEFAULT_DRAIN_TIMEOUT,
}
_ENV_INTS = {
    "REPRO_SERVICE_MAX_PENDING": DEFAULT_MAX_PENDING,
    "REPRO_SERVICE_BODY_LIMIT": DEFAULT_BODY_LIMIT,
    "REPRO_SERVICE_WORKERS": DEFAULT_WORKERS,
}


def _env_float(name: str) -> float:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return _ENV_FLOATS[name]
    try:
        value = float(raw)
    except ValueError:
        raise ConfigurationError(f"{name} must be a number, got {raw!r}") from None
    if value <= 0:
        raise ConfigurationError(f"{name} must be > 0, got {value}")
    return value


def _env_int(name: str) -> int:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return _ENV_INTS[name]
    try:
        value = int(raw)
    except ValueError:
        raise ConfigurationError(f"{name} must be an integer, got {raw!r}") from None
    if value < 1:
        raise ConfigurationError(f"{name} must be >= 1, got {value}")
    return value


@dataclass
class ServiceConfig:
    """One daemon's resolved configuration."""

    data_dir: str
    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; the bound port is logged and queryable
    workers: int = field(default_factory=lambda: _env_int("REPRO_SERVICE_WORKERS"))
    worker_mode: str = "thread"  # "thread" | "spawn"
    max_pending: int = field(
        default_factory=lambda: _env_int("REPRO_SERVICE_MAX_PENDING")
    )
    body_limit: int = field(default_factory=lambda: _env_int("REPRO_SERVICE_BODY_LIMIT"))
    request_timeout: float = field(
        default_factory=lambda: _env_float("REPRO_SERVICE_REQUEST_TIMEOUT")
    )
    max_wait: float = field(default_factory=lambda: _env_float("REPRO_SERVICE_MAX_WAIT"))
    drain_timeout: float = field(
        default_factory=lambda: _env_float("REPRO_SERVICE_DRAIN_TIMEOUT")
    )

    def __post_init__(self) -> None:
        if self.worker_mode not in ("thread", "spawn"):
            raise ConfigurationError(
                f"worker_mode must be 'thread' or 'spawn', got {self.worker_mode!r}"
            )
        if self.workers < 0:
            raise ConfigurationError(f"workers must be >= 0, got {self.workers}")

    # -- derived layout --------------------------------------------------

    @property
    def jobs_dir(self) -> str:
        return os.path.join(self.data_dir, "jobs")

    @property
    def blobs_dir(self) -> str:
        return os.path.join(self.data_dir, "blobs")

    @property
    def attribution_dir(self) -> str:
        return os.path.join(self.data_dir, "attribution")

    @property
    def default_result_store(self) -> str:
        return os.path.join(self.data_dir, "results")

    @property
    def default_trace_store(self) -> str:
        return os.path.join(self.data_dir, "traces")


def service_env_summary() -> dict:
    """The service knobs the current environment resolves to (manifests)."""
    return {
        "data_dir": os.environ.get("REPRO_SERVICE_DIR", "").strip() or None,
        "workers": _env_int("REPRO_SERVICE_WORKERS"),
        "max_pending": _env_int("REPRO_SERVICE_MAX_PENDING"),
        "body_limit": _env_int("REPRO_SERVICE_BODY_LIMIT"),
        "request_timeout": _env_float("REPRO_SERVICE_REQUEST_TIMEOUT"),
        "max_wait": _env_float("REPRO_SERVICE_MAX_WAIT"),
        "drain_timeout": _env_float("REPRO_SERVICE_DRAIN_TIMEOUT"),
    }
