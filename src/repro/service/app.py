"""The service's dispatch core: routes, handlers, and backpressure.

:class:`ServiceApp` is deliberately synchronous and socket-free — it maps
``(method, path, query, body)`` to ``(status, body bytes, content type)``.
The asyncio daemon wraps it with transport concerns (framing, timeouts,
long-poll waits, the response cache); tests and the Hypothesis suite drive
it directly, so every route's semantics are checkable without a port.

Routes::

    POST /v1/jobs                      submit a figure-config spec
    GET  /v1/jobs                      list known job ids and states
    GET  /v1/jobs/<id>                 job status (five-class counts)
    GET  /v1/jobs/<id>/figure          rendered figure text
    GET  /v1/jobs/<id>/manifest        run manifest JSON
    GET  /v1/results/<digest>          any blob by content digest
    GET  /v1/attribution/<b>/<f>/<B>   per-branch attribution table
    GET  /healthz                      liveness + queue depth
    GET  /metrics                      obs counter/timer registry snapshot

Backpressure: submissions beyond ``max_pending`` unfinished jobs answer
429 rather than queueing unboundedly.  The pending ledger is in-memory
(rebuilt from ``status.json`` files by :meth:`recover` at startup) so the
hot admission check never walks the jobs directory.
"""

from __future__ import annotations

import json
import os
import threading

from repro import obs
from repro.common.errors import ConfigurationError, ReproError
from repro.service.config import ServiceConfig
from repro.service.jobs import (
    AttributionCache,
    BlobStore,
    JobError,
    JobStore,
    is_terminal,
)

JSON_TYPE = "application/json"
TEXT_TYPE = "text/plain; charset=utf-8"

#: States counted against the ``max_pending`` admission bound.
PENDING_STATES = ("queued", "running")


def _json_bytes(payload: dict) -> bytes:
    return (json.dumps(payload, sort_keys=True, default=str) + "\n").encode("utf-8")


class ServiceApp:
    """Route dispatch over the job, blob, and attribution stores."""

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        os.makedirs(config.data_dir, exist_ok=True)
        # The campaign workers and the render path resolve cells through
        # the *active* stores; default them into the service's data dir so
        # a bare daemon is self-contained (explicit env still wins).
        os.environ.setdefault("REPRO_RESULT_STORE", config.default_result_store)
        os.environ.setdefault("REPRO_TRACE_STORE", config.default_trace_store)
        self.blobs = BlobStore(config.blobs_dir)
        self.jobs = JobStore(config.jobs_dir, self.blobs)
        self.attribution = AttributionCache(config.attribution_dir)
        #: job_id -> last known state; the admission ledger.
        self._states: dict[str, str] = {}
        self._lock = threading.Lock()
        #: Called (from any thread) with a job_id whose state changed;
        #: the daemon wires this to wake long-polls.
        self.on_job_update = None

    # -- pending ledger ---------------------------------------------------

    def recover(self) -> list[str]:
        """Rebuild the ledger from disk; returns job ids needing work.

        Jobs left ``running`` by a previous daemon (killed mid-drain) are
        indistinguishable from ``queued`` after recovery — their campaign
        queues still hold the unfinished cells — so both re-enqueue.
        """
        resumable = []
        with self._lock:
            for job_id in self.jobs.job_ids():
                try:
                    state = self.jobs.status(job_id)["state"]
                except ReproError:
                    continue
                self._states[job_id] = state
                if state in PENDING_STATES:
                    resumable.append(job_id)
        return resumable

    def note_state(self, job_id: str, state: str) -> None:
        with self._lock:
            self._states[job_id] = state
        callback = self.on_job_update
        if callback is not None:
            callback(job_id)

    def pending_count(self) -> int:
        with self._lock:
            return sum(1 for s in self._states.values() if s in PENDING_STATES)

    def job_states(self) -> dict[str, str]:
        with self._lock:
            return dict(self._states)

    # -- job execution (called by the executor) ---------------------------

    def execute_job(self, job_id: str, should_stop=None, drain=None) -> dict:
        """Run one job to a settled state, keeping the ledger current."""
        self.note_state(job_id, "running")
        status = self.jobs.execute(job_id, should_stop=should_stop, drain=drain)
        self.note_state(job_id, status["state"])
        return status

    # -- dispatch ---------------------------------------------------------

    def handle(
        self, method: str, path: str, query: dict | None = None, body: bytes = b""
    ) -> tuple[int, bytes, str]:
        """Serve one request; returns ``(status, body, content_type)``.

        Never raises for client-visible conditions — every error becomes a
        JSON ``{"error": ...}`` body with the right status code.
        """
        query = query or {}
        try:
            return self._route(method, path, query, body)
        except ProtocolHalt as halt:
            return halt.status, _json_bytes({"error": halt.message}), JSON_TYPE
        except (ConfigurationError, JobError, ReproError) as exc:
            return 400, _json_bytes({"error": str(exc)}), JSON_TYPE
        except Exception as exc:  # route bugs must not kill the daemon
            if obs.enabled():
                obs.counter("service.internal_errors").inc()
            return (
                500,
                _json_bytes({"error": f"{type(exc).__name__}: {exc}"}),
                JSON_TYPE,
            )

    def _route(
        self, method: str, path: str, query: dict, body: bytes
    ) -> tuple[int, bytes, str]:
        parts = [p for p in path.split("/") if p]
        if path == "/healthz":
            return self._healthz(method)
        if path == "/metrics":
            return self._metrics(method)
        if parts[:1] == ["v1"] and len(parts) >= 2:
            if parts[1] == "jobs":
                return self._jobs_route(method, parts[2:], body)
            if parts[1] == "results" and len(parts) == 3:
                return self._results(method, parts[2])
            if parts[1] == "attribution" and len(parts) == 5:
                return self._attribution(method, parts[2], parts[3], parts[4])
        raise ProtocolHalt(404, f"no route for {path!r}")

    # -- handlers ---------------------------------------------------------

    def _healthz(self, method: str) -> tuple[int, bytes, str]:
        _require(method, ("GET", "HEAD"))
        payload = {
            "ok": True,
            "pending": self.pending_count(),
            "max_pending": self.config.max_pending,
            "jobs": len(self.job_states()),
        }
        return 200, _json_bytes(payload), JSON_TYPE

    def _metrics(self, method: str) -> tuple[int, bytes, str]:
        _require(method, ("GET", "HEAD"))
        from repro.predictors import registry as predictors

        payload = {
            "metrics": obs.registry().snapshot(),
            "predictor_builds": predictors.build_count(),
            "pending": self.pending_count(),
            "job_states": self.job_states(),
        }
        return 200, _json_bytes(payload), JSON_TYPE

    def _jobs_route(
        self, method: str, rest: list[str], body: bytes
    ) -> tuple[int, bytes, str]:
        if not rest:
            if method == "POST":
                return self._submit(body)
            _require(method, ("GET", "HEAD"))
            return 200, _json_bytes({"jobs": self.job_states()}), JSON_TYPE
        job_id = rest[0]
        if len(rest) == 1:
            _require(method, ("GET", "HEAD"))
            return self._job_status(job_id)
        if len(rest) == 2 and rest[1] in ("figure", "manifest"):
            _require(method, ("GET", "HEAD"))
            return self._job_artifact(job_id, rest[1])
        raise ProtocolHalt(404, f"no such job resource {'/'.join(rest[1:])!r}")

    def _submit(self, body: bytes) -> tuple[int, bytes, str]:
        try:
            doc = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ProtocolHalt(400, f"body is not valid JSON: {exc}") from None
        with obs.span("service.submit"):
            trace_ctx = obs.current_context()
            try:
                config = self.jobs.parse_submission(doc)
            except ConfigurationError as exc:
                raise ProtocolHalt(400, str(exc)) from None
            # Admission control before any disk work: a full queue answers
            # 429 unless the spec is already a completed job (pure cache
            # hit — always admissible).
            from repro.harness.figconfig import grid_cfg
            from repro.harness.scale import benchmark_names
            from repro.service.jobs import job_id_for

            cfg_by_kind = {g.kind: grid_cfg(g.kind) for g in config.grids}
            job_id = job_id_for(doc, cfg_by_kind, benchmark_names())
            known = self.job_states().get(job_id)
            if (
                known not in ("completed",)
                and not known
                and self.pending_count() >= self.config.max_pending
            ):
                if obs.enabled():
                    obs.counter("service.backpressure_429").inc()
                raise ProtocolHalt(
                    429,
                    f"{self.pending_count()} jobs pending "
                    f"(max {self.config.max_pending}); retry later",
                )
            status = self.jobs.submit(doc, trace_ctx=trace_ctx)
            self.note_state(job_id, status["state"])
        code = 200 if status["state"] == "completed" else 202
        return code, _json_bytes(status), JSON_TYPE

    def _job_status(self, job_id: str) -> tuple[int, bytes, str]:
        try:
            status = self.jobs.status(job_id)
        except JobError:
            raise ProtocolHalt(404, f"unknown job {job_id!r}") from None
        with self._lock:
            self._states[job_id] = status["state"]
        return 200, _json_bytes(status), JSON_TYPE

    def _job_artifact(self, job_id: str, kind: str) -> tuple[int, bytes, str]:
        try:
            status = self.jobs.status(job_id)
        except JobError:
            raise ProtocolHalt(404, f"unknown job {job_id!r}") from None
        if status["state"] != "completed":
            raise ProtocolHalt(
                409,
                f"job {job_id} is {status['state']!r}; "
                f"the {kind} exists only once it completes",
            )
        if kind == "figure":
            data, digest = self.jobs.figure_bytes(job_id)
            content_type = TEXT_TYPE
        else:
            data, digest = self.jobs.manifest_bytes(job_id)
            content_type = JSON_TYPE
        if obs.enabled():
            obs.counter(f"service.{kind}_fetches").inc()
        return 200, data, content_type

    def _results(self, method: str, digest: str) -> tuple[int, bytes, str]:
        _require(method, ("GET", "HEAD"))
        data = self.blobs.load(digest)
        if data is None:
            data = self._reheal_blob(digest)
        if data is None:
            raise ProtocolHalt(404, f"no blob with digest {digest!r}")
        if obs.enabled():
            obs.counter("service.result_fetches").inc()
        return 200, data, "application/octet-stream"

    def _reheal_blob(self, digest: str) -> bytes | None:
        """Re-render a figure/manifest blob a completed job once produced.

        Content addressing makes this exact: a re-render of the same job
        reproduces the same bytes, hence the same digest.  Corruption of a
        blob therefore never serves garbage — the fetch recomputes.
        """
        for job_id, state in self.job_states().items():
            if state != "completed":
                continue
            status = self.jobs.status(job_id)
            if status.get("figure_digest") == digest:
                return self.jobs.figure_bytes(job_id)[0]
            if status.get("manifest_digest") == digest:
                return self.jobs.manifest_bytes(job_id)[0]
        return None

    def _attribution(
        self, method: str, benchmark: str, family: str, budget: str
    ) -> tuple[int, bytes, str]:
        _require(method, ("GET", "HEAD"))
        from repro.harness.scale import benchmark_names
        from repro.predictors.registry import family_names

        try:
            budget_bytes = int(budget)
        except ValueError:
            raise ProtocolHalt(400, f"budget must be an integer, got {budget!r}") from None
        if benchmark not in benchmark_names():
            raise ProtocolHalt(404, f"unknown benchmark {benchmark!r}")
        if family not in family_names():
            raise ProtocolHalt(404, f"unknown predictor family {family!r}")
        with obs.span(
            "service.attribution", benchmark=benchmark, family=family, budget=budget_bytes
        ):
            payload = self.attribution.fetch(benchmark, family, budget_bytes)
        return 200, _json_bytes(payload), JSON_TYPE


class ProtocolHalt(Exception):
    """Stop routing and answer ``status`` with a JSON error body."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


def _require(method: str, allowed: tuple[str, ...]) -> None:
    if method not in allowed:
        raise ProtocolHalt(405, f"method {method} not allowed here")
