"""Minimal HTTP/1.1 framing for the prediction service.

The daemon speaks just enough HTTP for JSON APIs and load generators: a
request head terminated by CRLFCRLF, ``Content-Length``-framed bodies (no
chunked encoding), and keep-alive by default.  Parsing and response
assembly are pure byte functions here — no sockets — so the protocol is
unit-testable and the hot serving path pays only one parse and one
``bytes`` concatenation per request.

Everything a client can get wrong maps to a :class:`ProtocolError` with
the HTTP status the connection handler should answer before closing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from urllib.parse import parse_qsl, unquote

#: Request heads larger than this are refused (431).
MAX_HEAD_BYTES = 16384

#: CRLFCRLF: end of a request head.
HEAD_END = b"\r\n\r\n"

STATUS_REASONS = {
    200: "OK",
    202: "Accepted",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

_SUPPORTED_METHODS = ("GET", "POST", "HEAD", "DELETE")


class ProtocolError(Exception):
    """A malformed request; ``status`` is the HTTP answer to send."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class HttpRequest:
    """One parsed request head (the body travels separately)."""

    method: str
    path: str
    query: dict[str, str] = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)

    @property
    def content_length(self) -> int:
        raw = self.headers.get("content-length", "0")
        try:
            length = int(raw)
        except ValueError:
            raise ProtocolError(400, f"bad Content-Length {raw!r}") from None
        if length < 0:
            raise ProtocolError(400, f"negative Content-Length {length}")
        return length

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "").lower() != "close"


def parse_head(head: bytes) -> HttpRequest:
    """Parse one request head (everything through the blank line)."""
    if len(head) > MAX_HEAD_BYTES:
        raise ProtocolError(431, f"request head exceeds {MAX_HEAD_BYTES} bytes")
    try:
        text = head.decode("latin-1")
    except UnicodeDecodeError:  # pragma: no cover - latin-1 decodes all bytes
        raise ProtocolError(400, "undecodable request head") from None
    lines = text.split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3:
        raise ProtocolError(400, f"malformed request line {lines[0]!r}")
    method, target, version = parts
    if method not in _SUPPORTED_METHODS:
        raise ProtocolError(405, f"method {method!r} not supported")
    if not version.startswith("HTTP/1."):
        raise ProtocolError(400, f"unsupported protocol version {version!r}")
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep or not name.strip():
            raise ProtocolError(400, f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    path, _, query_string = target.partition("?")
    query = dict(parse_qsl(query_string, keep_blank_values=True))
    return HttpRequest(
        method=method, path=unquote(path), query=query, headers=headers
    )


def build_response(
    status: int,
    body: bytes = b"",
    content_type: str = "application/json",
    extra_headers: dict[str, str] | None = None,
    keep_alive: bool = True,
) -> bytes:
    """Assemble one full response as bytes (status line through body)."""
    reason = STATUS_REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Length: {len(body)}",
        f"Content-Type: {content_type}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    head = "\r\n".join(lines).encode("latin-1")
    return head + HEAD_END + body
