"""Spawned campaign worker: ``python -m repro.service.worker RUN_DIR``.

The ``--worker-mode spawn`` executor runs one of these per job instead of
draining on an in-process thread.  The child adopts the submitting
request's span context (``--trace-context``), so its shard spans parent
into the daemon's trace across the process boundary, and it inherits
``REPRO_LOG_OWNER_PID`` so its events land in a per-PID sidecar file
rather than interleaving with the daemon's.

Exit status: 0 when the campaign drained (or the queue was already
empty); non-zero when the worker loop raised — the executor surfaces
that as the job's ``failed``/``partial`` classification.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro import obs
from repro.harness import campaign


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.service.worker")
    parser.add_argument("run_dir", help="campaign run directory to drain")
    parser.add_argument(
        "--trace-context",
        default="",
        help="JSON span context from the submitting request",
    )
    args = parser.parse_args(argv)
    if args.trace_context:
        try:
            obs.adopt_context(json.loads(args.trace_context))
        except json.JSONDecodeError:
            print("worker: ignoring malformed --trace-context", file=sys.stderr)
    summary = campaign.run_worker(args.run_dir)
    print(json.dumps(summary, sort_keys=True, default=str))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
