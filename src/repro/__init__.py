"""repro — reproduction of "Reconsidering Complex Branch Predictors"
(Daniel A. Jiménez, HPCA 2003).

A latency-aware branch-prediction study kit:

* :mod:`repro.predictors` — every baseline predictor the paper evaluates
  (bimodal, gshare, Bi-Mode, 2Bc-gskew, local, EV6 tournament, perceptron,
  multi-component hybrid) with budget-driven sizing;
* :mod:`repro.core` — the paper's contribution: the pipelined single-cycle
  gshare.fast predictor, its cycle-accurate pipeline model, and the
  overriding / dual-path delay-hiding schemes it competes against;
* :mod:`repro.timing` — the 8 FO4 clock and CACTI-style SRAM delay model
  behind Table 2's predictor access latencies;
* :mod:`repro.uarch` — a cycle-level superscalar processor model that turns
  predictor behaviour into IPC;
* :mod:`repro.workloads` — synthetic SPECint-2000 stand-in programs whose
  executed control flow drives every experiment;
* :mod:`repro.harness` — sweeps, aggregation and the per-figure/table
  regeneration entry points.

Quick start::

    from repro import build_predictor, build_gshare_fast, measure_accuracy
    from repro.workloads import spec2000_trace

    trace = spec2000_trace("gcc", branches=100_000)
    fast = build_gshare_fast(64 * 1024)
    result = measure_accuracy(fast, trace)
    print(result.misprediction_rate)
"""

from repro.core import GshareFastPredictor, OverridingPredictor, build_gshare_fast
from repro.harness.experiment import measure_accuracy, measure_override
from repro.predictors import (
    BranchPredictor,
    FamilySpec,
    build_predictor,
    family_names,
    predictor_families,
)
from repro.timing import PAPER_CLOCK, predictor_latency

__version__ = "1.0.0"

__all__ = [
    "BranchPredictor",
    "FamilySpec",
    "GshareFastPredictor",
    "OverridingPredictor",
    "PAPER_CLOCK",
    "__version__",
    "build_gshare_fast",
    "build_predictor",
    "family_names",
    "measure_accuracy",
    "measure_override",
    "predictor_families",
    "predictor_latency",
]
