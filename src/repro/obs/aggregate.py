"""Cross-process run aggregation: span trees, phase/worker/store rollups.

The event bus (:mod:`repro.obs.events`) leaves a flat JSONL trail spread
across a main log and per-worker sidecars.  This module turns that trail
back into answers:

* :func:`build_span_tree` — reconstruct the full span tree across
  processes from ``span`` close events (``trace_id``/``span_id``/
  ``parent_id``), flagging *orphans* (a parent that never closed or was
  lost) and *unclosed* spans (opened, never closed — a crash marker);
* :func:`aggregate_run` — the one-call telemetry report: per-phase
  wall/self time, per-worker utilization and straggler stats, the
  critical path, store-health rollups (hit rates, corruption, eviction
  pressure for the trace and result stores) and the deterministic run
  counters (shards executed/resumed, retries) from ``run_summary``
  events;
* :func:`baseline_snapshot` / :func:`regress` — reduce a report to a
  comparable baseline (phase totals + deterministic counters) and diff a
  later run against it, the perf-regression gate behind
  ``repro-stats regress``.

Everything here is read-side and offline: no function in this module
emits events or touches the registry, so aggregation never perturbs the
run it measures.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

#: Bumped when the aggregate-report / baseline layout changes.
AGGREGATE_SCHEMA = 1

#: Store-operation keys rolled up per store.
_STORE_OPS = ("hits", "misses", "corrupt", "writes", "evictions")

#: Counters excluded from baselines: scheduling-dependent (which worker
#: got which shard decides cache hits), so run-to-run equality is not a
#: regression signal.
_VOLATILE_COUNTER_PREFIXES = ("trace_cache.",)


@dataclass
class SpanNode:
    """One closed span, linked into the reconstructed tree."""

    name: str
    span_id: str
    trace_id: str
    parent_id: str | None
    pid: int
    start: float  # unix seconds
    duration: float
    attrs: dict = field(default_factory=dict)
    children: list["SpanNode"] = field(default_factory=list)

    @property
    def end(self) -> float:
        return self.start + self.duration


@dataclass
class SpanTree:
    """The reconstructed cross-process span forest of one event log."""

    roots: list[SpanNode]
    #: Spans naming a parent_id that has no close event in the log.
    orphans: list[SpanNode]
    #: span_open records whose span never closed (crash markers).
    unclosed: list[dict]
    by_id: dict[str, SpanNode]

    @property
    def spans(self) -> list[SpanNode]:
        return list(self.by_id.values())

    def walk(self):
        """(depth, node) pairs, depth-first over roots then orphans, in
        start-time order — the timeline/flame iteration."""
        stack = [
            (0, node)
            for node in sorted(
                self.roots + self.orphans, key=lambda n: n.start, reverse=True
            )
        ]
        while stack:
            depth, node = stack.pop()
            yield depth, node
            for child in sorted(node.children, key=lambda n: n.start, reverse=True):
                stack.append((depth + 1, child))


def build_span_tree(events: list[dict]) -> SpanTree:
    """Reconstruct the span tree from parsed events (see module docstring)."""
    by_id: dict[str, SpanNode] = {}
    for record in events:
        if record.get("event") != "span" or not record.get("span_id"):
            continue
        node = SpanNode(
            name=str(record.get("name", "?")),
            span_id=str(record["span_id"]),
            trace_id=str(record.get("trace_id", "")),
            parent_id=record.get("parent_id") or None,
            pid=int(record.get("pid", 0)),
            start=float(record.get("start_unix", record.get("ts", 0.0)) or 0.0),
            duration=float(record.get("duration_seconds", 0.0) or 0.0),
            attrs=dict(record.get("attrs") or {}),
        )
        by_id[node.span_id] = node
    roots: list[SpanNode] = []
    orphans: list[SpanNode] = []
    for node in by_id.values():
        if node.parent_id is None:
            roots.append(node)
        elif node.parent_id in by_id:
            by_id[node.parent_id].children.append(node)
        else:
            orphans.append(node)
    for node in by_id.values():
        node.children.sort(key=lambda n: n.start)
    roots.sort(key=lambda n: n.start)
    orphans.sort(key=lambda n: n.start)
    closed = set(by_id)
    unclosed = [
        record
        for record in events
        if record.get("event") == "span_open" and record.get("span_id") not in closed
    ]
    return SpanTree(roots=roots, orphans=orphans, unclosed=unclosed, by_id=by_id)


# -- rollups -------------------------------------------------------------------


def phase_stats(tree: SpanTree) -> dict[str, dict]:
    """Per-phase (span name) timing rollup: wall total, self time, extrema.

    *Self* time is a span's duration minus its direct children's — the
    time a phase spent in its own code rather than delegating.  Children
    running concurrently (worker shards under ``parallel.run``) can sum
    past the parent; self time floors at zero rather than going negative.
    """
    stats: dict[str, dict] = {}
    for node in tree.by_id.values():
        entry = stats.setdefault(
            node.name,
            {
                "count": 0,
                "total_seconds": 0.0,
                "self_seconds": 0.0,
                "min_seconds": math.inf,
                "max_seconds": 0.0,
            },
        )
        entry["count"] += 1
        entry["total_seconds"] += node.duration
        child_total = sum(child.duration for child in node.children)
        entry["self_seconds"] += max(node.duration - child_total, 0.0)
        entry["min_seconds"] = min(entry["min_seconds"], node.duration)
        entry["max_seconds"] = max(entry["max_seconds"], node.duration)
    for entry in stats.values():
        if entry["min_seconds"] is math.inf:
            entry["min_seconds"] = 0.0
    return dict(sorted(stats.items()))


def _worker_top_spans(tree: SpanTree) -> list[SpanNode]:
    """Spans whose PID differs from their parent's — the first span each
    worker opened under a remote parent (shard executions, today)."""
    tops = []
    for node in tree.by_id.values():
        parent = tree.by_id.get(node.parent_id) if node.parent_id else None
        if parent is not None and node.pid != parent.pid:
            tops.append(node)
    return tops


def worker_stats(tree: SpanTree) -> dict[str, dict]:
    """Per-worker busy time, span count and utilization.

    Utilization is busy seconds over the parent run span's wall — 1.0
    means the worker never idled while the run was open.  Stragglers show
    up as one worker's busy time dwarfing the others'.
    """
    workers: dict[str, dict] = {}
    for node in _worker_top_spans(tree):
        parent = tree.by_id[node.parent_id]
        entry = workers.setdefault(
            str(node.pid),
            {"spans": 0, "busy_seconds": 0.0, "run_wall_seconds": parent.duration},
        )
        entry["spans"] += 1
        entry["busy_seconds"] += node.duration
        entry["run_wall_seconds"] = max(entry["run_wall_seconds"], parent.duration)
    for entry in workers.values():
        wall = entry["run_wall_seconds"]
        entry["utilization"] = entry["busy_seconds"] / wall if wall > 0 else 0.0
    return dict(sorted(workers.items()))


def straggler_stats(tree: SpanTree, top: int = 5) -> dict:
    """Slowest worker spans plus dispersion stats — the "which shard held
    the run hostage" answer."""
    spans = _worker_top_spans(tree)
    if not spans:
        return {"count": 0, "mean_seconds": 0.0, "max_seconds": 0.0, "slowest": []}
    durations = [node.duration for node in spans]
    mean = sum(durations) / len(durations)
    slowest = sorted(spans, key=lambda n: n.duration, reverse=True)[:top]
    return {
        "count": len(spans),
        "mean_seconds": mean,
        "max_seconds": max(durations),
        "max_over_mean": (max(durations) / mean) if mean > 0 else 0.0,
        "slowest": [
            {
                "name": node.name,
                "shard": node.attrs.get("shard"),
                "pid": node.pid,
                "duration_seconds": node.duration,
            }
            for node in slowest
        ],
    }


def critical_path(tree: SpanTree) -> list[dict]:
    """The chain of spans that determined the run's end time.

    Starting from the latest-ending root, descend at each level into the
    child that finished last — the span the parent was (transitively)
    waiting on.  Rows carry start offsets relative to the root.
    """
    candidates = tree.roots + tree.orphans
    if not candidates:
        return []
    node = max(candidates, key=lambda n: n.end)
    t0 = node.start
    path = []
    while True:
        path.append(
            {
                "name": node.name,
                "shard": node.attrs.get("shard"),
                "pid": node.pid,
                "start_offset_seconds": node.start - t0,
                "duration_seconds": node.duration,
            }
        )
        if not node.children:
            return path
        node = max(node.children, key=lambda n: n.end)


def store_rollup(events: list[dict]) -> dict[str, dict]:
    """Per-store operation totals and health ratios from ``store`` events.

    ``hit_rate`` is hits/(hits+misses) (None before any lookup);
    ``eviction_pressure`` is evictions/writes — sustained values near 1.0
    mean the store is thrashing at its capacity limit.
    """
    stores: dict[str, dict] = {}
    for record in events:
        if record.get("event") != "store":
            continue
        entry = stores.setdefault(
            str(record.get("store", "?")), dict.fromkeys(_STORE_OPS, 0)
        )
        op = record.get("op")
        if op in _STORE_OPS:
            entry[op] += int(record.get("n", 1))
    for entry in stores.values():
        lookups = entry["hits"] + entry["misses"]
        entry["hit_rate"] = entry["hits"] / lookups if lookups else None
        entry["eviction_pressure"] = (
            entry["evictions"] / entry["writes"] if entry["writes"] else 0.0
        )
    return dict(sorted(stores.items()))


def counter_totals(events: list[dict]) -> dict[str, int]:
    """Flat deterministic counters of one run.

    ``counter`` event deltas are summed; ``run_summary`` events contribute
    shard counts, retries and the parent-aggregated store totals (the
    authoritative numbers the executor also writes to its manifest).
    """
    totals: dict[str, int] = {}

    def add(name: str, value: int) -> None:
        totals[name] = totals.get(name, 0) + int(value)

    for record in events:
        event = record.get("event")
        if event == "counter":
            for name, value in (record.get("counters") or {}).items():
                add(name, value)
        elif event == "run_summary":
            summary = record.get("summary") or {}
            shards = summary.get("shards") or {}
            for key in ("executed", "resumed", "regenerated", "incomplete"):
                add(f"shards.{key}", shards.get(key, 0))
            add("retries", summary.get("retries", 0))
            for store in ("trace_store", "result_store"):
                for op, value in (summary.get(store) or {}).items():
                    add(f"{store}.{op}", value)
    return dict(sorted(totals.items()))


#: Per-worker cell counters a campaign worker reports in its run summary.
_CAMPAIGN_CELL_KEYS = (
    "cells_executed",
    "cells_regenerated",
    "claims",
    "steals",
    "requeues",
    "failures",
)


def campaign_rollup(events: list[dict]) -> dict:
    """Campaign telemetry rollup: classifications, claims, worker loads.

    Consumes the campaign event types (``classify``/``claim``/``requeue``)
    plus every ``campaign.worker`` run summary.  ``totals`` sums the
    per-worker cell counters — on a correct campaign,
    ``totals["cells_executed"]`` across all the campaign's worker logs
    equals the number of planned executions exactly (the zero-duplication
    invariant the CI drill asserts).  Claim/steal/requeue event counts are
    tracked independently of the worker summaries, so a worker that
    crashed before summarizing still leaves its claims visible.
    """
    classifications: list[dict] = []
    claim_events = 0
    steal_events = 0
    requeue_events = 0
    workers: dict[str, dict] = {}
    for record in events:
        event = record.get("event")
        if event == "classify":
            classifications.append(
                {
                    "label": str(record.get("label", "")),
                    "counts": {
                        str(k): int(v)
                        for k, v in (record.get("counts") or {}).items()
                    },
                }
            )
        elif event == "claim":
            claim_events += 1
            if record.get("stolen"):
                steal_events += 1
        elif event == "requeue":
            requeue_events += 1
        elif event == "run_summary" and record.get("label") == "campaign.worker":
            summary = record.get("summary") or {}
            owner = str(summary.get("owner") or record.get("pid", "?"))
            cells = summary.get("cells") or {}
            entry = workers.setdefault(
                owner,
                {**dict.fromkeys(_CAMPAIGN_CELL_KEYS, 0), "status": ""},
            )
            for key in _CAMPAIGN_CELL_KEYS:
                entry[key] += int(cells.get(key, 0))
            entry["status"] = str(summary.get("status", ""))
    totals = {
        key: sum(entry[key] for entry in workers.values())
        for key in _CAMPAIGN_CELL_KEYS
    }
    return {
        "schema": AGGREGATE_SCHEMA,
        "classifications": classifications,
        "claim_events": claim_events,
        "steal_events": steal_events,
        "requeue_events": requeue_events,
        "workers": dict(sorted(workers.items())),
        "totals": totals,
    }


#: Span names the prediction service emits (see :mod:`repro.service`).
_SERVICE_SPANS = (
    "service.request",
    "service.submit",
    "service.render",
    "service.attribution",
)


def service_rollup(events: list[dict]) -> dict:
    """Serving-layer telemetry: request latencies, renders, lifecycle.

    Consumes the ``service.*`` spans the daemon opens per request (plus its
    ``service_start``/``service_stop`` lifecycle events) and reports count /
    total / max duration per span name, with ``service.request`` broken out
    by method + path.  Because campaign worker spans parent into request
    spans, the *absence* of ``shard`` spans under a trace here is the
    zero-recompute proof for cached fetches — the benchmark checks exactly
    that via counters.
    """
    by_name: dict[str, dict] = {}
    requests: dict[str, dict] = {}
    starts = 0
    stops = 0
    for record in events:
        event = record.get("event")
        if event == "service_start":
            starts += 1
            continue
        if event == "service_stop":
            stops += 1
            continue
        if event != "span":
            continue
        name = str(record.get("name", ""))
        if name not in _SERVICE_SPANS:
            continue
        duration = float(record.get("duration_seconds", 0.0))
        entry = by_name.setdefault(
            name, {"count": 0, "total_seconds": 0.0, "max_seconds": 0.0}
        )
        entry["count"] += 1
        entry["total_seconds"] += duration
        entry["max_seconds"] = max(entry["max_seconds"], duration)
        if name == "service.request":
            attrs = record.get("attrs") or {}
            key = f"{attrs.get('method', '?')} {attrs.get('path', '?')}"
            req = requests.setdefault(
                key, {"count": 0, "total_seconds": 0.0, "max_seconds": 0.0}
            )
            req["count"] += 1
            req["total_seconds"] += duration
            req["max_seconds"] = max(req["max_seconds"], duration)
    return {
        "schema": AGGREGATE_SCHEMA,
        "starts": starts,
        "stops": stops,
        "spans": dict(sorted(by_name.items())),
        "requests": dict(sorted(requests.items())),
    }


def aggregate_run(events: list[dict]) -> dict:
    """The full telemetry report of one event log, as a JSON-able dict."""
    tree = build_span_tree(events)
    spans = tree.spans
    wall = 0.0
    if spans:
        t0 = min(node.start for node in spans)
        wall = max(node.end for node in spans) - t0
    return {
        "schema": AGGREGATE_SCHEMA,
        "trace_ids": sorted({node.trace_id for node in spans if node.trace_id}),
        "wall_seconds": wall,
        "spans": {
            "total": len(spans),
            "orphans": [node.name for node in tree.orphans],
            "unclosed": [str(record.get("name", "?")) for record in tree.unclosed],
        },
        "roots": [
            {"name": node.name, "pid": node.pid, "duration_seconds": node.duration}
            for node in tree.roots
        ],
        "phases": phase_stats(tree),
        "workers": worker_stats(tree),
        "stragglers": straggler_stats(tree),
        "critical_path": critical_path(tree),
        "stores": store_rollup(events),
        "counters": counter_totals(events),
    }


# -- regression gate -----------------------------------------------------------


def baseline_snapshot(aggregate: dict) -> dict:
    """Reduce a telemetry report to the comparable baseline: phase wall
    totals plus the deterministic counters (scheduling-dependent ones,
    like trace-cache hits, are excluded)."""
    counters = {
        name: value
        for name, value in (aggregate.get("counters") or {}).items()
        if not name.startswith(_VOLATILE_COUNTER_PREFIXES)
    }
    return {
        "schema": AGGREGATE_SCHEMA,
        "wall_seconds": aggregate.get("wall_seconds", 0.0),
        "phases": {
            name: stats["total_seconds"]
            for name, stats in (aggregate.get("phases") or {}).items()
        },
        "counters": counters,
    }


def regress(
    aggregate: dict,
    baseline: dict,
    threshold: float = 0.25,
    counters_only: bool = False,
) -> list[dict]:
    """Violations of ``aggregate`` against ``baseline`` (empty = pass).

    Timings gate on *relative slowdown*: run wall and each baseline
    phase's total may grow by at most ``threshold`` (0.25 = 25%); phases
    new in the current run are ignored (they had no budget), a baseline
    phase missing from the run is reported (the run did less work than
    the baseline measured).  Counters gate on exact equality for every
    key the baseline recorded — on a pinned grid they are deterministic,
    so *any* drift (extra retries, store misses, corrupt entries) is a
    finding.  ``counters_only`` skips the timing checks for
    machine-independent gating against a committed baseline.
    """
    violations: list[dict] = []
    if not counters_only:
        allowed = 1.0 + threshold
        base_wall = float(baseline.get("wall_seconds") or 0.0)
        cur_wall = float(aggregate.get("wall_seconds") or 0.0)
        if base_wall > 0 and cur_wall > base_wall * allowed:
            violations.append(
                {
                    "kind": "wall",
                    "name": "run",
                    "baseline": base_wall,
                    "current": cur_wall,
                    "ratio": cur_wall / base_wall,
                }
            )
        phases = aggregate.get("phases") or {}
        for name, base_total in sorted((baseline.get("phases") or {}).items()):
            current = phases.get(name)
            if current is None:
                violations.append(
                    {
                        "kind": "phase-missing",
                        "name": name,
                        "baseline": base_total,
                        "current": None,
                        "ratio": None,
                    }
                )
                continue
            cur_total = float(current["total_seconds"])
            if base_total > 0 and cur_total > base_total * allowed:
                violations.append(
                    {
                        "kind": "phase",
                        "name": name,
                        "baseline": base_total,
                        "current": cur_total,
                        "ratio": cur_total / base_total,
                    }
                )
    counters = aggregate.get("counters") or {}
    for name, base_value in sorted((baseline.get("counters") or {}).items()):
        current = counters.get(name, 0)
        if current != base_value:
            violations.append(
                {
                    "kind": "counter",
                    "name": name,
                    "baseline": base_value,
                    "current": current,
                    "ratio": None,
                }
            )
    return violations
