"""Run manifests: JSON sidecars that make any figure output reproducible.

A manifest captures everything needed to regenerate (and trust) one
``results/*.txt``: the resolved experiment configuration (scale,
benchmarks, engine, warmup), the environment (python/numpy versions, git
sha), per-phase wall times (from ``span.*`` timers), the full metrics
snapshot, and a digest of the rendered output.  ``repro-figures
--output-dir``/``--profile`` writes one per target; ``repro-stats`` renders
and diffs them.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import subprocess
import sys
import time

from repro.obs.registry import MetricsRegistry
from repro.obs.tracing import default_registry, last_trace_id

#: Bumped when the manifest layout changes incompatibly.
MANIFEST_VERSION = 1

#: Manifest sections compared key-by-key in :func:`diff_manifests`.
_DIFF_SECTIONS = ("config", "environment", "output")


def _git_sha() -> str | None:
    """Best-effort commit sha of the source tree (None outside a checkout)."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if proc.returncode != 0:
        return None
    return proc.stdout.strip() or None


def environment_info() -> dict:
    """Versions and platform facts recorded in every manifest."""
    import numpy

    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "numpy": numpy.__version__,
        "platform": platform.platform(),
        "argv": " ".join(sys.argv),
        "git_sha": _git_sha(),
    }


def output_digest(text: str) -> dict:
    """Digest + size of a rendered figure, for byte-identity checks."""
    data = text.encode("utf-8")
    return {"sha256": hashlib.sha256(data).hexdigest(), "bytes": len(data)}


def _phases(snapshot: dict) -> dict:
    """Per-phase timings: every ``span.<name>`` timer, keyed by phase name."""
    return {
        name[len("span.") :]: info
        for name, info in (snapshot.get("timers") or {}).items()
        if name.startswith("span.")
    }


def build_manifest(
    target: str,
    output_text: str,
    duration_seconds: float,
    registry: MetricsRegistry | None = None,
    config: dict | None = None,
) -> dict:
    """Assemble the manifest dict for one figure/sweep run."""
    if config is None:
        from repro.harness.scale import resolved_config  # deferred: layering

        config = resolved_config()
    snapshot = (registry or default_registry()).snapshot()
    manifest = {
        "manifest_version": MANIFEST_VERSION,
        "target": target,
        "created_unix": time.time(),
        # Joins the manifest to the run's span tree in the event log
        # (volatile: not diffed).
        "trace_id": last_trace_id(),
        "duration_seconds": duration_seconds,
        "config": config,
        "environment": environment_info(),
        "output": output_digest(output_text),
        "phases": _phases(snapshot),
        "metrics": snapshot,
    }
    from repro.harness.parallel import drain_run_reports  # deferred: layering

    reports = drain_run_reports()
    if reports:
        # Per-shard worker timings, retry counts and failures of every
        # parallel sweep that fed this target (volatile: not diffed).
        manifest["parallel"] = reports
    return manifest


def manifest_path_for(output_path: str) -> str:
    """Sidecar path for a figure output: ``x.txt`` -> ``x.manifest.json``."""
    stem, _ = os.path.splitext(output_path)
    return f"{stem}.manifest.json"


def write_manifest(manifest: dict, path: str) -> str:
    """Write ``manifest`` as pretty JSON; returns ``path``."""
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_manifest(path: str) -> dict:
    """Read a manifest written by :func:`write_manifest`."""
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


def diff_manifests(a: dict, b: dict) -> list[dict]:
    """Field-by-field differences between two manifests.

    Returns rows of ``{"section", "key", "a", "b"}`` covering config,
    environment and output digests, plus phase-timing and counter deltas.
    Volatile fields (timestamps, durations, argv) are not compared.
    """
    rows: list[dict] = []
    for section in _DIFF_SECTIONS:
        left, right = a.get(section) or {}, b.get(section) or {}
        for key in sorted(set(left) | set(right)):
            if key == "argv":
                continue
            if left.get(key) != right.get(key):
                rows.append(
                    {
                        "section": section,
                        "key": key,
                        "a": left.get(key),
                        "b": right.get(key),
                    }
                )
    phases_a, phases_b = a.get("phases") or {}, b.get("phases") or {}
    for name in sorted(set(phases_a) | set(phases_b)):
        total_a = (phases_a.get(name) or {}).get("total_seconds")
        total_b = (phases_b.get(name) or {}).get("total_seconds")
        if total_a != total_b:
            rows.append(
                {
                    "section": "phases",
                    "key": name,
                    "a": None if total_a is None else f"{total_a:.3f}s",
                    "b": None if total_b is None else f"{total_b:.3f}s",
                }
            )
    counters_a = (a.get("metrics") or {}).get("counters") or {}
    counters_b = (b.get("metrics") or {}).get("counters") or {}
    for name in sorted(set(counters_a) | set(counters_b)):
        if counters_a.get(name) != counters_b.get(name):
            rows.append(
                {
                    "section": "counters",
                    "key": name,
                    "a": counters_a.get(name),
                    "b": counters_b.get(name),
                }
            )
    return rows
