"""``repro-stats`` — render and diff run manifests.

Usage::

    repro-stats show results/table2.manifest.json
    repro-stats diff results/figure1.manifest.json other/figure1.manifest.json

``show`` prints a manifest's configuration, environment, per-phase wall
times, metrics tables and top hard-to-predict-branch tables; ``diff``
compares two manifests field by field (config, environment, output digest,
phase timings, counters) — the quick answer to "why do these two
``results/*.txt`` differ?".
"""

from __future__ import annotations

import argparse
import sys

from repro.obs.manifest import diff_manifests, load_manifest
from repro.obs.registry import render_snapshot


def _kv_rows(mapping: dict) -> list[tuple[str, str]]:
    return [(key, str(value)) for key, value in sorted(mapping.items())]


def render_manifest(manifest: dict) -> str:
    """One manifest as aligned text tables."""
    from repro.harness.report import render_table

    target = manifest.get("target", "?")
    sections = [
        render_table(
            f"Run manifest: {target}",
            ["field", "value"],
            [
                ("manifest_version", manifest.get("manifest_version")),
                ("duration_seconds", f"{manifest.get('duration_seconds', 0.0):.3f}"),
            ],
        ),
        render_table("Config", ["key", "value"], _kv_rows(manifest.get("config") or {})),
        render_table(
            "Environment", ["key", "value"], _kv_rows(manifest.get("environment") or {})
        ),
        render_table(
            "Output", ["key", "value"], _kv_rows(manifest.get("output") or {})
        ),
    ]
    phases = manifest.get("phases") or {}
    if phases:
        rows = [
            (
                name,
                info.get("count", 0),
                f"{info.get('total_seconds', 0.0):.3f}",
                f"{1e3 * info.get('mean_seconds', 0.0):.2f}",
            )
            for name, info in sorted(phases.items())
        ]
        sections.append(
            render_table("Phases", ["phase", "count", "total s", "mean ms"], rows)
        )
    metrics = manifest.get("metrics") or {}
    if metrics:
        sections.append(render_snapshot(metrics))
    return "\n\n".join(sections)


def render_diff(rows: list[dict]) -> str:
    """A :func:`diff_manifests` result as one aligned table."""
    from repro.harness.report import render_table

    if not rows:
        return "Manifests match (config, environment, output, phases, counters)."
    return render_table(
        "Manifest differences",
        ["section", "key", "a", "b"],
        [(row["section"], row["key"], row["a"], row["b"]) for row in rows],
    )


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``repro-stats``."""
    parser = argparse.ArgumentParser(
        prog="repro-stats",
        description="Render and diff run manifests written by repro-figures",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    show = subparsers.add_parser("show", help="render one or more manifests")
    show.add_argument("manifests", nargs="+", help="manifest JSON paths")
    diff = subparsers.add_parser("diff", help="compare two manifests")
    diff.add_argument("manifest_a")
    diff.add_argument("manifest_b")
    args = parser.parse_args(argv)

    if args.command == "show":
        for path in args.manifests:
            print(render_manifest(load_manifest(path)))
            print()
        return 0
    rows = diff_manifests(load_manifest(args.manifest_a), load_manifest(args.manifest_b))
    print(render_diff(rows))
    print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
