"""``repro-stats`` — render and diff run manifests and telemetry reports.

Usage::

    repro-stats show results/table2.manifest.json
    repro-stats diff results/figure1.manifest.json other/figure1.manifest.json
    repro-stats timeline run/events.jsonl
    repro-stats flame run/events.jsonl
    repro-stats critical-path run/events.jsonl
    repro-stats stores run/events.jsonl
    repro-stats campaign run/worker1.jsonl run/worker2.jsonl
    repro-stats service service-data/events.jsonl
    repro-stats regress run/events.jsonl --baseline results/obs_baseline.json

``show`` prints a manifest's configuration, environment, per-phase wall
times, metrics tables and top hard-to-predict-branch tables; ``diff``
compares two manifests field by field (config, environment, output digest,
phase timings, counters) — the quick answer to "why do these two
``results/*.txt`` differ?".

The telemetry subcommands consume the JSONL event log a run leaves behind
when ``REPRO_LOG`` is set (see :mod:`repro.obs` for the layout):
``timeline`` draws every span of the cross-process tree against the run's
wall clock, ``flame`` merges spans by call path into an ASCII flamegraph,
``critical-path`` prints the chain of spans that determined the run's end
time, ``stores`` rolls up trace/result-store health, and ``regress``
gates a run against a stored baseline snapshot — nonzero exit past the
threshold.  All five accept ``--json`` for machine-readable output.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.obs.aggregate import (
    SpanNode,
    aggregate_run,
    baseline_snapshot,
    build_span_tree,
    campaign_rollup,
    regress,
    service_rollup,
)
from repro.obs.events import read_run_events
from repro.obs.manifest import diff_manifests, load_manifest
from repro.obs.registry import render_snapshot


def _kv_rows(mapping: dict) -> list[tuple[str, str]]:
    return [(key, str(value)) for key, value in sorted(mapping.items())]


def render_manifest(manifest: dict) -> str:
    """One manifest as aligned text tables."""
    from repro.harness.report import render_table

    target = manifest.get("target", "?")
    header = [
        ("manifest_version", manifest.get("manifest_version")),
        ("duration_seconds", f"{manifest.get('duration_seconds', 0.0):.3f}"),
    ]
    if manifest.get("trace_id"):
        header.append(("trace_id", manifest["trace_id"]))
    sections = [
        render_table(f"Run manifest: {target}", ["field", "value"], header),
        render_table("Config", ["key", "value"], _kv_rows(manifest.get("config") or {})),
        render_table(
            "Environment", ["key", "value"], _kv_rows(manifest.get("environment") or {})
        ),
        render_table(
            "Output", ["key", "value"], _kv_rows(manifest.get("output") or {})
        ),
    ]
    phases = manifest.get("phases") or {}
    if phases:
        rows = [
            (
                name,
                info.get("count", 0),
                f"{info.get('total_seconds', 0.0):.3f}",
                f"{1e3 * info.get('mean_seconds', 0.0):.2f}",
            )
            for name, info in sorted(phases.items())
        ]
        sections.append(
            render_table("Phases", ["phase", "count", "total s", "mean ms"], rows)
        )
    metrics = manifest.get("metrics") or {}
    if metrics:
        sections.append(render_snapshot(metrics))
    return "\n\n".join(sections)


def render_diff(rows: list[dict]) -> str:
    """A :func:`diff_manifests` result as one aligned table."""
    from repro.harness.report import render_table

    if not rows:
        return "Manifests match (config, environment, output, phases, counters)."
    return render_table(
        "Manifest differences",
        ["section", "key", "a", "b"],
        [(row["section"], row["key"], row["a"], row["b"]) for row in rows],
    )


# -- telemetry renderings ------------------------------------------------------

_BAR_WIDTH = 40


def render_timeline(events: list[dict]) -> str:
    """Every span against the run's wall clock, one bar per span.

    Bars are positioned on a shared time axis (run start = column 0), so
    worker shards running concurrently show as overlapping bars and a
    straggler sticks out as the bar that keeps going after the others
    stop.  Indentation mirrors tree depth across processes.
    """
    tree = build_span_tree(events)
    spans = tree.spans
    if not spans:
        return "No spans in event log."
    t0 = min(node.start for node in spans)
    wall = max(node.end for node in spans) - t0 or 1.0
    lines = [
        f"Timeline  wall={wall:.3f}s  spans={len(spans)}"
        f"  orphans={len(tree.orphans)}  unclosed={len(tree.unclosed)}"
    ]
    for depth, node in tree.walk():
        lead = int(_BAR_WIDTH * (node.start - t0) / wall)
        width = max(1, round(_BAR_WIDTH * node.duration / wall))
        bar = " " * lead + "#" * min(width, _BAR_WIDTH - lead)
        label = "  " * depth + node.name
        shard = node.attrs.get("shard")
        if shard:
            label += f" [{shard}]"
        lines.append(
            f"  |{bar:<{_BAR_WIDTH}}| {node.duration:8.3f}s"
            f"  pid={node.pid:<8d} {label}"
        )
    return "\n".join(lines)


def _merge_flame(nodes: list[SpanNode]) -> dict[str, dict]:
    """Merge sibling spans by name: {name: {"total", "count", "children"}}."""
    merged: dict[str, dict] = {}
    for node in nodes:
        entry = merged.setdefault(node.name, {"total": 0.0, "count": 0, "nodes": []})
        entry["total"] += node.duration
        entry["count"] += 1
        entry["nodes"].extend(node.children)
    return merged


def render_flame(events: list[dict]) -> str:
    """ASCII flamegraph: spans merged by call path, widths ∝ wall share.

    Unlike ``timeline`` (every span, real clock positions), ``flame``
    answers "where does the time go *by phase*": all spans with the same
    name under the same parent path collapse into one row whose bar width
    is its share of the root's wall time.
    """
    tree = build_span_tree(events)
    roots = tree.roots + tree.orphans
    if not roots:
        return "No spans in event log."
    total = sum(node.duration for node in roots) or 1.0
    lines = [f"Flame  root total={total:.3f}s (bar width = share of root wall)"]

    def emit(nodes: list[SpanNode], depth: int) -> None:
        merged = _merge_flame(nodes)
        for name, entry in sorted(
            merged.items(), key=lambda item: item[1]["total"], reverse=True
        ):
            share = entry["total"] / total
            # Concurrent siblings (worker shards) can sum past the root's
            # wall; the percentage says so, the bar clamps to full width.
            bar = "█" * max(1, min(_BAR_WIDTH, round(_BAR_WIDTH * share)))
            lines.append(
                f"  {entry['total']:8.3f}s {100 * share:5.1f}%"
                f"  {'  ' * depth}{name} ×{entry['count']}  {bar}"
            )
            emit(entry["nodes"], depth + 1)

    emit(list(roots), 0)
    return "\n".join(lines)


def render_critical_path(path: list[dict]) -> str:
    """The critical-path chain as one aligned table."""
    from repro.harness.report import render_table

    if not path:
        return "No spans in event log."
    rows = [
        (
            step["name"] + (f" [{step['shard']}]" if step.get("shard") else ""),
            step["pid"],
            f"{step['start_offset_seconds']:.3f}",
            f"{step['duration_seconds']:.3f}",
        )
        for step in path
    ]
    return render_table(
        "Critical path (the span chain that determined the run's end time)",
        ["span", "pid", "start +s", "duration s"],
        rows,
    )


def render_stores(stores: dict[str, dict]) -> str:
    """Store-health rollup as one aligned table."""
    from repro.harness.report import render_table

    if not stores:
        return "No store events in event log."
    rows = []
    for name, entry in stores.items():
        hit_rate = entry.get("hit_rate")
        rows.append(
            (
                name,
                entry.get("hits", 0),
                entry.get("misses", 0),
                "-" if hit_rate is None else f"{100 * hit_rate:.1f}%",
                entry.get("writes", 0),
                entry.get("evictions", 0),
                entry.get("corrupt", 0),
            )
        )
    return render_table(
        "Store health",
        ["store", "hits", "misses", "hit rate", "writes", "evictions", "corrupt"],
        rows,
    )


def render_campaign(rollup: dict) -> str:
    """Campaign rollup as aligned tables (classifications + worker loads)."""
    from repro.harness.report import render_table

    sections = []
    class_rows = [
        (
            entry["label"] or "-",
            sum(entry["counts"].values()),
            entry["counts"].get("completed", 0),
            entry["counts"].get("results_missing", 0),
            entry["counts"].get("failed", 0),
            entry["counts"].get("partial", 0),
            entry["counts"].get("missing", 0),
        )
        for entry in rollup.get("classifications", [])
    ]
    if class_rows:
        sections.append(
            render_table(
                "Campaign classifications (one row per scan)",
                ["label", "cells", "completed", "results", "failed", "partial", "missing"],
                class_rows,
            )
        )
    worker_rows = [
        (
            owner,
            entry.get("status") or "-",
            entry["cells_executed"],
            entry["cells_regenerated"],
            entry["claims"],
            entry["steals"],
            entry["requeues"],
            entry["failures"],
        )
        for owner, entry in rollup.get("workers", {}).items()
    ]
    totals = rollup.get("totals", {})
    if worker_rows:
        worker_rows.append(
            (
                "TOTAL",
                "-",
                totals.get("cells_executed", 0),
                totals.get("cells_regenerated", 0),
                totals.get("claims", 0),
                totals.get("steals", 0),
                totals.get("requeues", 0),
                totals.get("failures", 0),
            )
        )
        sections.append(
            render_table(
                "Campaign workers",
                ["owner", "status", "executed", "regenerated", "claims", "steals",
                 "requeues", "failures"],
                worker_rows,
            )
        )
    sections.append(
        f"claim events: {rollup.get('claim_events', 0)}"
        f"  steals: {rollup.get('steal_events', 0)}"
        f"  requeues: {rollup.get('requeue_events', 0)}"
    )
    if not class_rows and not worker_rows:
        return "No campaign events in event log(s)."
    return "\n\n".join(sections)


def render_service(rollup: dict) -> str:
    """Service rollup as aligned tables (per-route latencies + lifecycle)."""
    from repro.harness.report import render_table

    sections = []
    span_rows = [
        (
            name,
            entry["count"],
            f"{entry['total_seconds']:.3f}",
            f"{entry['total_seconds'] / entry['count']:.4f}" if entry["count"] else "-",
            f"{entry['max_seconds']:.4f}",
        )
        for name, entry in rollup.get("spans", {}).items()
    ]
    if span_rows:
        sections.append(
            render_table(
                "Service spans",
                ["span", "count", "total_s", "mean_s", "max_s"],
                span_rows,
            )
        )
    request_rows = [
        (
            key,
            entry["count"],
            f"{entry['total_seconds'] / entry['count']:.4f}" if entry["count"] else "-",
            f"{entry['max_seconds']:.4f}",
        )
        for key, entry in rollup.get("requests", {}).items()
    ]
    if request_rows:
        sections.append(
            render_table(
                "Requests by route",
                ["route", "count", "mean_s", "max_s"],
                request_rows,
            )
        )
    sections.append(
        f"daemon starts: {rollup.get('starts', 0)}  stops: {rollup.get('stops', 0)}"
    )
    if not span_rows and not request_rows:
        return "No service events in event log(s)."
    return "\n\n".join(sections)


def render_regress(violations: list[dict], threshold: float) -> str:
    """Regression verdict as one aligned table."""
    from repro.harness.report import render_table

    if not violations:
        return f"No regressions (threshold {100 * threshold:.0f}%)."
    rows = [
        (
            row["kind"],
            row["name"],
            "-" if row["baseline"] is None else f"{row['baseline']:.3f}"
            if isinstance(row["baseline"], float)
            else row["baseline"],
            "-" if row["current"] is None else f"{row['current']:.3f}"
            if isinstance(row["current"], float)
            else row["current"],
            "-" if row["ratio"] is None else f"{row['ratio']:.2f}x",
        )
        for row in violations
    ]
    return render_table(
        f"REGRESSIONS (threshold {100 * threshold:.0f}%)",
        ["kind", "name", "baseline", "current", "ratio"],
        rows,
    )


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``repro-stats``."""
    parser = argparse.ArgumentParser(
        prog="repro-stats",
        description="Render and diff run manifests and telemetry event logs",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    show = subparsers.add_parser("show", help="render one or more manifests")
    show.add_argument("manifests", nargs="+", help="manifest JSON paths")
    diff = subparsers.add_parser("diff", help="compare two manifests")
    diff.add_argument("manifest_a")
    diff.add_argument("manifest_b")
    for name, help_text in (
        ("timeline", "draw every span of a run against the wall clock"),
        ("flame", "ASCII flamegraph: spans merged by call path"),
        ("critical-path", "the span chain that determined the run's end time"),
        ("stores", "trace/result-store health rollup"),
    ):
        sub = subparsers.add_parser(name, help=help_text)
        sub.add_argument("events", help="JSONL event log (REPRO_LOG path)")
        sub.add_argument("--json", action="store_true", help="emit JSON instead")
    camp = subparsers.add_parser(
        "campaign",
        help="campaign rollup: classifications, claims/steals, worker loads",
    )
    camp.add_argument(
        "events",
        nargs="+",
        help="one or more JSONL event logs (e.g. every worker's REPRO_LOG)",
    )
    camp.add_argument("--json", action="store_true", help="emit JSON instead")
    serv = subparsers.add_parser(
        "service",
        help="serving-layer rollup: per-route latencies, renders, lifecycle",
    )
    serv.add_argument(
        "events",
        nargs="+",
        help="one or more JSONL event logs (the daemon's REPRO_LOG + sidecars)",
    )
    serv.add_argument("--json", action="store_true", help="emit JSON instead")
    reg = subparsers.add_parser(
        "regress", help="gate a run's timings/counters against a baseline"
    )
    reg.add_argument("events", help="JSONL event log (REPRO_LOG path)")
    reg.add_argument("--baseline", required=True, help="baseline snapshot JSON")
    reg.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="allowed relative slowdown (0.25 = 25%%)",
    )
    reg.add_argument(
        "--counters-only",
        action="store_true",
        help="skip timing gates (machine-independent CI mode)",
    )
    reg.add_argument(
        "--write-baseline",
        action="store_true",
        help="write this run's snapshot to --baseline and exit 0",
    )
    reg.add_argument("--json", action="store_true", help="emit JSON instead")
    args = parser.parse_args(argv)

    if args.command == "show":
        for path in args.manifests:
            print(render_manifest(load_manifest(path)))
            print()
        return 0
    if args.command == "diff":
        rows = diff_manifests(
            load_manifest(args.manifest_a), load_manifest(args.manifest_b)
        )
        print(render_diff(rows))
        print()
        return 0

    if args.command == "service":
        events = []
        for path in args.events:
            events.extend(read_run_events(path))
        events.sort(key=lambda r: r.get("ts", 0.0))
        rollup = service_rollup(events)
        if args.json:
            print(json.dumps(rollup, indent=2, sort_keys=True))
        else:
            print(render_service(rollup))
        return 0

    if args.command == "campaign":
        # A campaign's trail is spread over every worker's log; merge them.
        events = []
        for path in args.events:
            events.extend(read_run_events(path))
        events.sort(key=lambda r: r.get("ts", 0.0))
        rollup = campaign_rollup(events)
        if args.json:
            print(json.dumps(rollup, indent=2, sort_keys=True))
        else:
            print(render_campaign(rollup))
        return 0

    events = read_run_events(args.events)
    if args.command == "timeline":
        if args.json:
            print(json.dumps(aggregate_run(events), indent=2, sort_keys=True))
        else:
            print(render_timeline(events))
        return 0
    if args.command == "flame":
        if args.json:
            print(
                json.dumps(
                    aggregate_run(events)["phases"], indent=2, sort_keys=True
                )
            )
        else:
            print(render_flame(events))
        return 0
    if args.command == "critical-path":
        aggregate = aggregate_run(events)
        if args.json:
            print(json.dumps(aggregate["critical_path"], indent=2, sort_keys=True))
        else:
            print(render_critical_path(aggregate["critical_path"]))
        return 0
    if args.command == "stores":
        aggregate = aggregate_run(events)
        if args.json:
            print(json.dumps(aggregate["stores"], indent=2, sort_keys=True))
        else:
            print(render_stores(aggregate["stores"]))
        return 0

    # regress
    aggregate = aggregate_run(events)
    if args.write_baseline:
        snapshot = baseline_snapshot(aggregate)
        with open(args.baseline, "w", encoding="utf-8") as handle:
            json.dump(snapshot, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"Baseline written: {args.baseline}")
        return 0
    with open(args.baseline, encoding="utf-8") as handle:
        baseline = json.load(handle)
    violations = regress(
        aggregate, baseline, threshold=args.threshold, counters_only=args.counters_only
    )
    if args.json:
        print(
            json.dumps(
                {"threshold": args.threshold, "violations": violations},
                indent=2,
                sort_keys=True,
            )
        )
    else:
        print(render_regress(violations, args.threshold))
    return 1 if violations else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
