"""Span tracing: nested wall-time scopes with structured JSONL output.

A *span* wraps one phase of a run (a figure, a sweep, one benchmark within
a sweep).  Closing a span:

* records its duration into the default registry's ``span.<name>`` timer
  (when collection is enabled) — these timers are the per-phase timings a
  run manifest reports;
* appends a JSON line to the path named by the ``REPRO_LOG`` environment
  variable (when set), so long sweeps leave a machine-readable trail;
* mirrors a human-readable line to stderr when verbose (``--verbose`` or
  ``REPRO_VERBOSE``) — the progress feed for otherwise-silent sweeps.

When none of those sinks is active, ``span`` yields a no-op handle without
touching the clock, so the fully-disabled path stays free.
"""

from __future__ import annotations

import json
import os
import sys
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.obs.registry import MetricsRegistry, _env_flag, enabled

#: Process-global default registry shared by every instrumentation point.
DEFAULT_REGISTRY = MetricsRegistry()

_verbose: bool | None = None
_stack: list[str] = []


def default_registry() -> MetricsRegistry:
    """The process-global registry instance."""
    return DEFAULT_REGISTRY


def verbose() -> bool:
    """True when spans mirror a human-readable line to stderr."""
    if _verbose is None:
        return _env_flag("REPRO_VERBOSE")
    return _verbose


def set_verbose(value: bool | None) -> None:
    """Pin the stderr mirror on/off, or ``None`` to defer to REPRO_VERBOSE."""
    global _verbose
    _verbose = value


def log_path() -> str | None:
    """The structured-event sink from ``REPRO_LOG`` (None when unset)."""
    return os.environ.get("REPRO_LOG") or None


def tracing_active() -> bool:
    """True when spans have any live sink (registry, JSONL file, stderr)."""
    return enabled() or verbose() or log_path() is not None


def log_event(event: str, **fields: object) -> None:
    """Append one structured event line to ``REPRO_LOG`` (no-op when unset)."""
    path = log_path()
    if path is None:
        return
    record = {"event": event, "ts": time.time(), **fields}
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(record, sort_keys=True, default=str) + "\n")


@dataclass
class ActiveSpan:
    """Mutable handle for an open span; ``annotate`` adds event fields."""

    name: str
    depth: int
    attrs: dict[str, object] = field(default_factory=dict)

    def annotate(self, **attrs: object) -> None:
        """Attach extra key/value fields to the span's closing event."""
        self.attrs.update(attrs)


_NOOP_SPAN = ActiveSpan(name="", depth=0)


@contextmanager
def span(name: str, **attrs: object):
    """Trace one named phase: ``with obs.span("figure1.sweep", engine=...):``.

    Yields an :class:`ActiveSpan` whose ``annotate`` method adds fields to
    the emitted event.  Nesting depth is tracked so JSONL consumers (and the
    verbose mirror's indentation) can reconstruct the tree.
    """
    if not tracing_active():
        yield _NOOP_SPAN
        return
    handle = ActiveSpan(name=name, depth=len(_stack), attrs=dict(attrs))
    _stack.append(name)
    if verbose():
        print(f"[obs] {'  ' * handle.depth}> {name}", file=sys.stderr)
    start = time.perf_counter()
    try:
        yield handle
    finally:
        duration = time.perf_counter() - start
        _stack.pop()
        if enabled():
            DEFAULT_REGISTRY.timer(f"span.{name}").observe(duration)
        log_event(
            "span",
            name=name,
            depth=handle.depth,
            duration_seconds=duration,
            attrs=handle.attrs,
        )
        if verbose():
            extras = " ".join(f"{k}={v}" for k, v in handle.attrs.items())
            line = f"[obs] {'  ' * handle.depth}< {name} {duration:.3f}s"
            print(f"{line} {extras}".rstrip(), file=sys.stderr)
