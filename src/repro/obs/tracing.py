"""Span tracing: nested wall-time scopes with distributed-trace context.

A *span* wraps one phase of a run (a figure, a sweep, one shard in a
worker process).  Every active span carries a **span context** —
``trace_id`` (shared by every span of one run), ``span_id`` (unique per
span) and ``parent_id`` (the enclosing span, possibly in another
process) — so the JSONL event stream reconstructs into a single
cross-process tree (:mod:`repro.obs.aggregate`).

Closing a span:

* records its duration into the default registry's ``span.<name>`` timer
  (when collection is enabled) — these timers are the per-phase timings a
  run manifest reports;
* appends ``span_open`` / ``span`` JSON events to the event sink derived
  from the ``REPRO_LOG`` environment variable (see :mod:`repro.obs` for
  the per-PID sidecar layout), so long sweeps leave a machine-readable
  trail;
* mirrors a human-readable line to stderr when verbose (``--verbose`` or
  ``REPRO_VERBOSE``) — the progress feed for otherwise-silent sweeps.

Cross-process propagation: the parent serializes :func:`current_context`
into the payload it ships to each worker; the worker calls
:func:`adopt_context` so its spans parent to the remote run span.  The
``REPRO_LOG_OWNER_PID`` environment variable (set by
:func:`claim_log_ownership` before workers are spawned) routes any
non-owning process to a per-PID sidecar file, so concurrent writers never
interleave inside one file.

When no sink is active, ``span`` yields a no-op handle without touching
the clock, so the fully-disabled path stays free.
"""

from __future__ import annotations

import json
import os
import secrets
import sys
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.obs.events import EVENT_SCHEMA
from repro.obs.registry import MetricsRegistry, _env_flag, enabled

#: Process-global default registry shared by every instrumentation point.
DEFAULT_REGISTRY = MetricsRegistry()

#: Environment variable naming the PID that owns the main ``REPRO_LOG``
#: file.  Set by :func:`claim_log_ownership`; a process inheriting it with
#: a *different* PID (a pool worker) writes to ``<path>.<pid>`` instead.
LOG_OWNER_ENV = "REPRO_LOG_OWNER_PID"

_verbose: bool | None = None


class _ThreadState(threading.local):
    """Per-thread span stack and adopted ambient parent context.

    The stack must be thread-local: the prediction service opens request
    spans on its event-loop thread while campaign worker threads open
    shard spans concurrently, and a shared stack would interleave their
    parenting (and pop each other's handles).  Single-threaded processes —
    every pre-service consumer — see identical behaviour, and forked /
    spawned pool workers adopt their remote context on their own main
    thread as before.
    """

    def __init__(self) -> None:
        self.stack: list["ActiveSpan"] = []
        #: Remote parent context adopted from another process or thread.
        self.ambient: dict | None = None


_state = _ThreadState()
#: trace_id of the most recently opened span (run manifests record it).
_last_trace_id: str | None = None


def default_registry() -> MetricsRegistry:
    """The process-global registry instance."""
    return DEFAULT_REGISTRY


def verbose() -> bool:
    """True when spans mirror a human-readable line to stderr."""
    if _verbose is None:
        return _env_flag("REPRO_VERBOSE")
    return _verbose


def set_verbose(value: bool | None) -> None:
    """Pin the stderr mirror on/off, or ``None`` to defer to REPRO_VERBOSE."""
    global _verbose
    _verbose = value


def log_path() -> str | None:
    """The structured-event sink from ``REPRO_LOG`` (None when unset)."""
    return os.environ.get("REPRO_LOG") or None


def tracing_active() -> bool:
    """True when spans have any live sink (registry, JSONL file, stderr)."""
    return enabled() or verbose() or log_path() is not None


# -- span context --------------------------------------------------------------


def _new_id() -> str:
    return secrets.token_hex(8)


def current_context() -> dict | None:
    """The active span context as a JSON-able dict, or None.

    The innermost open span wins; a worker with no open span reports the
    context it adopted from its parent.  This is exactly the payload to
    ship across a process boundary and hand to :func:`adopt_context`.
    """
    if _state.stack:
        top = _state.stack[-1]
        return {"trace_id": top.trace_id, "span_id": top.span_id}
    if _state.ambient is not None:
        return dict(_state.ambient)
    return None


def adopt_context(context: dict | None) -> None:
    """Adopt a remote parent span context (worker side).

    Until cleared (``adopt_context(None)``), spans opened in this *thread*
    with no local parent attach to the adopted ``span_id`` and share its
    ``trace_id`` — the mechanism that parents worker shard spans to the
    run span living in another process (or, for the prediction service's
    in-process worker threads, to the submitting request's span in the
    event-loop thread).
    """
    if context is None:
        _state.ambient = None
    else:
        _state.ambient = {
            "trace_id": str(context.get("trace_id", "")),
            "span_id": context.get("span_id"),
        }


def last_trace_id() -> str | None:
    """trace_id of the most recently opened span in this process."""
    return _last_trace_id


def claim_log_ownership() -> None:
    """Mark this process as the owner of the main ``REPRO_LOG`` file.

    Call before spawning worker processes: workers inherit the
    ``REPRO_LOG_OWNER_PID`` variable, see a foreign PID, and route their
    events to per-PID sidecar files instead of interleaving appends into
    the parent's file.  Idempotent; a no-op when no log is configured or
    another process already owns it.
    """
    if log_path() is not None and not os.environ.get(LOG_OWNER_ENV):
        os.environ[LOG_OWNER_ENV] = str(os.getpid())


def event_sink() -> str | None:
    """The JSONL file *this process* appends events to (None when no log).

    The owning process (per ``REPRO_LOG_OWNER_PID``) writes to the
    ``REPRO_LOG`` path itself; every other process writes to its own
    ``<path>.<pid>`` sidecar, merged back by the parallel executor via
    :func:`repro.obs.events.collect_worker_events`.
    """
    path = log_path()
    if path is None:
        return None
    owner = os.environ.get(LOG_OWNER_ENV)
    if owner and owner != str(os.getpid()):
        return f"{path}.{os.getpid()}"
    return path


def log_event(event: str, **fields: object) -> None:
    """Append one structured event line to the event sink (no-op when
    ``REPRO_LOG`` is unset).  Every record carries the schema version,
    a timestamp and the emitting PID."""
    path = event_sink()
    if path is None:
        return
    record = {
        "event": event,
        "v": EVENT_SCHEMA,
        "ts": time.time(),
        "pid": os.getpid(),
        **fields,
    }
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(record, sort_keys=True, default=str) + "\n")


# -- spans ---------------------------------------------------------------------


@dataclass
class ActiveSpan:
    """Mutable handle for an open span; ``annotate`` adds event fields."""

    name: str
    depth: int
    attrs: dict[str, object] = field(default_factory=dict)
    trace_id: str = ""
    span_id: str = ""
    parent_id: str | None = None
    start_unix: float = 0.0

    def annotate(self, **attrs: object) -> None:
        """Attach extra key/value fields to the span's closing event."""
        self.attrs.update(attrs)


_NOOP_SPAN = ActiveSpan(name="", depth=0)


@contextmanager
def span(name: str, **attrs: object):
    """Trace one named phase: ``with obs.span("figure1.sweep", engine=...):``.

    Yields an :class:`ActiveSpan` whose ``annotate`` method adds fields to
    the emitted close event.  The span inherits its ``trace_id`` from the
    enclosing span (local, or adopted from a remote parent); a span with
    no parent starts a fresh trace.
    """
    if not tracing_active():
        yield _NOOP_SPAN
        return
    global _last_trace_id
    parent = current_context()
    handle = ActiveSpan(
        name=name,
        depth=len(_state.stack),
        attrs=dict(attrs),
        trace_id=parent["trace_id"] if parent else _new_id(),
        span_id=_new_id(),
        parent_id=parent["span_id"] if parent else None,
        start_unix=time.time(),
    )
    _last_trace_id = handle.trace_id
    _state.stack.append(handle)
    if verbose():
        print(f"[obs] {'  ' * handle.depth}> {name}", file=sys.stderr)
    log_event(
        "span_open",
        name=name,
        depth=handle.depth,
        trace_id=handle.trace_id,
        span_id=handle.span_id,
        parent_id=handle.parent_id,
    )
    start = time.perf_counter()
    try:
        yield handle
    finally:
        duration = time.perf_counter() - start
        _state.stack.pop()
        if enabled():
            DEFAULT_REGISTRY.timer(f"span.{name}").observe(duration)
        log_event(
            "span",
            name=name,
            depth=handle.depth,
            duration_seconds=duration,
            start_unix=handle.start_unix,
            trace_id=handle.trace_id,
            span_id=handle.span_id,
            parent_id=handle.parent_id,
            attrs=handle.attrs,
        )
        if verbose():
            extras = " ".join(f"{k}={v}" for k, v in handle.attrs.items())
            line = f"[obs] {'  ' * handle.depth}< {name} {duration:.3f}s"
            print(f"{line} {extras}".rstrip(), file=sys.stderr)
