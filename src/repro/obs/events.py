"""Run-local event bus: the versioned JSONL event schema and its readers.

Every observability sink in this repo ultimately speaks one wire format:
newline-delimited JSON records appended to the file named by ``REPRO_LOG``
(see :mod:`repro.obs` for the on-disk layout, including the per-worker
sidecar files that keep concurrent writers from interleaving).  This
module is the schema's home — the event types, the emit helpers the
harness uses for non-span events, and the read/merge side that
:mod:`repro.obs.aggregate` and the ``repro-stats`` telemetry subcommands
consume.

Event types (every record carries ``v`` = :data:`EVENT_SCHEMA`, ``ts`` =
unix time, and ``pid`` = the emitting process):

``span_open`` / ``span``
    Emitted by :mod:`repro.obs.tracing` at span open and close.  Close
    events carry the full span context (``trace_id`` / ``span_id`` /
    ``parent_id``), ``start_unix``, ``duration_seconds`` and the span's
    attributes — enough to reconstruct the cross-process span tree
    offline.  An open event whose span never closes marks a crash.
``counter``
    A batch of counter deltas: ``{"counters": {name: delta}}`` — e.g. the
    per-shard trace-cache deltas a sweep worker reports.
``store``
    One content-addressed store operation:
    ``{"store": "trace"|"result", "op": "hits"|"misses"|"corrupt"|
    "writes"|"evictions", "n": 1}`` emitted by the trace/result stores.
``retry``
    One failed shard attempt (``shard``, ``attempt``, ``error``).
``checkpoint``
    A shard checkpoint written (``action: "store"``) or reused on resume
    (``action: "load"``).
``classify``
    One campaign scan: ``{"counts": {status: n}, "label": ...}`` — the
    per-class cell totals the campaign scanner derived from a run
    directory (completed / results_missing / failed / partial / missing).
``claim``
    One work-queue claim: ``{"shard", "owner", "stolen"}``.  ``stolen``
    is true when the claim displaced a stale claim left by a dead worker
    (the work-stealing path).
``requeue``
    One failed campaign work unit going back on the queue with its
    attempt budget decremented (``shard``, ``attempt``, ``error``).
``run_summary``
    The parallel executor's (or a campaign worker's) end-of-run summary
    (shard counts, retries, store totals, per-worker loads) — the
    authoritative source for the deterministic counters the regression
    gate compares.

All emit helpers no-op when no event sink is active, so the disabled
path stays free.
"""

from __future__ import annotations

import json
import os
from collections.abc import Mapping

#: Bumped when the JSONL event layout changes incompatibly.  Schema 2
#: adds the campaign-orchestrator types (classify/claim/requeue); all
#: schema-1 records remain valid schema-2 records.
EVENT_SCHEMA = 2

#: Every event type this schema version defines.
EVENT_TYPES = (
    "span_open",
    "span",
    "counter",
    "store",
    "retry",
    "checkpoint",
    "classify",
    "claim",
    "requeue",
    "run_summary",
)

#: Fields required on every record (beyond the type-specific ones).
_COMMON_FIELDS = ("event", "ts", "pid")

#: Type-specific required fields, for :func:`validate_event`.
_REQUIRED = {
    "span_open": ("name", "span_id", "trace_id"),
    "span": ("name", "span_id", "trace_id", "duration_seconds", "start_unix"),
    "counter": ("counters",),
    "store": ("store", "op"),
    "retry": ("shard", "attempt"),
    "checkpoint": ("shard", "action"),
    "classify": ("counts",),
    "claim": ("shard", "owner"),
    "requeue": ("shard", "attempt"),
    "run_summary": ("label", "summary"),
}


# -- emit side -----------------------------------------------------------------


def _emit(event: str, **fields: object) -> None:
    from repro.obs.tracing import log_event  # deferred: tracing imports us

    log_event(event, **fields)


def emit_counter(counters: Mapping[str, int], **fields: object) -> None:
    """Emit one batch of counter deltas (skipped when all zero)."""
    deltas = {name: int(value) for name, value in counters.items() if value}
    if deltas:
        _emit("counter", counters=deltas, **fields)


def emit_store(store: str, op: str, n: int = 1) -> None:
    """Emit one store operation (``store`` is ``"trace"`` or ``"result"``)."""
    _emit("store", store=store, op=op, n=n)


def emit_retry(shard: str, attempt: int, error: str) -> None:
    """Emit one failed shard attempt."""
    _emit("retry", shard=shard, attempt=attempt, error=error)


def emit_checkpoint(shard: str, action: str, **fields: object) -> None:
    """Emit a shard checkpoint event (``action``: ``store`` or ``load``)."""
    _emit("checkpoint", shard=shard, action=action, **fields)


def emit_classify(counts: Mapping[str, int], label: str = "") -> None:
    """Emit one campaign-scan classification (per-class cell counts)."""
    _emit("classify", counts={k: int(v) for k, v in counts.items()}, label=label)


def emit_claim(shard: str, owner: str, stolen: bool = False) -> None:
    """Emit one work-queue claim (``stolen`` marks a work-stealing claim)."""
    _emit("claim", shard=shard, owner=owner, stolen=bool(stolen))


def emit_requeue(shard: str, attempt: int, error: str) -> None:
    """Emit one failed campaign work unit going back on the queue."""
    _emit("requeue", shard=shard, attempt=attempt, error=error)


def emit_run_summary(label: str, summary: Mapping) -> None:
    """Emit the parallel executor's end-of-run summary."""
    _emit("run_summary", label=label, summary=dict(summary))


# -- validation ----------------------------------------------------------------


def validate_event(record: object) -> list[str]:
    """Problems with one parsed event record (empty list = valid).

    Unknown event types are reported but records keep flowing — a newer
    writer's extra types degrade to warnings, not data loss.
    """
    if not isinstance(record, dict):
        return ["record is not a JSON object"]
    problems = []
    for field in _COMMON_FIELDS:
        if field not in record:
            problems.append(f"missing common field {field!r}")
    event = record.get("event")
    if event not in EVENT_TYPES:
        problems.append(f"unknown event type {event!r}")
        return problems
    for field in _REQUIRED[event]:
        if field not in record:
            problems.append(f"{event} event missing field {field!r}")
    return problems


# -- read / merge side ---------------------------------------------------------


def read_event_lines(path: str | os.PathLike) -> list[dict]:
    """Parse one JSONL event file, skipping malformed lines.

    A torn final line (writer killed mid-append) must never poison the
    rest of the log, so parse failures are dropped, not raised.
    """
    records: list[dict] = []
    try:
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if isinstance(record, dict):
                    records.append(record)
    except OSError:
        return []
    return records


def sidecar_paths(path: str | os.PathLike) -> list[str]:
    """Per-PID worker sidecar files of the event log at ``path``.

    Workers append to ``<path>.<pid>`` (see :mod:`repro.obs`); anything
    else sharing the prefix (e.g. ``*.tmp.<pid>`` staging files) is not a
    sidecar and is ignored.
    """
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    base = os.path.basename(path)
    try:
        names = os.listdir(directory)
    except OSError:
        return []
    out = []
    for name in names:
        suffix = name[len(base) + 1 :]
        if name.startswith(base + ".") and suffix.isdigit():
            out.append(os.path.join(directory, name))
    return sorted(out)


def collect_worker_events(sink: str | None = None) -> int:
    """Merge per-PID worker sidecars into the main event log.

    The parallel executor calls this after its pool drains: every sidecar's
    records are appended to ``sink`` (this process's own event sink when
    None), ordered by timestamp, and the sidecar files are removed.
    Returns the number of merged records.
    """
    if sink is None:
        from repro.obs.tracing import event_sink

        sink = event_sink()
    if sink is None:
        return 0
    records: list[dict] = []
    for sidecar in sidecar_paths(sink):
        records.extend(read_event_lines(sidecar))
        try:
            os.unlink(sidecar)
        except OSError:
            pass
    if not records:
        return 0
    records.sort(key=lambda r: r.get("ts", 0.0))
    with open(sink, "a", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record, sort_keys=True, default=str) + "\n")
    return len(records)


def read_run_events(path: str | os.PathLike) -> list[dict]:
    """Every event of one run, timestamp-ordered.

    Reads the main log plus any leftover per-PID sidecars (a crashed run
    never merged them), so aggregation survives an unclean shutdown.
    """
    records = read_event_lines(path)
    for sidecar in sidecar_paths(path):
        records.extend(read_event_lines(sidecar))
    records.sort(key=lambda r: r.get("ts", 0.0))
    return records
