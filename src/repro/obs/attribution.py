"""Per-branch misprediction attribution.

Aggregate misprediction rates say *how much* a predictor misses;
attribution says *where*: mispredictions bucketed per static branch PC,
sorted by contribution, truncated to the top-N hard-to-predict sites.
``measure_accuracy``/``measure_override`` collect this when observability
is enabled (or when asked explicitly), on both the scalar and the batch
engine, and record the top sites into the metrics registry so manifests
and ``repro-stats`` can report them.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Rows kept when an attribution is published to the registry / a manifest.
TOP_SITES = 10


@dataclass(frozen=True)
class BranchSite:
    """Misprediction record for one static branch site."""

    pc: int
    executions: int
    mispredictions: int

    @property
    def misprediction_rate(self) -> float:
        """This site's own misprediction rate."""
        if self.executions == 0:
            return 0.0
        return self.mispredictions / self.executions


@dataclass(frozen=True)
class Attribution:
    """Per-site misprediction breakdown of one measurement."""

    predictor: str
    trace: str
    branches: int
    mispredictions: int
    sites: tuple[BranchSite, ...]  #: sorted by misprediction contribution

    @property
    def key(self) -> str:
        """Registry/manifest key naming the measurement."""
        return f"{self.predictor}/{self.trace}"

    def top(self, n: int = TOP_SITES) -> tuple[BranchSite, ...]:
        """The ``n`` sites contributing the most mispredictions."""
        return self.sites[:n]

    def to_rows(self, n: int = TOP_SITES) -> list[dict]:
        """JSON-serializable top-N rows (the registry/manifest form)."""
        return [
            {
                "pc": site.pc,
                "executions": site.executions,
                "mispredictions": site.mispredictions,
            }
            for site in self.top(n)
        ]

    def render(self, n: int = TOP_SITES) -> str:
        """Aligned text table of the top-N hard-to-predict branches."""
        from repro.harness.report import render_table  # deferred: layering

        rows = [
            (
                f"{site.pc:#x}",
                site.executions,
                site.mispredictions,
                f"{100.0 * site.misprediction_rate:.1f}",
            )
            for site in self.top(n)
        ]
        return render_table(
            f"Hard-to-predict branches: {self.key}",
            ["pc", "executions", "mispredictions", "rate %"],
            rows,
        )


def _sorted_sites(sites: list[BranchSite]) -> tuple[BranchSite, ...]:
    # Deterministic order: contribution first, then hotness, then PC — the
    # same on the scalar and batch collection paths.
    sites.sort(key=lambda s: (-s.mispredictions, -s.executions, s.pc))
    return tuple(sites)


def attribution_from_counts(
    predictor: str,
    trace: str,
    executions: dict[int, int],
    mispredictions: dict[int, int],
) -> Attribution:
    """Build an attribution from scalar-loop per-PC count dicts."""
    sites = [
        BranchSite(
            pc=pc, executions=count, mispredictions=mispredictions.get(pc, 0)
        )
        for pc, count in executions.items()
    ]
    return Attribution(
        predictor=predictor,
        trace=trace,
        branches=sum(executions.values()),
        mispredictions=sum(mispredictions.values()),
        sites=_sorted_sites(sites),
    )


def attribution_from_arrays(predictor: str, trace: str, pcs, wrong) -> Attribution:
    """Build an attribution from batch-engine arrays.

    ``pcs`` are the scored branch PCs, ``wrong`` a same-length boolean
    mask of mispredictions; the breakdown is exactly the scalar one.
    """
    import numpy as np  # deferred: keep the obs package numpy-free otherwise

    pcs = np.asarray(pcs)
    wrong = np.asarray(wrong, dtype=bool)
    unique, counts = np.unique(pcs, return_counts=True)
    executions = dict(zip(unique.tolist(), counts.tolist()))
    wrong_unique, wrong_counts = np.unique(pcs[wrong], return_counts=True)
    mispredicted = dict(zip(wrong_unique.tolist(), wrong_counts.tolist()))
    return attribution_from_counts(predictor, trace, executions, mispredicted)
