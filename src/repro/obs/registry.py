"""Metrics registry: counters, gauges, timers and fixed-bucket histograms.

The registry is the in-process sink for every instrumentation point in the
repo (measurement loops, the overriding wrapper, the cycle simulator, the
batch engine's chunk kernels).  A process-global default instance is shared
by all of them; code records into it only when observability is *enabled*,
so the disabled path costs exactly one boolean/env check per measurement —
never per branch.

Enablement is three-state: ``set_enabled(True/False)`` pins it for the
process (the ``--profile`` flag does this), while the default ``None``
defers to the ``REPRO_PROFILE`` environment variable, so long-running
sweeps can be profiled without touching any call site.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

#: Default fixed bucket upper bounds (seconds) for duration histograms.
DEFAULT_BUCKETS = (0.001, 0.005, 0.02, 0.1, 0.5, 2.0, 10.0)

_TRUTHY_OFF = ("", "0", "false", "no", "off")

_enabled: bool | None = None


def _env_flag(name: str) -> bool:
    return os.environ.get(name, "").strip().lower() not in _TRUTHY_OFF


def enabled() -> bool:
    """True when metrics/attribution collection is on (flag or env)."""
    if _enabled is None:
        return _env_flag("REPRO_PROFILE")
    return _enabled


def set_enabled(value: bool | None) -> None:
    """Pin collection on/off, or ``None`` to defer to ``REPRO_PROFILE``."""
    global _enabled
    _enabled = value


def enabled_override() -> bool | None:
    """The raw tri-state pin (for callers that save/restore it)."""
    return _enabled


@dataclass
class Counter:
    """A monotonically increasing integer metric."""

    name: str
    value: int = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (default 1)."""
        self.value += amount


@dataclass
class Gauge:
    """A point-in-time float metric (last write wins)."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        """Record the current value."""
        self.value = float(value)


@dataclass
class Timer:
    """Aggregated durations: count, total, min, max (seconds)."""

    name: str
    count: int = 0
    total_seconds: float = 0.0
    min_seconds: float = float("inf")
    max_seconds: float = 0.0

    def observe(self, seconds: float) -> None:
        """Record one duration."""
        self.count += 1
        self.total_seconds += seconds
        if seconds < self.min_seconds:
            self.min_seconds = seconds
        if seconds > self.max_seconds:
            self.max_seconds = seconds

    @property
    def mean_seconds(self) -> float:
        """Mean duration (0.0 before any observation)."""
        if self.count == 0:
            return 0.0
        return self.total_seconds / self.count


@dataclass
class Histogram:
    """Fixed-bucket histogram; bucket i counts values <= bounds[i], with an
    implicit overflow bucket above the last bound."""

    name: str
    bounds: tuple[float, ...] = DEFAULT_BUCKETS
    counts: list[int] = field(default_factory=list)
    total: float = 0.0

    def __post_init__(self) -> None:
        if not self.counts:
            self.counts = [0] * (len(self.bounds) + 1)

    def observe(self, value: float) -> None:
        """Record one sample into its bucket."""
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[i] += 1
                break
        else:
            self.counts[-1] += 1
        self.total += value

    @property
    def count(self) -> int:
        """Total samples across all buckets."""
        return sum(self.counts)


class MetricsRegistry:
    """Named metric instruments plus per-branch attribution tables.

    Instruments are create-on-first-use (``registry.counter("x").inc()``),
    so instrumentation points need no setup.  ``snapshot()`` returns a
    JSON-serializable dict (the form embedded in run manifests) and
    ``render()``/``render_snapshot`` print the same data as aligned text
    tables.
    """

    def __init__(self) -> None:
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.timers: dict[str, Timer] = {}
        self.histograms: dict[str, Histogram] = {}
        #: Attribution tables keyed by "predictor/trace": top-N rows of
        #: {pc, executions, mispredictions} dicts.
        self.attributions: dict[str, list[dict]] = {}

    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name``."""
        instrument = self.counters.get(name)
        if instrument is None:
            instrument = self.counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge ``name``."""
        instrument = self.gauges.get(name)
        if instrument is None:
            instrument = self.gauges[name] = Gauge(name)
        return instrument

    def timer(self, name: str) -> Timer:
        """Get or create the timer ``name``."""
        instrument = self.timers.get(name)
        if instrument is None:
            instrument = self.timers[name] = Timer(name)
        return instrument

    def histogram(
        self, name: str, bounds: tuple[float, ...] = DEFAULT_BUCKETS
    ) -> Histogram:
        """Get or create the histogram ``name`` (bounds fixed at creation)."""
        instrument = self.histograms.get(name)
        if instrument is None:
            instrument = self.histograms[name] = Histogram(name, bounds=tuple(bounds))
        return instrument

    def record_attribution(self, key: str, rows: list[dict]) -> None:
        """Store (replace) an attribution table under ``key``."""
        self.attributions[key] = rows

    def reset(self) -> None:
        """Drop every instrument and attribution table."""
        self.counters.clear()
        self.gauges.clear()
        self.timers.clear()
        self.histograms.clear()
        self.attributions.clear()

    def snapshot(self) -> dict:
        """JSON-serializable dump of every instrument."""
        return {
            "counters": {name: c.value for name, c in sorted(self.counters.items())},
            "gauges": {name: g.value for name, g in sorted(self.gauges.items())},
            "timers": {
                name: {
                    "count": t.count,
                    "total_seconds": t.total_seconds,
                    "mean_seconds": t.mean_seconds,
                    "min_seconds": t.min_seconds if t.count else 0.0,
                    "max_seconds": t.max_seconds,
                }
                for name, t in sorted(self.timers.items())
            },
            "histograms": {
                name: {
                    "bounds": list(h.bounds),
                    "counts": list(h.counts),
                    "total": h.total,
                }
                for name, h in sorted(self.histograms.items())
            },
            "attributions": {key: rows for key, rows in sorted(self.attributions.items())},
        }

    def render(self) -> str:
        """The live registry as aligned text tables."""
        return render_snapshot(self.snapshot())


def render_snapshot(snapshot: dict) -> str:
    """Render a :meth:`MetricsRegistry.snapshot` dict as text tables.

    Used both for ``repro-figures --profile`` (live registry) and for
    ``repro-stats show`` (metrics embedded in a manifest).
    """
    from repro.harness.report import render_table  # deferred: layering

    sections: list[str] = []
    counters = snapshot.get("counters") or {}
    if counters:
        sections.append(
            render_table(
                "Counters", ["name", "value"], [(n, v) for n, v in counters.items()]
            )
        )
    gauges = snapshot.get("gauges") or {}
    if gauges:
        sections.append(
            render_table(
                "Gauges", ["name", "value"], [(n, f"{v:g}") for n, v in gauges.items()]
            )
        )
    timers = snapshot.get("timers") or {}
    if timers:
        rows = [
            (
                name,
                t["count"],
                f"{t['total_seconds']:.3f}",
                f"{1e3 * t['mean_seconds']:.2f}",
                f"{1e3 * t['min_seconds']:.2f}",
                f"{1e3 * t['max_seconds']:.2f}",
            )
            for name, t in timers.items()
        ]
        sections.append(
            render_table(
                "Timers",
                ["name", "count", "total s", "mean ms", "min ms", "max ms"],
                rows,
            )
        )
    histograms = snapshot.get("histograms") or {}
    if histograms:
        rows = []
        for name, h in histograms.items():
            labels = [f"<={b:g}" for b in h["bounds"]] + ["inf"]
            cells = " ".join(
                f"{label}:{count}"
                for label, count in zip(labels, h["counts"])
                if count
            )
            rows.append((name, sum(h["counts"]), cells or "-"))
        sections.append(render_table("Histograms", ["name", "count", "buckets"], rows))
    for key, attribution_rows in (snapshot.get("attributions") or {}).items():
        rows = [
            (
                f"{row['pc']:#x}",
                row["executions"],
                row["mispredictions"],
                f"{100.0 * row['mispredictions'] / max(row['executions'], 1):.1f}",
            )
            for row in attribution_rows
        ]
        sections.append(
            render_table(
                f"Hard-to-predict branches: {key}",
                ["pc", "executions", "mispredictions", "rate %"],
                rows,
            )
        )
    if not sections:
        return "(no metrics recorded)"
    return "\n\n".join(sections)
