"""Observability layer: metrics, span tracing, manifests, attribution.

One import gives every layer the same instruments::

    from repro import obs

    with obs.span("figure1.sweep", engine="batch"):
        obs.counter("accuracy.measurements").inc()

Collection is off by default and the disabled path is engineered to cost
nothing measurable: measurement loops check :func:`enabled` once per call
(never per branch), and figure outputs are byte-identical either way.

Environment variables (see DESIGN.md §8 for the event/manifest schema):

* ``REPRO_PROFILE`` — truthy enables metric + attribution collection
  (``repro-figures --profile`` pins it for the process);
* ``REPRO_LOG`` — path receiving structured JSONL span events;
* ``REPRO_VERBOSE`` — truthy mirrors span open/close lines on stderr.
"""

from __future__ import annotations

from repro.obs.registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
    enabled,
    enabled_override,
    render_snapshot,
    set_enabled,
)
from repro.obs.tracing import (
    default_registry,
    log_event,
    log_path,
    set_verbose,
    span,
    tracing_active,
    verbose,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Timer",
    "counter",
    "default_registry",
    "enabled",
    "enabled_override",
    "gauge",
    "histogram",
    "log_event",
    "log_path",
    "registry",
    "render_snapshot",
    "reset",
    "set_enabled",
    "set_verbose",
    "span",
    "timer",
    "tracing_active",
    "verbose",
]


def registry() -> MetricsRegistry:
    """The process-global default registry."""
    return default_registry()


def counter(name: str) -> Counter:
    """Get/create a counter on the default registry."""
    return default_registry().counter(name)


def gauge(name: str) -> Gauge:
    """Get/create a gauge on the default registry."""
    return default_registry().gauge(name)


def timer(name: str) -> Timer:
    """Get/create a timer on the default registry."""
    return default_registry().timer(name)


def histogram(name: str, bounds: tuple[float, ...] = DEFAULT_BUCKETS) -> Histogram:
    """Get/create a fixed-bucket histogram on the default registry."""
    return default_registry().histogram(name, bounds)


def reset() -> None:
    """Clear every instrument on the default registry."""
    default_registry().reset()
