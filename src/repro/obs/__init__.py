"""Observability layer: metrics, distributed span tracing, manifests,
run-event bus, attribution and campaign telemetry.

One import gives every layer the same instruments::

    from repro import obs

    with obs.span("figure1.sweep", engine="batch"):
        obs.counter("accuracy.measurements").inc()

Collection is off by default and the disabled path is engineered to cost
nothing measurable: measurement loops check :func:`enabled` once per call
(never per branch), and figure outputs are byte-identical either way.

Environment variables (see DESIGN.md §8/§13 for the event/manifest schema):

* ``REPRO_PROFILE`` — truthy enables metric + attribution collection
  (``repro-figures --profile`` pins it for the process);
* ``REPRO_LOG`` — path receiving structured JSONL run events;
* ``REPRO_VERBOSE`` — truthy mirrors span open/close lines on stderr.

Event-log layout (``REPRO_LOG=<dir>/events.jsonl``):

* The **owning process** appends to ``events.jsonl`` itself.  Ownership is
  recorded in the ``REPRO_LOG_OWNER_PID`` environment variable by
  :func:`claim_log_ownership` (the parallel executor and the figures CLI
  both claim before any fan-out).
* Every **other process** that inherits ``REPRO_LOG`` — a process-pool
  sweep worker, chiefly — sees a foreign owner PID and appends to its own
  per-PID sidecar ``events.jsonl.<pid>`` instead, so concurrent writers
  never interleave records inside one file.
* When a parallel run finishes, the parent merges all worker sidecars back
  into the main file, timestamp-ordered
  (:func:`repro.obs.events.collect_worker_events`), and deletes them.
  Leftover sidecars from a crashed run are still read by
  :func:`repro.obs.events.read_run_events`, so telemetry survives an
  unclean shutdown.  Pointing ``REPRO_LOG`` inside ``--run-dir`` keeps the
  whole trail under the run directory.

Every span carries a ``trace_id``/``span_id``/``parent_id`` context;
workers adopt the parent's context (:func:`adopt_context`), so
:mod:`repro.obs.aggregate` reconstructs one cross-process span tree per
run and ``repro-stats timeline | flame | critical-path | stores | regress``
render it.
"""

from __future__ import annotations

from repro.obs.registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
    enabled,
    enabled_override,
    render_snapshot,
    set_enabled,
)
from repro.obs.tracing import (
    adopt_context,
    claim_log_ownership,
    current_context,
    default_registry,
    event_sink,
    last_trace_id,
    log_event,
    log_path,
    set_verbose,
    span,
    tracing_active,
    verbose,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Timer",
    "adopt_context",
    "claim_log_ownership",
    "counter",
    "current_context",
    "default_registry",
    "enabled",
    "enabled_override",
    "event_sink",
    "gauge",
    "histogram",
    "last_trace_id",
    "log_event",
    "log_path",
    "registry",
    "render_snapshot",
    "reset",
    "set_enabled",
    "set_verbose",
    "span",
    "timer",
    "tracing_active",
    "verbose",
]


def registry() -> MetricsRegistry:
    """The process-global default registry."""
    return default_registry()


def counter(name: str) -> Counter:
    """Get/create a counter on the default registry."""
    return default_registry().counter(name)


def gauge(name: str) -> Gauge:
    """Get/create a gauge on the default registry."""
    return default_registry().gauge(name)


def timer(name: str) -> Timer:
    """Get/create a timer on the default registry."""
    return default_registry().timer(name)


def histogram(name: str, bounds: tuple[float, ...] = DEFAULT_BUCKETS) -> Histogram:
    """Get/create a fixed-bucket histogram on the default registry."""
    return default_registry().histogram(name, bounds)


def reset() -> None:
    """Clear every instrument on the default registry."""
    default_registry().reset()
