"""Morris-Pratt / Knuth-Morris-Pratt string-matching workloads.

Nicaud, Pivoteau & Vialette ("Branch Prediction Analysis of Morris-Pratt
and Knuth-Morris-Pratt Algorithms") observe that the comparison branch of
MP/KMP over a random text is one of the few real workloads whose expected
misprediction rate has *closed-form* analysis: the matcher's automaton
state is a small Markov chain, and every predictor-relevant statistic is
an exact function of that chain.  This module emits those workloads as
ordinary traces; :mod:`repro.workloads.oracle` computes the matching
analytic expectations, giving the whole predictor + trace + sweep stack a
ground-truth gate that no golden file can provide.

The workload is a *real execution*, not a synthetic stand-in: a
:class:`MatcherPredicate` steps the actual MP/KMP inner loop (pattern
state, failure links, text characters drawn from the profile's source) and
the standard :class:`~repro.workloads.program.ProgramExecutor` runs it as
the sole conditional branch of a tiny laid-out program.  One executed
``main`` iteration is one character comparison; the emitted trace is the
comparison-branch stream the paper analyzes.  Keeping the comparison as
the *only* conditional site is deliberate: it removes table aliasing and
history pollution from the measurement, so the oracle's per-state
decomposition applies exactly (DESIGN.md, "oracle validation").

Profiles are frozen dataclasses, so the content-addressed trace store
digests them field-by-field like any SPEC stand-in: a trace is keyed by
(algorithm, pattern, source, seed, fault bias, ...) and warm-starts
byte-identically across processes.

``fault_bias`` is the suite's fault-injection hook: with probability
``fault_bias`` the *observed* branch outcome is flipped (the matcher state
advances on the true comparison), producing a deliberately-biased trace
that must trip the oracle gate.  Because the bias lives in the profile, a
biased trace gets its own store digest — it can never poison a clean key.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ConfigurationError
from repro.workloads.cfg import (
    Function,
    If,
    Program,
    StraightCode,
    layout_program,
)
from repro.workloads.predicates import Predicate, ProgramState
from repro.workloads.program import MemoryConfig

ALGORITHMS = ("mp", "kmp")
SOURCE_KINDS = ("uniform", "bernoulli")


def pattern_symbols(pattern: str) -> tuple[int, ...]:
    """The pattern as 0-based symbol indices (``a`` -> 0, ``b`` -> 1, ...)."""
    if not pattern:
        raise ConfigurationError("pattern must be non-empty")
    symbols = []
    for letter in pattern:
        index = ord(letter) - ord("a")
        if index < 0 or index >= 26:
            raise ConfigurationError(
                f"pattern letters must be lowercase a-z, got {letter!r}"
            )
        symbols.append(index)
    return tuple(symbols)


def border_table(pattern: str) -> list[int]:
    """``border[j]`` = length of the longest proper border of ``pattern[:j]``
    for j in 0..m (``border[0]`` and ``border[1]`` are 0)."""
    symbols = pattern_symbols(pattern)
    m = len(symbols)
    border = [0] * (m + 1)
    k = 0
    for j in range(1, m):
        while k > 0 and symbols[j] != symbols[k]:
            k = border[k]
        if symbols[j] == symbols[k]:
            k += 1
        border[j + 1] = k
    return border


def failure_table(pattern: str, algorithm: str) -> list[int]:
    """Mismatch transition per state j (0..m-1).

    ``fail[j]`` is the state that re-examines the *same* character, or
    ``-1`` when the character should be abandoned (consume, restart at 0).
    Morris-Pratt uses the plain border; KMP uses the strict border (skip
    borders whose next pattern character equals the one that just
    mismatched — they would mismatch again).  ``fail[0]`` is ``-1`` for
    both: a mismatch at state 0 always consumes the character.
    """
    if algorithm not in ALGORITHMS:
        raise ConfigurationError(
            f"algorithm must be one of {ALGORITHMS}, got {algorithm!r}"
        )
    symbols = pattern_symbols(pattern)
    border = border_table(pattern)
    m = len(symbols)
    fail = [-1] * m
    if algorithm == "mp":
        for j in range(1, m):
            fail[j] = border[j]
        return fail
    # KMP strict borders: computed in increasing j, so fail[k] for k < j is
    # already strict when consulted.
    for j in range(1, m):
        k = border[j]
        if symbols[k] != symbols[j]:
            fail[j] = k
        else:
            fail[j] = fail[k]
    return fail


def restart_state(pattern: str) -> int:
    """State after reporting a full match (both algorithms restart at the
    border of the whole pattern)."""
    return border_table(pattern)[len(pattern)]


class MatcherPredicate(Predicate):
    """The MP/KMP comparison branch, stepped one comparison per evaluation.

    Holds the live matcher state (pattern position ``j``, the pending text
    character when the last mismatch retained it) and draws fresh
    characters from the executor's seeded stream — the same trace seed
    reproduces the same text, hence the same trace bytes.
    """

    def __init__(
        self,
        pattern: str,
        algorithm: str,
        source_kind: str,
        alphabet: int,
        bernoulli_p: float,
        fault_bias: float = 0.0,
    ) -> None:
        self.symbols = pattern_symbols(pattern)
        self.fail = failure_table(pattern, algorithm)
        self.restart = restart_state(pattern)
        self.algorithm = algorithm
        self.source_kind = source_kind
        self.alphabet = alphabet
        self.bernoulli_p = bernoulli_p
        self.fault_bias = fault_bias
        self._j = 0
        self._char: int | None = None

    def _draw(self, state: ProgramState) -> int:
        if self.source_kind == "bernoulli":
            return 0 if state.rng.random() < self.bernoulli_p else 1
        return int(state.rng.integers(self.alphabet))

    def evaluate(self, state: ProgramState) -> bool:
        """One comparison: True (the then-path) on a character match."""
        if self._char is None:
            self._char = self._draw(state)
        match = self._char == self.symbols[self._j]
        if match:
            self._char = None  # consumed
            self._j += 1
            if self._j == len(self.symbols):
                self._j = self.restart  # full match: continue searching
        else:
            link = self.fail[self._j]
            if link < 0:
                self._char = None  # abandon the character
                self._j = 0
            else:
                self._j = link  # re-examine the same character
        if self.fault_bias and state.rng.random() < self.fault_bias:
            match = not match  # fault injection: observed outcome only
        return match

    def describe(self) -> str:
        return (
            f"{self.algorithm}(pattern="
            + "".join(chr(ord("a") + s) for s in self.symbols)
            + f", source={self.source_kind})"
        )


@dataclass(frozen=True)
class StringMatchProfile:
    """Everything that determines one string-matching trace.

    A frozen dataclass so the trace store content-addresses it exactly
    like a :class:`~repro.workloads.synth.WorkloadProfile`; ``kind``
    disambiguates the digest namespace from synthesized profiles.
    """

    name: str
    pattern: str = "ab"
    algorithm: str = "mp"  # "mp" | "kmp"
    source_kind: str = "uniform"  # "uniform" | "bernoulli"
    alphabet: int = 2  # uniform source: symbol count
    bernoulli_p: float = 0.5  # bernoulli source: P(symbol 'a')
    seed: int = 1
    fault_bias: float = 0.0  # flip the observed outcome with this probability
    kind: str = "stringmatch"
    #: executor personality (harness compatibility; no memory ops are
    #: emitted, and ``ilp`` only matters if someone cycle-simulates this).
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    hidden_bits: int = 8
    ilp: float = 2.8

    def __post_init__(self) -> None:
        if self.algorithm not in ALGORITHMS:
            raise ConfigurationError(
                f"algorithm must be one of {ALGORITHMS}, got {self.algorithm!r}"
            )
        if self.source_kind not in SOURCE_KINDS:
            raise ConfigurationError(
                f"source_kind must be one of {SOURCE_KINDS}, got {self.source_kind!r}"
            )
        if self.alphabet < 2 or self.alphabet > 26:
            raise ConfigurationError(
                f"alphabet size must be in [2, 26], got {self.alphabet}"
            )
        if self.source_kind == "bernoulli":
            if self.alphabet != 2:
                raise ConfigurationError("a bernoulli source is binary (alphabet=2)")
            if not 0.0 < self.bernoulli_p < 1.0:
                raise ConfigurationError(
                    f"bernoulli_p must be in (0, 1), got {self.bernoulli_p}"
                )
        if not 0.0 <= self.fault_bias <= 1.0:
            raise ConfigurationError(
                f"fault_bias must be in [0, 1], got {self.fault_bias}"
            )
        symbols = pattern_symbols(self.pattern)
        if max(symbols) >= self.alphabet:
            raise ConfigurationError(
                f"pattern {self.pattern!r} uses letters outside its "
                f"{self.alphabet}-symbol alphabet"
            )

    def source_probabilities(self) -> tuple[float, ...]:
        """P(symbol) per alphabet symbol — the oracle's source model."""
        if self.source_kind == "bernoulli":
            return (self.bernoulli_p, 1.0 - self.bernoulli_p)
        return tuple(1.0 / self.alphabet for _ in range(self.alphabet))


def build_stringmatch_program(profile: StringMatchProfile) -> Program:
    """The matcher as a laid-out program: one comparison per main iteration.

    The ``If`` holds the live matcher; the then/else bodies are the match
    and failure-link bookkeeping.  The comparison is the program's only
    conditional branch — the then-path's jump over the else side and the
    main wrap are unconditional, so they never touch predictor history.
    """
    predicate = MatcherPredicate(
        pattern=profile.pattern,
        algorithm=profile.algorithm,
        source_kind=profile.source_kind,
        alphabet=profile.alphabet,
        bernoulli_p=profile.bernoulli_p,
        fault_bias=profile.fault_bias,
    )
    main = Function(
        name="main",
        body=[
            StraightCode(instructions=2),  # load text char / loop bookkeeping
            If(
                predicate=predicate,
                then_body=[StraightCode(instructions=2)],  # advance i and j
                else_body=[StraightCode(instructions=2)],  # follow failure link
            ),
        ],
    )
    return layout_program(Program(name=profile.name, functions=[main]))


def stringmatch_profiles() -> dict[str, StringMatchProfile]:
    """The registered oracle kernels: MP and KMP over a small grid of
    (pattern, source) cells chosen so every predictor class the oracle
    models is exercised — balanced and biased sources, self-overlapping
    and period-2 patterns (where MP and KMP genuinely differ)."""
    cells = [
        ("ab", "uniform", 2, 0.5),
        ("aab", "bernoulli", 2, 0.7),
        ("aaaa", "bernoulli", 2, 0.7),
        ("abab", "uniform", 2, 0.5),
    ]
    profiles: dict[str, StringMatchProfile] = {}
    for algorithm in ALGORITHMS:
        for pattern, source_kind, alphabet, p in cells:
            tag = f"{source_kind[0]}{str(p).replace('0.', '')}" if source_kind == "bernoulli" else f"u{alphabet}"
            name = f"{algorithm}_{pattern}_{tag}"
            profiles[name] = StringMatchProfile(
                name=name,
                pattern=pattern,
                algorithm=algorithm,
                source_kind=source_kind,
                alphabet=alphabet,
                bernoulli_p=p,
                seed=11,
            )
    return profiles
