"""SPECint 2000 stand-in workload profiles.

The paper evaluates on the 12 SPEC 2000 integer benchmarks.  We cannot ship
SPEC, so each benchmark gets a synthetic profile whose *predictor-relevant*
personality is modelled on the benchmark's published character: static
branch footprint, branch bias mix, history-correlation structure, loop
behaviour, working-set size and exploitable ILP.  DESIGN.md records this
substitution; the accuracy/IPC *orderings* the paper reports emerge from
these structural properties, not from magic constants.

Rough difficulty map (64KB-budget misprediction ballparks from the paper's
Figure 6 and the branch-prediction literature):

* easy   (~1-4%):  eon, vortex, gap, perlbmk — biased branches dominate;
* medium (~4-8%):  gcc, gzip, parser, crafty, bzip2 — mixed correlation;
* hard   (~8-14%): mcf, vpr, twolf — data-dependent, noisy branches.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from functools import lru_cache

from repro import obs
from repro.common.errors import ConfigurationError
from repro.workloads.program import MemoryConfig, ProgramExecutor
from repro.workloads.store import ColumnarTrace, active_store
from repro.workloads.synth import PredicateMix, WorkloadProfile, build_program
from repro.workloads.trace import Trace

#: Average dynamic instructions per conditional branch in SPECint-like code;
#: used to convert a requested branch count into an instruction budget.
INSTRUCTIONS_PER_BRANCH = 6


def _profiles() -> dict[str, WorkloadProfile]:
    kib = 1024
    mib = 1024 * 1024
    return {
        # -- compression: moderate branches, modest working sets --------------
        "gzip": WorkloadProfile(
            name="gzip",
            seed=164,
            functions=5,
            predicate_mix=PredicateMix(
                biased=0.5, short_parity=0.26, long_parity=0.06, pattern=0.08, hidden=0.10
            ),
            hard_noise=0.05,
            bias_strength=0.985,
            loop_trip_mean=18.0,
            memory=MemoryConfig(working_set_bytes=2 * mib, array_bytes=8 * kib),
            ilp=3.0,
        ),
        "bzip2": WorkloadProfile(
            name="bzip2",
            seed=256,
            functions=5,
            predicate_mix=PredicateMix(
                biased=0.48, short_parity=0.26, long_parity=0.08, pattern=0.08, hidden=0.10
            ),
            hard_noise=0.07,
            bias_strength=0.985,
            loop_trip_mean=24.0,
            loop_trip_fixed_fraction=0.75,
            memory=MemoryConfig(working_set_bytes=4 * mib, array_bytes=16 * kib),
            ilp=2.9,
        ),
        # -- place & route / layout: notoriously hard branches ----------------
        "vpr": WorkloadProfile(
            name="vpr",
            seed=175,
            functions=7,
            predicate_mix=PredicateMix(
                biased=0.34, short_parity=0.24, long_parity=0.08, pattern=0.04, hidden=0.200
            ),
            hard_noise=0.10,
            easy_noise=0.015,
            bias_strength=0.992,
            memory=MemoryConfig(working_set_bytes=4 * mib, array_bytes=8 * kib),
            ilp=2.5,
        ),
        "twolf": WorkloadProfile(
            name="twolf",
            seed=300,
            functions=7,
            predicate_mix=PredicateMix(
                biased=0.29, short_parity=0.24, long_parity=0.10, pattern=0.03, hidden=0.22
            ),
            hard_noise=0.12,
            easy_noise=0.02,
            bias_strength=0.99,
            memory=MemoryConfig(working_set_bytes=2 * mib, array_bytes=8 * kib),
            ilp=2.4,
        ),
        # -- compilers / interpreters: huge static footprint ------------------
        "gcc": WorkloadProfile(
            name="gcc",
            seed=176,
            functions=24,
            call_probability=0.2,
            predicate_mix=PredicateMix(
                biased=0.52, short_parity=0.26, long_parity=0.06, pattern=0.06, hidden=0.10
            ),
            hard_noise=0.05,
            bias_strength=0.985,
            memory=MemoryConfig(working_set_bytes=8 * mib, array_bytes=8 * kib),
            ilp=2.6,
        ),
        "perlbmk": WorkloadProfile(
            name="perlbmk",
            seed=253,
            functions=18,
            call_probability=0.24,
            predicate_mix=PredicateMix(
                biased=0.58, short_parity=0.24, long_parity=0.05, pattern=0.06, hidden=0.07
            ),
            hard_noise=0.07,
            bias_strength=0.985,
            memory=MemoryConfig(working_set_bytes=4 * mib, array_bytes=8 * kib),
            ilp=2.8,
        ),
        # -- graph / pointer codes ---------------------------------------------
        "mcf": WorkloadProfile(
            name="mcf",
            seed=181,
            functions=4,
            predicate_mix=PredicateMix(
                biased=0.32, short_parity=0.22, long_parity=0.12, pattern=0.02, hidden=0.20
            ),
            hard_noise=0.10,
            easy_noise=0.015,
            bias_strength=0.992,
            random_access_fraction=0.3,
            stack_access_fraction=0.15,
            load_density=0.28,
            memory=MemoryConfig(working_set_bytes=64 * mib, array_bytes=32 * kib),
            ilp=1.9,
        ),
        "parser": WorkloadProfile(
            name="parser",
            seed=197,
            functions=12,
            call_probability=0.2,
            predicate_mix=PredicateMix(
                biased=0.46, short_parity=0.28, long_parity=0.08, pattern=0.06, hidden=0.12
            ),
            hard_noise=0.07,
            bias_strength=0.985,
            memory=MemoryConfig(working_set_bytes=8 * mib, array_bytes=8 * kib),
            ilp=2.5,
        ),
        # -- games / search -----------------------------------------------------
        "crafty": WorkloadProfile(
            name="crafty",
            seed=186,
            functions=10,
            predicate_mix=PredicateMix(
                biased=0.41, short_parity=0.30, long_parity=0.10, pattern=0.05, hidden=0.14
            ),
            hard_noise=0.07,
            bias_strength=0.98,
            loop_trip_mean=10.0,
            memory=MemoryConfig(working_set_bytes=2 * mib, array_bytes=8 * kib),
            ilp=3.1,
        ),
        "eon": WorkloadProfile(
            name="eon",
            seed=252,
            functions=14,
            call_probability=0.26,
            predicate_mix=PredicateMix(
                biased=0.665, short_parity=0.20, long_parity=0.03, pattern=0.065, hidden=0.04
            ),
            hard_noise=0.04,
            easy_noise=0.006,
            bias_strength=0.99,
            loop_trip_fixed_fraction=0.8,
            memory=MemoryConfig(working_set_bytes=1 * mib, array_bytes=4 * kib),
            ilp=3.3,
        ),
        # -- databases / object stores ------------------------------------------
        "gap": WorkloadProfile(
            name="gap",
            seed=254,
            functions=10,
            predicate_mix=PredicateMix(
                biased=0.6, short_parity=0.22, long_parity=0.05, pattern=0.06, hidden=0.07
            ),
            hard_noise=0.05,
            bias_strength=0.99,
            memory=MemoryConfig(working_set_bytes=8 * mib, array_bytes=16 * kib),
            ilp=2.9,
        ),
        "vortex": WorkloadProfile(
            name="vortex",
            seed=255,
            functions=16,
            call_probability=0.24,
            predicate_mix=PredicateMix(
                biased=0.68, short_parity=0.20, long_parity=0.03, pattern=0.06, hidden=0.03
            ),
            hard_noise=0.04,
            easy_noise=0.006,
            bias_strength=0.992,
            loop_trip_fixed_fraction=0.8,
            memory=MemoryConfig(working_set_bytes=8 * mib, array_bytes=8 * kib),
            ilp=3.2,
        ),
    }


@lru_cache(maxsize=1)
def spec2000_profiles() -> dict[str, WorkloadProfile]:
    """The 12 SPECint 2000 stand-in profiles, keyed by benchmark name."""
    return _profiles()


def spec2000_names() -> list[str]:
    """Benchmark names in the paper's customary order."""
    return [
        "gzip",
        "vpr",
        "gcc",
        "mcf",
        "crafty",
        "parser",
        "eon",
        "perlbmk",
        "gap",
        "vortex",
        "bzip2",
        "twolf",
    ]


def get_profile(name: str):
    """Profile for workload ``name`` (ConfigurationError if unknown).

    Resolution goes through the workload catalog, so any registered
    workload — SPEC stand-in, scenario profile, string-matching oracle
    kernel, or an externally registered one — is addressable by every
    harness consumer that funnels through this call (sweeps, the parallel
    executor's workers, trace/result stores, figure configs).
    """
    from repro.workloads.catalog import get_workload

    return get_workload(name).profile


#: Default capacity of the per-process trace cache (entries).
TRACE_CACHE_CAPACITY = 32

_trace_cache: OrderedDict[
    tuple[str, int, int, str | None], Trace | ColumnarTrace
] = OrderedDict()
_trace_cache_stats = {"hits": 0, "misses": 0, "evictions": 0}

_executor_runs = 0


def executor_run_count() -> int:
    """Times this process invoked ``ProgramExecutor`` to generate a trace.

    A warm-store run of a whole figure grid should leave this at zero —
    the acceptance check :mod:`scripts/trace_store_check` asserts exactly
    that (via the mirrored ``workloads.executor_runs`` obs counter)."""
    return _executor_runs


def reset_executor_runs() -> None:
    """Zero the executor-run counter (start of a measurement window)."""
    global _executor_runs
    _executor_runs = 0


def trace_cache_capacity() -> int:
    """Trace-cache capacity: ``REPRO_TRACE_CACHE`` override or the default.

    Parallel sweep workers each own one of these caches, so the capacity
    bounds *per-worker* memory, not a shared pool.
    """
    raw = os.environ.get("REPRO_TRACE_CACHE")
    if raw is None or not raw.strip():
        return TRACE_CACHE_CAPACITY
    try:
        value = int(raw)
    except ValueError:
        raise ConfigurationError(
            f"REPRO_TRACE_CACHE must be an integer >= 1, got {raw!r}"
        ) from None
    if value < 1:
        raise ConfigurationError(f"REPRO_TRACE_CACHE must be >= 1, got {value}")
    return value


def trace_cache_info() -> dict:
    """Hit/miss/eviction counts and current occupancy of the trace cache.

    The parallel sweep executor snapshots this around each shard so run
    manifests can report how often workers re-decoded a benchmark trace.
    """
    return {
        "hits": _trace_cache_stats["hits"],
        "misses": _trace_cache_stats["misses"],
        "evictions": _trace_cache_stats["evictions"],
        "entries": len(_trace_cache),
        "capacity": trace_cache_capacity(),
    }


def clear_trace_cache() -> None:
    """Drop every cached trace and zero the cache statistics."""
    _trace_cache.clear()
    for key in _trace_cache_stats:
        _trace_cache_stats[key] = 0


def _builder_for(profile):
    """The program builder for ``profile``: its catalog entry's builder
    when the profile is the registered one, else a dispatch on profile
    type (covers ad-hoc profiles such as fault-biased oracle variants)."""
    from repro.workloads.catalog import get_workload, has_workload
    from repro.workloads.stringmatch import (
        StringMatchProfile,
        build_stringmatch_program,
    )

    if has_workload(profile.name):
        spec = get_workload(profile.name)
        if spec.profile == profile:
            return spec.build
    if isinstance(profile, StringMatchProfile):
        return build_stringmatch_program
    if isinstance(profile, WorkloadProfile):
        return build_program
    raise ConfigurationError(
        f"no program builder for profile type {type(profile).__name__}; "
        "register it in the workload catalog"
    )


def _generate_trace(profile, instructions: int, seed: int) -> Trace:
    """Build and execute the workload program — the expensive path every
    cache layer exists to avoid."""
    global _executor_runs
    _executor_runs += 1
    if obs.enabled():
        obs.counter("workloads.executor_runs").inc()
    program = _builder_for(profile)(profile)
    executor = ProgramExecutor(
        program, seed=seed, memory=profile.memory, hidden_bits=profile.hidden_bits
    )
    return executor.run(instructions)


def _resolve_trace(
    name: str, instructions: int, seed: int, store
) -> Trace | ColumnarTrace:
    """Produce one trace via the on-disk store when enabled, else generate.

    With a store active both the cold (generate+persist) and warm (load)
    paths return a :class:`ColumnarTrace`, so downstream results are
    byte-identical regardless of which path ran."""
    profile = get_profile(name)
    if store is not None:
        return store.get_or_generate(
            profile,
            instructions,
            seed,
            lambda: _generate_trace(profile, instructions, seed),
        )
    return _generate_trace(profile, instructions, seed)


def _cached_trace(name: str, instructions: int, seed: int) -> Trace | ColumnarTrace:
    """LRU-cached trace lookup; the on-disk trace store (when enabled)
    sits under this layer.

    The key includes the active store root (or ``None``): the store
    changes the trace *representation* (``ColumnarTrace`` vs ``Trace``
    blocks), so toggling ``REPRO_TRACE_STORE`` mid-process must never
    serve an entry cached under the other configuration — generator-backed
    oracle workloads rely on this to warm-start byte-identically."""
    store = active_store()
    key = (name, instructions, seed, None if store is None else str(store.root))
    cached = _trace_cache.get(key)
    if cached is not None:
        _trace_cache_stats["hits"] += 1
        _trace_cache.move_to_end(key)
        return cached
    _trace_cache_stats["misses"] += 1
    trace = _resolve_trace(name, instructions, seed, store)
    _trace_cache[key] = trace
    capacity = trace_cache_capacity()
    while len(_trace_cache) > capacity:
        _trace_cache.popitem(last=False)
        _trace_cache_stats["evictions"] += 1
    return trace


def spec2000_trace(
    name: str,
    instructions: int | None = None,
    branches: int | None = None,
    seed: int = 1,
) -> Trace | ColumnarTrace:
    """Dynamic trace for benchmark ``name``.

    Give either an instruction budget or an (approximate) conditional-branch
    budget; traces are cached in-process, so replaying the same benchmark
    across many predictors costs one execution.  When ``REPRO_TRACE_STORE``
    names a directory, generation additionally persists through the
    content-addressed store and warm runs load a :class:`ColumnarTrace`
    from disk instead of executing anything.
    """
    if (instructions is None) == (branches is None):
        raise ConfigurationError("specify exactly one of instructions= or branches=")
    if instructions is None:
        instructions = branches * INSTRUCTIONS_PER_BRANCH
    if instructions < 100:
        raise ConfigurationError("trace must cover at least 100 instructions")
    return _cached_trace(name, instructions, seed)


def warm_trace_store(
    benchmarks: list[str] | None = None,
    instruction_counts: list[int] | None = None,
    seed: int = 1,
) -> dict:
    """Prewarm the active trace store for the given grid.

    Bypasses the in-process LRU on purpose: the point is to guarantee the
    *disk* entries exist (for other processes and future runs), and a
    parent that pre-populated its own memory cache would hide store hits
    from forked sweep workers.  Returns a small report of what was warmed.

    Raises :class:`ConfigurationError` when no store is configured.
    """
    from repro.harness.scale import resolved_config

    store = active_store()
    if store is None:
        raise ConfigurationError(
            "no trace store configured (set REPRO_TRACE_STORE or pass --trace-store)"
        )
    config = resolved_config()
    if benchmarks is None:
        benchmarks = list(config["benchmarks"])
    if instruction_counts is None:
        # Both figure-grid trace lengths at the current REPRO_SCALE.
        instruction_counts = sorted(
            {int(config["accuracy_instructions"]), int(config["ipc_instructions"])}
        )
    warmed = []
    generated = 0
    for name in benchmarks:
        profile = get_profile(name)
        for instructions in instruction_counts:
            if store.load(profile, instructions, seed) is None:
                store.get_or_generate(
                    profile,
                    instructions,
                    seed,
                    lambda p=profile, n=instructions: _generate_trace(p, n, seed),
                )
                generated += 1
            warmed.append({"benchmark": name, "instructions": int(instructions)})
    return {
        "store": str(store.root),
        "entries": warmed,
        "generated": generated,
        "already_present": len(warmed) - generated,
    }
