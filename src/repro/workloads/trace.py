"""Dynamic-trace data model.

The workload substrate executes synthetic programs and emits traces at
*fetch-block* granularity: a run of straight-line instructions optionally
terminated by a branch.  This is the granularity the cycle simulator fetches
at, and it keeps hundred-thousand-instruction traces cheap to store and
replay (every experiment replays the same trace across many predictors).

Only conditional branches matter to direction predictors; the accuracy
harness iterates ``Trace.conditional_branches()`` while the cycle simulator
consumes whole blocks (instruction counts, memory addresses, branch kind and
target).
"""

from __future__ import annotations

import enum
from collections.abc import Iterator
from dataclasses import dataclass, field

from repro.common.errors import TraceError


class BranchKind(enum.IntEnum):
    """Terminator of a fetch block."""

    NONE = 0  # block ends for capacity reasons (no branch)
    CONDITIONAL = 1
    UNCONDITIONAL = 2
    CALL = 3
    RETURN = 4


@dataclass(frozen=True, slots=True)
class Block:
    """One dynamic fetch block.

    ``loads``/``stores`` are the memory addresses touched by the block, in
    program order; ``pc`` is the address of the first instruction.  For a
    block ending in a branch, ``branch_pc`` is the branch instruction's
    address, ``taken`` its resolved direction and ``target`` the address
    executed next (used both as the BTB's payload and as the next block's
    expected ``pc``).
    """

    pc: int
    instructions: int
    loads: tuple[int, ...] = ()
    stores: tuple[int, ...] = ()
    branch_kind: BranchKind = BranchKind.NONE
    branch_pc: int = 0
    taken: bool = False
    target: int = 0

    def __post_init__(self) -> None:
        if self.instructions < 1:
            raise TraceError(f"block at {self.pc:#x} has no instructions")
        if self.branch_kind != BranchKind.NONE and self.branch_pc == 0:
            raise TraceError(f"block at {self.pc:#x} has a branch without a branch_pc")

    @property
    def has_conditional(self) -> bool:
        """True when the block ends in a conditional branch."""
        return self.branch_kind == BranchKind.CONDITIONAL


@dataclass
class Trace:
    """A replayable dynamic trace: blocks plus summary statistics."""

    name: str
    blocks: list[Block] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.blocks)

    def __iter__(self) -> Iterator[Block]:
        return iter(self.blocks)

    @property
    def instruction_count(self) -> int:
        """Total dynamic instructions in the trace."""
        return sum(block.instructions for block in self.blocks)

    @property
    def conditional_branch_count(self) -> int:
        """Total dynamic conditional branches in the trace."""
        return sum(1 for block in self.blocks if block.has_conditional)

    @property
    def taken_rate(self) -> float:
        """Fraction of conditional branches that are taken."""
        branches = 0
        taken = 0
        for block in self.blocks:
            if block.has_conditional:
                branches += 1
                taken += int(block.taken)
        if branches == 0:
            return 0.0
        return taken / branches

    def conditional_branches(self) -> Iterator[tuple[int, bool]]:
        """Yield (branch_pc, taken) for every conditional branch, in order."""
        for block in self.blocks:
            if block.has_conditional:
                yield block.branch_pc, block.taken

    def branch_arrays(self) -> tuple["np.ndarray", "np.ndarray"]:
        """The conditional-branch stream as ``(pcs, takens)`` arrays.

        The batch engine consumes this form; arrays are cached per trace
        (keyed on block count) so repeated sweeps over the same cached
        trace pay the extraction once.
        """
        import numpy as np

        cached = getattr(self, "_branch_arrays", None)
        if cached is not None and cached[0] == len(self.blocks):
            return cached[1], cached[2]
        pairs = list(self.conditional_branches())
        pcs = np.fromiter((pc for pc, _ in pairs), dtype=np.int64, count=len(pairs))
        takens = np.fromiter((t for _, t in pairs), dtype=bool, count=len(pairs))
        self._branch_arrays = (len(self.blocks), pcs, takens)
        return pcs, takens

    def static_branch_count(self) -> int:
        """Number of distinct conditional-branch sites in the trace."""
        return len({block.branch_pc for block in self.blocks if block.has_conditional})

    def validate(self) -> None:
        """Check internal consistency: control flow must be continuous.

        Each block must begin where the previous block said execution would
        continue (branch target when taken, fall-through otherwise).
        """
        previous: Block | None = None
        for block in self.blocks:
            if previous is not None and previous.branch_kind != BranchKind.NONE:
                if previous.taken and block.pc != previous.target:
                    raise TraceError(
                        f"discontinuity: taken branch at {previous.branch_pc:#x} "
                        f"targets {previous.target:#x} but next block is {block.pc:#x}"
                    )
            previous = block
