"""Trace serialization: save/load dynamic traces as compact ``.npz`` files.

Synthetic traces are cheap to regenerate, but serialized traces make
experiments portable (share the exact workload with a colleague, pin a
trace in a regression suite, or feed externally-captured branch traces into
the harness).  The format is a flat set of numpy arrays:

* per-block columns: ``pc``, ``instructions``, ``branch_kind``,
  ``branch_pc``, ``taken``, ``target``;
* memory addresses flattened into ``loads`` / ``stores`` with CSR-style
  ``load_offsets`` / ``store_offsets`` index arrays (block *i* owns
  ``loads[load_offsets[i]:load_offsets[i+1]]``);
* the trace name stored alongside.

Round-tripping is exact: ``load_trace(save_trace(t)) == t`` field for field
(verified by test and by a checksum of the branch stream).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.common.errors import TraceError
from repro.workloads.trace import Block, BranchKind, Trace

FORMAT_VERSION = 1


def save_trace(trace: Trace, path: str | Path) -> Path:
    """Write ``trace`` to ``path`` (``.npz`` appended if missing)."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    blocks = trace.blocks
    load_offsets = np.zeros(len(blocks) + 1, dtype=np.int64)
    store_offsets = np.zeros(len(blocks) + 1, dtype=np.int64)
    for i, block in enumerate(blocks):
        load_offsets[i + 1] = load_offsets[i] + len(block.loads)
        store_offsets[i + 1] = store_offsets[i] + len(block.stores)
    loads = np.fromiter(
        (address for block in blocks for address in block.loads),
        dtype=np.int64,
        count=int(load_offsets[-1]),
    )
    stores = np.fromiter(
        (address for block in blocks for address in block.stores),
        dtype=np.int64,
        count=int(store_offsets[-1]),
    )
    np.savez_compressed(
        path,
        version=np.int64(FORMAT_VERSION),
        name=np.bytes_(trace.name.encode()),
        pc=np.array([b.pc for b in blocks], dtype=np.int64),
        instructions=np.array([b.instructions for b in blocks], dtype=np.int32),
        branch_kind=np.array([int(b.branch_kind) for b in blocks], dtype=np.int8),
        branch_pc=np.array([b.branch_pc for b in blocks], dtype=np.int64),
        taken=np.array([b.taken for b in blocks], dtype=np.bool_),
        target=np.array([b.target for b in blocks], dtype=np.int64),
        loads=loads,
        stores=stores,
        load_offsets=load_offsets,
        store_offsets=store_offsets,
    )
    return path


def load_trace(path: str | Path) -> Trace:
    """Read a trace written by :func:`save_trace`."""
    path = Path(path)
    if not path.exists():
        raise TraceError(f"trace file not found: {path}")
    with np.load(path) as data:
        try:
            version = int(data["version"])
            if version != FORMAT_VERSION:
                raise TraceError(
                    f"trace format version {version} unsupported "
                    f"(this build reads version {FORMAT_VERSION})"
                )
            name = bytes(data["name"]).decode()
            pc = data["pc"]
            instructions = data["instructions"]
            branch_kind = data["branch_kind"]
            branch_pc = data["branch_pc"]
            taken = data["taken"]
            target = data["target"]
            loads = data["loads"]
            stores = data["stores"]
            load_offsets = data["load_offsets"]
            store_offsets = data["store_offsets"]
        except KeyError as missing:
            raise TraceError(f"malformed trace file {path}: missing {missing}") from None
    blocks = []
    for i in range(len(pc)):
        blocks.append(
            Block(
                pc=int(pc[i]),
                instructions=int(instructions[i]),
                loads=tuple(int(a) for a in loads[load_offsets[i] : load_offsets[i + 1]]),
                stores=tuple(int(a) for a in stores[store_offsets[i] : store_offsets[i + 1]]),
                branch_kind=BranchKind(int(branch_kind[i])),
                branch_pc=int(branch_pc[i]),
                taken=bool(taken[i]),
                target=int(target[i]),
            )
        )
    return Trace(name=name, blocks=blocks)


def read_branch_trace(
    path: str | Path,
    name: str | None = None,
    instructions_per_branch: int = 6,
) -> Trace:
    """Import a plain-text conditional-branch trace.

    Accepts the format branch-trace tools commonly emit: one branch per
    line, ``<pc> <outcome>``, where ``pc`` is decimal or ``0x``-hex and
    ``outcome`` is ``T``/``N``, ``1``/``0``, or ``taken``/``not-taken``
    (case-insensitive).  Blank lines and ``#`` comments are skipped.

    Since such traces carry no non-branch instructions, each branch becomes
    one fetch block of ``instructions_per_branch`` instructions (the
    SPECint-like density used throughout this package); targets are
    synthesized as short forward/backward hops so BTB behaviour stays
    sane.  The result drives every accuracy experiment directly and the
    cycle simulator approximately.
    """
    path = Path(path)
    if not path.exists():
        raise TraceError(f"branch-trace file not found: {path}")
    if instructions_per_branch < 1:
        raise TraceError("instructions_per_branch must be >= 1")
    taken_words = {"t", "1", "taken", "true"}
    not_taken_words = {"n", "0", "not-taken", "nottaken", "false"}
    blocks = []
    for line_number, raw in enumerate(path.read_text().splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        if len(parts) != 2:
            raise TraceError(f"{path}:{line_number}: expected '<pc> <outcome>', got {raw!r}")
        try:
            pc = int(parts[0], 0)
        except ValueError:
            raise TraceError(f"{path}:{line_number}: bad pc {parts[0]!r}") from None
        outcome = parts[1].lower()
        if outcome in taken_words:
            taken = True
        elif outcome in not_taken_words:
            taken = False
        else:
            raise TraceError(f"{path}:{line_number}: bad outcome {parts[1]!r}")
        block_pc = pc - (instructions_per_branch - 1) * 4
        target = pc - 32 if taken else pc + 4  # synthetic backward hop
        blocks.append(
            Block(
                pc=block_pc,
                instructions=instructions_per_branch,
                branch_kind=BranchKind.CONDITIONAL,
                branch_pc=pc,
                taken=taken,
                target=target,
            )
        )
    if not blocks:
        raise TraceError(f"{path} contains no branches")
    return Trace(name=name or path.stem, blocks=blocks)
