"""Trace serialization: save/load dynamic traces as compact ``.npz`` files.

Synthetic traces are cheap to regenerate, but serialized traces make
experiments portable (share the exact workload with a colleague, pin a
trace in a regression suite, or feed externally-captured branch traces into
the harness).  The format is a flat set of numpy arrays:

* per-block columns: ``pc``, ``instructions``, ``branch_kind``,
  ``branch_pc``, ``taken``, ``target``;
* memory addresses flattened into ``loads`` / ``stores`` with CSR-style
  ``load_offsets`` / ``store_offsets`` index arrays (block *i* owns
  ``loads[load_offsets[i]:load_offsets[i+1]]``);
* the trace name and a sha256 ``checksum`` over every column, so a
  truncated or bit-flipped file is detected at load time instead of
  silently corrupting an experiment.

The column codec (:func:`trace_to_columns` / :func:`blocks_from_columns` /
:func:`save_columns` / :func:`load_columns`) is shared with the
content-addressed trace store (:mod:`repro.workloads.store`), which keeps
the columns as-is instead of materializing ``Block`` objects.  Writes are
atomic (tmp file + rename) so a killed writer never leaves a truncated
file under the final name.

Round-tripping is exact: ``load_trace(save_trace(t)) == t`` field for field
(verified by test and by the checksum of the full column set).
"""

from __future__ import annotations

import hashlib
from pathlib import Path

import numpy as np

from repro.common.atomic import atomic_path
from repro.common.errors import TraceError
from repro.workloads.trace import Block, BranchKind, Trace

#: v2: per-column integrity checksum added (a v1 file predates the trace
#: store and is refused rather than trusted without one).
FORMAT_VERSION = 2

#: Column names in canonical (checksum) order.
COLUMN_ORDER = (
    "pc",
    "instructions",
    "branch_kind",
    "branch_pc",
    "taken",
    "target",
    "loads",
    "stores",
    "load_offsets",
    "store_offsets",
)


def trace_to_columns(trace: Trace) -> dict[str, np.ndarray]:
    """Flatten a block-object trace into its columnar (SoA) arrays."""
    blocks = trace.blocks
    load_offsets = np.zeros(len(blocks) + 1, dtype=np.int64)
    store_offsets = np.zeros(len(blocks) + 1, dtype=np.int64)
    for i, block in enumerate(blocks):
        load_offsets[i + 1] = load_offsets[i] + len(block.loads)
        store_offsets[i + 1] = store_offsets[i] + len(block.stores)
    loads = np.fromiter(
        (address for block in blocks for address in block.loads),
        dtype=np.int64,
        count=int(load_offsets[-1]),
    )
    stores = np.fromiter(
        (address for block in blocks for address in block.stores),
        dtype=np.int64,
        count=int(store_offsets[-1]),
    )
    return {
        "pc": np.array([b.pc for b in blocks], dtype=np.int64),
        "instructions": np.array([b.instructions for b in blocks], dtype=np.int32),
        "branch_kind": np.array([int(b.branch_kind) for b in blocks], dtype=np.int8),
        "branch_pc": np.array([b.branch_pc for b in blocks], dtype=np.int64),
        "taken": np.array([b.taken for b in blocks], dtype=np.bool_),
        "target": np.array([b.target for b in blocks], dtype=np.int64),
        "loads": loads,
        "stores": stores,
        "load_offsets": load_offsets,
        "store_offsets": store_offsets,
    }


def blocks_from_columns(columns: dict[str, np.ndarray]) -> list[Block]:
    """Materialize ``Block`` objects from columnar arrays (exact inverse of
    :func:`trace_to_columns`; plain Python ints/bools, like the generator
    emits)."""
    pcs = columns["pc"].tolist()
    instructions = columns["instructions"].tolist()
    kinds = columns["branch_kind"].tolist()
    branch_pcs = columns["branch_pc"].tolist()
    takens = columns["taken"].tolist()
    targets = columns["target"].tolist()
    loads = columns["loads"].tolist()
    stores = columns["stores"].tolist()
    load_offsets = columns["load_offsets"].tolist()
    store_offsets = columns["store_offsets"].tolist()
    return [
        Block(
            pc=pcs[i],
            instructions=instructions[i],
            loads=tuple(loads[load_offsets[i] : load_offsets[i + 1]]),
            stores=tuple(stores[store_offsets[i] : store_offsets[i + 1]]),
            branch_kind=BranchKind(kinds[i]),
            branch_pc=branch_pcs[i],
            taken=bool(takens[i]),
            target=targets[i],
        )
        for i in range(len(pcs))
    ]


def columns_checksum(name: str, columns: dict[str, np.ndarray]) -> str:
    """sha256 over the trace name plus every column's dtype/shape/bytes."""
    digest = hashlib.sha256()
    digest.update(name.encode("utf-8"))
    for key in COLUMN_ORDER:
        array = np.ascontiguousarray(columns[key])
        digest.update(key.encode())
        digest.update(str(array.dtype).encode())
        digest.update(str(array.shape).encode())
        digest.update(array.tobytes())
    return digest.hexdigest()


def save_columns(path: str | Path, name: str, columns: dict[str, np.ndarray]) -> Path:
    """Atomically write one columnar trace to ``path`` (``.npz`` appended
    if missing); the embedded checksum covers every column."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    with atomic_path(path) as tmp:
        # np.savez appends ``.npz`` to bare *paths*; a file handle writes
        # exactly where the atomic staging name points.
        with open(tmp, "wb") as handle:
            np.savez_compressed(
                handle,
                version=np.int64(FORMAT_VERSION),
                name=np.bytes_(name.encode()),
                checksum=np.bytes_(columns_checksum(name, columns).encode()),
                **columns,
            )
    return path


def load_columns(path: str | Path) -> tuple[str, dict[str, np.ndarray]]:
    """Read and verify a columnar trace written by :func:`save_columns`.

    Raises :class:`TraceError` on anything untrustworthy: missing file,
    truncated archive, unknown format version, missing columns, or a
    checksum mismatch (bit rot / torn write).
    """
    path = Path(path)
    if not path.exists():
        raise TraceError(f"trace file not found: {path}")
    try:
        with np.load(path) as data:
            version = int(data["version"])
            if version != FORMAT_VERSION:
                raise TraceError(
                    f"trace format version {version} unsupported "
                    f"(this build reads version {FORMAT_VERSION})"
                )
            name = bytes(data["name"]).decode()
            checksum = bytes(data["checksum"]).decode()
            columns = {key: data[key] for key in COLUMN_ORDER}
    except TraceError:
        raise
    except KeyError as missing:
        raise TraceError(f"malformed trace file {path}: missing {missing}") from None
    except Exception as exc:  # truncated zip, bad header, undecodable bytes
        raise TraceError(f"corrupt trace file {path}: {exc}") from exc
    if columns_checksum(name, columns) != checksum:
        raise TraceError(f"checksum mismatch in trace file {path} (corrupt entry)")
    return name, columns


def save_trace(trace: Trace, path: str | Path) -> Path:
    """Write ``trace`` to ``path`` (``.npz`` appended if missing)."""
    return save_columns(path, trace.name, trace_to_columns(trace))


def load_trace(path: str | Path) -> Trace:
    """Read a trace written by :func:`save_trace`."""
    name, columns = load_columns(path)
    return Trace(name=name, blocks=blocks_from_columns(columns))


def read_branch_trace(
    path: str | Path,
    name: str | None = None,
    instructions_per_branch: int = 6,
) -> Trace:
    """Import a plain-text conditional-branch trace.

    Accepts the format branch-trace tools commonly emit: one branch per
    line, ``<pc> <outcome>``, where ``pc`` is decimal or ``0x``-hex and
    ``outcome`` is ``T``/``N``, ``1``/``0``, or ``taken``/``not-taken``
    (case-insensitive).  Blank lines and ``#`` comments are skipped.

    Since such traces carry no non-branch instructions, each branch becomes
    one fetch block of ``instructions_per_branch`` instructions (the
    SPECint-like density used throughout this package); targets are
    synthesized as short forward/backward hops so BTB behaviour stays
    sane.  The result drives every accuracy experiment directly and the
    cycle simulator approximately.
    """
    path = Path(path)
    if not path.exists():
        raise TraceError(f"branch-trace file not found: {path}")
    if instructions_per_branch < 1:
        raise TraceError("instructions_per_branch must be >= 1")
    taken_words = {"t", "1", "taken", "true"}
    not_taken_words = {"n", "0", "not-taken", "nottaken", "false"}
    blocks = []
    for line_number, raw in enumerate(path.read_text().splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        if len(parts) != 2:
            raise TraceError(f"{path}:{line_number}: expected '<pc> <outcome>', got {raw!r}")
        try:
            pc = int(parts[0], 0)
        except ValueError:
            raise TraceError(f"{path}:{line_number}: bad pc {parts[0]!r}") from None
        outcome = parts[1].lower()
        if outcome in taken_words:
            taken = True
        elif outcome in not_taken_words:
            taken = False
        else:
            raise TraceError(f"{path}:{line_number}: bad outcome {parts[1]!r}")
        block_pc = pc - (instructions_per_branch - 1) * 4
        target = pc - 32 if taken else pc + 4  # synthetic backward hop
        blocks.append(
            Block(
                pc=block_pc,
                instructions=instructions_per_branch,
                branch_kind=BranchKind.CONDITIONAL,
                branch_pc=pc,
                taken=taken,
                target=target,
            )
        )
    if not blocks:
        raise TraceError(f"{path} contains no branches")
    return Trace(name=name or path.stem, blocks=blocks)
