"""Structured synthetic-program model.

Programs are trees of structured control-flow nodes — straight-line code,
if/else, do-while loops, and calls — the way a compiler sees structured
source.  Building programs as trees (rather than arbitrary CFGs) keeps
generation simple and guarantees well-formed control flow, while still
producing everything branch predictors care about: nested loops with
characteristic trip counts, correlated if-cascades, call/return structure,
and a realistic static code layout for the instruction cache.

Code layout: every node is assigned a static address range by
:func:`layout_program`, functions placed sequentially in a code region.
Conditional branches follow the compiler convention the paper mentions
(Section 3.3.3): the *likely* path is laid out as the fall-through, so most
conditional branches are not taken, and loop back-edges are taken.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.common.errors import ConfigurationError
from repro.workloads.predicates import Predicate

INSTRUCTION_BYTES = 4


@dataclass(frozen=True)
class MemOp:
    """A memory access slot in straight-line code.

    ``kind`` selects the address stream: ``stack`` (current frame, high
    locality), ``stride`` (array walk, prefetch-friendly but capacity-bound)
    or ``random`` (pointer chasing over the working set).
    """

    kind: str
    is_store: bool = False

    def __post_init__(self) -> None:
        if self.kind not in ("stack", "stride", "random"):
            raise ConfigurationError(f"unknown memory op kind {self.kind!r}")


@dataclass
class TripSampler:
    """Samples loop trip counts (>= 1) per loop entry.

    kinds: ``fixed`` (always ``mean`` — loop-predictor food), ``geometric``
    (mean ``mean``), ``uniform`` (on [low, high]).
    """

    kind: str = "geometric"
    mean: float = 8.0
    low: int = 1
    high: int = 16

    def __post_init__(self) -> None:
        if self.kind not in ("fixed", "geometric", "uniform"):
            raise ConfigurationError(f"unknown trip sampler kind {self.kind!r}")
        if self.kind == "fixed" and self.mean < 1:
            raise ConfigurationError("fixed trip count must be >= 1")
        if self.kind == "geometric" and self.mean < 1:
            raise ConfigurationError("geometric mean must be >= 1")
        if self.kind == "uniform" and not 1 <= self.low <= self.high:
            raise ConfigurationError("uniform trip range must satisfy 1 <= low <= high")

    def sample(self, rng: np.random.Generator) -> int:
        """Draw one trip count (>= 1)."""
        if self.kind == "fixed":
            return int(self.mean)
        if self.kind == "geometric":
            # numpy's geometric is >= 1 with mean 1/p.
            p = min(1.0, 1.0 / self.mean)
            return int(rng.geometric(p))
        return int(rng.integers(self.low, self.high + 1))


class Node:
    """Base class for structured program nodes (layout fields filled by
    :func:`layout_program`)."""

    address: int = 0  # first instruction address
    size_bytes: int = 0  # total laid-out size


@dataclass
class StraightCode(Node):
    """A run of non-branch instructions with memory ops and hidden-state
    random-walk steps (``hidden_flips``: (bit index, flip probability))."""

    instructions: int
    mem_ops: tuple[MemOp, ...] = ()
    hidden_flips: tuple[tuple[int, float], ...] = ()

    def __post_init__(self) -> None:
        if self.instructions < 1:
            raise ConfigurationError("straight-line code needs at least one instruction")
        if len(self.mem_ops) > self.instructions:
            raise ConfigurationError("more memory ops than instructions")


@dataclass
class If(Node):
    """if/else with the likely path as fall-through.

    The conditional branch is *taken* to skip to the else side (or past the
    whole if when there is no else); it is not taken into the then side.
    ``predicate`` gives the probability-of-then; the branch outcome is the
    negation (taken == predicate false).
    """

    predicate: Predicate
    then_body: list[Node]
    else_body: list[Node] = field(default_factory=list)
    branch_address: int = 0  # filled by layout
    join_address: int = 0
    taken_target: int = 0

    def __post_init__(self) -> None:
        if not self.then_body:
            raise ConfigurationError("if needs a non-empty then body")


@dataclass
class Loop(Node):
    """do-while loop: the body runs ``trips`` times; the back-edge branch is
    taken ``trips - 1`` times, then falls through once."""

    body: list[Node]
    trips: TripSampler = field(default_factory=TripSampler)
    back_edge_address: int = 0  # filled by layout
    head_address: int = 0
    exit_address: int = 0

    def __post_init__(self) -> None:
        if not self.body:
            raise ConfigurationError("loop needs a non-empty body")


@dataclass
class Call(Node):
    """Direct call to another function (resolved by index into the program's
    function list, so functions can call forward)."""

    callee_index: int
    call_address: int = 0  # filled by layout
    return_address: int = 0


@dataclass
class Function:
    """A named function: a body and, after layout, an entry address."""

    name: str
    body: list[Node]
    entry_address: int = 0
    return_site_address: int = 0

    def __post_init__(self) -> None:
        if not self.body:
            raise ConfigurationError(f"function {self.name!r} has an empty body")


@dataclass
class Program:
    """A laid-out synthetic program.

    ``functions[0]`` is ``main``; execution repeats main until the
    instruction budget is exhausted (steady-state behaviour, mirroring the
    paper's skip-warmup/run-long methodology).
    """

    name: str
    functions: list[Function]
    code_base: int = 0x0040_0000
    code_size_bytes: int = 0

    def __post_init__(self) -> None:
        if not self.functions:
            raise ConfigurationError("a program needs at least one function")

    @property
    def main(self) -> Function:
        """The entry function (index 0)."""
        return self.functions[0]

    def static_conditional_branches(self) -> list[int]:
        """Addresses of all conditional-branch sites (Ifs and loop
        back-edges), for footprint statistics."""
        addresses: list[int] = []

        def walk(nodes: list[Node]) -> None:
            for node in nodes:
                if isinstance(node, If):
                    addresses.append(node.branch_address)
                    walk(node.then_body)
                    walk(node.else_body)
                elif isinstance(node, Loop):
                    walk(node.body)
                    addresses.append(node.back_edge_address)
                # StraightCode and Call contribute no conditional branches.

        for function in self.functions:
            walk(function.body)
        return addresses


def _layout_nodes(nodes: list[Node], cursor: int) -> int:
    """Assign addresses to ``nodes`` starting at ``cursor``; return the next
    free address.  Mirrors a simple code generator's layout."""
    for node in nodes:
        node.address = cursor
        if isinstance(node, StraightCode):
            cursor += node.instructions * INSTRUCTION_BYTES
        elif isinstance(node, If):
            node.branch_address = cursor
            cursor += INSTRUCTION_BYTES  # the conditional branch
            cursor = _layout_nodes(node.then_body, cursor)
            if node.else_body:
                cursor += INSTRUCTION_BYTES  # jump over else at end of then
                else_start = cursor
                cursor = _layout_nodes(node.else_body, cursor)
                node.join_address = cursor
                # Taken target of the conditional: start of the else side.
                node.taken_target = else_start
            else:
                node.join_address = cursor
                node.taken_target = cursor
        elif isinstance(node, Loop):
            node.head_address = cursor
            cursor = _layout_nodes(node.body, cursor)
            node.back_edge_address = cursor
            cursor += INSTRUCTION_BYTES  # the back-edge conditional
            node.exit_address = cursor
        elif isinstance(node, Call):
            node.call_address = cursor
            cursor += INSTRUCTION_BYTES  # the call instruction
            node.return_address = cursor
        else:  # pragma: no cover - defensive
            raise ConfigurationError(f"unknown node type {type(node).__name__}")
        node.size_bytes = cursor - node.address
    return cursor


def layout_program(program: Program) -> Program:
    """Assign static addresses to every node of ``program`` (in place)."""
    cursor = program.code_base
    for function in program.functions:
        function.entry_address = cursor
        cursor = _layout_nodes(function.body, cursor)
        function.return_site_address = cursor
        cursor += INSTRUCTION_BYTES  # the return instruction
        cursor += 12 * INSTRUCTION_BYTES  # inter-function padding (prologue)
    program.code_size_bytes = cursor - program.code_base
    return program
