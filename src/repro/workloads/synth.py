"""Random structured-program synthesis from a workload profile.

Given a :class:`WorkloadProfile`, :func:`build_program` generates a seeded,
laid-out synthetic program whose *static* structure (function count, branch
sites, loop nests, predicate mix, code footprint) realizes the profile.
Executing the program (``repro.workloads.program``) then produces the
dynamic behaviour each experiment consumes.

The profile's predicate mix is the main calibration lever: it controls how
much of the branch population is trivially biased, short-range correlated
(table-predictor food), long-range correlated (perceptron food),
fixed-pattern (local-history food), fixed-trip loops (loop-predictor food),
or hidden-state noisy (nobody's food — the misprediction floor).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.rng import derive
from repro.workloads.cfg import (
    Call,
    Function,
    If,
    Loop,
    MemOp,
    Node,
    Program,
    StraightCode,
    TripSampler,
    layout_program,
)
from repro.workloads.predicates import (
    BiasedPredicate,
    GlobalParityPredicate,
    HiddenStatePredicate,
    PatternPredicate,
    Predicate,
)
from repro.workloads.program import MemoryConfig


@dataclass(frozen=True)
class PredicateMix:
    """Relative weights of branch-behaviour classes (normalized on use)."""

    biased: float = 0.50
    short_parity: float = 0.20  # lags within ~8 branches
    long_parity: float = 0.06  # lags 20-60 branches back
    pattern: float = 0.12
    hidden: float = 0.12

    def weights(self) -> np.ndarray:
        """Normalized class probabilities in declaration order."""
        raw = np.array(
            [self.biased, self.short_parity, self.long_parity, self.pattern, self.hidden],
            dtype=float,
        )
        total = raw.sum()
        if total <= 0:
            raise ConfigurationError("predicate mix weights must sum to > 0")
        return raw / total


@dataclass(frozen=True)
class WorkloadProfile:
    """Everything needed to synthesize and execute one benchmark stand-in."""

    name: str
    seed: int = 1
    #: program shape
    functions: int = 6
    elements_per_body: tuple[int, int] = (3, 7)  # min/max elements per body
    max_nest_depth: int = 4
    call_probability: float = 0.12
    loop_probability: float = 0.15
    if_probability: float = 0.45
    else_probability: float = 0.4
    #: straight-line code
    block_instructions: tuple[int, int] = (2, 7)
    load_density: float = 0.20  # loads per instruction
    store_density: float = 0.10
    random_access_fraction: float = 0.08  # of memory ops; rest split stack/stride
    stack_access_fraction: float = 0.4
    #: branch behaviour
    predicate_mix: PredicateMix = field(default_factory=PredicateMix)
    easy_noise: float = 0.01  # noise on correlated/pattern predicates
    hard_noise: float = 0.12  # noise on hidden-state predicates
    bias_strength: float = 0.985  # how biased the biased branches are
    long_lag_range: tuple[int, int] = (20, 56)
    short_lag_range: tuple[int, int] = (1, 8)
    pattern_length_range: tuple[int, int] = (2, 5)
    loop_trip_fixed_fraction: float = 0.75
    loop_trip_mean: float = 14.0
    hidden_bits: int = 8
    hidden_flip_probability: float = 0.008
    #: expected-cost budgets (dynamic instructions per execution).  These
    #: bound the cost explosion of nested loops and call chains: one main
    #: iteration costs ~main_cost instructions, so a trace of N instructions
    #: cycles through the whole program ~N/main_cost times.
    main_cost: float = 3500.0
    function_cost_range: tuple[float, float] = (300.0, 2000.0)
    #: memory personality
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    #: backend personality (consumed by the cycle simulator)
    ilp: float = 2.8  # sustainable issue rate absent front-end stalls

    def __post_init__(self) -> None:
        if self.functions < 1:
            raise ConfigurationError("profile needs at least one function")
        if self.max_nest_depth < 1:
            raise ConfigurationError("max nest depth must be >= 1")
        if not 1 <= self.block_instructions[0] <= self.block_instructions[1]:
            raise ConfigurationError("invalid block instruction range")
        if self.ilp <= 0:
            raise ConfigurationError("ilp must be positive")


class _ProgramSynthesizer:
    """Stateful helper that builds one program from a profile."""

    _PREDICATE_KINDS = ("biased", "short_parity", "long_parity", "pattern", "hidden")

    def __init__(self, profile: WorkloadProfile) -> None:
        self.profile = profile
        self.rng = derive(profile.seed, "synth", profile.name)
        self._mix = profile.predicate_mix.weights()

    def make_predicate(self) -> Predicate:
        """Draw one branch predicate from the profile's mix."""
        profile = self.profile
        kind = self._PREDICATE_KINDS[int(self.rng.choice(len(self._PREDICATE_KINDS), p=self._mix))]
        if kind == "biased":
            strength = profile.bias_strength
            bias = strength if self.rng.random() < 0.5 else 1.0 - strength
            # Jitter so not every biased branch is identical.
            bias = float(np.clip(bias + self.rng.normal(0, 0.02), 0.005, 0.995))
            return BiasedPredicate(bias=bias)
        if kind == "short_parity":
            low, high = profile.short_lag_range
            count = int(self.rng.integers(1, 3))
            lags = tuple(
                sorted(int(lag) for lag in self.rng.choice(range(low, high + 1), size=count, replace=False))
            )
            # Real correlated branches are usually biased as well: AND/OR
            # forms dominate; balanced XOR parity stays in the minority.
            op = str(self.rng.choice(["and", "or", "xor"], p=[0.35, 0.35, 0.30]))
            return GlobalParityPredicate(
                lags=lags, invert=bool(self.rng.integers(2)), noise=profile.easy_noise, op=op
            )
        if kind == "long_parity":
            low, high = profile.long_lag_range
            lags = (int(self.rng.integers(low, high + 1)),)
            return GlobalParityPredicate(
                lags=lags, invert=bool(self.rng.integers(2)), noise=profile.easy_noise
            )
        if kind == "pattern":
            low, high = profile.pattern_length_range
            length = int(self.rng.integers(low, high + 1))
            pattern = tuple(bool(self.rng.integers(2)) for _ in range(length))
            # Degenerate all-same patterns are just biased branches; keep them.
            return PatternPredicate(pattern=pattern)
        return HiddenStatePredicate(
            index=int(self.rng.integers(profile.hidden_bits)),
            invert=bool(self.rng.integers(2)),
            noise=profile.hard_noise,
        )

    def make_straight(self) -> StraightCode:
        """Generate one straight-line code run with memory ops."""
        profile = self.profile
        low, high = profile.block_instructions
        instructions = int(self.rng.integers(low, high + 1))
        mem_ops: list[MemOp] = []
        for _ in range(instructions):
            roll = self.rng.random()
            if roll < profile.load_density:
                mem_ops.append(MemOp(kind=self._mem_kind(), is_store=False))
            elif roll < profile.load_density + profile.store_density:
                mem_ops.append(MemOp(kind=self._mem_kind(), is_store=True))
        flips: list[tuple[int, float]] = []
        if self.rng.random() < 0.3:
            flips.append(
                (int(self.rng.integers(profile.hidden_bits)), profile.hidden_flip_probability)
            )
        return StraightCode(
            instructions=instructions, mem_ops=tuple(mem_ops), hidden_flips=tuple(flips)
        )

    def _mem_kind(self) -> str:
        roll = self.rng.random()
        if roll < self.profile.random_access_fraction:
            return "random"
        if roll < self.profile.random_access_fraction + self.profile.stack_access_fraction:
            return "stack"
        return "stride"

    def make_trip_sampler(self, depth: int) -> TripSampler:
        """Trip counts taper with nesting depth: inner loops are hot (the
        profile's trip mean), outer loops iterate a few times — otherwise
        nested means multiply and one outer-loop entry would swallow the
        whole trace without ever revisiting the rest of the program."""
        profile = self.profile
        if depth <= 1:
            mean = profile.loop_trip_mean
        elif depth == 2:
            mean = min(6.0, profile.loop_trip_mean)
        else:
            mean = 4.0
        if self.rng.random() < profile.loop_trip_fixed_fraction:
            trips = max(4, int(self.rng.normal(mean, 2)))
            return TripSampler(kind="fixed", mean=trips)
        if self.rng.random() < 0.1:
            # Geometric trips are memoryless — the hardest loop behaviour —
            # so they stay rare; real loop trip counts cluster tightly.
            return TripSampler(kind="geometric", mean=mean)
        low = max(2, int(mean) - 1)
        high = int(mean) + 1
        return TripSampler(kind="uniform", low=low, high=high)

    def _trip_mean(self, sampler: TripSampler) -> float:
        if sampler.kind == "fixed":
            return float(sampler.mean)
        if sampler.kind == "geometric":
            return float(sampler.mean)
        return (sampler.low + sampler.high) / 2.0

    def make_body(
        self, depth: int, function_index: int, budget: float
    ) -> tuple[list[Node], float]:
        """Generate a body whose *expected* dynamic cost stays within
        ``budget`` instructions; returns (nodes, estimated cost).

        Cost budgeting is what keeps one main iteration to ~main_cost
        instructions: loop bodies receive their share of the remaining
        budget divided by the expected trip count, and a call is only placed
        when its callee's (already known) cost fits.  Without this, nested
        loop means multiply through call chains and a single iteration of
        main would dwarf any realistic trace length.
        """
        profile = self.profile
        lead = self.make_straight()
        body: list[Node] = [lead]
        cost = float(lead.instructions)
        max_elements = profile.elements_per_body[1] * 4
        while cost < budget and len(body) < max_elements:
            remaining = budget - cost
            roll = self.rng.random()
            if depth > 0 and remaining > 10 and roll < profile.if_probability:
                then_share = remaining * self.rng.uniform(0.15, 0.45)
                then_body, then_cost = self.make_body(depth - 1, function_index, then_share)
                else_body: list[Node] = []
                else_cost = 0.0
                if self.rng.random() < profile.else_probability:
                    else_share = remaining * self.rng.uniform(0.1, 0.3)
                    else_body, else_cost = self.make_body(depth - 1, function_index, else_share)
                body.append(
                    If(predicate=self.make_predicate(), then_body=then_body, else_body=else_body)
                )
                cost += 1 + 0.5 * then_cost + 0.5 * else_cost
            elif (
                depth > 0
                and remaining > 20
                and roll < profile.if_probability + profile.loop_probability
            ):
                trips = self.make_trip_sampler(depth)
                trip_mean = self._trip_mean(trips)
                loop_share = remaining * self.rng.uniform(0.3, 0.7) / trip_mean
                loop_body, body_cost = self.make_body(depth - 1, function_index, max(loop_share, 3.0))
                body.append(Loop(body=loop_body, trips=trips))
                cost += trip_mean * (body_cost + 1)
            elif (
                roll
                < profile.if_probability + profile.loop_probability + profile.call_probability
                and self._affordable_callees(function_index, remaining)
            ):
                callee = int(self.rng.choice(self._affordable_callees(function_index, remaining)))
                body.append(Call(callee_index=callee))
                cost += 2 + self._function_costs[callee]
            else:
                straight = self.make_straight()
                body.append(straight)
                cost += straight.instructions
        return body, cost

    def _affordable_callees(self, function_index: int, remaining: float) -> list[int]:
        """Higher-index functions whose expected cost fits the budget."""
        return [
            index
            for index, callee_cost in self._function_costs.items()
            if index > function_index and callee_cost + 2 <= remaining
        ]

    def build(self) -> Program:
        """Synthesize all functions (callees first) and lay out the program."""
        profile = self.profile
        self._function_costs: dict[int, float] = {}
        bodies: dict[int, list[Node]] = {}
        # Build callees first (reverse index order) so call costs are known.
        for index in reversed(range(1, profile.functions)):
            low, high = profile.function_cost_range
            budget = float(self.rng.uniform(low, high))
            depth = max(profile.max_nest_depth - 1, 1)
            body, cost = self.make_body(depth, index, budget)
            bodies[index] = body
            self._function_costs[index] = cost
        main_body, _ = self.make_body(profile.max_nest_depth, 0, profile.main_cost)
        bodies[0] = main_body
        functions = [
            Function(name="main" if index == 0 else f"fn{index}", body=bodies[index])
            for index in range(profile.functions)
        ]
        program = Program(name=profile.name, functions=functions)
        return layout_program(program)


def build_program(profile: WorkloadProfile) -> Program:
    """Synthesize and lay out the program for ``profile`` (deterministic)."""
    return _ProgramSynthesizer(profile).build()


def scenario_profiles() -> dict[str, WorkloadProfile]:
    """Scenario-diverse profiles beyond the SPEC stand-ins.

    Three behaviour classes the SPEC set under-represents, named in the
    roadmap as the diversity the H2P critique (Lin & Tarsa) says
    golden-file suites miss.  They enroll in sweeps, stores, parallel
    execution and figure configs purely by being registered in the
    workload catalog — zero harness edits, the PR-4 extension claim
    replayed on workloads.

    * ``interp`` — interpreter-like: a large flat set of small handlers
      reached through dense call dispatch, dominated by short-range
      correlated and fixed-pattern branches (the dispatch loop's food).
    * ``server`` — server-like: very large static footprint and a
      low-locality heap (64 MB working set, high random-access fraction,
      little hot-loop reuse), modest ILP.
    * ``adversarial`` — period-mixing worst case: long fixed patterns and
      correlation lags straddling ``GSHARE_MAX_HISTORY`` (so sized global
      histories can never cover them all), weak bias, heavy hidden-state
      noise, geometric (memoryless) loop trips.
    """
    kib = 1024
    mib = 1024 * 1024
    return {
        "interp": WorkloadProfile(
            name="interp",
            seed=401,
            functions=28,
            call_probability=0.34,
            elements_per_body=(2, 5),
            max_nest_depth=3,
            predicate_mix=PredicateMix(
                biased=0.30, short_parity=0.34, long_parity=0.04, pattern=0.22, hidden=0.10
            ),
            hard_noise=0.06,
            bias_strength=0.97,
            pattern_length_range=(2, 6),
            loop_trip_mean=8.0,
            function_cost_range=(120.0, 700.0),
            memory=MemoryConfig(working_set_bytes=4 * mib, array_bytes=8 * kib),
            ilp=2.4,
        ),
        "server": WorkloadProfile(
            name="server",
            seed=402,
            functions=32,
            call_probability=0.26,
            predicate_mix=PredicateMix(
                biased=0.50, short_parity=0.22, long_parity=0.08, pattern=0.04, hidden=0.16
            ),
            hard_noise=0.08,
            bias_strength=0.98,
            random_access_fraction=0.45,
            stack_access_fraction=0.15,
            load_density=0.30,
            loop_trip_mean=6.0,
            loop_trip_fixed_fraction=0.4,
            memory=MemoryConfig(
                working_set_bytes=64 * mib, array_bytes=32 * kib, hot_fraction=0.05
            ),
            ilp=2.2,
        ),
        "adversarial": WorkloadProfile(
            name="adversarial",
            seed=403,
            functions=6,
            predicate_mix=PredicateMix(
                biased=0.12, short_parity=0.18, long_parity=0.22, pattern=0.24, hidden=0.24
            ),
            easy_noise=0.03,
            hard_noise=0.25,
            bias_strength=0.60,
            short_lag_range=(4, 12),
            long_lag_range=(15, 48),
            pattern_length_range=(5, 9),
            loop_trip_fixed_fraction=0.1,
            loop_trip_mean=9.0,
            hidden_flip_probability=0.03,
            memory=MemoryConfig(working_set_bytes=8 * mib, array_bytes=8 * kib),
            ilp=2.6,
        ),
    }
