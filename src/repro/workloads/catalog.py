"""Workload catalog: the name -> (profile, program builder) registry.

Every harness consumer resolves workloads by *name* through
:func:`repro.workloads.spec2000.get_profile` and ``spec2000_trace`` — the
sweeps, the parallel executor's forked workers, the trace/result stores and
the declarative figure configs all funnel through those two calls.  This
module gives that funnel a registry backend, exactly the way the predictor
registry (PR 4) gave the family list one: registering a workload here
enrolls it in sweeps, content-addressed stores, parallel execution and
``repro-figures --config`` targets with zero harness edits.

A catalog entry pairs a *profile* (any frozen dataclass whose fields fully
determine the trace bytes — :class:`~repro.workloads.synth.WorkloadProfile`
for synthesized programs, :class:`~repro.workloads.stringmatch
.StringMatchProfile` for string-matching kernels) with a *builder* that
turns the profile into a laid-out :class:`~repro.workloads.cfg.Program`.
Generation always runs the standard :class:`ProgramExecutor` over the built
program, so every workload — SPEC stand-in, scenario profile or
Morris-Pratt/KMP oracle kernel — emits the same ``Trace``/``ColumnarTrace``
objects and is content-addressed by the same
:func:`repro.workloads.store.trace_digest` recipe (the profile dataclass is
serialized field-by-field into the digest).

The builtin population (12 SPEC stand-ins, the scenario profiles, the
oracle string-matching kernels) is registered lazily on first lookup so
importing this module stays cheap and free of cycles.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, is_dataclass

from repro.common.errors import ConfigurationError


@dataclass(frozen=True)
class WorkloadSpec:
    """One catalog entry: how to build and execute a named workload.

    ``profile`` must be a dataclass instance with at least ``name``,
    ``memory`` and ``hidden_bits`` fields (the executor personality) —
    its full field set is what the trace store digests.  ``build`` maps the
    profile to a laid-out program; ``kind`` tags the workload class for
    reporting (``spec2000`` / ``scenario`` / ``stringmatch`` / external).
    """

    profile: object
    build: Callable[[object], object]
    kind: str

    @property
    def name(self) -> str:
        """The workload's registry name (the profile's name field)."""
        return self.profile.name


_registry: dict[str, WorkloadSpec] = {}
_builtins_loaded = False


def register_workload(spec: WorkloadSpec, replace: bool = False) -> WorkloadSpec:
    """Register ``spec`` under its profile name.

    Duplicate names are refused unless ``replace`` is set — a silent
    overwrite would quietly change what every store digest and sweep cell
    for that name means.
    """
    if not is_dataclass(spec.profile):
        raise ConfigurationError(
            f"workload profile for {spec.kind!r} must be a dataclass "
            f"(its fields are the content-address), got {type(spec.profile).__name__}"
        )
    name = spec.name
    if not name or not isinstance(name, str):
        raise ConfigurationError("workload profile needs a non-empty string name")
    if not replace and name in _registry:
        raise ConfigurationError(f"workload {name!r} is already registered")
    _registry[name] = spec
    return spec


def _ensure_builtins() -> None:
    """Populate the builtin workloads once (lazy: avoids import cycles)."""
    global _builtins_loaded
    if _builtins_loaded:
        return
    _builtins_loaded = True
    from repro.workloads.spec2000 import spec2000_profiles
    from repro.workloads.stringmatch import (
        build_stringmatch_program,
        stringmatch_profiles,
    )
    from repro.workloads.synth import build_program, scenario_profiles

    for profile in spec2000_profiles().values():
        register_workload(WorkloadSpec(profile, build_program, "spec2000"))
    for profile in scenario_profiles().values():
        register_workload(WorkloadSpec(profile, build_program, "scenario"))
    for profile in stringmatch_profiles().values():
        register_workload(
            WorkloadSpec(profile, build_stringmatch_program, "stringmatch")
        )


def has_workload(name: str) -> bool:
    """True when ``name`` resolves to a catalog entry."""
    _ensure_builtins()
    return name in _registry


def get_workload(name: str) -> WorkloadSpec:
    """The catalog entry for ``name`` (ConfigurationError if unknown)."""
    _ensure_builtins()
    try:
        return _registry[name]
    except KeyError:
        known = ", ".join(sorted(_registry))
        raise ConfigurationError(
            f"unknown workload {name!r}; known: {known}"
        ) from None


def workload_names(kind: str | None = None) -> list[str]:
    """Every registered workload name (optionally one ``kind``), sorted
    registration-first for the builtin kinds so lists read naturally."""
    _ensure_builtins()
    return [
        spec.name
        for spec in _registry.values()
        if kind is None or spec.kind == kind
    ]
