"""Workload substrate: SPECint-2000 stand-ins, scenario profiles and
closed-form string-matching oracle kernels, all resolved by name through
the workload catalog."""

from repro.workloads.catalog import (
    WorkloadSpec,
    get_workload,
    has_workload,
    register_workload,
    workload_names,
)
from repro.workloads.cfg import (
    Call,
    Function,
    If,
    Loop,
    MemOp,
    Program,
    StraightCode,
    TripSampler,
    layout_program,
)
from repro.workloads.predicates import (
    BiasedPredicate,
    GlobalParityPredicate,
    HiddenStatePredicate,
    PatternPredicate,
    Predicate,
    ProgramState,
)
from repro.workloads.io import load_trace, read_branch_trace, save_trace
from repro.workloads.program import MemoryConfig, ProgramExecutor
from repro.workloads.spec2000 import (
    INSTRUCTIONS_PER_BRANCH,
    executor_run_count,
    get_profile,
    reset_executor_runs,
    spec2000_names,
    spec2000_profiles,
    spec2000_trace,
    warm_trace_store,
)
from repro.workloads.store import (
    ColumnarTrace,
    TraceStore,
    active_store,
    reset_store_stats,
    store_path,
    store_stats,
    trace_digest,
)
from repro.workloads.stringmatch import (
    MatcherPredicate,
    StringMatchProfile,
    build_stringmatch_program,
    stringmatch_profiles,
)
from repro.workloads.synth import (
    PredicateMix,
    WorkloadProfile,
    build_program,
    scenario_profiles,
)
from repro.workloads.trace import Block, BranchKind, Trace

__all__ = [
    "BiasedPredicate",
    "Block",
    "BranchKind",
    "Call",
    "ColumnarTrace",
    "TraceStore",
    "Function",
    "GlobalParityPredicate",
    "HiddenStatePredicate",
    "INSTRUCTIONS_PER_BRANCH",
    "If",
    "Loop",
    "MatcherPredicate",
    "MemOp",
    "MemoryConfig",
    "PatternPredicate",
    "Predicate",
    "PredicateMix",
    "Program",
    "ProgramExecutor",
    "ProgramState",
    "StraightCode",
    "StringMatchProfile",
    "Trace",
    "TripSampler",
    "WorkloadProfile",
    "WorkloadSpec",
    "active_store",
    "build_program",
    "build_stringmatch_program",
    "executor_run_count",
    "get_profile",
    "get_workload",
    "has_workload",
    "layout_program",
    "load_trace",
    "read_branch_trace",
    "register_workload",
    "reset_executor_runs",
    "reset_store_stats",
    "scenario_profiles",
    "spec2000_names",
    "spec2000_profiles",
    "save_trace",
    "spec2000_trace",
    "store_path",
    "store_stats",
    "stringmatch_profiles",
    "trace_digest",
    "warm_trace_store",
    "workload_names",
]
