"""Workload substrate: synthetic SPECint-2000 stand-in programs and traces."""

from repro.workloads.cfg import (
    Call,
    Function,
    If,
    Loop,
    MemOp,
    Program,
    StraightCode,
    TripSampler,
    layout_program,
)
from repro.workloads.predicates import (
    BiasedPredicate,
    GlobalParityPredicate,
    HiddenStatePredicate,
    PatternPredicate,
    Predicate,
    ProgramState,
)
from repro.workloads.io import load_trace, read_branch_trace, save_trace
from repro.workloads.program import MemoryConfig, ProgramExecutor
from repro.workloads.spec2000 import (
    INSTRUCTIONS_PER_BRANCH,
    executor_run_count,
    get_profile,
    reset_executor_runs,
    spec2000_names,
    spec2000_profiles,
    spec2000_trace,
    warm_trace_store,
)
from repro.workloads.store import (
    ColumnarTrace,
    TraceStore,
    active_store,
    reset_store_stats,
    store_path,
    store_stats,
    trace_digest,
)
from repro.workloads.synth import PredicateMix, WorkloadProfile, build_program
from repro.workloads.trace import Block, BranchKind, Trace

__all__ = [
    "BiasedPredicate",
    "Block",
    "BranchKind",
    "Call",
    "ColumnarTrace",
    "TraceStore",
    "Function",
    "GlobalParityPredicate",
    "HiddenStatePredicate",
    "INSTRUCTIONS_PER_BRANCH",
    "If",
    "Loop",
    "MemOp",
    "MemoryConfig",
    "PatternPredicate",
    "Predicate",
    "PredicateMix",
    "Program",
    "ProgramExecutor",
    "ProgramState",
    "StraightCode",
    "Trace",
    "TripSampler",
    "WorkloadProfile",
    "active_store",
    "build_program",
    "executor_run_count",
    "get_profile",
    "layout_program",
    "load_trace",
    "read_branch_trace",
    "reset_executor_runs",
    "reset_store_stats",
    "spec2000_names",
    "spec2000_profiles",
    "save_trace",
    "spec2000_trace",
    "store_path",
    "store_stats",
    "trace_digest",
    "warm_trace_store",
]
