"""Content-addressed on-disk trace store with a columnar in-memory backing.

Every figure sweep replays the same per-benchmark traces, and generating
them (synthesizing a program, then executing it block-by-block through
Python objects) dominates small-grid wall time.  This module makes that
cost a one-time expense per machine:

* :class:`ColumnarTrace` — a trace held as structure-of-arrays numpy
  columns (the exact columns :mod:`repro.workloads.io` serializes).  It is
  duck-type compatible with :class:`repro.workloads.trace.Trace` for every
  harness consumer: ``conditional_branches()`` / ``branch_arrays()`` feed
  the scalar and batch accuracy engines straight off the columns, while
  the cycle simulator's ``blocks`` view materializes lazily (and only when
  a consumer actually fetches blocks).
* :class:`TraceStore` — a directory of ``<benchmark>__<digest>.npz``
  entries keyed by a content digest of (full workload profile,
  instruction budget, seed, format versions).  Editing any profile
  constant or bumping a format version changes the digest, so stale
  entries are never consulted — invalidation is structural, not manual.
* integrity — every entry embeds a sha256 checksum over all columns
  (see :func:`repro.workloads.io.load_columns`); a truncated or
  bit-flipped entry is detected, counted (``trace_store.corrupt``),
  deleted and regenerated.  A corrupt entry can cost time, never
  correctness.

The store is enabled by pointing ``REPRO_TRACE_STORE`` at a directory (or
``repro-figures --trace-store DIR``); :mod:`repro.workloads.spec2000`
layers it *under* the in-process LRU trace cache, so a process pays at
most one disk load per (benchmark, length, seed) and the fleet pays at
most one generation.  Writes go through the shared atomic tmp+rename
helper, so concurrent sweep workers warming the same entry race benignly:
last writer wins with byte-identical content.

Statistics (hits/misses/corrupt/writes/evictions) are kept module-wide —
:func:`store_stats` — and mirrored into obs counters (``trace_store.*``)
when profiling is enabled; the parallel executor reports per-shard deltas
into run manifests.
"""

from __future__ import annotations

import hashlib
import json
import os
from collections.abc import Callable
from dataclasses import asdict
from pathlib import Path

import numpy as np

from repro import obs
from repro.common.atomic import stale_tmp_siblings
from repro.common.errors import ConfigurationError, TraceError
from repro.workloads.io import (
    FORMAT_VERSION,
    blocks_from_columns,
    load_columns,
    save_columns,
    trace_to_columns,
)
from repro.workloads.synth import WorkloadProfile
from repro.workloads.trace import Block, BranchKind, Trace

#: Bumped when the store layout or digest recipe changes; part of every
#: digest, so old entries simply stop matching instead of being misread.
STORE_VERSION = 1

#: Default maximum entries per store directory (LRU by file mtime).
DEFAULT_STORE_CAPACITY = 512

#: Hex digits of the digest kept in entry filenames (collision probability
#: at 24 hex chars ~ 2^-96 per pair; the full digest is not needed on disk).
DIGEST_PREFIX = 24


def trace_digest(profile: WorkloadProfile, instructions: int, seed: int) -> str:
    """Content digest of one trace: canonical JSON of everything that
    determines its bytes.

    The profile is serialized field-by-field (nested dataclasses and all),
    so *any* calibration change — a predicate-mix weight, a memory
    personality, a loop-trip mean — produces a different key.  Format
    versions ride along so serializer changes invalidate too.
    """
    payload = {
        "store_version": STORE_VERSION,
        "trace_format": FORMAT_VERSION,
        "profile": asdict(profile),
        "instructions": int(instructions),
        "seed": int(seed),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


# -- statistics ----------------------------------------------------------------

_STAT_KEYS = ("hits", "misses", "corrupt", "writes", "evictions")
_stats = dict.fromkeys(_STAT_KEYS, 0)


def store_stats() -> dict:
    """Process-wide store statistics (across every store instance)."""
    return dict(_stats)


def reset_store_stats() -> None:
    """Zero the store statistics (tests and fresh measurement windows)."""
    for key in _STAT_KEYS:
        _stats[key] = 0


def _count(key: str, n: int = 1) -> None:
    _stats[key] += n
    if obs.enabled():
        obs.counter(f"trace_store.{key}").inc(n)
    if obs.log_path() is not None:
        from repro.obs.events import emit_store  # deferred: layering

        emit_store("trace", key, n)


# -- columnar trace ------------------------------------------------------------


class ColumnarTrace:
    """A replayable trace held as numpy columns instead of ``Block`` objects.

    Construction is cheap (arrays are adopted, not copied); the accuracy
    paths never touch Python block objects, and the ``blocks`` view exists
    only for consumers that genuinely need it (the cycle simulator).
    """

    def __init__(
        self,
        name: str,
        pc: np.ndarray,
        instructions: np.ndarray,
        branch_kind: np.ndarray,
        branch_pc: np.ndarray,
        taken: np.ndarray,
        target: np.ndarray,
        loads: np.ndarray,
        stores: np.ndarray,
        load_offsets: np.ndarray,
        store_offsets: np.ndarray,
    ) -> None:
        self.name = name
        self.pc = np.asarray(pc, dtype=np.int64)
        self.instructions = np.asarray(instructions, dtype=np.int32)
        self.branch_kind = np.asarray(branch_kind, dtype=np.int8)
        self.branch_pc = np.asarray(branch_pc, dtype=np.int64)
        self.taken = np.asarray(taken, dtype=bool)
        self.target = np.asarray(target, dtype=np.int64)
        self.loads = np.asarray(loads, dtype=np.int64)
        self.stores = np.asarray(stores, dtype=np.int64)
        self.load_offsets = np.asarray(load_offsets, dtype=np.int64)
        self.store_offsets = np.asarray(store_offsets, dtype=np.int64)
        self._branches: tuple[np.ndarray, np.ndarray] | None = None
        self._blocks: list[Block] | None = None

    @classmethod
    def from_trace(cls, trace: Trace) -> "ColumnarTrace":
        """Columnarize a block-object trace."""
        return cls(trace.name, **trace_to_columns(trace))

    def columns(self) -> dict[str, np.ndarray]:
        """The serializable column set (see :data:`repro.workloads.io.COLUMN_ORDER`)."""
        return {
            "pc": self.pc,
            "instructions": self.instructions,
            "branch_kind": self.branch_kind,
            "branch_pc": self.branch_pc,
            "taken": self.taken,
            "target": self.target,
            "loads": self.loads,
            "stores": self.stores,
            "load_offsets": self.load_offsets,
            "store_offsets": self.store_offsets,
        }

    # -- Trace-compatible surface ---------------------------------------------

    def __len__(self) -> int:
        return len(self.pc)

    def __iter__(self):
        return iter(self.blocks)

    @property
    def blocks(self) -> list[Block]:
        """Lazily-materialized ``Block`` view (cycle-simulator consumers)."""
        if self._blocks is None:
            self._blocks = blocks_from_columns(self.columns())
        return self._blocks

    @property
    def instruction_count(self) -> int:
        """Total dynamic instructions in the trace."""
        return int(self.instructions.sum())

    def branch_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """The conditional-branch stream as ``(pcs, takens)`` arrays —
        exactly what the batch engine consumes, one mask away from the
        stored columns."""
        if self._branches is None:
            conditional = self.branch_kind == int(BranchKind.CONDITIONAL)
            self._branches = (
                np.ascontiguousarray(self.branch_pc[conditional]),
                np.ascontiguousarray(self.taken[conditional]),
            )
        return self._branches

    @property
    def conditional_branch_count(self) -> int:
        """Total dynamic conditional branches in the trace."""
        return len(self.branch_arrays()[0])

    @property
    def taken_rate(self) -> float:
        """Fraction of conditional branches that are taken."""
        pcs, takens = self.branch_arrays()
        if len(pcs) == 0:
            return 0.0
        return int(np.count_nonzero(takens)) / len(pcs)

    def conditional_branches(self):
        """Yield (branch_pc, taken) per conditional branch, as Python
        scalars — bit-compatible with the ``Block`` iteration path."""
        pcs, takens = self.branch_arrays()
        yield from zip(pcs.tolist(), takens.tolist())

    def static_branch_count(self) -> int:
        """Number of distinct conditional-branch sites in the trace."""
        return int(np.unique(self.branch_arrays()[0]).size)

    def validate(self) -> None:
        """Control-flow continuity check (vectorized twin of
        :meth:`repro.workloads.trace.Trace.validate`)."""
        if len(self.pc) < 2:
            return
        branchy = (self.branch_kind[:-1] != int(BranchKind.NONE)) & self.taken[:-1]
        expected = self.target[:-1][branchy]
        actual = self.pc[1:][branchy]
        bad = np.flatnonzero(expected != actual)
        if bad.size:
            i = int(np.flatnonzero(branchy)[bad[0]])
            raise TraceError(
                f"discontinuity: taken branch at {int(self.branch_pc[i]):#x} "
                f"targets {int(self.target[i]):#x} but next block is "
                f"{int(self.pc[i + 1]):#x}"
            )

    def to_trace(self) -> Trace:
        """Materialize a full block-object :class:`Trace`."""
        return Trace(name=self.name, blocks=list(self.blocks))


# -- the store -----------------------------------------------------------------


def store_path() -> str | None:
    """The configured store directory (``REPRO_TRACE_STORE``), or None."""
    raw = os.environ.get("REPRO_TRACE_STORE", "").strip()
    return raw or None


def store_capacity() -> int:
    """Maximum entries per store: ``REPRO_TRACE_STORE_CAPACITY`` or default."""
    raw = os.environ.get("REPRO_TRACE_STORE_CAPACITY")
    if raw is None or not raw.strip():
        return DEFAULT_STORE_CAPACITY
    try:
        value = int(raw)
    except ValueError:
        raise ConfigurationError(
            f"REPRO_TRACE_STORE_CAPACITY must be an integer >= 1, got {raw!r}"
        ) from None
    if value < 1:
        raise ConfigurationError(
            f"REPRO_TRACE_STORE_CAPACITY must be >= 1, got {value}"
        )
    return value


class TraceStore:
    """A directory of content-addressed, checksummed columnar trace entries.

    Safe for concurrent use by sweep workers: entries are immutable once
    written (same key => byte-identical content), writes are atomic, and a
    reader that loses a race simply regenerates.
    """

    def __init__(self, root: str | os.PathLike, capacity: int | None = None) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._capacity = capacity

    @property
    def capacity(self) -> int:
        """Entry cap: constructor override or the environment default."""
        return self._capacity if self._capacity is not None else store_capacity()

    def entry_path(self, profile: WorkloadProfile, instructions: int, seed: int) -> Path:
        """On-disk location of one entry (exists or not)."""
        digest = trace_digest(profile, instructions, seed)
        return self.root / f"{profile.name}__{digest[:DIGEST_PREFIX]}.npz"

    def load(
        self, profile: WorkloadProfile, instructions: int, seed: int
    ) -> ColumnarTrace | None:
        """The stored trace, or None when absent or corrupt.

        A corrupt entry (truncation, bit flip, wrong version) is counted,
        deleted, and reported as a miss — never trusted, never fatal.
        """
        path = self.entry_path(profile, instructions, seed)
        if not path.exists():
            return None
        try:
            name, columns = load_columns(path)
            if name != profile.name:
                # A well-formed file for some *other* benchmark parked
                # under this key (copied/renamed by hand) — the internal
                # checksum is consistent, but it is not this entry.
                raise TraceError(
                    f"store entry {path} holds trace {name!r}, "
                    f"expected {profile.name!r}"
                )
        except TraceError:
            _count("corrupt")
            try:
                path.unlink()
            except OSError:
                pass
            return None
        _count("hits")
        return ColumnarTrace(name, **columns)

    def save(
        self,
        trace: Trace | ColumnarTrace,
        profile: WorkloadProfile,
        instructions: int,
        seed: int,
    ) -> ColumnarTrace:
        """Persist ``trace`` under its content key; returns the columnar form."""
        columnar = (
            trace if isinstance(trace, ColumnarTrace) else ColumnarTrace.from_trace(trace)
        )
        path = self.entry_path(profile, instructions, seed)
        for stale in stale_tmp_siblings(path):
            # A writer died mid-write earlier; its staging file is garbage.
            try:
                os.unlink(stale)
            except OSError:
                pass
        save_columns(path, columnar.name, columnar.columns())
        _count("writes")
        self._evict_over_capacity()
        return columnar

    def get_or_generate(
        self,
        profile: WorkloadProfile,
        instructions: int,
        seed: int,
        generate: Callable[[], Trace],
    ) -> ColumnarTrace:
        """Load the entry, or generate + persist it on a miss.

        Both paths return a :class:`ColumnarTrace`, so cold and warm runs
        replay the very same representation (byte-identical figures).
        """
        loaded = self.load(profile, instructions, seed)
        if loaded is not None:
            return loaded
        _count("misses")
        return self.save(generate(), profile, instructions, seed)

    def entries(self) -> list[Path]:
        """Every entry file, oldest first (mtime, then name for stability)."""
        paths = []
        for path in self.root.glob("*.npz"):
            try:
                paths.append((path.stat().st_mtime_ns, path.name, path))
            except OSError:
                continue  # concurrently evicted
        return [path for _, _, path in sorted(paths)]

    def _evict_over_capacity(self) -> None:
        entries = self.entries()
        excess = len(entries) - self.capacity
        for path in entries[:max(excess, 0)]:
            try:
                path.unlink()
            except OSError:
                continue
            _count("evictions")


# -- the process-wide active store ---------------------------------------------

_active: TraceStore | None = None


def active_store() -> TraceStore | None:
    """The store named by ``REPRO_TRACE_STORE``, or None when unset.

    Re-resolved on every call so tests (and the CLI) can point the process
    at a different directory mid-flight; the instance is reused while the
    path is stable.
    """
    global _active
    path = store_path()
    if path is None:
        _active = None
        return None
    if _active is None or _active.root != Path(path):
        _active = TraceStore(path)
    return _active
