"""Closed-form misprediction oracles for the string-matching workloads.

The comparison branch of Morris-Pratt/KMP over a memoryless random text is
analytically tractable (Nicaud, Pivoteau & Vialette): the matcher induces a
small finite Markov chain whose per-state branch-outcome distribution is
known exactly, so the *expected* misprediction rate of a predictor — not a
golden number measured once, but a formula — can be computed and compared
against what the harness measures.  This module builds that chain and
derives, per (pattern, source, predictor-class) cell:

* the exact stationary misprediction rate, and
* a concentration scale (asymptotic per-branch sigma plus deterministic
  model slack) that turns the rate into a confidence interval for a
  measured run of ``n`` scored branches.

The matcher chain
-----------------
States are ``F_j`` ("fresh": about to compare a newly drawn character with
``pattern[j]``) and ``S_(j,c)`` ("stale": a previous mismatch retained
character ``c``, now compared with ``pattern[j]``).  From ``F_j`` a
character ``c`` is drawn from the source: a match advances to ``F_{j+1}``
(wrapping to the restart state on a full match), a mismatch follows the
failure link — Morris-Pratt's border or KMP's strict border — either
consuming the character (link ``-1``, back to ``F_0``) or retaining it
(``S_(link,c)``).  Stale states are deterministic: the retained character
either matches ``pattern[j]`` or it does not.  The executed branch is
*taken on mismatch* (the program's ``If`` takes the then-path on a match,
and the ISA branch jumps on the predicate failing), so each transition
carries an exact outcome label, and the single conditional site means the
predictor sees exactly this labelled chain and nothing else.

Predictor models
----------------
* ``counter_rate_iid`` — a ``b``-bit saturating counter fed i.i.d.
  Bernoulli(q) taken-outcomes is a birth-death chain with stationary
  weights proportional to ``(q/(1-q))^i``; the closed-form stationary
  misprediction rate follows directly.
* bimodal — one conditional PC means one counter, so the joint
  (matcher-state x counter-value) chain is exact and tiny.  Its stationary
  distribution gives the exact rate; the asymptotic (Markov-CLT) variance
  comes from the chain's Poisson equation, not an i.i.d. approximation.
* gshare — one conditional PC makes ``index = fold(pc) XOR history`` a
  *bijection* from h-bit global-history windows to table entries.  An
  exact window-profile DP pushes the stationary state distribution h
  steps forward, recording outcome labels, to obtain the exact joint
  distribution P(state, last-h-window).  Whenever every window's support
  agrees on the taken probability (which the DP verifies outcome-window
  by outcome-window), the per-window outcome stream is i.i.d. and the
  rate decomposes as ``sum_w P(w) * counter_rate_iid(q_w)``.  Windows
  whose support mixes different taken probabilities contribute their
  full mass to the bound's ``model_slack`` — the oracle is honest about
  the (typically ~2^-h) mass it cannot decompose.
* ``bayes_context_rate`` — the Bayes-optimal rate of *any* predictor keyed
  on the last h outcomes, ``sum_w P(w) * min(q_w, 1-q_w)``.  Conditioning
  on a longer window refines the partition, so this is monotone
  non-increasing in h: the property the Hypothesis suite pins.

Tolerance policy (see DESIGN.md, "oracle validation"): a measurement of
``n`` scored branches is accepted within ``3 * sigma / sqrt(n) +
model_slack + training / n``.  ``sigma`` is the chain's asymptotic
per-branch deviation scale times a documented inflation factor (the CLT is
asymptotic and, for gshare, per-context counters train on overlapping
prefixes); the training term charges each reachable context its *exact*
expected initialization excursion (:func:`counter_training_excess`),
capped by the probability the context is visited at all.  The oracle
always models the *fault-free* matcher — a profile
with ``fault_bias > 0`` emits a trace the oracle deliberately does not
follow, which is exactly how the conformance gate's fault drill works.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np

from repro.common.errors import ConfigurationError
from repro.workloads.stringmatch import (
    StringMatchProfile,
    failure_table,
    pattern_symbols,
    restart_state,
)

#: CLT inflation factors: the analytic sigma is asymptotic; finite runs see
#: initialization transients (bimodal) and cross-context training coupling
#: (gshare).  Factors chosen so a clean 3-sigma gate has comfortable margin
#: while a percent-level bias still trips it by an order of magnitude.
KAPPA_BIMODAL = 1.5
KAPPA_GSHARE = 5.0

#: Floor on the per-branch sigma scale so near-deterministic cells keep a
#: nonzero (but still percent-tight at n ~ 10^4) acceptance band.
SIGMA_FLOOR = 0.01

#: Refuse window-profile DPs past this many (state, window) atoms.
WINDOW_DP_CAP = 250_000

#: Two per-state taken probabilities within this are "the same context".
_Q_RESOLUTION_EPS = 1e-9


class OracleUnsupportedError(ConfigurationError):
    """The requested cell has no closed form this oracle can certify."""


@dataclass(frozen=True)
class Edge:
    """One matcher transition: probability, branch outcome, target state."""

    prob: float
    taken: bool  # True = mismatch (the If's else-path)
    target: int


@dataclass(frozen=True)
class MatcherChain:
    """The labelled matcher Markov chain plus its stationary solution."""

    labels: tuple[str, ...]
    edges: tuple[tuple[Edge, ...], ...]
    pi: np.ndarray = field(compare=False)
    taken_prob: np.ndarray = field(compare=False)  # P(taken | state)

    @property
    def size(self) -> int:
        return len(self.labels)


@dataclass(frozen=True)
class OracleBound:
    """An analytic expectation with its concentration scales.

    ``rate`` is the exact stationary expectation; ``sigma`` the inflated
    asymptotic per-branch deviation scale; ``model_slack`` a deterministic
    additive error the model admits (mass it could not decompose);
    ``training`` charges counter initialization transients: per context an
    (excess, mass) pair, where excess is the exact expected number of
    extra mispredictions a counter starting at the repo's init value pays
    relative to stationary (:func:`counter_training_excess`) and mass the
    context's stationary probability.  A context visited less than once in
    expectation cannot pay a full excursion, hence the ``min(1, n * mass)``
    visit cap in :meth:`tolerance`.
    """

    rate: float
    sigma: float
    model_slack: float = 0.0
    training: tuple[tuple[float, float], ...] = ()  # (excess, mass) pairs

    def tolerance(self, scored: int) -> float:
        """Acceptance half-width for a measurement of ``scored`` branches."""
        if scored <= 0:
            raise ConfigurationError(f"scored branch count must be positive, got {scored}")
        train = sum(
            excess * min(1.0, scored * mass) for excess, mass in self.training
        )
        return (
            3.0 * self.sigma / math.sqrt(scored)
            + self.model_slack
            + train / scored
        )

    def accepts(self, measured_rate: float, scored: int) -> bool:
        """True when ``measured_rate`` is within tolerance of the formula."""
        return abs(measured_rate - self.rate) <= self.tolerance(scored)


def _solve_stationary(P: np.ndarray) -> np.ndarray:
    """Stationary distribution of a finite chain (least squares on
    ``pi P = pi`` with the normalization row appended — robust to the
    rank deficiency of ``P - I``)."""
    n = P.shape[0]
    A = np.vstack([P.T - np.eye(n), np.ones((1, n))])
    b = np.zeros(n + 1)
    b[-1] = 1.0
    pi, *_ = np.linalg.lstsq(A, b, rcond=None)
    pi = np.clip(pi, 0.0, None)
    return pi / pi.sum()


@lru_cache(maxsize=256)
def build_matcher_chain(profile: StringMatchProfile) -> MatcherChain:
    """The exact MP/KMP comparison chain for ``profile`` (fault-free model).

    Breadth-first from ``F_0`` so only reachable states appear; stale
    states are keyed by (position, retained character).
    """
    symbols = pattern_symbols(profile.pattern)
    fail = failure_table(profile.pattern, profile.algorithm)
    restart = restart_state(profile.pattern)
    source = profile.source_probabilities()
    m = len(symbols)

    index: dict[tuple, int] = {}
    labels: list[str] = []
    edge_lists: list[list[Edge]] = []
    order: list[tuple] = []

    def intern(key: tuple) -> int:
        if key not in index:
            index[key] = len(labels)
            labels.append(
                f"F{key[1]}" if key[0] == "F" else f"S{key[1]}·{chr(ord('a') + key[2])}"
            )
            edge_lists.append([])
            order.append(key)
        return index[key]

    intern(("F", 0))
    cursor = 0
    while cursor < len(order):
        key = order[cursor]
        state = index[key]
        cursor += 1
        if key[0] == "F":
            j = key[1]
            for char, p_char in enumerate(source):
                if p_char <= 0.0:
                    continue
                if char == symbols[j]:
                    nxt = j + 1
                    target = intern(("F", restart if nxt == m else nxt))
                    edge_lists[state].append(Edge(p_char, False, target))
                else:
                    link = fail[j]
                    if link < 0:
                        target = intern(("F", 0))
                    else:
                        target = intern(("S", link, char))
                    edge_lists[state].append(Edge(p_char, True, target))
        else:
            _, j, char = key
            if char == symbols[j]:
                nxt = j + 1
                target = intern(("F", restart if nxt == m else nxt))
                edge_lists[state].append(Edge(1.0, False, target))
            else:
                link = fail[j]
                if link < 0:
                    target = intern(("F", 0))
                else:
                    target = intern(("S", link, char))
                edge_lists[state].append(Edge(1.0, True, target))

    n = len(labels)
    P = np.zeros((n, n))
    q = np.zeros(n)
    for s, edges in enumerate(edge_lists):
        for e in edges:
            P[s, e.target] += e.prob
            if e.taken:
                q[s] += e.prob
    pi = _solve_stationary(P)
    return MatcherChain(
        labels=tuple(labels),
        edges=tuple(tuple(es) for es in edge_lists),
        pi=pi,
        taken_prob=q,
    )


def _chain_rate_and_sigma(
    edges: tuple[tuple[Edge, ...], ...] | list[list[Edge]],
    cost: dict[tuple[int, int], float],
) -> tuple[float, float]:
    """Exact stationary mean and asymptotic per-step sigma of an additive
    edge functional on a finite ergodic chain.

    ``cost`` maps (state, edge-ordinal) to the functional's value on that
    transition.  The mean is ``pi . cbar``; the variance solves the chain's
    Poisson equation ``(I - P) g = cbar - mu`` and evaluates the martingale
    increments ``c_e + g(target) - g(source) - mu`` under the stationary
    edge measure (the standard Markov-CLT form).
    """
    n = len(edges)
    P = np.zeros((n, n))
    cbar = np.zeros(n)
    for s, es in enumerate(edges):
        for i, e in enumerate(es):
            P[s, e.target] += e.prob
            cbar[s] += e.prob * cost.get((s, i), 0.0)
    pi = _solve_stationary(P)
    mu = float(pi @ cbar)
    A = np.vstack([np.eye(n) - P, np.ones((1, n))])
    b = np.concatenate([cbar - mu, [0.0]])
    g, *_ = np.linalg.lstsq(A, b, rcond=None)
    var = 0.0
    for s, es in enumerate(edges):
        for i, e in enumerate(es):
            d = cost.get((s, i), 0.0) + g[e.target] - g[s] - mu
            var += pi[s] * e.prob * d * d
    return mu, math.sqrt(max(var, 0.0))


def counter_rate_iid(q: float, bits: int = 2) -> float:
    """Stationary misprediction rate of a ``bits``-bit saturating counter
    fed i.i.d. Bernoulli(q) taken-outcomes (predict taken at value >=
    2^(bits-1); the repo's :class:`CounterTable` semantics).

    Birth-death stationary weights are ``r^i`` with ``r = q/(1-q)``; a
    state below threshold mispredicts with probability ``q`` (it predicts
    not-taken), one at or above threshold with ``1 - q``.
    """
    if bits < 1:
        raise ConfigurationError(f"counter width must be >= 1 bit, got {bits}")
    if q <= 0.0 or q >= 1.0:
        return 0.0  # deterministic outcome: the counter saturates and is perfect
    n = 1 << bits
    threshold = n >> 1
    r = q / (1.0 - q)
    weights = [r**i for i in range(n)]
    total = sum(weights)
    hit = sum(w * ((1.0 - q) if i >= threshold else q) for i, w in enumerate(weights))
    return hit / total


def counter_training_excess(q: float, bits: int = 2) -> float:
    """Exact expected excess mispredictions of a ``bits``-bit counter that
    starts at the repo's init value (threshold - 1, weakly not-taken)
    instead of its stationary law, under i.i.d. Bernoulli(q) outcomes.

    This is the bias function of the counter chain's Poisson equation
    evaluated at the init state: ``g(init) - pi . g``.  It is 0 when the
    init state already predicts the favoured direction (q < 1/2) and at
    most ~1-2 otherwise — far tighter than charging a flat per-context
    constant.
    """
    if q <= 0.0:
        return 0.0
    n = 1 << bits
    threshold = n >> 1
    init = threshold - 1
    if q >= 1.0:
        return float(threshold - init)  # mispredicts until it crosses threshold
    P = np.zeros((n, n))
    for v in range(n):
        P[v, min(n - 1, v + 1)] += q
        P[v, max(0, v - 1)] += 1.0 - q
    cbar = np.array([q if v < threshold else 1.0 - q for v in range(n)])
    pi = _solve_stationary(P)
    mu = float(pi @ cbar)
    A = np.vstack([np.eye(n) - P, np.ones((1, n))])
    b = np.concatenate([cbar - mu, [0.0]])
    g, *_ = np.linalg.lstsq(A, b, rcond=None)
    return float(max(g[init] - pi @ g, 0.0))


def taken_rate_oracle(profile: StringMatchProfile) -> OracleBound:
    """Exact stationary taken (mismatch) rate of the comparison branch,
    with its Markov-CLT sigma — the trace-generator invariant bound."""
    chain = build_matcher_chain(profile)
    cost = {
        (s, i): 1.0
        for s, es in enumerate(chain.edges)
        for i, e in enumerate(es)
        if e.taken
    }
    mu, sigma = _chain_rate_and_sigma(chain.edges, cost)
    return OracleBound(rate=mu, sigma=max(sigma, SIGMA_FLOOR) * KAPPA_BIMODAL)


@lru_cache(maxsize=256)
def bimodal_oracle(profile: StringMatchProfile, bits: int = 2) -> OracleBound:
    """Exact bimodal rate: the workload's single conditional PC uses one
    counter, so the joint (matcher x counter) chain is exact."""
    chain = build_matcher_chain(profile)
    n_values = 1 << bits
    threshold = n_values >> 1
    joint_edges: list[list[Edge]] = []
    cost: dict[tuple[int, int], float] = {}

    def joint_index(state: int, value: int) -> int:
        return state * n_values + value

    for s in range(chain.size):
        for v in range(n_values):
            es: list[Edge] = []
            for e in chain.edges[s]:
                predict_taken = v >= threshold
                mispredict = predict_taken != e.taken
                v2 = min(n_values - 1, v + 1) if e.taken else max(0, v - 1)
                if mispredict:
                    cost[(joint_index(s, v), len(es))] = 1.0
                es.append(Edge(e.prob, e.taken, joint_index(e.target, v2)))
            joint_edges.append(es)
    mu, sigma = _chain_rate_and_sigma(joint_edges, cost)
    return OracleBound(
        rate=mu,
        sigma=max(sigma, SIGMA_FLOOR) * KAPPA_BIMODAL,
        training=((float(n_values), 1.0),),  # one counter's init excursion
    )


@lru_cache(maxsize=256)
def window_profile(
    chain: MatcherChain, history_length: int, cap: int = WINDOW_DP_CAP
) -> dict[tuple[int, int], float]:
    """Exact stationary joint distribution of (state, last-h-outcome window).

    Starting from the stationary state law and pushing forward exactly
    ``h`` steps while recording outcome labels yields the stationary joint
    at the end of the push — stationarity makes the unrolled DP exact, no
    fixpoint needed.  Windows are ints (newest outcome in bit 0's
    opposite end — the encoding is private; only window *identity*
    matters, since the gshare index map is a bijection on windows).
    """
    if history_length < 0:
        raise ConfigurationError(f"history length must be >= 0, got {history_length}")
    mask = (1 << history_length) - 1 if history_length else 0
    level: dict[tuple[int, int], float] = {
        (s, 0): float(p) for s, p in enumerate(chain.pi) if p > 0.0
    }
    for _ in range(history_length):
        nxt: dict[tuple[int, int], float] = {}
        for (s, window), weight in level.items():
            for e in chain.edges[s]:
                key = (e.target, ((window << 1) | int(e.taken)) & mask)
                nxt[key] = nxt.get(key, 0.0) + weight * e.prob
        if len(nxt) > cap:
            raise OracleUnsupportedError(
                f"window-profile DP exceeded {cap} atoms at h={history_length}; "
                "this cell has no certified gshare closed form"
            )
        level = nxt
    return level


@lru_cache(maxsize=256)
def gshare_oracle(profile: StringMatchProfile, history_length: int) -> OracleBound:
    """Gshare rate via the window-resolution decomposition.

    Valid because the workload has one conditional PC: h-bit histories map
    bijectively to table entries, so each entry's counter sees exactly the
    outcomes that follow one window.  For every window whose support
    states agree on P(taken) those outcomes are i.i.d. and the entry
    behaves as a closed-form counter; disagreeing windows (mass typically
    ~2^-h) are charged to ``model_slack`` in full.
    """
    chain = build_matcher_chain(profile)
    joint = window_profile(chain, history_length)
    by_window: dict[int, list[tuple[int, float]]] = {}
    for (s, window), weight in joint.items():
        by_window.setdefault(window, []).append((s, weight))

    rate = 0.0
    slack = 0.0
    training: list[tuple[float, float]] = []
    excess_cache: dict[float, float] = {}
    for support in by_window.values():
        qs = [float(chain.taken_prob[s]) for s, _ in support]
        mass = sum(weight for _, weight in support)
        if max(qs) - min(qs) <= _Q_RESOLUTION_EPS:
            rate += mass * counter_rate_iid(qs[0], bits=2)
        else:
            # Mixed support: approximate by the per-state decomposition and
            # admit the whole window's mass as model error.
            rate += sum(
                weight * counter_rate_iid(float(chain.taken_prob[s]), bits=2)
                for s, weight in support
            )
            slack += mass
        q_train = max(qs)  # worst-case init excursion over the support
        if q_train not in excess_cache:
            excess_cache[q_train] = counter_training_excess(q_train, bits=2)
        if excess_cache[q_train] > 0.0:
            training.append((excess_cache[q_train], mass))
    sigma = max(math.sqrt(rate * (1.0 - rate)), SIGMA_FLOOR) * KAPPA_GSHARE
    return OracleBound(
        rate=rate,
        sigma=sigma,
        model_slack=slack,
        training=tuple(training),
    )


def bayes_context_rate(profile: StringMatchProfile, history_length: int) -> float:
    """Bayes-optimal misprediction rate over the last ``history_length``
    outcomes: ``sum_w P(w) min(q_w, 1-q_w)``.  Monotone non-increasing in
    the history length (longer windows refine the partition) — the
    property the Hypothesis suite checks on random patterns."""
    chain = build_matcher_chain(profile)
    joint = window_profile(chain, history_length)
    by_window: dict[int, tuple[float, float]] = {}
    for (s, window), weight in joint.items():
        mass, taken = by_window.get(window, (0.0, 0.0))
        by_window[window] = (
            mass + weight,
            taken + weight * float(chain.taken_prob[s]),
        )
    return sum(
        mass * min(taken / mass, 1.0 - taken / mass)
        for mass, taken in by_window.values()
        if mass > 0.0
    )


#: Families this oracle certifies; registry families outside this set have
#: no closed form here and :func:`oracle_bound` refuses them.
ORACLE_FAMILIES = ("bimodal", "gshare")


def oracle_bound(
    profile: StringMatchProfile, family: str, budget_bytes: int
) -> OracleBound:
    """The analytic bound for ``family`` sized at ``budget_bytes``, using
    the same sizing rules the sweep harness applies."""
    if profile.fault_bias:
        # The oracle models the fault-free matcher on purpose: the fault
        # drill asserts a biased trace falls OUTSIDE this bound.
        profile = StringMatchProfile(
            **{**_profile_fields(profile), "fault_bias": 0.0}
        )
    if family == "bimodal":
        return bimodal_oracle(profile)
    if family == "gshare":
        from repro.predictors.sizing import size_gshare

        return gshare_oracle(profile, size_gshare(budget_bytes).history_length)
    raise OracleUnsupportedError(
        f"family {family!r} has no closed-form oracle (supported: {ORACLE_FAMILIES})"
    )


def _profile_fields(profile: StringMatchProfile) -> dict:
    from dataclasses import fields as dc_fields

    return {f.name: getattr(profile, f.name) for f in dc_fields(profile)}
