"""Branch predicates: the behavioural atoms of the synthetic workloads.

Each static conditional branch in a synthetic program owns a predicate that
decides its direction from program state.  The predicate mix is what gives
each SPECint stand-in its predictor-relevant personality:

* ``BiasedPredicate`` — direction is a (possibly heavily) biased coin.
  Bimodal predictors eat these for breakfast; they set the floor.
* ``PatternPredicate`` — a fixed periodic direction sequence per branch
  (e.g. TTNTTN...).  Local-history predictors capture these exactly.
* ``GlobalParityPredicate`` — direction is the parity of *other recent
  branch outcomes* at specified lags, with optional noise.  This is the
  global-history correlation that gshare-family predictors exploit; long
  lags beyond a table predictor's index width are where the perceptron's
  long histories win.
* ``HiddenStatePredicate`` — direction tracks a hidden boolean that flips
  as a slow random walk.  Recent-outcome correlation exists (the same
  variable drives other branches) but there is an irreducible noise floor —
  the mcf/twolf-style hard branches.
* ``LoopPredicate`` is not here: loop trip behaviour is produced
  structurally by the program generator's Loop nodes.

All randomness flows through the generator's seeded streams, so traces are
bit-reproducible.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from repro.common.errors import ConfigurationError


class ProgramState:
    """Dynamic state predicates read: recent branch outcomes and hidden bits.

    ``outcome_history`` is the program-wide sequence of conditional-branch
    outcomes (newest in bit 0), maintained by the executor — the ground
    truth that a predictor's global history register approximates.
    """

    HISTORY_BITS = 128

    def __init__(self, rng: np.random.Generator, hidden_bits: int = 8) -> None:
        if hidden_bits < 1:
            raise ConfigurationError("need at least one hidden bit")
        self.rng = rng
        self.outcome_history = 0
        self.hidden = [bool(rng.integers(2)) for _ in range(hidden_bits)]

    def record_outcome(self, taken: bool) -> None:
        """Append a conditional-branch outcome to the global stream."""
        self.outcome_history = (
            (self.outcome_history << 1) | int(taken)
        ) & ((1 << self.HISTORY_BITS) - 1)

    def outcome_at_lag(self, lag: int) -> bool:
        """Outcome of the conditional branch ``lag`` branches ago (1 = last)."""
        if lag < 1 or lag > self.HISTORY_BITS:
            raise ConfigurationError(f"lag {lag} out of range")
        return bool((self.outcome_history >> (lag - 1)) & 1)

    def flip_hidden(self, index: int, probability: float) -> None:
        """Random-walk step for a hidden bit (called by straight-line code)."""
        if self.rng.random() < probability:
            self.hidden[index] = not self.hidden[index]


class Predicate(ABC):
    """Decides a branch direction from program state."""

    @abstractmethod
    def evaluate(self, state: ProgramState) -> bool:
        """Direction for this execution of the branch."""

    def describe(self) -> str:
        """Short human-readable behaviour tag (used in program dumps)."""
        return type(self).__name__


@dataclass
class BiasedPredicate(Predicate):
    """Taken with fixed probability ``bias``."""

    bias: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.bias <= 1.0:
            raise ConfigurationError(f"bias must be in [0, 1], got {self.bias}")

    def evaluate(self, state: ProgramState) -> bool:
        return bool(state.rng.random() < self.bias)

    def describe(self) -> str:
        return f"biased({self.bias:.2f})"


@dataclass
class PatternPredicate(Predicate):
    """A fixed repeating direction pattern, private to the branch."""

    pattern: tuple[bool, ...]
    _position: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if not self.pattern:
            raise ConfigurationError("pattern must not be empty")

    def evaluate(self, state: ProgramState) -> bool:
        value = self.pattern[self._position]
        self._position = (self._position + 1) % len(self.pattern)
        return value

    def describe(self) -> str:
        return "pattern(" + "".join("T" if b else "N" for b in self.pattern) + ")"


@dataclass
class GlobalParityPredicate(Predicate):
    """A boolean function of recent global outcomes at ``lags``.

    ``op`` selects the combiner: ``xor`` (true parity — balanced), ``and``
    or ``or`` (biased, like real-world correlated branches: "if the earlier
    check passed, this one almost always does too").  The result is XORed
    with ``invert`` and flipped with probability ``noise``.  All three forms
    are deterministic functions of global history, so any predictor whose
    history window covers the largest lag can learn them.
    """

    lags: tuple[int, ...]
    invert: bool = False
    noise: float = 0.0
    op: str = "xor"

    def __post_init__(self) -> None:
        if not self.lags:
            raise ConfigurationError("need at least one lag")
        if not 0.0 <= self.noise <= 1.0:
            raise ConfigurationError(f"noise must be in [0, 1], got {self.noise}")
        if self.op not in ("xor", "and", "or"):
            raise ConfigurationError(f"unknown parity op {self.op!r}")

    def evaluate(self, state: ProgramState) -> bool:
        bits = [state.outcome_at_lag(lag) for lag in self.lags]
        if self.op == "xor":
            value = False
            for bit in bits:
                value ^= bit
        elif self.op == "and":
            value = all(bits)
        else:
            value = any(bits)
        value ^= self.invert
        if self.noise and state.rng.random() < self.noise:
            value = not value
        return value

    def describe(self) -> str:
        return f"parity({self.op}, lags={self.lags}, noise={self.noise:.2f})"


@dataclass
class HiddenStatePredicate(Predicate):
    """Tracks hidden bit ``index``, inverted or not, with noise."""

    index: int
    invert: bool = False
    noise: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.noise <= 1.0:
            raise ConfigurationError(f"noise must be in [0, 1], got {self.noise}")

    def evaluate(self, state: ProgramState) -> bool:
        value = state.hidden[self.index % len(state.hidden)] ^ self.invert
        if self.noise and state.rng.random() < self.noise:
            value = not value
        return value

    def describe(self) -> str:
        return f"hidden(bit={self.index}, noise={self.noise:.2f})"
