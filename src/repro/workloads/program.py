"""Synthetic-program executor: turns a laid-out :class:`Program` into a
dynamic :class:`Trace`.

The executor walks the structured node tree exactly as the hardware would
see the compiled program run: straight-line runs accumulate into fetch
blocks, conditional branches resolve their predicates against the live
program state, loops iterate their sampled trip counts, and calls push and
pop a real stack (so return addresses and stack memory behave).

Memory addresses are generated per access from three stream kinds:

* ``stack`` — small offsets in the current frame (hot in L1);
* ``stride`` — a per-slot cursor walking an array region, wrapping at the
  workload's array size (capacity behaviour in L2);
* ``random`` — uniform over the workload's working set (the cache-hostile
  pointer chase).

All randomness comes from seeded streams; executing the same program with
the same memory config and budget reproduces the identical trace.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigurationError
from repro.common.rng import derive
from repro.workloads.cfg import (
    INSTRUCTION_BYTES,
    Call,
    If,
    Loop,
    MemOp,
    Node,
    Program,
    StraightCode,
)
from repro.workloads.predicates import ProgramState
from repro.workloads.trace import Block, BranchKind, Trace

STACK_BASE = 0x7FFF_0000
FRAME_BYTES = 512
HEAP_BASE = 0x1000_0000
MAX_CALL_DEPTH = 64


@dataclass(frozen=True)
class MemoryConfig:
    """Data-memory personality of a workload.

    Random ("pointer-chasing") accesses are not uniform over the working
    set: real heaps have hot structures.  ``hot_fraction`` of random
    accesses fall in a hot region of ``hot_bytes``; the rest roam the full
    working set (these are the ones that miss in L2 when the working set
    exceeds it).
    """

    working_set_bytes: int = 1 << 20  # region random accesses roam over
    array_bytes: int = 1 << 13  # length of each strided array
    stride_bytes: int = 4  # strided-access step
    hot_bytes: int = 8 * 1024  # hot subset of the working set
    hot_fraction: float = 0.95  # share of random accesses that stay hot

    def __post_init__(self) -> None:
        if self.working_set_bytes < 4096:
            raise ConfigurationError("working set must be at least 4KB")
        if self.array_bytes < 64:
            raise ConfigurationError("array size must be at least 64B")
        if self.stride_bytes < 1:
            raise ConfigurationError("stride must be positive")
        if self.hot_bytes > self.working_set_bytes:
            raise ConfigurationError("hot region cannot exceed the working set")
        if not 0.0 <= self.hot_fraction <= 1.0:
            raise ConfigurationError("hot fraction must be in [0, 1]")


class _BudgetExhausted(Exception):
    """Internal: raised to unwind execution when the instruction budget hits."""


class _BlockBuilder:
    """Accumulates instructions into the current fetch block."""

    def __init__(self) -> None:
        self.pc = 0
        self.instructions = 0
        self.loads: list[int] = []
        self.stores: list[int] = []

    def start(self, pc: int) -> None:
        """Begin a new block at ``pc``."""
        self.pc = pc
        self.instructions = 0
        self.loads = []
        self.stores = []

    def add(self, instructions: int) -> None:
        """Append straight-line instructions to the open block."""
        self.instructions += instructions


class ProgramExecutor:
    """Executes a program for a given instruction budget, emitting a Trace."""

    def __init__(
        self,
        program: Program,
        seed: int,
        memory: MemoryConfig | None = None,
        hidden_bits: int = 8,
    ) -> None:
        if program.code_size_bytes == 0:
            raise ConfigurationError(
                f"program {program.name!r} has not been laid out; call layout_program first"
            )
        self.program = program
        self.memory = memory or MemoryConfig()
        self.rng = derive(seed, "exec", program.name)
        self.state = ProgramState(self.rng, hidden_bits=hidden_bits)
        self._stride_cursors: dict[tuple[int, int], int] = {}
        self._stack_depth = 0
        self._budget = 0
        self._executed = 0
        self._blocks: list[Block] = []
        self._builder = _BlockBuilder()

    # -- address streams -----------------------------------------------------

    def _address_for(self, op: MemOp, node_key: int, slot: int) -> int:
        if op.kind == "stack":
            frame = STACK_BASE - self._stack_depth * FRAME_BYTES
            return frame - int(self.rng.integers(0, FRAME_BYTES // 8)) * 8
        if op.kind == "stride":
            key = (node_key, slot)
            cursor = self._stride_cursors.get(key)
            if cursor is None:
                # Each slot owns a region within the working set.
                region = (hash(key) % max(self.memory.working_set_bytes // self.memory.array_bytes, 1))
                cursor = HEAP_BASE + region * self.memory.array_bytes
                self._stride_cursors[key] = cursor
            base = HEAP_BASE + (
                (cursor - HEAP_BASE) // self.memory.array_bytes
            ) * self.memory.array_bytes
            next_cursor = cursor + self.memory.stride_bytes
            if next_cursor >= base + self.memory.array_bytes:
                next_cursor = base
            self._stride_cursors[(node_key, slot)] = next_cursor
            return cursor
        # random: pointer chase, mostly within the hot region.
        if self.rng.random() < self.memory.hot_fraction:
            span = self.memory.hot_bytes
        else:
            span = self.memory.working_set_bytes
        offset = int(self.rng.integers(0, span // 8)) * 8
        return HEAP_BASE + offset

    # -- block emission --------------------------------------------------------

    def _charge(self, instructions: int) -> None:
        self._executed += instructions
        self._builder.add(instructions)
        if self._executed >= self._budget:
            raise _BudgetExhausted

    def _emit_branch(
        self, branch_pc: int, kind: BranchKind, taken: bool, target: int, next_pc: int
    ) -> None:
        """Close the current block with a branch and start the next one."""
        builder = self._builder
        self._blocks.append(
            Block(
                pc=builder.pc,
                instructions=builder.instructions,
                loads=tuple(builder.loads),
                stores=tuple(builder.stores),
                branch_kind=kind,
                branch_pc=branch_pc,
                taken=taken,
                target=target,
            )
        )
        builder.start(next_pc)

    # -- node execution ----------------------------------------------------------

    def _run_straight(self, node: StraightCode) -> None:
        self._charge(node.instructions)
        node_key = node.address
        for slot, op in enumerate(node.mem_ops):
            address = self._address_for(op, node_key, slot)
            if op.is_store:
                self._builder.stores.append(address)
            else:
                self._builder.loads.append(address)
        for bit, probability in node.hidden_flips:
            self.state.flip_hidden(bit, probability)

    def _run_if(self, node: If) -> None:
        want_then = node.predicate.evaluate(self.state)
        taken = not want_then  # taken jumps over the then side
        self._charge(1)  # the conditional branch itself
        self.state.record_outcome(taken)
        next_pc = node.taken_target if taken else node.branch_address + INSTRUCTION_BYTES
        self._emit_branch(node.branch_address, BranchKind.CONDITIONAL, taken, node.taken_target, next_pc)
        if want_then:
            self._run_body(node.then_body)
            if node.else_body:
                # Unconditional jump over the else side.
                self._charge(1)
                jump_pc = node.taken_target - INSTRUCTION_BYTES
                self._emit_branch(
                    jump_pc, BranchKind.UNCONDITIONAL, True, node.join_address, node.join_address
                )
        elif node.else_body:
            self._run_body(node.else_body)

    def _run_loop(self, node: Loop) -> None:
        trips = node.trips.sample(self.rng)
        for trip in range(trips):
            self._run_body(node.body)
            continuing = trip < trips - 1
            self._charge(1)  # back-edge conditional
            self.state.record_outcome(continuing)
            next_pc = node.head_address if continuing else node.exit_address
            self._emit_branch(
                node.back_edge_address,
                BranchKind.CONDITIONAL,
                continuing,
                node.head_address,
                next_pc,
            )

    def _run_call(self, node: Call) -> None:
        callee = self.program.functions[node.callee_index]
        self._charge(1)  # the call
        self._emit_branch(
            node.call_address, BranchKind.CALL, True, callee.entry_address, callee.entry_address
        )
        if self._stack_depth >= MAX_CALL_DEPTH:
            raise ConfigurationError(
                f"call depth exceeded {MAX_CALL_DEPTH}; the program generator "
                "must not produce call cycles"
            )
        self._stack_depth += 1
        self._run_body(callee.body)
        self._stack_depth -= 1
        self._charge(1)  # the return
        self._emit_branch(
            callee.return_site_address,
            BranchKind.RETURN,
            True,
            node.return_address,
            node.return_address,
        )

    def _run_body(self, nodes: list[Node]) -> None:
        for node in nodes:
            if isinstance(node, StraightCode):
                self._run_straight(node)
            elif isinstance(node, If):
                self._run_if(node)
            elif isinstance(node, Loop):
                self._run_loop(node)
            elif isinstance(node, Call):
                self._run_call(node)
            else:  # pragma: no cover - defensive
                raise ConfigurationError(f"unknown node type {type(node).__name__}")

    # -- entry point ------------------------------------------------------------

    def run(self, instruction_budget: int) -> Trace:
        """Execute until ``instruction_budget`` instructions have retired.

        The program's ``main`` repeats indefinitely (steady state); the last
        partial block is flushed when the budget trips.
        """
        if instruction_budget < 1:
            raise ConfigurationError("instruction budget must be positive")
        self._budget = instruction_budget
        self._executed = 0
        self._blocks = []
        self._builder.start(self.program.main.entry_address)
        try:
            while True:
                self._run_body(self.program.main.body)
                # Loop back to main's entry: model as an unconditional jump.
                self._charge(1)
                self._emit_branch(
                    self.program.main.return_site_address,
                    BranchKind.UNCONDITIONAL,
                    True,
                    self.program.main.entry_address,
                    self.program.main.entry_address,
                )
        except _BudgetExhausted:
            if self._builder.instructions > 0:
                self._blocks.append(
                    Block(
                        pc=self._builder.pc,
                        instructions=self._builder.instructions,
                        loads=tuple(self._builder.loads),
                        stores=tuple(self._builder.stores),
                    )
                )
        return Trace(name=self.program.name, blocks=self._blocks)
