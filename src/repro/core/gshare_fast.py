"""gshare.fast — the paper's pipelined single-cycle branch predictor.

Organization (Section 3.1, Figure 4):

* A large PHT of ``2**n`` two-bit counters whose raw read latency is ``L``
  cycles at the paper's 8 FO4 clock.
* The read is *pipelined*: a line of ``2**b`` candidate counters is fetched
  starting ``L`` cycles before the prediction is needed, addressed by the
  **older** portion of the global history — bits that are already known when
  the fetch starts.
* At prediction time, a single-cycle select forms the low ``b`` index bits
  from the lower 9 branch-address bits XOR-folded with the **newest**
  history bits (the ones produced while the line was in flight, tracked by
  the Branch Present / New History Bit latches of the predictor pipeline).

Index function (the functional model used on branch traces):

    stale   = max(L, b)                    # branches of line-address staleness
    high    = (H >> stale) & mask(n - b)   # line address: old history only
    low     = fold9(pc, b) ^ (H & mask(b)) # single-cycle select: PC + newest
    index   = (high << b) | low

With ``L <= b`` every history bit participates (ages [0, b) in the select,
ages [stale, stale + n - b) in the line address with stale == b).  With
``L > b`` — very large PHTs — the line address is up to ``L - b`` branches
staler than ideal, the same stale-history effect the EV8 design reports as
having minimal accuracy impact.  The accuracy cost of gshare.fast relative
to plain gshare is structural either way: only ~9 PC bits (folded to ``b``)
disambiguate branches that share history, where gshare XORs the PC across
the whole index.

This module is the *functional* model: exact predictions, no cycle clock.
The cycle-accurate predictor pipeline with the latch protocol, checkpointed
buffers and misprediction recovery is :mod:`repro.core.pipeline_model`; a
test proves the two produce identical predictions on branch-per-cycle
traces.

Non-speculative PHT update (Section 3.2) is modelled by an update-delay
queue: counter training is applied only after ``update_delay`` subsequent
branches have been predicted, reproducing the paper's "update the table
slowly" policy (their measurement: a 64-branch delay moves a 256KB budget
from 4.03% to 4.07% mispredictions).
"""

from __future__ import annotations

from repro.common.bits import fold, log2_exact, mask
from repro.common.counters import CounterTable
from repro.common.errors import ConfigurationError
from repro.common.history import HistoryRegister
from repro.core.delayed_update import DelayedUpdateQueue
from repro.predictors.base import BranchPredictor
from repro.timing.fo4 import PAPER_CLOCK, ClockModel
from repro.timing.sram import pht_array

#: Number of low branch-address bits fed to the select stage (Figure 4).
PC_SELECT_BITS = 9
#: The large PHT is built from this many column-interleaved banks read in
#: parallel, so a line fetch sees the access time of one bank — the same
#: banking CACTI applies to the paper's other large predictors (Table 2's
#: per-bank latencies).
PHT_BANKS = 4
#: Smallest / largest supported PHT-buffer index widths.
MIN_BUFFER_BITS = 1
MAX_BUFFER_BITS = 10


def default_buffer_bits(pht_latency: int, index_bits: int) -> int:
    """Default log2 of the PHT-buffer size.

    Large enough to absorb one new history bit per cycle of PHT latency
    (buffer of ``2**L`` entries, Section 3.3.1), at least the paper's
    8-entry buffer, capped both by hardware reason (MAX_BUFFER_BITS) and by
    the index width itself.
    """
    bits = max(pht_latency, 3)
    return max(MIN_BUFFER_BITS, min(bits, MAX_BUFFER_BITS, index_bits - 1))


def multi_branch_buffer_entries(pht_latency: int, branches_per_block: int) -> int:
    """PHT-buffer size for a multiple-branch-prediction front end.

    Section 3.3.1: predictions for consecutive branches are already laid
    out close together in the PHT buffer, so predicting up to ``p``
    branches per block only requires enlarging the buffer: with a
    ``k``-cycle PHT latency the buffer holds ``2**k * p`` entries — the
    paper's example being 8 branches per fetch block at latency 3 needing
    at least a 64-entry buffer.
    """
    if pht_latency < 1:
        raise ConfigurationError(f"PHT latency must be >= 1, got {pht_latency}")
    if branches_per_block < 1:
        raise ConfigurationError(
            f"branches per block must be >= 1, got {branches_per_block}"
        )
    return (1 << pht_latency) * branches_per_block


class GshareFastPredictor(BranchPredictor):
    """Functional model of the pipelined gshare.fast predictor."""

    name = "gshare_fast"

    def __init__(
        self,
        entries: int,
        pht_latency: int | None = None,
        buffer_bits: int | None = None,
        update_delay: int = 0,
        clock: ClockModel = PAPER_CLOCK,
    ) -> None:
        super().__init__()
        self.index_bits = log2_exact(entries)
        if self.index_bits < 2:
            raise ConfigurationError("gshare.fast needs a PHT of at least 4 entries")
        if pht_latency is None:
            pht_latency = pht_array(max(entries // PHT_BANKS, 8)).access_cycles(clock)
        if pht_latency < 1:
            raise ConfigurationError(f"PHT latency must be >= 1 cycle, got {pht_latency}")
        if buffer_bits is None:
            buffer_bits = default_buffer_bits(pht_latency, self.index_bits)
        if not MIN_BUFFER_BITS <= buffer_bits <= MAX_BUFFER_BITS:
            raise ConfigurationError(
                f"buffer_bits must be in [{MIN_BUFFER_BITS}, {MAX_BUFFER_BITS}], "
                f"got {buffer_bits}"
            )
        if buffer_bits >= self.index_bits:
            raise ConfigurationError(
                f"buffer_bits {buffer_bits} must be smaller than index width "
                f"{self.index_bits}"
            )
        if update_delay < 0:
            raise ConfigurationError(f"update_delay must be >= 0, got {update_delay}")
        self.pht_latency = pht_latency
        self.buffer_bits = buffer_bits
        self.staleness = max(pht_latency, buffer_bits)
        self.update_delay = update_delay
        # History length: the maximum, log2 of the PHT entry count (§4.1.4),
        # plus the staleness window so stale high bits are still real history.
        self.history = HistoryRegister(self.index_bits + self.staleness)
        self.table = CounterTable(entries, bits=2)
        self._deferred_updates = DelayedUpdateQueue(update_delay, self.table.update)

    @property
    def storage_bits(self) -> int:
        """Hardware state consumed by the predictor, in bits."""
        buffer_bits = (1 << self.buffer_bits) * 2  # prefetched counter line
        # Checkpoint buffers (one per pipeline stage, Section 3.2) are
        # recovery state, counted like the paper counts predictor state: the
        # dominant term is the PHT itself.
        return self.table.storage_bits + self.history.length + buffer_bits

    def tables(self) -> dict[str, CounterTable]:
        """Named counter tables (checkpoint/diff tooling)."""
        return {"pht": self.table}

    def index(self, pc: int) -> int:
        """The full PHT index for ``pc`` under the current history."""
        history = self.history.value
        high = (history >> self.staleness) & mask(self.index_bits - self.buffer_bits)
        pc_bits = fold((pc >> 2) & mask(PC_SELECT_BITS), PC_SELECT_BITS, self.buffer_bits)
        low = (pc_bits ^ history) & mask(self.buffer_bits)
        return (high << self.buffer_bits) | low

    def line_address(self, pc: int) -> int:
        """Which PHT line the pipelined fetch would bring in for ``pc``."""
        return self.index(pc) >> self.buffer_bits

    def _predict(self, pc: int) -> tuple[bool, object]:
        index = self.index(pc)
        return self.table.predict(index), index

    def _update(self, pc: int, taken: bool, predicted: bool, context: object) -> None:
        self._deferred_updates.push(context, taken)
        self.history.push(taken)

    def flush_updates(self) -> None:
        """Apply all deferred PHT updates immediately (end-of-trace drain)."""
        self._deferred_updates.flush()


def gshare_fast_from_config(config) -> GshareFastPredictor:
    """gshare.fast from a sized configuration (latency/buffer widths come
    from the SRAM delay model at the paper's clock)."""
    return GshareFastPredictor(
        entries=config.entries, update_delay=config.update_delay
    )


def build_gshare_fast(
    budget_bytes: int,
    update_delay: int = 0,
    clock: ClockModel = PAPER_CLOCK,
) -> GshareFastPredictor:
    """Size a gshare.fast for ``budget_bytes``: the PHT fills the budget and
    the PHT latency comes from the SRAM delay model."""
    from repro.predictors.sizing import size_gshare_fast

    config = size_gshare_fast(budget_bytes, update_delay=update_delay)
    return GshareFastPredictor(
        entries=config.entries, update_delay=config.update_delay, clock=clock
    )


def _register() -> None:
    """Enroll gshare.fast in the declarative family registry."""
    from repro.predictors.registry import FamilySpec, register
    from repro.predictors.sizing import GshareFastConfig, size_gshare_fast

    register(
        FamilySpec(
            name="gshare_fast",
            config_type=GshareFastConfig,
            sizer=size_gshare_fast,
            builder=gshare_fast_from_config,
            predictor_type=GshareFastPredictor,
            batch_kernel="gshare_fast",
            single_cycle=True,
        )
    )


_register()
