"""The paper's contribution: gshare.fast, its pipeline, and the delay-hiding
schemes it is compared against."""

from repro.core.bimode_fast import BiModeFastPredictor, build_bimode_fast
from repro.core.cascading import CascadingPredictor, CascadingStats
from repro.core.delayed_update import DelayedUpdateQueue
from repro.core.dualpath import DualPathPolicy
from repro.core.gshare_fast import (
    GshareFastPredictor,
    build_gshare_fast,
    default_buffer_bits,
    multi_branch_buffer_entries,
)
from repro.core.overriding import OverridingOutcome, OverridingPredictor, OverridingStats
from repro.core.pipeline_model import GshareFastPipeline, PipelinePrediction

__all__ = [
    "BiModeFastPredictor",
    "CascadingPredictor",
    "CascadingStats",
    "DelayedUpdateQueue",
    "DualPathPolicy",
    "GshareFastPipeline",
    "GshareFastPredictor",
    "OverridingOutcome",
    "OverridingPredictor",
    "OverridingStats",
    "PipelinePrediction",
    "build_bimode_fast",
    "build_gshare_fast",
    "default_buffer_bits",
    "multi_branch_buffer_entries",
]
