"""Hierarchical overriding predictor (Section 2.6.1).

The delay-hiding scheme the paper evaluates (and argues against): a quick,
single-cycle predictor answers immediately so fetch can proceed; a slower,
more accurate predictor answers ``latency`` cycles later and *overrides* the
quick prediction when they disagree, squashing the instructions fetched in
between.  The override penalty is proportional to the slow predictor's
latency — the paper's optimistic assumption charges exactly the access
latency, with no extra squash or refetch cost.

Accuracy-wise the final prediction is always the slow predictor's (it has
the last word).  Performance-wise every disagreement costs an override
bubble, and every final misprediction costs a full pipeline flush — the
tradeoff Figures 2 and 7 quantify.

The quick predictor the paper grants: a 2K-entry gshare assumed to answer in
one cycle (Section 4.1.2).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.common.errors import ConfigurationError
from repro.predictors.base import BranchPredictor
from repro.predictors.gshare import GsharePredictor
from repro.timing.latency import QUICK_PREDICTOR_ENTRIES


@dataclass
class OverridingOutcome:
    """Per-branch result of an overriding prediction pair."""

    quick_taken: bool
    final_taken: bool

    @property
    def overridden(self) -> bool:
        """True when the slow predictor disagreed and overrode the quick one."""
        return self.quick_taken != self.final_taken


@dataclass
class OverridingStats:
    """Bookkeeping for the override mechanism."""

    predictions: int = 0
    overrides: int = 0
    quick_mispredictions: int = 0
    final_mispredictions: int = 0

    @property
    def override_rate(self) -> float:
        """Fraction of predictions where quick and slow disagreed —
        the fraction paying the override bubble (Section 4.5)."""
        if self.predictions == 0:
            return 0.0
        return self.overrides / self.predictions

    @property
    def final_misprediction_rate(self) -> float:
        """Misprediction rate of the final (slow) predictions."""
        if self.predictions == 0:
            return 0.0
        return self.final_mispredictions / self.predictions


class OverridingPredictor:
    """A quick predictor backed by a slow, more accurate one.

    Not a :class:`BranchPredictor` subclass on purpose: its per-branch
    product is the *pair* of predictions (:class:`OverridingOutcome`), which
    the cycle simulator converts into bubbles.  For pure accuracy
    measurements, the final prediction is the slow component's.
    """

    def __init__(
        self,
        slow: BranchPredictor,
        slow_latency: int,
        quick: BranchPredictor | None = None,
        quick_latency: int = 1,
    ) -> None:
        if slow_latency < 1:
            raise ConfigurationError(f"slow latency must be >= 1 cycle, got {slow_latency}")
        if quick_latency < 1:
            raise ConfigurationError(f"quick latency must be >= 1 cycle, got {quick_latency}")
        if quick_latency > slow_latency:
            raise ConfigurationError(
                "the quick predictor must not be slower than the slow one "
                f"({quick_latency} > {slow_latency})"
            )
        if quick is None:
            quick = GsharePredictor(entries=QUICK_PREDICTOR_ENTRIES)
        self.quick = quick
        self.slow = slow
        self.quick_latency = quick_latency
        self.slow_latency = slow_latency
        self.stats = OverridingStats()
        self._recorded = OverridingStats()

    @property
    def name(self) -> str:
        """Display label naming both components."""
        return f"override({self.quick.name}->{self.slow.name})"

    @property
    def override_penalty_cycles(self) -> int:
        """Bubble paid when the slow predictor overrides the quick one:
        the slow predictor's access latency (the paper's optimistic cost)."""
        return self.slow_latency

    @property
    def storage_bits(self) -> int:
        """Combined hardware state of both components, in bits."""
        return self.quick.storage_bits + self.slow.storage_bits

    def predict(self, pc: int) -> OverridingOutcome:
        """Predict with both components; returns the pair of directions."""
        quick_taken = self.quick.predict(pc)
        final_taken = self.slow.predict(pc)
        return OverridingOutcome(quick_taken=quick_taken, final_taken=final_taken)

    def update(self, pc: int, taken: bool) -> bool:
        """Resolve the in-flight branch in both components; returns True
        when the *final* (slow) prediction was correct."""
        quick_correct = self.quick.update(pc, taken)
        final_correct = self.slow.update(pc, taken)
        self.stats.predictions += 1
        if not quick_correct:
            self.stats.quick_mispredictions += 1
        if not final_correct:
            self.stats.final_mispredictions += 1
        if quick_correct != final_correct:
            self.stats.overrides += 1
        return final_correct

    def record_stats(self, registry) -> None:
        """Publish agreement/disagreement/penalty counts into ``registry``.

        Only the delta since the previous call is added, so the harness and
        the cycle simulator can both flush the same wrapper without
        double-counting.  Counters: ``override.predictions``,
        ``override.agreements``, ``override.disagreements`` and
        ``override.penalty_cycles`` (disagreements x the slow latency — the
        bubble cycles the override mechanism costs, Section 4.5).
        """
        stats, last = self.stats, self._recorded
        predictions = stats.predictions - last.predictions
        disagreements = stats.overrides - last.overrides
        if predictions == 0 and disagreements == 0:
            return
        registry.counter("override.predictions").inc(predictions)
        registry.counter("override.agreements").inc(predictions - disagreements)
        registry.counter("override.disagreements").inc(disagreements)
        registry.counter("override.penalty_cycles").inc(
            disagreements * self.override_penalty_cycles
        )
        self._recorded = replace(stats)
