"""bimode.fast — the paper's future work, realized.

The paper closes with: *"We are currently studying ways to reorganize
other predictors to take advantage of the same ideas."*  This module
applies the gshare.fast pipelining recipe (Section 3.1) to the Bi-Mode
predictor, the natural next candidate because all of its big state is
history-indexed:

* the two **direction tables** are indexed gshare-style, so each can be
  pipelined exactly like the gshare.fast PHT: a line of candidate counters
  is prefetched with the *older* history bits, and the newest (in-flight)
  bits plus folded low PC bits select within the line in a single cycle —
  two line fetches run in parallel, one per direction table;
* the **choice table** is PC-indexed, which cannot be prefetched with
  history — but it does not need to be large (it only stores per-branch
  bias), so it is capped at the single-cycle SRAM size (1K entries, the
  Jiménez et al. [7] limit the paper builds on).

The result keeps Bi-Mode's aliasing resistance — a taken-biased and a
not-taken-biased branch that collide in a direction table are separated by
the choice table — while delivering every prediction in one cycle, no
overriding required.  Update policy is standard Bi-Mode partial update.

Index structure per direction table (shared with gshare.fast):

    s    = max(L, b)                      # line-address staleness
    high = (H >> s) & mask(n - b)         # known at line-fetch launch
    low  = fold9(pc, b) ^ (H & mask(b))   # single-cycle select
"""

from __future__ import annotations

from repro.common.bits import fold, log2_exact, mask
from repro.common.counters import CounterTable
from repro.common.errors import ConfigurationError
from repro.core.gshare_fast import (
    MAX_BUFFER_BITS,
    MIN_BUFFER_BITS,
    PC_SELECT_BITS,
    PHT_BANKS,
    default_buffer_bits,
)
from repro.predictors.base import BranchPredictor
from repro.timing.fo4 import PAPER_CLOCK, ClockModel
from repro.timing.sram import pht_array

#: Largest single-cycle PC-indexed table (the 1K-entry limit of [7]).
MAX_CHOICE_ENTRIES = 1024


class BiModeFastPredictor(BranchPredictor):
    """Pipelined Bi-Mode: two gshare.fast-style direction tables plus a
    small single-cycle choice table."""

    name = "bimode_fast"

    def __init__(
        self,
        direction_entries: int,
        choice_entries: int = MAX_CHOICE_ENTRIES,
        pht_latency: int | None = None,
        buffer_bits: int | None = None,
        clock: ClockModel = PAPER_CLOCK,
    ) -> None:
        super().__init__()
        self.index_bits = log2_exact(direction_entries)
        if self.index_bits < 2:
            raise ConfigurationError("bimode.fast needs direction tables of >= 4 entries")
        if choice_entries > MAX_CHOICE_ENTRIES:
            raise ConfigurationError(
                f"choice table must be single-cycle (<= {MAX_CHOICE_ENTRIES} entries), "
                f"got {choice_entries}"
            )
        if pht_latency is None:
            pht_latency = pht_array(max(direction_entries // PHT_BANKS, 8)).access_cycles(clock)
        if pht_latency < 1:
            raise ConfigurationError(f"PHT latency must be >= 1 cycle, got {pht_latency}")
        if buffer_bits is None:
            buffer_bits = default_buffer_bits(pht_latency, self.index_bits)
        if not MIN_BUFFER_BITS <= buffer_bits <= MAX_BUFFER_BITS:
            raise ConfigurationError(
                f"buffer_bits must be in [{MIN_BUFFER_BITS}, {MAX_BUFFER_BITS}], "
                f"got {buffer_bits}"
            )
        if buffer_bits >= self.index_bits:
            raise ConfigurationError(
                f"buffer_bits {buffer_bits} must be smaller than index width "
                f"{self.index_bits}"
            )
        self.pht_latency = pht_latency
        self.buffer_bits = buffer_bits
        self.staleness = max(pht_latency, buffer_bits)
        self.taken_table = CounterTable(direction_entries, bits=2, init=2)
        self.not_taken_table = CounterTable(direction_entries, bits=2, init=1)
        self.choice_table = CounterTable(choice_entries, bits=2)
        # Speculative history; length covers the index plus staleness window.
        self._history = 0
        self._history_bits = self.index_bits + self.staleness

    @property
    def storage_bits(self) -> int:
        """Hardware state consumed by the predictor, in bits."""
        line_buffers = 2 * (1 << self.buffer_bits) * 2  # one line per table
        return (
            self.taken_table.storage_bits
            + self.not_taken_table.storage_bits
            + self.choice_table.storage_bits
            + self._history_bits
            + line_buffers
        )

    def direction_index(self, pc: int) -> int:
        """Pipelinable index: identical structure to gshare.fast's."""
        high = (self._history >> self.staleness) & mask(self.index_bits - self.buffer_bits)
        pc_bits = fold((pc >> 2) & mask(PC_SELECT_BITS), PC_SELECT_BITS, self.buffer_bits)
        low = (pc_bits ^ self._history) & mask(self.buffer_bits)
        return (high << self.buffer_bits) | low

    def line_address(self, pc: int) -> int:
        """Which direction-table line the pipelined fetch brings in."""
        return self.direction_index(pc) >> self.buffer_bits

    def _choice_index(self, pc: int) -> int:
        return (pc >> 2) & (self.choice_table.size - 1)

    def _predict(self, pc: int) -> tuple[bool, object]:
        direction_index = self.direction_index(pc)
        choice_index = self._choice_index(pc)
        choose_taken_table = self.choice_table.predict(choice_index)
        table = self.taken_table if choose_taken_table else self.not_taken_table
        prediction = table.predict(direction_index)
        return prediction, (direction_index, choice_index, choose_taken_table, prediction)

    def _update(self, pc: int, taken: bool, predicted: bool, context: object) -> None:
        direction_index, choice_index, choose_taken_table, prediction = context
        # Bi-Mode partial update: leave the choice alone when the selected
        # direction table was right despite disagreeing with the choice.
        selected_correct = prediction == taken
        choice_agrees = choose_taken_table == taken
        if not (selected_correct and not choice_agrees):
            self.choice_table.update(choice_index, taken)
        table = self.taken_table if choose_taken_table else self.not_taken_table
        table.update(direction_index, taken)
        self._history = ((self._history << 1) | int(taken)) & mask(self._history_bits)


def bimode_fast_from_config(config) -> BiModeFastPredictor:
    """bimode.fast from a sized configuration (latency/buffer widths come
    from the SRAM delay model at the paper's clock)."""
    return BiModeFastPredictor(
        direction_entries=config.direction_entries,
        choice_entries=config.choice_entries,
    )


def build_bimode_fast(budget_bytes: int, clock: ClockModel = PAPER_CLOCK) -> BiModeFastPredictor:
    """Size a bimode.fast for ``budget_bytes``.

    The choice table takes its single-cycle maximum (1K entries, 256 bytes);
    the two direction tables split the rest evenly.
    """
    from repro.predictors.sizing import size_bimode_fast, validate_budget

    validate_budget(budget_bytes)
    config = size_bimode_fast(budget_bytes)
    return BiModeFastPredictor(
        direction_entries=config.direction_entries,
        choice_entries=config.choice_entries,
        clock=clock,
    )


def _register() -> None:
    """Enroll bimode.fast in the declarative family registry."""
    from repro.predictors.registry import FamilySpec, register
    from repro.predictors.sizing import BiModeFastConfig, size_bimode_fast

    register(
        FamilySpec(
            name="bimode_fast",
            config_type=BiModeFastConfig,
            sizer=size_bimode_fast,
            builder=bimode_fast_from_config,
            predictor_type=BiModeFastPredictor,
            single_cycle=True,
        )
    )


_register()
