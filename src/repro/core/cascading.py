"""Cascading (lookahead) prediction — the other delay-hiding family.

Section 2.6 of the paper cites cascading [Driesen & Hölzle] and lookahead
[Yeh, Marr & Patt] as the alternatives to overriding that Jiménez et al.
(MICRO-33) found inferior.  The idea: as soon as one branch is predicted,
the slow predictor starts computing the prediction for the *next* branch.
If the next branch arrives after the slow predictor finishes (the fetch gap
is at least the slow latency), its accurate prediction is used for free;
if the branch arrives sooner, the front end falls back to the quick
predictor — no squash, no override bubble, but the slow predictor's
accuracy is only available when branches are far enough apart.

``CascadingPredictor`` models exactly that tradeoff: the caller reports the
fetch gap (cycles since the previous branch's prediction) and the
prediction comes from the slow component only when the gap covers its
latency.  The Section 2.6 conclusion reproduces naturally: on branch-dense
code the quick predictor decides most branches, so cascading underperforms
overriding, which always gets the accurate answer (at bubble cost).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigurationError
from repro.predictors.base import BranchPredictor
from repro.predictors.gshare import GsharePredictor
from repro.timing.latency import QUICK_PREDICTOR_ENTRIES


@dataclass
class CascadingStats:
    """Bookkeeping for the cascading scheme."""

    predictions: int = 0
    slow_used: int = 0
    mispredictions: int = 0

    @property
    def slow_usage_rate(self) -> float:
        """Fraction of branches whose gap let the slow predictor answer."""
        if self.predictions == 0:
            return 0.0
        return self.slow_used / self.predictions

    @property
    def misprediction_rate(self) -> float:
        """Misprediction rate of the predictions actually used."""
        if self.predictions == 0:
            return 0.0
        return self.mispredictions / self.predictions


class CascadingPredictor:
    """Quick + slow pair arbitrated by inter-branch fetch distance."""

    def __init__(
        self,
        slow: BranchPredictor,
        slow_latency: int,
        quick: BranchPredictor | None = None,
    ) -> None:
        if slow_latency < 1:
            raise ConfigurationError(f"slow latency must be >= 1 cycle, got {slow_latency}")
        if quick is None:
            quick = GsharePredictor(entries=QUICK_PREDICTOR_ENTRIES)
        self.quick = quick
        self.slow = slow
        self.slow_latency = slow_latency
        self.stats = CascadingStats()
        self._used_slow = False

    @property
    def name(self) -> str:
        """Display label naming both components."""
        return f"cascade({self.quick.name}->{self.slow.name})"

    @property
    def storage_bits(self) -> int:
        """Combined hardware state of both components, in bits."""
        return self.quick.storage_bits + self.slow.storage_bits

    def predict(self, pc: int, gap_cycles: int) -> bool:
        """Predict the branch at ``pc`` fetched ``gap_cycles`` after the
        previous branch.  Both components always compute (and train), but
        the slow answer is usable only when the gap covers its latency."""
        if gap_cycles < 0:
            raise ConfigurationError(f"gap must be >= 0 cycles, got {gap_cycles}")
        quick_taken = self.quick.predict(pc)
        slow_taken = self.slow.predict(pc)
        self._used_slow = gap_cycles >= self.slow_latency
        return slow_taken if self._used_slow else quick_taken

    def update(self, pc: int, taken: bool) -> bool:
        """Resolve both components; True when the used prediction was right."""
        quick_correct = self.quick.update(pc, taken)
        slow_correct = self.slow.update(pc, taken)
        correct = slow_correct if self._used_slow else quick_correct
        self.stats.predictions += 1
        if self._used_slow:
            self.stats.slow_used += 1
        if not correct:
            self.stats.mispredictions += 1
        return correct
