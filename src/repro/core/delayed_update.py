"""Delayed (non-speculative, slow) PHT update machinery — Section 3.2.

gshare.fast does not bypass in-flight updates into the prefetched PHT
buffer; it "simply updates the table slowly".  A branch's counter training
becomes visible only after a configurable number of subsequent branches
have been predicted, modelling the pipeline distance between predict and
commit plus the write port's leisurely schedule.

The paper measures the cost of this policy as negligible (64-branch delay:
4.03% -> 4.07% mispredictions at a 256KB budget, under 1% IPC); the
reproduction of that experiment lives in the benchmark suite.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable

from repro.common.errors import ConfigurationError


class DelayedUpdateQueue:
    """A FIFO that releases counter updates ``delay`` branches late.

    ``push`` enqueues one update and releases any update that is now older
    than ``delay`` pushes, invoking ``apply`` on it.  ``delay == 0`` applies
    every update immediately (the conventional idealized policy).
    """

    def __init__(self, delay: int, apply: Callable[[int, bool], None]) -> None:
        if delay < 0:
            raise ConfigurationError(f"update delay must be >= 0, got {delay}")
        self.delay = delay
        self._apply = apply
        self._queue: deque[tuple[int, bool]] = deque()

    def __len__(self) -> int:
        return len(self._queue)

    def push(self, index: int, taken: bool) -> None:
        """Enqueue a (counter index, outcome) update and release old ones."""
        self._queue.append((index, taken))
        while len(self._queue) > self.delay:
            pending_index, outcome = self._queue.popleft()
            self._apply(pending_index, outcome)

    def flush(self) -> None:
        """Apply every pending update immediately (end-of-trace drain)."""
        while self._queue:
            pending_index, outcome = self._queue.popleft()
            self._apply(pending_index, outcome)

    def snapshot(self) -> list[tuple[int, bool]]:
        """The pending (index, outcome) updates, oldest first."""
        return list(self._queue)

    def restore(self, pending: list[tuple[int, bool]]) -> None:
        """Replace the queue contents (checkpoint/batch-writeback path)."""
        if len(pending) > self.delay:
            raise ConfigurationError(
                f"cannot hold {len(pending)} pending updates with delay {self.delay}"
            )
        self._queue = deque(pending)
