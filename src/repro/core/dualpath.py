"""Dual-path fetch (Section 2.6.2) — the AMD Hammer-style alternative.

While a slow predictor's answer is in flight, the front end fetches down
*both* possible paths.  No squash is needed when the prediction arrives
(the wrong path is simply dropped), but fetch bandwidth and execution
resources are halved for the predictor's whole latency, and the scheme does
not scale to multiple unresolved branches — the paper's reason to dismiss
it.

The cycle simulator consumes :class:`DualPathPolicy` as the delay-hiding
policy: each predicted branch costs ``latency`` cycles of half-bandwidth
fetch instead of an override bubble.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigurationError
from repro.predictors.base import BranchPredictor


@dataclass
class DualPathPolicy:
    """Delay-hiding by dual-path fetch around a single slow predictor.

    ``predictor`` supplies directions; every conditional branch opens a
    window of ``latency`` cycles during which effective fetch width is
    halved.  A second branch arriving inside an open window cannot fork
    again (four paths are not supported): fetch *stalls* until the first
    window closes — the non-scalability the paper calls out.
    """

    predictor: BranchPredictor
    latency: int

    def __post_init__(self) -> None:
        if self.latency < 1:
            raise ConfigurationError(f"latency must be >= 1 cycle, got {self.latency}")

    @property
    def name(self) -> str:
        """Display label naming the wrapped predictor."""
        return f"dualpath({self.predictor.name})"

    def predict(self, pc: int) -> bool:
        """Direction from the wrapped predictor."""
        return self.predictor.predict(pc)

    def update(self, pc: int, taken: bool) -> bool:
        """Resolve the wrapped predictor; True when it was correct."""
        return self.predictor.update(pc, taken)

    def half_bandwidth_window(self) -> int:
        """Cycles of halved fetch bandwidth per predicted branch."""
        return self.latency
