"""Cycle-accurate model of the gshare.fast predictor pipeline (Figure 4).

Where :class:`repro.core.gshare_fast.GshareFastPredictor` is the functional
model (exact predictions, no clock), this module simulates the predictor
*pipeline itself*, cycle by cycle:

* ``L`` PHT-read stages, each carrying the paper's **Branch Present** and
  **New History Bit** latches;
* one select/predict stage that forms the low index bits in a single cycle
  from the lower 9 PC bits and the newest (in-flight) history bits;
* a line fetch launched every cycle, addressed by the speculative global
  history *as of that cycle* — the line address is a pure function of bits
  that already exist at launch, never of the bits generated while the read
  is in flight (those are exactly the bits the stage latches carry to the
  select stage);
* **speculative** history update at predict time (the predicted direction is
  shifted in immediately) with checkpoint-based recovery when the prediction
  turns out wrong (Section 3.2): ``resolve`` restores the pre-branch
  speculative state and shifts in the true outcome — the zero-penalty
  recovery that the per-stage checkpointed PHT buffers provide in hardware.

Index composition (shared with the functional model):

    high (n-b bits) = launch_history >> max(b - L, 0)   # known at launch
    low  (b bits)   = fold9(pc) ^ (current_history & mask(b))  # select stage

On a dense stream — one branch every cycle, the steady state the paper's
fetch engine sustains — exactly ``L`` new bits arrive during each read's
flight, and this index is bit-identical to the functional model's
``(H >> max(L, b)) << b | fold9(pc) ^ H[0:b]``; the equivalence is proved in
the test suite.  On sparse streams the pipelined line address is *fresher*
than the functional model assumes (fewer in-flight bits), so the functional
model is the conservative end of the implementable design.

The model counts buffer coverage: a prediction is a *buffer hit* when the
line needed by the select stage is the one the pipeline prefetched.  After
warm-up, dense streams hit on every prediction — the executable form of the
paper's claim that the predictor always answers in a single cycle.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.bits import fold, mask
from repro.common.errors import ProtocolError
from repro.core.gshare_fast import PC_SELECT_BITS, GshareFastPredictor


@dataclass
class _StageLatches:
    """Per-stage Branch Present / New History Bit latches."""

    branch_present: bool = False
    new_history_bit: bool = False


@dataclass
class _InFlightRead:
    """A PHT line fetch travelling through the read stages."""

    line_address: int
    launch_history: int
    ready_cycle: int


@dataclass
class _Checkpoint:
    """Recovery state captured at each prediction (Section 3.2)."""

    spec_history: int
    latches: list[_StageLatches]


@dataclass
class PipelinePrediction:
    """A prediction delivered by the pipeline, with its recovery token."""

    taken: bool
    cycle: int
    checkpoint: _Checkpoint
    pht_index: int
    buffer_hit: bool


class GshareFastPipeline:
    """Drives a :class:`GshareFastPredictor`'s PHT cycle by cycle.

    The PHT storage is shared with the functional predictor instance so the
    equivalence test can compare the two on identical table contents.
    """

    def __init__(self, functional: GshareFastPredictor) -> None:
        self.functional = functional
        self.latency = functional.pht_latency
        self.buffer_bits = functional.buffer_bits
        self.index_bits = functional.index_bits
        self.table = functional.table
        self.cycle = 0
        self._spec_history = 0
        self._history_mask = mask(functional.history.length)
        # Read-stage latches, oldest first: index 0 exits the pipeline next.
        self._stages = [_StageLatches() for _ in range(self.latency)]
        self._reads: list[_InFlightRead] = []
        self._current_line: _InFlightRead | None = None
        self._unresolved: PipelinePrediction | None = None
        self.buffer_hits = 0
        self.buffer_misses = 0

    # -- internal views ------------------------------------------------------

    @property
    def spec_history(self) -> int:
        """Full speculative global history (newest bit in position 0)."""
        return self._spec_history

    @property
    def in_flight_bits(self) -> int:
        """Speculative bits generated while the current line was in flight."""
        return sum(1 for stage in self._stages if stage.branch_present)

    def _line_address(self, history: int) -> int:
        """Line address for a fetch launched under ``history``.

        Depends only on bits that exist at launch time.  When the buffer
        covers more index bits than the read latency (b > L), the newest
        ``b - L`` launch-time bits are excluded as well, because the select
        stage will supply the low ``b`` bits from its own view of history.
        """
        drop = max(self.buffer_bits - self.latency, 0)
        return (history >> drop) & mask(self.index_bits - self.buffer_bits)

    # -- cycle protocol ------------------------------------------------------

    def tick(self, branch_pc: int | None = None) -> PipelinePrediction | None:
        """Advance one cycle; if ``branch_pc`` is given, predict that branch.

        Returns the prediction, delivered this very cycle (single-cycle
        delivery), or None on a branch-free cycle.  The caller must
        ``resolve`` each prediction before the next tick — the trace-driven
        in-order regime under which the paper's optimistic speculative-
        update assumption holds.
        """
        if self._unresolved is not None:
            raise ProtocolError("previous prediction has not been resolved")
        self.cycle += 1

        # 1. Retire the read completing this cycle into the PHT buffer.
        while self._reads and self._reads[0].ready_cycle <= self.cycle:
            self._current_line = self._reads.pop(0)

        # 2. Shift the latch pipeline one stage older; the oldest bit has
        #    now been in flight longer than any outstanding read and folds
        #    back into plain history (it is already part of _spec_history).
        for i in range(len(self._stages) - 1):
            self._stages[i] = self._stages[i + 1]
        self._stages[-1] = _StageLatches()

        # 3. Launch this cycle's line fetch with the current speculative
        #    history (all bits generated before this cycle).
        self._reads.append(
            _InFlightRead(
                line_address=self._line_address(self._spec_history),
                launch_history=self._spec_history,
                ready_cycle=self.cycle + self.latency,
            )
        )

        # 4. Select stage: predict the branch fetched this cycle, if any.
        if branch_pc is None:
            return None
        prediction = self._predict(branch_pc)
        self._unresolved = prediction
        return prediction

    def _predict(self, pc: int) -> PipelinePrediction:
        checkpoint = _Checkpoint(
            spec_history=self._spec_history,
            latches=[_StageLatches(s.branch_present, s.new_history_bit) for s in self._stages],
        )
        line = self._current_line
        if line is None:
            # Warm-up: no line has completed yet.  The history a line
            # launched in time would have used is the speculative history
            # minus the bits still in the stage latches; modelling the miss
            # this way keeps warm-up predictions identical to the
            # functional model.
            launch_history = self._spec_history >> self.in_flight_bits
            hit = False
        else:
            launch_history = line.launch_history
            hit = True
        high = self._line_address(launch_history)
        pc_bits = fold((pc >> 2) & mask(PC_SELECT_BITS), PC_SELECT_BITS, self.buffer_bits)
        low = (pc_bits ^ self._spec_history) & mask(self.buffer_bits)
        index = (high << self.buffer_bits) | low
        if hit:
            self.buffer_hits += 1
        else:
            self.buffer_misses += 1
        taken = self.table.predict(index)
        # Speculative history update: shift the *predicted* direction into
        # the newest stage latch and the speculative history register.
        self._stages[-1] = _StageLatches(branch_present=True, new_history_bit=taken)
        self._spec_history = ((self._spec_history << 1) | int(taken)) & self._history_mask
        return PipelinePrediction(
            taken=taken, cycle=self.cycle, checkpoint=checkpoint, pht_index=index, buffer_hit=hit
        )

    def resolve(self, prediction: PipelinePrediction, taken: bool) -> bool:
        """Resolve a prediction with the true outcome.

        Correct predictions leave the speculative state alone.  A
        misprediction triggers the Section 3.2 recovery: latch state and
        speculative history are restored from the checkpoint and the *true*
        outcome is shifted in — zero added pipeline-visible latency, because
        the checkpointed PHT buffers supply the counters the refilled
        pipeline needs.  Returns True when the prediction was correct.
        """
        if self._unresolved is not prediction:
            raise ProtocolError("resolve does not match the outstanding prediction")
        self._unresolved = None
        correct = prediction.taken == taken
        if not correct:
            self._stages = [
                _StageLatches(s.branch_present, s.new_history_bit)
                for s in prediction.checkpoint.latches
            ]
            self._stages[-1] = _StageLatches(branch_present=True, new_history_bit=taken)
            self._spec_history = (
                (prediction.checkpoint.spec_history << 1) | int(taken)
            ) & self._history_mask
        self.table.update(prediction.pht_index, taken)
        return correct

    def delivered_latency_cycles(self) -> int:
        """The pipeline's prediction-delivery latency: always one cycle.

        Present as an executable statement of the paper's headline property:
        the select stage both receives the branch PC and emits the
        prediction within a single ``tick``.
        """
        return 1
