"""The declarative predictor-family registry.

The paper's argument is comparative: eleven predictor families driven
through one protocol at many hardware budgets.  This module is the single
place that knows *what a family is*.  Each family registers one
:class:`FamilySpec` carrying its name, its serializable sizing config, a
sizer (budget -> config), a builder (config -> predictor), and capability
flags; every consumer — the factory, the sweep harness, the batch engine,
the parallel executor, the CLI, and the conformance/fuzz test suites —
derives its behaviour from the spec instead of hard-coding family lists.

Adding a family is a one-module change:

1. define the predictor (a :class:`~repro.predictors.base.BranchPredictor`
   subclass) plus a frozen config dataclass inheriting
   :class:`~repro.predictors.sizing.SizingConfig`;
2. call :func:`register` with a :class:`FamilySpec` in the same module;
3. make sure the module is imported (families shipped with the package are
   listed in ``_FAMILY_MODULES``; external/test families import their own
   module before use).

Nothing else changes: sweeps, batch/scalar engine selection, parallel
sharding, manifests, the CLI listing and the conformance matrix all pick
the new family up from the registry.

Capability flags
----------------

``batch_kernel``
    Name of the vectorized kernel in :mod:`repro.batch.engine` that is
    bit-exact for this family, or ``None`` to always use the scalar engine.
``single_cycle``
    The predictor delivers every prediction in one cycle by construction
    (the pipelined ``repro.core`` families); such families never need an
    overriding front end.
``override_eligible``
    The timing layer has a latency model for this family, so it can play
    the *slow* side of an overriding pair (Figure 7 right).
``state_neutral_peek``
    ``peek()`` must not disturb any predictor state.  True for every
    shipped family (the conformance matrix enforces it); a family with a
    genuinely stateful read path may opt out.
"""

from __future__ import annotations

import importlib
from collections.abc import Callable, Mapping
from dataclasses import dataclass, replace
from typing import Any

from repro.common.errors import ConfigurationError
from repro.predictors.base import BranchPredictor
from repro.predictors.sizing import SizingConfig, validate_budget

#: Modules whose import registers the families shipped with the package.
_FAMILY_MODULES = (
    "repro.predictors.factory",
    "repro.core.gshare_fast",
    "repro.core.bimode_fast",
)

#: Concrete BranchPredictor subclasses that are deliberately *not* families:
#: static baselines and components that only exist inside composite
#: predictors (they have no budget-sizing story of their own).
NON_FAMILY_PREDICTORS = frozenset(
    {
        "AlwaysTakenPredictor",
        "AlwaysNotTakenPredictor",
        "BtfnPredictor",
        "LocalPredictor",
    }
)


@dataclass(frozen=True)
class FamilySpec:
    """Everything the pipeline needs to know about one predictor family."""

    #: Family name as used on CLI/figures axes (e.g. ``"gshare_fast"``).
    name: str
    #: The frozen config dataclass; ``to_dict``/``from_dict`` round-trips.
    config_type: type[SizingConfig]
    #: Hardware budget (bytes) -> config.
    sizer: Callable[[int], SizingConfig]
    #: Config -> freshly constructed predictor (bit-identical per config).
    builder: Callable[[Any], BranchPredictor]
    #: Exact concrete type the builder returns (batch dispatch, completeness).
    predictor_type: type[BranchPredictor]
    #: Batch-engine kernel name, or None for scalar-only families.
    batch_kernel: str | None = None
    #: Single-cycle by construction (never needs overriding).
    single_cycle: bool = False
    #: Has a latency model, may play the slow side of an overriding pair.
    override_eligible: bool = False
    #: ``peek()`` leaves all state untouched (conformance-enforced).
    state_neutral_peek: bool = True
    #: Module that registered the spec (filled in by :func:`register`).
    module: str = ""


_SPECS: dict[str, FamilySpec] = {}
_loaded = False

_build_count = 0


def build_count() -> int:
    """Times this process constructed a predictor through the registry.

    A warm result-store run of a whole figure grid should leave this at
    zero — :mod:`scripts/result_store_check` asserts exactly that (via the
    mirrored ``predictors.builds`` obs counter)."""
    return _build_count


def reset_build_count() -> None:
    """Zero the build counter (start of a measurement window)."""
    global _build_count
    _build_count = 0


def _record_build() -> None:
    global _build_count
    _build_count += 1
    from repro import obs  # deferred: obs must stay importable standalone

    if obs.enabled():
        obs.counter("predictors.builds").inc()


def register(spec: FamilySpec) -> FamilySpec:
    """Add ``spec`` to the registry; returns it so call sites can chain.

    Registering the same (module, predictor type) under the same name twice
    is a no-op — module reloads and repeated test imports are harmless.  A
    *different* spec under an existing name is a configuration error.
    """
    module = spec.module or getattr(spec.builder, "__module__", "") or ""
    spec = replace(spec, module=module)
    existing = _SPECS.get(spec.name)
    if existing is not None:
        if (
            existing.module == spec.module
            and existing.predictor_type.__name__ == spec.predictor_type.__name__
        ):
            _SPECS[spec.name] = spec
            return spec
        raise ConfigurationError(
            f"predictor family {spec.name!r} is already registered by "
            f"{existing.module} (predictor {existing.predictor_type.__name__}); "
            f"refusing the conflicting spec from {spec.module}"
        )
    _SPECS[spec.name] = spec
    return spec


def _ensure_loaded() -> None:
    """Import the family modules shipped with the package (once)."""
    global _loaded
    if _loaded:
        return
    _loaded = True  # set first: family modules may query the registry
    for module in _FAMILY_MODULES:
        importlib.import_module(module)


def family_names() -> list[str]:
    """Every registered family name, sorted — the one authoritative list."""
    _ensure_loaded()
    return sorted(_SPECS)


def specs() -> list[FamilySpec]:
    """Every registered spec, sorted by family name."""
    _ensure_loaded()
    return [_SPECS[name] for name in sorted(_SPECS)]


def get_spec(family: str) -> FamilySpec:
    """The spec for ``family``; unknown names raise ConfigurationError."""
    _ensure_loaded()
    try:
        return _SPECS[family]
    except KeyError:
        raise ConfigurationError(
            f"unknown predictor family {family!r}; "
            f"known: {', '.join(sorted(_SPECS))}"
        ) from None


def size_config(family: str, budget_bytes: int) -> SizingConfig:
    """Size ``family`` for ``budget_bytes``: validated budget -> config."""
    spec = get_spec(family)
    validate_budget(budget_bytes)
    return spec.sizer(budget_bytes)


def build(family: str, budget_bytes: int) -> BranchPredictor:
    """Construct any registered family sized for ``budget_bytes``."""
    spec = get_spec(family)
    _record_build()
    return spec.builder(size_config(family, budget_bytes))


def build_from_config(
    family: str, config: SizingConfig | Mapping[str, object]
) -> BranchPredictor:
    """Construct ``family`` from an explicit (possibly serialized) config."""
    spec = get_spec(family)
    if isinstance(config, Mapping):
        config = spec.config_type.from_dict(config)
    if not isinstance(config, spec.config_type):
        raise ConfigurationError(
            f"family {family!r} expects a {spec.config_type.__name__}, "
            f"got {type(config).__name__}"
        )
    _record_build()
    return spec.builder(config)


def spec_for_predictor(predictor: BranchPredictor) -> FamilySpec | None:
    """The spec whose predictor type is *exactly* ``type(predictor)``.

    Exact-type matching is deliberate: a subclass may override indexing or
    update rules that capability-driven consumers (the batch kernels above
    all) would silently ignore.
    """
    _ensure_loaded()
    for spec in _SPECS.values():
        if type(predictor) is spec.predictor_type:
            return spec
    return None


# -- serialized specs (parallel-sweep transport, run manifests) ----------------


def serialize_spec(family: str, budget_bytes: int) -> dict:
    """JSON-able resolved spec: sizing runs once, here, in the parent.

    Workers rebuild the predictor from the embedded config via
    :func:`build_serialized` — bit-identical to the parent's sizing without
    re-running it — and external families travel with their module name so
    a spawn-fresh worker can import the registration.
    """
    spec = get_spec(family)
    return {
        "family": family,
        "module": spec.module,
        "config": size_config(family, budget_bytes).to_dict(),
    }


def build_serialized(payload: Mapping[str, object]) -> BranchPredictor:
    """Rebuild a predictor from :func:`serialize_spec` output."""
    for key in ("family", "module", "config"):
        if key not in payload:
            raise ConfigurationError(
                f"serialized spec is missing the {key!r} field: {payload!r}"
            )
    module = str(payload["module"])
    if module:
        # Import the registering module first: in spawn-fresh workers an
        # external (e.g. test-only) family is not yet registered.
        importlib.import_module(module)
    config = payload["config"]
    if not isinstance(config, Mapping):
        raise ConfigurationError(
            f"serialized spec config must be a mapping, got {type(config).__name__}"
        )
    return build_from_config(str(payload["family"]), config)


# -- completeness (CI gate) ----------------------------------------------------


def _concrete_predictor_types() -> list[type[BranchPredictor]]:
    """Every concrete BranchPredictor subclass importable from the package."""
    _ensure_loaded()
    # The baselines live outside the family modules; import them so the
    # subclass walk sees the full shipped zoo.
    importlib.import_module("repro.predictors.static")
    importlib.import_module("repro.predictors.local")
    found: list[type[BranchPredictor]] = []
    stack: list[type] = [BranchPredictor]
    while stack:
        parent = stack.pop()
        for sub in parent.__subclasses__():
            stack.append(sub)
            if sub.__module__.startswith("repro."):
                found.append(sub)
    return found


def completeness_problems() -> list[str]:
    """Gaps between the registry and the rest of the pipeline.

    Returns one human-readable line per problem (empty == complete):

    * a concrete ``repro.*`` BranchPredictor subclass that is neither
      registered nor exempted in :data:`NON_FAMILY_PREDICTORS` — such a
      predictor would silently dodge the registry-parametrized conformance
      matrix, fuzz suites, and serialization tests;
    * a golden figure family list naming a family the registry does not
      know — the figure would crash (or worse, drift) at regeneration time.

    Conformance coverage itself is structural: the conformance matrix and
    fuzz suites parametrize directly over :func:`family_names`, so a
    registered family cannot escape them (``tests/test_registry.py`` pins
    that the conformance matrix uses exactly this list).
    """
    problems: list[str] = []
    registered_types = {spec.predictor_type for spec in _SPECS.values()}
    for sub in _concrete_predictor_types():
        if sub in registered_types or sub.__name__ in NON_FAMILY_PREDICTORS:
            continue
        problems.append(
            f"{sub.__module__}.{sub.__name__} is a concrete BranchPredictor "
            f"but no FamilySpec registers it (add one, or add it to "
            f"registry.NON_FAMILY_PREDICTORS with a reason)"
        )
    figures = importlib.import_module("repro.harness.figures")
    known = set(_SPECS)
    for list_name in (
        "FIGURE1_FAMILIES",
        "FIGURE5_FAMILIES",
        "FIGURE6_FAMILIES",
        "FIGURE7_FAMILIES",
        "FIGURE8_FAMILIES",
        "EXTENSION_FAMILIES",
    ):
        for family in getattr(figures, list_name):
            if family not in known:
                problems.append(
                    f"figures.{list_name} references {family!r}, which is not "
                    f"a registered predictor family"
                )
    return problems
