"""Predictor factory: (family name, hardware budget) -> configured predictor.

This is the entry point the harness and the examples use; it owns the mapping
from the paper's predictor names to our implementations and the budget-sizing
rules in :mod:`repro.predictors.sizing`.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.common.errors import ConfigurationError
from repro.predictors.base import BranchPredictor
from repro.predictors.bimodal import BimodalPredictor
from repro.predictors.bimode import BiModePredictor
from repro.predictors.gshare import GsharePredictor
from repro.predictors.gskew import EGskewPredictor, TwoBcGskewPredictor
from repro.predictors.local import LocalPredictor
from repro.predictors.loop import LoopPredictor
from repro.predictors.multicomponent import MultiComponentPredictor
from repro.predictors.perceptron import PerceptronPredictor
from repro.predictors.sizing import (
    floor_pow2,
    size_2bcgskew,
    size_bimode,
    size_gshare,
    size_multicomponent,
    size_perceptron,
    validate_budget,
)
from repro.predictors.tournament import TournamentPredictor


def build_bimodal(budget_bytes: int) -> BimodalPredictor:
    """Bimodal sized to fill ``budget_bytes`` with 2-bit counters."""
    validate_budget(budget_bytes)
    return BimodalPredictor(entries=floor_pow2(budget_bytes * 4))


def build_gshare(budget_bytes: int) -> GsharePredictor:
    """gshare sized per :func:`repro.predictors.sizing.size_gshare`."""
    validate_budget(budget_bytes)
    config = size_gshare(budget_bytes)
    return GsharePredictor(entries=config.entries, history_length=config.history_length)


def build_bimode(budget_bytes: int) -> BiModePredictor:
    """Bi-Mode sized per :func:`repro.predictors.sizing.size_bimode`."""
    validate_budget(budget_bytes)
    config = size_bimode(budget_bytes)
    return BiModePredictor(
        direction_entries=config.direction_entries,
        choice_entries=config.choice_entries,
        history_length=config.history_length,
    )


def build_2bcgskew(budget_bytes: int) -> TwoBcGskewPredictor:
    """2Bc-gskew sized per :func:`repro.predictors.sizing.size_2bcgskew`."""
    validate_budget(budget_bytes)
    config = size_2bcgskew(budget_bytes)
    return TwoBcGskewPredictor(
        bank_entries=config.bank_entries,
        short_history=config.short_history,
        long_history=config.long_history,
    )


def build_egskew(budget_bytes: int) -> EGskewPredictor:
    """e-gskew with three equal banks filling ``budget_bytes``."""
    validate_budget(budget_bytes)
    bank = floor_pow2(budget_bytes * 8 // 3 // 2)
    return EGskewPredictor(bank_entries=bank)


def build_perceptron(budget_bytes: int) -> PerceptronPredictor:
    """Perceptron sized per :func:`repro.predictors.sizing.size_perceptron`."""
    validate_budget(budget_bytes)
    config = size_perceptron(budget_bytes)
    return PerceptronPredictor(
        num_perceptrons=config.num_perceptrons,
        global_history=config.global_history,
        local_history=config.local_history,
        local_history_entries=config.local_history_entries,
    )


def build_multicomponent(budget_bytes: int) -> MultiComponentPredictor:
    """Evers multi-hybrid sized per ``size_multicomponent``."""
    validate_budget(budget_bytes)
    config = size_multicomponent(budget_bytes)
    # Order sets the tie-break priority of the selection counters: the
    # fast-training bimodal wins cold ties, specialized components take over
    # per branch as their counters rise.
    components: list[BranchPredictor] = [
        BimodalPredictor(entries=config.bimodal_entries),
        LoopPredictor(entries=config.loop_entries),
        LocalPredictor(
            history_entries=config.local_histories,
            history_length=config.local_history_length,
            pht_entries=config.local_pht_entries,
        ),
        GsharePredictor(
            entries=config.gshare_short_entries, history_length=config.gshare_short_history
        ),
        GsharePredictor(
            entries=config.gshare_long_entries, history_length=config.gshare_long_history
        ),
    ]
    return MultiComponentPredictor(components, selector_entries=config.selector_entries)


def build_tournament(budget_bytes: int) -> TournamentPredictor:
    """EV6-style tournament scaled to ``budget_bytes``."""
    validate_budget(budget_bytes)
    # EV6 proportions scaled to the budget: global/chooser tables equal,
    # local structures a quarter of their size.
    global_entries = floor_pow2(budget_bytes * 8 // 2 // 2 // 2)
    local = max(global_entries // 4, 64)
    return TournamentPredictor(
        global_entries=global_entries,
        local_histories=local,
        local_history_length=10,
        local_pht_entries=local,
        chooser_entries=global_entries,
    )


def build_loop(budget_bytes: int) -> LoopPredictor:
    """Standalone loop predictor filling ``budget_bytes``."""
    validate_budget(budget_bytes)
    return LoopPredictor(entries=max(floor_pow2(budget_bytes * 8 // 31), 64))


_BUILDERS: dict[str, Callable[[int], BranchPredictor]] = {
    "bimodal": build_bimodal,
    "gshare": build_gshare,
    "bimode": build_bimode,
    "2bcgskew": build_2bcgskew,
    "egskew": build_egskew,
    "perceptron": build_perceptron,
    "multicomponent": build_multicomponent,
    "tournament": build_tournament,
    "loop": build_loop,
}


def predictor_families() -> list[str]:
    """Names accepted by :func:`build_predictor` (gshare.fast lives in
    :mod:`repro.core` and is built via :func:`repro.core.build_gshare_fast`)."""
    return sorted(_BUILDERS)


def build_predictor(family: str, budget_bytes: int) -> BranchPredictor:
    """Build a predictor of ``family`` sized for ``budget_bytes`` of state."""
    try:
        builder = _BUILDERS[family]
    except KeyError:
        raise ConfigurationError(
            f"unknown predictor family {family!r}; known: {', '.join(predictor_families())}"
        ) from None
    return builder(budget_bytes)
