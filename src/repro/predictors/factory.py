"""Predictor factory: (family name, hardware budget) -> configured predictor.

This is the entry point the harness and the examples use.  The mapping from
the paper's predictor names to implementations lives in the declarative
registry (:mod:`repro.predictors.registry`); this module registers the nine
classic families and keeps the budget-taking ``build_*`` helpers as thin
sizer + builder compositions.  The budget-sizing rules themselves are in
:mod:`repro.predictors.sizing`.
"""

from __future__ import annotations

import warnings

from repro.predictors import registry
from repro.predictors.base import BranchPredictor
from repro.predictors.bimodal import BimodalPredictor
from repro.predictors.bimode import BiModePredictor
from repro.predictors.gshare import GsharePredictor
from repro.predictors.gskew import EGskewPredictor, TwoBcGskewPredictor
from repro.predictors.local import LocalPredictor
from repro.predictors.loop import LoopPredictor
from repro.predictors.multicomponent import MultiComponentPredictor
from repro.predictors.perceptron import PerceptronPredictor
from repro.predictors.registry import FamilySpec
from repro.predictors.sizing import (
    BimodalConfig,
    BiModeConfig,
    EGskewConfig,
    GshareConfig,
    GskewConfig,
    LoopConfig,
    MultiComponentConfig,
    PerceptronConfig,
    TournamentConfig,
    size_2bcgskew,
    size_bimodal,
    size_bimode,
    size_egskew,
    size_gshare,
    size_loop,
    size_multicomponent,
    size_perceptron,
    size_tournament,
    validate_budget,
)
from repro.predictors.tournament import TournamentPredictor


# -- config -> predictor builders ----------------------------------------------


def bimodal_from_config(config: BimodalConfig) -> BimodalPredictor:
    """Bimodal from a sized configuration."""
    return BimodalPredictor(entries=config.entries)


def gshare_from_config(config: GshareConfig) -> GsharePredictor:
    """gshare from a sized configuration."""
    return GsharePredictor(entries=config.entries, history_length=config.history_length)


def bimode_from_config(config: BiModeConfig) -> BiModePredictor:
    """Bi-Mode from a sized configuration."""
    return BiModePredictor(
        direction_entries=config.direction_entries,
        choice_entries=config.choice_entries,
        history_length=config.history_length,
    )


def twobcgskew_from_config(config: GskewConfig) -> TwoBcGskewPredictor:
    """2Bc-gskew from a sized configuration."""
    return TwoBcGskewPredictor(
        bank_entries=config.bank_entries,
        short_history=config.short_history,
        long_history=config.long_history,
    )


def egskew_from_config(config: EGskewConfig) -> EGskewPredictor:
    """e-gskew from a sized configuration."""
    return EGskewPredictor(
        bank_entries=config.bank_entries, history_length=config.history_length
    )


def perceptron_from_config(config: PerceptronConfig) -> PerceptronPredictor:
    """Perceptron from a sized configuration."""
    return PerceptronPredictor(
        num_perceptrons=config.num_perceptrons,
        global_history=config.global_history,
        local_history=config.local_history,
        local_history_entries=config.local_history_entries,
    )


def multicomponent_from_config(config: MultiComponentConfig) -> MultiComponentPredictor:
    """Evers multi-hybrid from a sized configuration."""
    # Order sets the tie-break priority of the selection counters: the
    # fast-training bimodal wins cold ties, specialized components take over
    # per branch as their counters rise.
    components: list[BranchPredictor] = [
        BimodalPredictor(entries=config.bimodal_entries),
        LoopPredictor(entries=config.loop_entries),
        LocalPredictor(
            history_entries=config.local_histories,
            history_length=config.local_history_length,
            pht_entries=config.local_pht_entries,
        ),
        GsharePredictor(
            entries=config.gshare_short_entries, history_length=config.gshare_short_history
        ),
        GsharePredictor(
            entries=config.gshare_long_entries, history_length=config.gshare_long_history
        ),
    ]
    return MultiComponentPredictor(components, selector_entries=config.selector_entries)


def tournament_from_config(config: TournamentConfig) -> TournamentPredictor:
    """EV6-style tournament from a sized configuration."""
    return TournamentPredictor(
        global_entries=config.global_entries,
        local_histories=config.local_histories,
        local_history_length=config.local_history_length,
        local_pht_entries=config.local_pht_entries,
        chooser_entries=config.chooser_entries,
    )


def loop_from_config(config: LoopConfig) -> LoopPredictor:
    """Standalone loop predictor from a sized configuration."""
    return LoopPredictor(
        entries=config.entries, confidence_threshold=config.confidence_threshold
    )


# -- budget-taking builders (sizer + builder composition) ----------------------


def build_bimodal(budget_bytes: int) -> BimodalPredictor:
    """Bimodal sized to fill ``budget_bytes`` with 2-bit counters."""
    validate_budget(budget_bytes)
    return bimodal_from_config(size_bimodal(budget_bytes))


def build_gshare(budget_bytes: int) -> GsharePredictor:
    """gshare sized per :func:`repro.predictors.sizing.size_gshare`."""
    validate_budget(budget_bytes)
    return gshare_from_config(size_gshare(budget_bytes))


def build_bimode(budget_bytes: int) -> BiModePredictor:
    """Bi-Mode sized per :func:`repro.predictors.sizing.size_bimode`."""
    validate_budget(budget_bytes)
    return bimode_from_config(size_bimode(budget_bytes))


def build_2bcgskew(budget_bytes: int) -> TwoBcGskewPredictor:
    """2Bc-gskew sized per :func:`repro.predictors.sizing.size_2bcgskew`."""
    validate_budget(budget_bytes)
    return twobcgskew_from_config(size_2bcgskew(budget_bytes))


def build_egskew(budget_bytes: int) -> EGskewPredictor:
    """e-gskew with three equal banks filling ``budget_bytes``."""
    validate_budget(budget_bytes)
    return egskew_from_config(size_egskew(budget_bytes))


def build_perceptron(budget_bytes: int) -> PerceptronPredictor:
    """Perceptron sized per :func:`repro.predictors.sizing.size_perceptron`."""
    validate_budget(budget_bytes)
    return perceptron_from_config(size_perceptron(budget_bytes))


def build_multicomponent(budget_bytes: int) -> MultiComponentPredictor:
    """Evers multi-hybrid sized per ``size_multicomponent``."""
    validate_budget(budget_bytes)
    return multicomponent_from_config(size_multicomponent(budget_bytes))


def build_tournament(budget_bytes: int) -> TournamentPredictor:
    """EV6-style tournament scaled to ``budget_bytes``."""
    validate_budget(budget_bytes)
    return tournament_from_config(size_tournament(budget_bytes))


def build_loop(budget_bytes: int) -> LoopPredictor:
    """Standalone loop predictor filling ``budget_bytes``."""
    validate_budget(budget_bytes)
    return loop_from_config(size_loop(budget_bytes))


# -- registration --------------------------------------------------------------

# ``override_eligible`` mirrors the timing layer: only families with a
# latency model (repro.timing.latency) can play the slow side of an
# overriding pair.  ``batch_kernel`` names the bit-exact vectorized kernel
# in repro.batch.engine, when one exists.

registry.register(
    FamilySpec(
        name="bimodal",
        config_type=BimodalConfig,
        sizer=size_bimodal,
        builder=bimodal_from_config,
        predictor_type=BimodalPredictor,
        batch_kernel="bimodal",
        override_eligible=True,
    )
)
registry.register(
    FamilySpec(
        name="gshare",
        config_type=GshareConfig,
        sizer=size_gshare,
        builder=gshare_from_config,
        predictor_type=GsharePredictor,
        batch_kernel="gshare",
        override_eligible=True,
    )
)
registry.register(
    FamilySpec(
        name="bimode",
        config_type=BiModeConfig,
        sizer=size_bimode,
        builder=bimode_from_config,
        predictor_type=BiModePredictor,
        batch_kernel="bimode",
        override_eligible=True,
    )
)
registry.register(
    FamilySpec(
        name="2bcgskew",
        config_type=GskewConfig,
        sizer=size_2bcgskew,
        builder=twobcgskew_from_config,
        predictor_type=TwoBcGskewPredictor,
        override_eligible=True,
    )
)
registry.register(
    FamilySpec(
        name="egskew",
        config_type=EGskewConfig,
        sizer=size_egskew,
        builder=egskew_from_config,
        predictor_type=EGskewPredictor,
        override_eligible=True,
    )
)
registry.register(
    FamilySpec(
        name="perceptron",
        config_type=PerceptronConfig,
        sizer=size_perceptron,
        builder=perceptron_from_config,
        predictor_type=PerceptronPredictor,
        override_eligible=True,
    )
)
registry.register(
    FamilySpec(
        name="multicomponent",
        config_type=MultiComponentConfig,
        sizer=size_multicomponent,
        builder=multicomponent_from_config,
        predictor_type=MultiComponentPredictor,
        override_eligible=True,
    )
)
registry.register(
    FamilySpec(
        name="tournament",
        config_type=TournamentConfig,
        sizer=size_tournament,
        builder=tournament_from_config,
        predictor_type=TournamentPredictor,
    )
)
registry.register(
    FamilySpec(
        name="loop",
        config_type=LoopConfig,
        sizer=size_loop,
        builder=loop_from_config,
        predictor_type=LoopPredictor,
    )
)


# -- public entry points -------------------------------------------------------


def predictor_families() -> list[str]:
    """Deprecated: use :func:`repro.predictors.registry.family_names`.

    Historically this listed only the factory's nine families, silently
    omitting the pipelined ``repro.core`` families (gshare_fast,
    bimode_fast).  It now returns the registry's full authoritative list.
    """
    warnings.warn(
        "predictor_families() is deprecated; use "
        "repro.predictors.registry.family_names()",
        DeprecationWarning,
        stacklevel=2,
    )
    return registry.family_names()


def build_predictor(family: str, budget_bytes: int) -> BranchPredictor:
    """Build a predictor of ``family`` sized for ``budget_bytes`` of state.

    A registry lookup: every registered family is accepted, including the
    pipelined ``repro.core`` ones.
    """
    return registry.build(family, budget_bytes)
