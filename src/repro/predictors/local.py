"""Two-level local-history predictor (Yeh & Patt PAg organization).

First level: a table of per-branch history shift registers indexed by PC.
Second level: a PHT of saturating counters indexed by the local history.
This is the local half of the Alpha EV6 tournament predictor and a component
of the multi-component hybrid.
"""

from __future__ import annotations

from repro.common.bits import fold, log2_exact
from repro.common.counters import CounterTable
from repro.common.history import LocalHistoryTable
from repro.predictors.base import BranchPredictor


class LocalPredictor(BranchPredictor):
    """PAg: ``history_entries`` local histories feeding a shared PHT."""

    name = "local"

    def __init__(
        self,
        history_entries: int,
        history_length: int,
        pht_entries: int | None = None,
        counter_bits: int = 2,
    ) -> None:
        super().__init__()
        if pht_entries is None:
            pht_entries = 1 << history_length
        self.pht_index_bits = log2_exact(pht_entries)
        self.histories = LocalHistoryTable(history_entries, history_length)
        self.pht = CounterTable(pht_entries, bits=counter_bits)

    @property
    def storage_bits(self) -> int:
        """Hardware state consumed by the predictor, in bits."""
        return self.histories.storage_bits + self.pht.storage_bits

    def _pht_index(self, pc: int) -> int:
        local = self.histories.read(pc)
        return fold(local, self.histories.length, self.pht_index_bits)

    def _predict(self, pc: int) -> tuple[bool, object]:
        index = self._pht_index(pc)
        return self.pht.predict(index), index

    def _update(self, pc: int, taken: bool, predicted: bool, context: object) -> None:
        self.pht.update(context, taken)
        self.histories.push(pc, taken)
