"""Static (non-learning) predictors.

Baselines and building blocks: always-taken, always-not-taken, and
backward-taken/forward-not-taken (BTFN — the classic static heuristic that
exploits the compiler layout convention the paper leans on in Section
3.3.3: loop back-edges point backward and are taken; forward conditionals
are mostly not taken).
"""

from __future__ import annotations

from repro.predictors.base import BranchPredictor


class AlwaysTakenPredictor(BranchPredictor):
    """Predicts taken for every branch (zero state)."""

    name = "always_taken"

    @property
    def storage_bits(self) -> int:
        """Hardware state consumed by the predictor, in bits."""
        return 0

    def _predict(self, pc: int) -> tuple[bool, object]:
        return True, None

    def _update(self, pc: int, taken: bool, predicted: bool, context: object) -> None:
        pass


class AlwaysNotTakenPredictor(BranchPredictor):
    """Predicts not-taken for every branch (zero state)."""

    name = "always_not_taken"

    @property
    def storage_bits(self) -> int:
        """Hardware state consumed by the predictor, in bits."""
        return 0

    def _predict(self, pc: int) -> tuple[bool, object]:
        return False, None

    def _update(self, pc: int, taken: bool, predicted: bool, context: object) -> None:
        pass


class BtfnPredictor(BranchPredictor):
    """Backward-taken / forward-not-taken.

    Needs the branch target to classify direction, which the plain
    direction-predictor interface does not carry; the trace-aware harness
    calls :meth:`set_target` before each prediction, and an unknown target
    defaults to the forward (not-taken) guess.
    """

    name = "btfn"

    def __init__(self) -> None:
        super().__init__()
        self._target: int | None = None

    @property
    def storage_bits(self) -> int:
        """Hardware state consumed by the predictor, in bits."""
        return 0

    def set_target(self, target: int) -> None:
        """Provide the branch's target address for the next prediction."""
        self._target = target

    def _predict(self, pc: int) -> tuple[bool, object]:
        if self._target is None:
            return False, None
        backward = self._target <= pc
        self._target = None
        return backward, None

    def _update(self, pc: int, taken: bool, predicted: bool, context: object) -> None:
        pass
