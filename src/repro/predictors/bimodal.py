"""Bimodal predictor (Smith): a PC-indexed table of 2-bit counters.

The simplest dynamic predictor; used standalone as a baseline, as the BIM
component of 2Bc-gskew, and as the bias component of the multi-component
hybrid.
"""

from __future__ import annotations

from repro.common.bits import log2_exact
from repro.common.counters import CounterTable
from repro.predictors.base import BranchPredictor


class BimodalPredictor(BranchPredictor):
    """``entries`` 2-bit counters indexed by low PC bits."""

    name = "bimodal"

    def __init__(self, entries: int, counter_bits: int = 2) -> None:
        super().__init__()
        self.index_bits = log2_exact(entries)
        self.table = CounterTable(entries, bits=counter_bits)

    @property
    def storage_bits(self) -> int:
        """Hardware state consumed by the predictor, in bits."""
        return self.table.storage_bits

    def tables(self) -> dict[str, CounterTable]:
        """Named counter tables (checkpoint/diff tooling)."""
        return {"pht": self.table}

    def index(self, pc: int) -> int:
        """Table index for the branch at ``pc``."""
        return (pc >> 2) & (self.table.size - 1)

    def _predict(self, pc: int) -> tuple[bool, object]:
        index = self.index(pc)
        return self.table.predict(index), index

    def _update(self, pc: int, taken: bool, predicted: bool, context: object) -> None:
        self.table.update(context, taken)
