"""EV6-style tournament (hybrid) predictor.

The Alpha 21264 predictor described in Section 2.1 of the paper: a global
two-level component (PHT indexed by the global history register), a local
two-level component (per-branch histories feeding 3-bit counters), and a
chooser PHT indexed by the global history that picks the component whose
prediction is used.

The EV6 proportions (4K global / 1K x 10-bit local / 1K 3-bit local PHT / 4K
chooser) are the defaults; all sizes scale for budget sweeps.
"""

from __future__ import annotations

from repro.common.bits import fold, log2_exact
from repro.common.counters import CounterTable
from repro.common.history import HistoryRegister, LocalHistoryTable
from repro.predictors.base import BranchPredictor


class TournamentPredictor(BranchPredictor):
    """Global + local components arbitrated by a global-history chooser."""

    name = "tournament"

    def __init__(
        self,
        global_entries: int = 4096,
        local_histories: int = 1024,
        local_history_length: int = 10,
        local_pht_entries: int = 1024,
        chooser_entries: int = 4096,
    ) -> None:
        super().__init__()
        self.global_index_bits = log2_exact(global_entries)
        self.local_pht_index_bits = log2_exact(local_pht_entries)
        self.chooser_index_bits = log2_exact(chooser_entries)
        self.history = HistoryRegister(self.global_index_bits)
        self.global_pht = CounterTable(global_entries, bits=2)
        self.local_histories = LocalHistoryTable(local_histories, local_history_length)
        self.local_pht = CounterTable(local_pht_entries, bits=3)
        self.chooser = CounterTable(chooser_entries, bits=2)

    @property
    def storage_bits(self) -> int:
        """Hardware state consumed by the predictor, in bits."""
        return (
            self.global_pht.storage_bits
            + self.local_histories.storage_bits
            + self.local_pht.storage_bits
            + self.chooser.storage_bits
            + self.history.length
        )

    def _indices(self, pc: int) -> tuple[int, int, int]:
        global_index = fold(self.history.value, self.history.length, self.global_index_bits)
        local = self.local_histories.read(pc)
        local_index = fold(local, self.local_histories.length, self.local_pht_index_bits)
        chooser_index = fold(self.history.value, self.history.length, self.chooser_index_bits)
        return global_index, local_index, chooser_index

    def _predict(self, pc: int) -> tuple[bool, object]:
        global_index, local_index, chooser_index = self._indices(pc)
        global_vote = self.global_pht.predict(global_index)
        local_vote = self.local_pht.predict(local_index)
        use_global = self.chooser.predict(chooser_index)
        prediction = global_vote if use_global else local_vote
        context = (global_index, local_index, chooser_index, global_vote, local_vote)
        return prediction, context

    def _update(self, pc: int, taken: bool, predicted: bool, context: object) -> None:
        global_index, local_index, chooser_index, global_vote, local_vote = context
        if global_vote != local_vote:
            # Chooser trains toward the component that was right; "taken"
            # here means "prefer the global component".
            self.chooser.update(chooser_index, global_vote == taken)
        self.global_pht.update(global_index, taken)
        self.local_pht.update(local_index, taken)
        self.local_histories.push(pc, taken)
        self.history.push(taken)
