"""Hardware-budget sizing rules.

The paper sweeps predictors across hardware budgets given in bytes of
predictor state (Figures 1, 2, 5, 7).  This module turns a budget into a
concrete configuration for each predictor family, using the configuration
rules the paper cites:

* gshare / gshare.fast — the PHT fills the budget (4 two-bit counters per
  byte); history length is the maximum, log2 of the entry count (§4.1.4).
* Bi-Mode — budget split across two direction tables and a choice table.
* 2Bc-gskew — four equal banks (BIM, G0, G1, META); G0 uses a short history,
  G1 a long one, per the EV8 design.
* perceptron — history length per budget follows the published table from
  Jiménez & Lin (HPCA-7); the weight table fills the remaining budget at one
  byte per weight, with a quarter of the history bits drawn from a local
  history table (the paper under reproduction uses global+local input).
* multi-component — budget split across bimodal, short/long gshare, local,
  and loop components plus the selection table, in Evers-like proportions.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import asdict, dataclass, fields
from typing import TypeVar

from repro.common.bits import is_power_of_two
from repro.common.errors import BudgetError, ConfigurationError

KIB = 1024

#: History-length cap for classic gshare-style indexing.  The paper's
#: billion-instruction SPEC runs support histories equal to the full index
#: width; at this package's default trace scale (10^5-10^6 branches),
#: histories beyond ~14 bits dilute training faster than they add
#: correlation, so sized gshare components clamp here.  gshare.fast is NOT
#: clamped: its line-address design requires history bits for the whole
#: index (Section 4.1.4), which is faithful to the paper and measurable as
#: a mild large-budget accuracy cost at small trace scales.
GSHARE_MAX_HISTORY = 14

#: Perceptron history length by hardware budget (Jiménez & Lin, HPCA-7
#: table of best history lengths; values beyond their sweep keep the trend).
PERCEPTRON_HISTORY_BY_BUDGET: dict[int, int] = {
    1 * KIB: 12,
    2 * KIB: 22,
    4 * KIB: 28,
    8 * KIB: 34,
    16 * KIB: 36,
    32 * KIB: 59,
    64 * KIB: 59,
    128 * KIB: 62,
    256 * KIB: 62,
    512 * KIB: 62,
}


def floor_pow2(value: int) -> int:
    """Largest power of two <= value (>= 1)."""
    if value < 1:
        raise BudgetError(f"cannot size a table from {value} entries")
    return 1 << (value.bit_length() - 1)


def perceptron_history_length(budget_bytes: int) -> int:
    """History length for a perceptron at ``budget_bytes`` (nearest rule)."""
    if budget_bytes in PERCEPTRON_HISTORY_BY_BUDGET:
        return PERCEPTRON_HISTORY_BY_BUDGET[budget_bytes]
    # Interpolate on the log scale for off-grid budgets.
    keys = sorted(PERCEPTRON_HISTORY_BY_BUDGET)
    if budget_bytes <= keys[0]:
        return PERCEPTRON_HISTORY_BY_BUDGET[keys[0]]
    if budget_bytes >= keys[-1]:
        return PERCEPTRON_HISTORY_BY_BUDGET[keys[-1]]
    below = max(k for k in keys if k <= budget_bytes)
    above = min(k for k in keys if k > budget_bytes)
    return (PERCEPTRON_HISTORY_BY_BUDGET[below] + PERCEPTRON_HISTORY_BY_BUDGET[above]) // 2


_C = TypeVar("_C", bound="SizingConfig")


@dataclass(frozen=True)
class SizingConfig:
    """Base for the per-family configuration dataclasses.

    Every family's config is a frozen dataclass of plain integers, so a
    configuration can travel as JSON (between sweep processes, into run
    manifests and shard checkpoints) and rebuild a bit-identical predictor
    through its family's builder.  ``from_dict(to_dict(cfg)) == cfg`` is a
    registry-wide invariant enforced by the conformance suite.
    """

    def to_dict(self) -> dict[str, int]:
        """JSON-able view of the configuration (field name -> value)."""
        return asdict(self)

    @classmethod
    def from_dict(cls: type[_C], data: Mapping[str, object]) -> _C:
        """Rebuild a config from :meth:`to_dict` output, validating shape."""
        names = [f.name for f in fields(cls)]
        unknown = sorted(set(data) - set(names))
        missing = sorted(set(names) - set(data))
        if unknown or missing:
            raise ConfigurationError(
                f"{cls.__name__}: cannot deserialize config "
                f"(missing fields: {missing}, unknown fields: {unknown})"
            )
        bad = sorted(name for name in names if not isinstance(data[name], int))
        if bad:
            raise ConfigurationError(
                f"{cls.__name__}: non-integer config fields {bad}"
            )
        return cls(**{name: data[name] for name in names})


@dataclass(frozen=True)
class GshareConfig(SizingConfig):
    """Sized gshare: PHT entries and history length."""

    entries: int
    history_length: int


@dataclass(frozen=True)
class BimodalConfig(SizingConfig):
    """Sized bimodal: PC-indexed counter-table entries."""

    entries: int


@dataclass(frozen=True)
class EGskewConfig(SizingConfig):
    """Sized e-gskew: per-bank entries and history length."""

    bank_entries: int
    history_length: int


@dataclass(frozen=True)
class TournamentConfig(SizingConfig):
    """Sized EV6 tournament: global/chooser tables and local structures."""

    global_entries: int
    local_histories: int
    local_history_length: int
    local_pht_entries: int
    chooser_entries: int


@dataclass(frozen=True)
class LoopConfig(SizingConfig):
    """Sized loop predictor: monitor entries and confidence threshold."""

    entries: int
    confidence_threshold: int


@dataclass(frozen=True)
class GshareFastConfig(SizingConfig):
    """Sized gshare.fast: PHT entries and the non-speculative update delay
    (latency and buffer width derive from the SRAM model at build time)."""

    entries: int
    update_delay: int


@dataclass(frozen=True)
class BiModeFastConfig(SizingConfig):
    """Sized bimode.fast: direction-table and choice-table entries."""

    direction_entries: int
    choice_entries: int


@dataclass(frozen=True)
class BiModeConfig(SizingConfig):
    """Sized Bi-Mode: direction/choice table entries and history."""

    direction_entries: int
    choice_entries: int
    history_length: int


@dataclass(frozen=True)
class GskewConfig(SizingConfig):
    """Sized 2Bc-gskew: per-bank entries and staggered histories."""

    bank_entries: int
    short_history: int
    long_history: int


@dataclass(frozen=True)
class PerceptronConfig(SizingConfig):
    """Sized perceptron: table rows and global/local history split."""

    num_perceptrons: int
    global_history: int
    local_history: int
    local_history_entries: int


@dataclass(frozen=True)
class MultiComponentConfig(SizingConfig):
    """Sized multi-hybrid: per-component structures and selector."""

    bimodal_entries: int
    gshare_short_entries: int
    gshare_short_history: int
    gshare_long_entries: int
    gshare_long_history: int
    local_histories: int
    local_history_length: int
    local_pht_entries: int
    loop_entries: int
    selector_entries: int


def size_gshare(budget_bytes: int) -> GshareConfig:
    """PHT fills the budget; history clamped per GSHARE_MAX_HISTORY."""
    entries = floor_pow2(budget_bytes * 4)  # 2-bit counters
    if entries < 64:
        raise BudgetError(f"budget {budget_bytes}B too small for a gshare PHT")
    history = min(entries.bit_length() - 1, GSHARE_MAX_HISTORY)
    return GshareConfig(entries=entries, history_length=history)


def size_bimode(budget_bytes: int) -> BiModeConfig:
    """Split the budget across Bi-Mode's three equal tables."""
    # Three equally-sized tables of 2-bit counters.
    total_counters = budget_bytes * 4
    per_table = floor_pow2(total_counters // 3)
    if per_table < 64:
        raise BudgetError(f"budget {budget_bytes}B too small for Bi-Mode")
    history = per_table.bit_length() - 1
    return BiModeConfig(
        direction_entries=per_table, choice_entries=per_table, history_length=history
    )


def size_2bcgskew(budget_bytes: int) -> GskewConfig:
    """Four equal banks (BIM, G0, G1, META) with staggered histories."""
    bank = floor_pow2(budget_bytes)  # 4 banks x 2 bits = 1 byte per entry row
    if bank < 64:
        raise BudgetError(f"budget {budget_bytes}B too small for 2Bc-gskew")
    index_bits = bank.bit_length() - 1
    # The EV8 design staggers a short and a long global history across the
    # banks; both are clamped like every sized gshare-style component (see
    # GSHARE_MAX_HISTORY), with the short bank two branches shorter.
    long_history = min(index_bits, GSHARE_MAX_HISTORY)
    return GskewConfig(
        bank_entries=bank,
        short_history=max(long_history - 2, 1),
        long_history=long_history,
    )


def size_perceptron(budget_bytes: int, use_local: bool = True) -> PerceptronConfig:
    """History per the Jimenez & Lin budget table; weights fill the rest."""
    history = perceptron_history_length(budget_bytes)
    if use_local:
        local = max(history // 4, 1)
        global_hist = history - local
        local_entries = 1024
        local_table_bytes = (local_entries * local + 7) // 8
    else:
        local = 0
        global_hist = history
        local_entries = 1024
        local_table_bytes = 0
    weight_bytes_per_row = 1 + history  # bias + one 8-bit weight per bit
    rows = (budget_bytes - local_table_bytes) // weight_bytes_per_row
    if rows < 8:
        raise BudgetError(f"budget {budget_bytes}B too small for a perceptron table")
    return PerceptronConfig(
        num_perceptrons=rows,
        global_history=global_hist,
        local_history=local,
        local_history_entries=local_entries,
    )


def size_multicomponent(budget_bytes: int) -> MultiComponentConfig:
    """Evers-like budget split across five components plus the selector."""
    budget_bits = budget_bytes * 8
    # Proportions: 2 gshares 25% each, local 25%, bimodal 12.5%,
    # loop ~6%, selector the rest.
    gshare_entries = floor_pow2(budget_bits // 4 // 2)
    bimodal_entries = floor_pow2(budget_bits // 8 // 2)
    if gshare_entries < 64 or bimodal_entries < 64:
        raise BudgetError(f"budget {budget_bytes}B too small for the multi-hybrid")
    gshare_index = gshare_entries.bit_length() - 1
    local_budget_bits = budget_bits // 4
    local_history_length = 11
    # Split local budget between the history table and its PHT.
    local_histories = floor_pow2(local_budget_bits // 2 // local_history_length)
    local_pht_entries = min(floor_pow2(local_budget_bits // 2 // 2), 1 << local_history_length)
    loop_entries = max(floor_pow2(budget_bits // 16 // 31), 32)
    selector_entries = max(floor_pow2(budget_bits // 16 // 10), 128)
    return MultiComponentConfig(
        bimodal_entries=bimodal_entries,
        gshare_short_entries=gshare_entries,
        gshare_short_history=max(min(gshare_index, GSHARE_MAX_HISTORY) // 2, 1),
        gshare_long_entries=gshare_entries,
        gshare_long_history=min(gshare_index, GSHARE_MAX_HISTORY),
        local_histories=max(local_histories, 64),
        local_history_length=local_history_length,
        local_pht_entries=max(local_pht_entries, 64),
        loop_entries=loop_entries,
        selector_entries=selector_entries,
    )


def size_bimodal(budget_bytes: int) -> BimodalConfig:
    """Bimodal fills the budget with 2-bit counters (4 per byte)."""
    return BimodalConfig(entries=floor_pow2(budget_bytes * 4))


def size_egskew(budget_bytes: int) -> EGskewConfig:
    """e-gskew: three equal banks of 2-bit counters fill the budget; history
    equals the bank index width (the predictor's own default)."""
    bank = floor_pow2(budget_bytes * 8 // 3 // 2)
    return EGskewConfig(bank_entries=bank, history_length=bank.bit_length() - 1)


def size_tournament(budget_bytes: int) -> TournamentConfig:
    """EV6 proportions scaled to the budget: global/chooser tables equal,
    local structures a quarter of their size, EV6's 10-bit local history."""
    global_entries = floor_pow2(budget_bytes * 8 // 2 // 2 // 2)
    local = max(global_entries // 4, 64)
    return TournamentConfig(
        global_entries=global_entries,
        local_histories=local,
        local_history_length=10,
        local_pht_entries=local,
        chooser_entries=global_entries,
    )


def size_loop(budget_bytes: int) -> LoopConfig:
    """Standalone loop predictor: 31-bit entries fill the budget."""
    return LoopConfig(
        entries=max(floor_pow2(budget_bytes * 8 // 31), 64),
        confidence_threshold=2,
    )


def size_gshare_fast(budget_bytes: int, update_delay: int = 0) -> GshareFastConfig:
    """gshare.fast shares gshare's PHT sizing; latency/buffer come from the
    SRAM model at build time, so only entries and the update delay are
    configuration."""
    return GshareFastConfig(
        entries=size_gshare(budget_bytes).entries, update_delay=update_delay
    )


def size_bimode_fast(budget_bytes: int) -> BiModeFastConfig:
    """bimode.fast: the choice table takes its single-cycle maximum (1K
    entries, 256 bytes); the two direction tables split the rest evenly."""
    choice_entries = 1024  # MAX_CHOICE_ENTRIES: largest single-cycle table
    choice_bytes = choice_entries * 2 // 8
    remaining_bits = (budget_bytes - choice_bytes) * 8
    direction_entries = floor_pow2(max(remaining_bits // 2 // 2, 64))
    return BiModeFastConfig(
        direction_entries=direction_entries, choice_entries=choice_entries
    )


def validate_budget(budget_bytes: int) -> None:
    """Budgets must be positive; power-of-two budgets are conventional but
    not required (the paper's multi-hybrid budgets are 18KB, 36KB, ...)."""
    if budget_bytes <= 0:
        raise BudgetError(f"hardware budget must be positive, got {budget_bytes}")


def is_canonical_budget(budget_bytes: int) -> bool:
    """True for the power-of-two byte budgets used on the paper's x-axes."""
    return is_power_of_two(budget_bytes)
