"""Branch-predictor substrate: every baseline the paper evaluates."""

from repro.predictors.base import BranchPredictor, PredictorStats
from repro.predictors.bimodal import BimodalPredictor
from repro.predictors.bimode import BiModePredictor
from repro.predictors.factory import build_predictor, predictor_families
from repro.predictors.gshare import GsharePredictor
from repro.predictors.registry import FamilySpec, family_names
from repro.predictors.gskew import EGskewPredictor, TwoBcGskewPredictor
from repro.predictors.local import LocalPredictor
from repro.predictors.loop import LoopPredictor
from repro.predictors.multicomponent import MultiComponentPredictor
from repro.predictors.perceptron import PerceptronPredictor
from repro.predictors.static import (
    AlwaysNotTakenPredictor,
    AlwaysTakenPredictor,
    BtfnPredictor,
)
from repro.predictors.tournament import TournamentPredictor

__all__ = [
    "AlwaysNotTakenPredictor",
    "AlwaysTakenPredictor",
    "BiModePredictor",
    "BtfnPredictor",
    "BimodalPredictor",
    "BranchPredictor",
    "EGskewPredictor",
    "FamilySpec",
    "GsharePredictor",
    "LocalPredictor",
    "LoopPredictor",
    "MultiComponentPredictor",
    "PerceptronPredictor",
    "PredictorStats",
    "TournamentPredictor",
    "TwoBcGskewPredictor",
    "build_predictor",
    "family_names",
    "predictor_families",
]
