"""Bi-Mode predictor (Lee, Chen & Mudge, MICRO-30).

Destructive aliasing in a shared PHT mostly happens when a taken-biased and a
not-taken-biased branch collide.  Bi-Mode splits the PHT into two *direction*
tables — one trained mostly by taken-biased branches, one by not-taken-biased
branches — both indexed gshare-style, plus a PC-indexed *choice* table that
selects which direction table speaks for each branch.

Update policy (as published):
  * the choice table is updated with the outcome, except when it pointed at a
    direction table that predicted correctly while the outcome disagreed with
    the choice (the "partial update" that preserves the bias separation);
  * only the *selected* direction table is updated.
"""

from __future__ import annotations

from repro.common.bits import hash_pc, log2_exact, mask
from repro.common.counters import CounterTable
from repro.common.history import HistoryRegister
from repro.predictors.base import BranchPredictor


class BiModePredictor(BranchPredictor):
    """Two direction PHTs plus a choice PHT."""

    name = "bimode"

    def __init__(
        self,
        direction_entries: int,
        choice_entries: int | None = None,
        history_length: int | None = None,
    ) -> None:
        super().__init__()
        self.direction_index_bits = log2_exact(direction_entries)
        if choice_entries is None:
            choice_entries = direction_entries
        self.choice_index_bits = log2_exact(choice_entries)
        if history_length is None:
            history_length = self.direction_index_bits
        self.history = HistoryRegister(min(history_length, self.direction_index_bits))
        self.taken_table = CounterTable(direction_entries, bits=2, init=2)
        self.not_taken_table = CounterTable(direction_entries, bits=2, init=1)
        self.choice_table = CounterTable(choice_entries, bits=2)

    @property
    def storage_bits(self) -> int:
        """Hardware state consumed by the predictor, in bits."""
        return (
            self.taken_table.storage_bits
            + self.not_taken_table.storage_bits
            + self.choice_table.storage_bits
            + self.history.length
        )

    def tables(self) -> dict[str, CounterTable]:
        """Named counter tables (checkpoint/diff tooling)."""
        return {
            "taken": self.taken_table,
            "not_taken": self.not_taken_table,
            "choice": self.choice_table,
        }

    def _indices(self, pc: int) -> tuple[int, int]:
        direction = (hash_pc(pc, self.direction_index_bits) ^ self.history.value) & mask(
            self.direction_index_bits
        )
        choice = (pc >> 2) & (self.choice_table.size - 1)
        return direction, choice

    def _predict(self, pc: int) -> tuple[bool, object]:
        direction_index, choice_index = self._indices(pc)
        choose_taken_table = self.choice_table.predict(choice_index)
        table = self.taken_table if choose_taken_table else self.not_taken_table
        prediction = table.predict(direction_index)
        return prediction, (direction_index, choice_index, choose_taken_table, prediction)

    def _update(self, pc: int, taken: bool, predicted: bool, context: object) -> None:
        direction_index, choice_index, choose_taken_table, prediction = context
        # Partial update of the choice table: skip when the selected direction
        # table was right but the outcome disagrees with the current choice.
        selected_correct = prediction == taken
        choice_agrees = choose_taken_table == taken
        if not (selected_correct and not choice_agrees):
            self.choice_table.update(choice_index, taken)
        table = self.taken_table if choose_taken_table else self.not_taken_table
        table.update(direction_index, taken)
        self.history.push(taken)
