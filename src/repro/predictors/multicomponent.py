"""Multi-component hybrid predictor (Evers' multi-hybrid, PhD thesis 1999).

The most accurate table-based predictor the paper evaluates.  Several
heterogeneous component predictors run in parallel; a PC-indexed *selection
table* holds one small saturating counter per component, and the component
with the highest counter value supplies the prediction (ties broken by a
fixed priority order, most-specialized first).

Selection training (Evers): when the selected component mispredicts but some
other component was right, the correct components' counters are incremented;
when the selected component is right, the counters of wrong components decay.
All components are trained with the outcome on every branch (total update),
which is what gives the multi-hybrid its robustness — and its latency, since
every table must be read and combined before a prediction can be made.

The default component set mirrors Evers' mix: bimodal (fast-training bias),
short- and long-history gshare (pattern correlation at two ranges), a
two-level local predictor (self-correlation), and a loop predictor (trip
counts beyond any history length).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.bits import is_power_of_two
from repro.common.errors import ConfigurationError
from repro.predictors.base import BranchPredictor


@dataclass(frozen=True)
class ComponentSlot:
    """A named component with its selection priority (lower = preferred on ties)."""

    name: str
    predictor: BranchPredictor
    priority: int


class MultiComponentPredictor(BranchPredictor):
    """Evers-style multi-hybrid over an arbitrary component list."""

    name = "multicomponent"

    def __init__(
        self,
        components: list[BranchPredictor],
        selector_entries: int = 1024,
        selector_bits: int = 2,
    ) -> None:
        super().__init__()
        if len(components) < 2:
            raise ConfigurationError("multi-hybrid needs at least two components")
        if not is_power_of_two(selector_entries):
            raise ConfigurationError(
                f"selector entries must be a power of two, got {selector_entries}"
            )
        self.slots = [
            ComponentSlot(name=p.name, predictor=p, priority=i)
            for i, p in enumerate(components)
        ]
        self.selector_entries = selector_entries
        self.selector_bits = selector_bits
        self._selector_max = (1 << selector_bits) - 1
        # counters[entry, component]; start all equal so priority order rules.
        self._counters = np.full(
            (selector_entries, len(components)), self._selector_max // 2 + 1, dtype=np.int8
        )

    @property
    def storage_bits(self) -> int:
        """Hardware state consumed by the predictor, in bits."""
        component_bits = sum(slot.predictor.storage_bits for slot in self.slots)
        selector_storage = self.selector_entries * len(self.slots) * self.selector_bits
        return component_bits + selector_storage

    def _selector_index(self, pc: int) -> int:
        return (pc >> 2) & (self.selector_entries - 1)

    def _select(self, counters: np.ndarray) -> int:
        # argmax returns the first maximal element: priority order is the
        # component list order, so ties go to the earlier (preferred) slot.
        return int(np.argmax(counters))

    def _predict(self, pc: int) -> tuple[bool, object]:
        index = self._selector_index(pc)
        votes = [slot.predictor.predict(pc) for slot in self.slots]
        chosen = self._select(self._counters[index])
        return votes[chosen], (index, chosen, votes)

    def _update(self, pc: int, taken: bool, predicted: bool, context: object) -> None:
        index, chosen, votes = context
        counters = self._counters[index]
        selected_correct = votes[chosen] == taken
        for i, vote in enumerate(votes):
            component_correct = vote == taken
            if not selected_correct and component_correct and counters[i] < self._selector_max:
                counters[i] += 1
            elif selected_correct and not component_correct and counters[i] > 0:
                counters[i] -= 1
        # Total update: every component trains on every branch.
        for slot in self.slots:
            slot.predictor.update(pc, taken)

    def peek(self, pc: int) -> bool:
        """Non-mutating prediction (components peeked, not put in flight)."""
        index = self._selector_index(pc)
        votes = [slot.predictor.peek(pc) for slot in self.slots]
        return votes[self._select(self._counters[index])]

    def component_names(self) -> list[str]:
        """Component names in priority order."""
        return [slot.name for slot in self.slots]
