"""e-gskew and 2Bc-gskew predictors (Michaud, Seznec & Uhlig; Seznec et al.).

e-gskew attacks aliasing by reading three banks through *different* skewing
hash functions and taking a majority vote: two branches that collide in one
bank almost never collide in the other two.

2Bc-gskew — the organization behind the Alpha EV8 predictor — adds a
metapredictor that chooses per-branch between the bimodal bank (good for
strongly biased branches, trains instantly) and the e-gskew majority (good
for history-correlated branches), with the partial-update policy from the
EV8 paper:

  * prediction correct: strengthen only the banks that agreed with it;
  * prediction incorrect: if the meta chose bimodal, train only bimodal and
    the meta; otherwise train all banks toward the outcome;
  * the meta trains whenever bimodal and the gskew majority disagree, toward
    whichever was right.

The two global banks use different history lengths (G0 short, G1 long),
matching the EV8 design's staggered histories.
"""

from __future__ import annotations

from repro.common.bits import bit_reverse, fold, hash_pc, log2_exact, mask, rotate_left
from repro.common.counters import CounterTable
from repro.common.history import HistoryRegister
from repro.predictors.base import BranchPredictor


def skew_index(pc: int, history: int, history_length: int, index_bits: int, bank: int) -> int:
    """Skewing hash for bank ``bank`` (0, 1, 2).

    Each bank combines the same (pc, history) pair through a differently
    rotated/reflected mix so inter-bank collisions are decorrelated, in the
    spirit of Seznec's H/H⁻¹ skewing family.
    """
    pc_bits = hash_pc(pc, index_bits)
    hist_bits = fold(history, history_length, index_bits)
    if bank == 0:
        mixed = pc_bits ^ hist_bits
    elif bank == 1:
        mixed = rotate_left(pc_bits, index_bits // 3 + 1, index_bits) ^ bit_reverse(
            hist_bits, index_bits
        )
    else:
        mixed = bit_reverse(pc_bits, index_bits) ^ rotate_left(
            hist_bits, 2 * index_bits // 3 + 1, index_bits
        )
    return mixed & mask(index_bits)


class EGskewPredictor(BranchPredictor):
    """Enhanced gskew: BIM + two skewed global banks, majority vote."""

    name = "egskew"

    def __init__(
        self,
        bank_entries: int,
        history_length: int | None = None,
    ) -> None:
        super().__init__()
        self.index_bits = log2_exact(bank_entries)
        if history_length is None:
            history_length = self.index_bits
        self.history = HistoryRegister(history_length)
        self.bim = CounterTable(bank_entries, bits=2)
        self.g0 = CounterTable(bank_entries, bits=2)
        self.g1 = CounterTable(bank_entries, bits=2)

    @property
    def storage_bits(self) -> int:
        """Hardware state consumed by the predictor, in bits."""
        return (
            self.bim.storage_bits
            + self.g0.storage_bits
            + self.g1.storage_bits
            + self.history.length
        )

    def _indices(self, pc: int) -> tuple[int, int, int]:
        bim_index = (pc >> 2) & (self.bim.size - 1)
        history = self.history.value
        g0_index = skew_index(pc, history, self.history.length, self.index_bits, 1)
        g1_index = skew_index(pc, history, self.history.length, self.index_bits, 2)
        return bim_index, g0_index, g1_index

    def _predict(self, pc: int) -> tuple[bool, object]:
        indices = self._indices(pc)
        votes = (
            self.bim.predict(indices[0]),
            self.g0.predict(indices[1]),
            self.g1.predict(indices[2]),
        )
        prediction = sum(votes) >= 2
        return prediction, (indices, votes)

    def _update(self, pc: int, taken: bool, predicted: bool, context: object) -> None:
        (bim_index, g0_index, g1_index), votes = context
        correct = predicted == taken
        banks = ((self.bim, bim_index), (self.g0, g0_index), (self.g1, g1_index))
        for (bank, index), vote in zip(banks, votes):
            if correct and vote != taken:
                # Partial update: do not disturb a bank that was outvoted.
                continue
            bank.update(index, taken)
        self.history.push(taken)


class TwoBcGskewPredictor(BranchPredictor):
    """2Bc-gskew: e-gskew plus a metapredictor (EV8-style organization)."""

    name = "2bcgskew"

    def __init__(
        self,
        bank_entries: int,
        short_history: int | None = None,
        long_history: int | None = None,
    ) -> None:
        super().__init__()
        self.index_bits = log2_exact(bank_entries)
        if long_history is None:
            long_history = min(2 * self.index_bits, 40)
        if short_history is None:
            short_history = max(self.index_bits // 2, 1)
        self.history = HistoryRegister(long_history)
        self.short_history = short_history
        self.long_history = long_history
        self.bim = CounterTable(bank_entries, bits=2)
        self.g0 = CounterTable(bank_entries, bits=2)
        self.g1 = CounterTable(bank_entries, bits=2)
        self.meta = CounterTable(bank_entries, bits=2)

    @property
    def storage_bits(self) -> int:
        """Hardware state consumed by the predictor, in bits."""
        return (
            self.bim.storage_bits
            + self.g0.storage_bits
            + self.g1.storage_bits
            + self.meta.storage_bits
            + self.history.length
        )

    def _indices(self, pc: int) -> tuple[int, int, int, int]:
        history = self.history.value
        short = history & mask(self.short_history)
        bim_index = (pc >> 2) & (self.bim.size - 1)
        g0_index = skew_index(pc, short, self.short_history, self.index_bits, 1)
        g1_index = skew_index(pc, history, self.long_history, self.index_bits, 2)
        meta_index = skew_index(pc, short, self.short_history, self.index_bits, 0)
        return bim_index, g0_index, g1_index, meta_index

    def _predict(self, pc: int) -> tuple[bool, object]:
        indices = self._indices(pc)
        bim_index, g0_index, g1_index, meta_index = indices
        bim_vote = self.bim.predict(bim_index)
        g0_vote = self.g0.predict(g0_index)
        g1_vote = self.g1.predict(g1_index)
        majority = (int(bim_vote) + int(g0_vote) + int(g1_vote)) >= 2
        use_gskew = self.meta.predict(meta_index)
        prediction = majority if use_gskew else bim_vote
        return prediction, (indices, (bim_vote, g0_vote, g1_vote), majority, use_gskew)

    def _update(self, pc: int, taken: bool, predicted: bool, context: object) -> None:
        indices, votes, majority, use_gskew = context
        bim_index, g0_index, g1_index, meta_index = indices
        bim_vote, g0_vote, g1_vote = votes
        correct = predicted == taken

        if bim_vote != majority:
            # Meta trains toward whichever side was right.
            self.meta.update(meta_index, majority == taken)

        if correct:
            # Strengthen only the banks that participated in the correct
            # prediction (EV8 partial update).
            if use_gskew:
                if bim_vote == taken:
                    self.bim.update(bim_index, taken)
                if g0_vote == taken:
                    self.g0.update(g0_index, taken)
                if g1_vote == taken:
                    self.g1.update(g1_index, taken)
            else:
                self.bim.update(bim_index, taken)
        elif not use_gskew:
            # Bimodal spoke and was wrong: train it (meta already steered).
            self.bim.update(bim_index, taken)
        else:
            # The gskew side spoke and was wrong: train everything.
            self.bim.update(bim_index, taken)
            self.g0.update(g0_index, taken)
            self.g1.update(g1_index, taken)

        self.history.push(taken)
