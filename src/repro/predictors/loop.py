"""Loop predictor component.

Predicts branches that behave as loop exits: taken (or not taken) a fixed
number of consecutive times, then the opposite direction once.  Each entry
tracks the observed trip count of the last completed loop and a confidence
counter; once the same trip count repeats, the predictor can call the exit
iteration exactly — something no counter-based PHT can do for trip counts
longer than its history.

Used as a component of the multi-component hybrid (Evers' multi-hybrid
includes a loop predictor among its components).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.bits import is_power_of_two
from repro.common.errors import ConfigurationError
from repro.predictors.base import BranchPredictor


@dataclass
class _LoopEntry:
    tag: int = -1
    trip_count: int = 0  # completed-loop iteration count (0 = unknown)
    current_count: int = 0  # iterations seen in the loop in progress
    confidence: int = 0  # consecutive confirmations of trip_count
    direction: bool = True  # the "body" direction (exit is the opposite)


class LoopPredictor(BranchPredictor):
    """Tagged table of loop trip-count monitors.

    ``confidence_threshold`` confirmations are required before the entry
    overrides the fallback prediction (the body direction).
    """

    name = "loop"

    #: storage per entry: tag(8) + trip(10) + current(10) + conf(2) + dir(1)
    ENTRY_BITS = 31
    MAX_TRIP = 1023

    def __init__(self, entries: int, confidence_threshold: int = 2) -> None:
        super().__init__()
        if not is_power_of_two(entries):
            raise ConfigurationError(f"loop predictor entries must be a power of two, got {entries}")
        if confidence_threshold < 1:
            raise ConfigurationError("confidence threshold must be >= 1")
        self.entries = entries
        self.confidence_threshold = confidence_threshold
        self._table = [_LoopEntry() for _ in range(entries)]

    @property
    def storage_bits(self) -> int:
        """Hardware state consumed by the predictor, in bits."""
        return self.entries * self.ENTRY_BITS

    def _entry(self, pc: int) -> tuple[_LoopEntry, int]:
        index = (pc >> 2) & (self.entries - 1)
        tag = (pc >> 2) >> index.bit_length() & 0xFF
        return self._table[index], tag

    def is_confident(self, pc: int) -> bool:
        """True when the entry for ``pc`` has a confirmed trip count."""
        entry, tag = self._entry(pc)
        return entry.tag == tag and entry.confidence >= self.confidence_threshold

    def _predict(self, pc: int) -> tuple[bool, object]:
        entry, tag = self._entry(pc)
        if entry.tag != tag:
            return True, (entry, tag)  # cold: loop-back branches are mostly taken
        confident = entry.confidence >= self.confidence_threshold
        if confident and entry.trip_count and entry.current_count + 1 >= entry.trip_count:
            prediction = not entry.direction  # exit iteration
        else:
            prediction = entry.direction
        return prediction, (entry, tag)

    def _update(self, pc: int, taken: bool, predicted: bool, context: object) -> None:
        entry, tag = context
        if entry.tag != tag:
            # Allocate: assume taken is the body direction of a new loop.
            entry.tag = tag
            entry.direction = taken
            entry.trip_count = 0
            entry.current_count = 1
            entry.confidence = 0
            return
        if taken == entry.direction:
            entry.current_count = min(entry.current_count + 1, self.MAX_TRIP)
            return
        # Exit iteration: the loop just completed current_count body trips.
        completed = entry.current_count + 1
        if completed == entry.trip_count:
            entry.confidence = min(entry.confidence + 1, 3)
        else:
            entry.trip_count = completed
            entry.confidence = 0
        entry.current_count = 0
