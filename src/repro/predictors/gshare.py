"""gshare (McFarling): global history XOR PC indexing into a single PHT.

The reference point for the paper: gshare.fast (in :mod:`repro.core`) is a
pipelined reorganization of this predictor.  The history length defaults to
the maximum — the base-2 log of the PHT entry count — matching the paper's
gshare.fast configuration rule (Section 4.1.4).
"""

from __future__ import annotations

from repro.common.bits import hash_pc, log2_exact, mask
from repro.common.counters import CounterTable
from repro.common.errors import ConfigurationError
from repro.common.history import HistoryRegister
from repro.predictors.base import BranchPredictor


class GsharePredictor(BranchPredictor):
    """Classic gshare: ``index = fold(pc) XOR global_history``."""

    name = "gshare"

    def __init__(self, entries: int, history_length: int | None = None) -> None:
        super().__init__()
        self.index_bits = log2_exact(entries)
        if history_length is None:
            history_length = self.index_bits
        if history_length > self.index_bits:
            raise ConfigurationError(
                f"gshare history length {history_length} exceeds index width "
                f"{self.index_bits}"
            )
        self.history = HistoryRegister(history_length)
        self.table = CounterTable(entries, bits=2)

    @property
    def storage_bits(self) -> int:
        """Hardware state consumed by the predictor, in bits."""
        return self.table.storage_bits + self.history.length

    def tables(self) -> dict[str, CounterTable]:
        """Named counter tables (checkpoint/diff tooling)."""
        return {"pht": self.table}

    def index(self, pc: int) -> int:
        """PHT index: folded PC XOR global history."""
        pc_bits = hash_pc(pc, self.index_bits)
        return (pc_bits ^ self.history.value) & mask(self.index_bits)

    def _predict(self, pc: int) -> tuple[bool, object]:
        index = self.index(pc)
        return self.table.predict(index), index

    def _update(self, pc: int, taken: bool, predicted: bool, context: object) -> None:
        self.table.update(context, taken)
        self.history.push(taken)
