"""Perceptron predictor (Jiménez & Lin, HPCA-7 / TOCS 2002).

Each branch hashes to a perceptron: a vector of small signed weights, one per
history bit plus a bias.  The prediction is the sign of the dot product of
the weights with the history (encoded ±1).  Training bumps each weight toward
agreement with the outcome whenever the prediction was wrong *or* the output
magnitude was below the threshold θ = ⌊1.93·h + 14⌋.

Following the paper under reproduction (Section 4.1.1), the input vector
concatenates *global and local* history.  Weights are 8-bit signed and
saturate; budget accounting charges one byte per weight plus the local
history table.

This is the "complex" predictor whose deep adder tree motivates the paper's
latency argument: its accuracy is the best of the group, but its computation
adds cycles that gshare.fast never pays.
"""

from __future__ import annotations

import numpy as np

from repro.common.bits import hash_pc
from repro.common.errors import ConfigurationError
from repro.common.history import HistoryRegister, LocalHistoryTable
from repro.predictors.base import BranchPredictor

WEIGHT_MIN = -128
WEIGHT_MAX = 127


def training_threshold(history_bits: int) -> int:
    """θ = ⌊1.93·h + 14⌋ from Jiménez & Lin."""
    return int(1.93 * history_bits + 14)


class PerceptronPredictor(BranchPredictor):
    """Table of perceptrons over concatenated global + local history."""

    name = "perceptron"

    def __init__(
        self,
        num_perceptrons: int,
        global_history: int,
        local_history: int = 0,
        local_history_entries: int = 1024,
    ) -> None:
        super().__init__()
        if num_perceptrons <= 0:
            raise ConfigurationError("need at least one perceptron")
        if global_history <= 0:
            raise ConfigurationError("perceptron needs a positive global history length")
        if local_history < 0:
            raise ConfigurationError("local history length must be >= 0")
        self.num_perceptrons = num_perceptrons
        self.global_history_length = global_history
        self.local_history_length = local_history
        self.history = HistoryRegister(global_history)
        self.local_histories = (
            LocalHistoryTable(local_history_entries, local_history) if local_history else None
        )
        self.inputs = 1 + global_history + local_history  # bias + history bits
        self.threshold = training_threshold(global_history + local_history)
        self.weights = np.zeros((num_perceptrons, self.inputs), dtype=np.int16)

    @property
    def storage_bits(self) -> int:
        """Hardware state consumed by the predictor, in bits."""
        bits = self.num_perceptrons * self.inputs * 8 + self.history.length
        if self.local_histories is not None:
            bits += self.local_histories.storage_bits
        return bits

    def _row(self, pc: int) -> int:
        return hash_pc(pc, 32) % self.num_perceptrons

    def _input_vector(self, pc: int) -> np.ndarray:
        """±1 input vector: [bias=1, global bits..., local bits...]."""
        x = np.empty(self.inputs, dtype=np.int16)
        x[0] = 1
        ghist = self.history.value
        for i in range(self.global_history_length):
            x[1 + i] = 1 if (ghist >> i) & 1 else -1
        if self.local_histories is not None:
            lhist = self.local_histories.read(pc)
            base = 1 + self.global_history_length
            for i in range(self.local_history_length):
                x[base + i] = 1 if (lhist >> i) & 1 else -1
        return x

    def _predict(self, pc: int) -> tuple[bool, object]:
        row = self._row(pc)
        x = self._input_vector(pc)
        output = int(np.dot(self.weights[row].astype(np.int64), x))
        return output >= 0, (row, x, output)

    def _update(self, pc: int, taken: bool, predicted: bool, context: object) -> None:
        row, x, output = context
        if predicted != taken or abs(output) <= self.threshold:
            t = 1 if taken else -1
            np.clip(self.weights[row] + t * x, WEIGHT_MIN, WEIGHT_MAX, out=self.weights[row])
        if self.local_histories is not None:
            self.local_histories.push(pc, taken)
        self.history.push(taken)
