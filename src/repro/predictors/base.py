"""Branch-predictor interface.

All direction predictors implement the same two-phase protocol the paper's
simulator drives:

1. ``predict(pc)`` — produce a taken/not-taken prediction for a conditional
   branch being fetched at ``pc``.  The predictor may stash per-branch state
   (the index it used, history snapshots) for the matching update.
2. ``update(pc, taken)`` — the branch resolved; train tables and advance
   histories with the true outcome.

Driving the pair strictly in order on a trace is exactly the paper's
*optimistic* assumption for complex predictors: speculative history update
with zero-latency recovery after a misprediction is functionally identical to
updating history with the actual outcome at prediction time.  (Our pipelined
gshare.fast timing model in :mod:`repro.core.pipeline_model` additionally
demonstrates the recovery machinery explicitly.)

Predictors are single-use per branch: calling ``predict`` twice without an
intervening ``update`` for the same stream is a :class:`ProtocolError` —
out-of-order driving would silently corrupt history state otherwise.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from repro.common.errors import ProtocolError


@dataclass
class PredictorStats:
    """Running accuracy bookkeeping shared by every predictor."""

    predictions: int = 0
    mispredictions: int = 0

    @property
    def misprediction_rate(self) -> float:
        """Fraction of predictions that were wrong (0.0 when unused)."""
        if self.predictions == 0:
            return 0.0
        return self.mispredictions / self.predictions

    def record(self, correct: bool) -> None:
        """Count one prediction outcome."""
        self.predictions += 1
        if not correct:
            self.mispredictions += 1


@dataclass
class _Pending:
    """Prediction context awaiting its update call."""

    pc: int
    prediction: bool
    context: object = field(default=None)


class BranchPredictor(ABC):
    """Abstract conditional-branch direction predictor."""

    #: Short machine-readable identifier; set by subclasses.
    name: str = "abstract"

    def __init__(self) -> None:
        self.stats = PredictorStats()
        self._pending: _Pending | None = None

    # -- public protocol ---------------------------------------------------

    def predict(self, pc: int) -> bool:
        """Predict the direction of the conditional branch at ``pc``."""
        if self._pending is not None:
            raise ProtocolError(
                f"{self.name}: predict({pc:#x}) called while branch "
                f"{self._pending.pc:#x} is awaiting update"
            )
        prediction, context = self._predict(pc)
        self._pending = _Pending(pc=pc, prediction=prediction, context=context)
        return prediction

    def update(self, pc: int, taken: bool) -> bool:
        """Resolve the in-flight branch; returns True if it was predicted
        correctly.  Trains tables and advances histories."""
        pending = self._pending
        if pending is None:
            raise ProtocolError(f"{self.name}: update({pc:#x}) with no prediction in flight")
        if pending.pc != pc:
            raise ProtocolError(
                f"{self.name}: update({pc:#x}) does not match in-flight branch "
                f"{pending.pc:#x}"
            )
        self._pending = None
        correct = pending.prediction == taken
        self.stats.record(correct)
        self._update(pc, taken, pending.prediction, pending.context)
        return correct

    def tables(self) -> dict[str, object]:
        """Named counter tables, for checkpointing and diff tooling.

        Subclasses with table state override this; the batch engine's
        differential harness compares every named table bit-for-bit
        against the scalar reference.  Keys are stable identifiers, values
        are :class:`repro.common.counters.CounterTable` instances.
        """
        return {}

    def peek(self, pc: int) -> bool:
        """Prediction for ``pc`` without entering the in-flight protocol.

        Used by overriding wrappers that need both component predictions for
        the same branch; must not mutate any state.
        """
        prediction, _ = self._predict(pc)
        return prediction

    @property
    @abstractmethod
    def storage_bits(self) -> int:
        """Hardware state consumed by the predictor, in bits (the paper's
        hardware-budget accounting)."""

    @property
    def storage_bytes(self) -> int:
        """Hardware state rounded up to whole bytes."""
        return (self.storage_bits + 7) // 8

    # -- subclass hooks ----------------------------------------------------

    @abstractmethod
    def _predict(self, pc: int) -> tuple[bool, object]:
        """Return (prediction, context).  Must not mutate state."""

    @abstractmethod
    def _update(self, pc: int, taken: bool, predicted: bool, context: object) -> None:
        """Train tables and advance speculative state with the true outcome."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name} {self.storage_bytes}B>"
