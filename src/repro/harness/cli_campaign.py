"""``python -m repro.harness.cli_campaign`` — the ``repro-campaign`` entry.

The console script (``pyproject.toml``) points straight at
:func:`repro.harness.cli.campaign_main`; this module exists so uninstalled
checkouts (CI drills, ``scripts/campaign_check.py``) can launch worker
processes with ``python -m`` and nothing but ``PYTHONPATH=src``.
"""

from __future__ import annotations

import sys

from repro.harness.cli import campaign_main

if __name__ == "__main__":
    sys.exit(campaign_main())
