"""Experiment scale control.

The paper simulates >1 billion instructions per benchmark; a pure-Python
reproduction cannot, so every experiment honours two environment variables:

* ``REPRO_SCALE`` — float multiplier (default 1.0) on per-benchmark trace
  length.  CI runs at 1.0 finish in minutes; ``REPRO_SCALE=5`` approaches
  the asymptotic accuracy numbers recorded in EXPERIMENTS.md.
* ``REPRO_BENCHMARKS`` — comma-separated subset of benchmark names (default
  all twelve).

Accuracy at small scale is *training-limited* for table predictors (cold
counters are a larger share of predictions than on a 1B-instruction run),
which is why the defaults already include a warm-up fraction and why longer
runs reduce absolute misprediction rates without changing orderings.
"""

from __future__ import annotations

import os

from repro.common.errors import ConfigurationError
from repro.workloads.spec2000 import spec2000_names

#: Default per-benchmark trace length (instructions) for accuracy figures.
ACCURACY_INSTRUCTIONS = 600_000
#: Default per-benchmark trace length for IPC (cycle-simulation) figures.
IPC_INSTRUCTIONS = 400_000
#: Fraction of branches used to warm predictors before scoring (the paper
#: skips the first 500M instructions of each benchmark).
WARMUP_FRACTION = 0.2


def scale_factor() -> float:
    """The REPRO_SCALE multiplier (>= 0.01)."""
    raw = os.environ.get("REPRO_SCALE", "1.0")
    try:
        value = float(raw)
    except ValueError:
        raise ConfigurationError(f"REPRO_SCALE must be a number, got {raw!r}") from None
    if value < 0.01:
        raise ConfigurationError(f"REPRO_SCALE must be >= 0.01, got {value}")
    return value


def accuracy_instructions() -> int:
    """Per-benchmark trace length for accuracy figures at REPRO_SCALE."""
    return max(int(ACCURACY_INSTRUCTIONS * scale_factor()), 10_000)


def ipc_instructions() -> int:
    """Per-benchmark trace length for IPC figures at REPRO_SCALE."""
    return max(int(IPC_INSTRUCTIONS * scale_factor()), 10_000)


def benchmark_names() -> list[str]:
    """Benchmarks to run: REPRO_BENCHMARKS subset or all twelve SPEC
    stand-ins (the default figure grid).

    Subsets validate against the full workload catalog, not just the SPEC
    set, so scenario profiles and oracle kernels are selectable the same
    way.  Repeated names are deduplicated (order preserving): a duplicated
    entry would otherwise silently run a benchmark twice and double-weight
    it in every mean.
    """
    from repro.workloads.catalog import workload_names  # deferred: layering

    raw = os.environ.get("REPRO_BENCHMARKS")
    if not raw:
        return spec2000_names()
    names = list(dict.fromkeys(name.strip() for name in raw.split(",") if name.strip()))
    known = set(workload_names())
    unknown = [name for name in names if name not in known]
    if unknown:
        raise ConfigurationError(f"unknown benchmarks in REPRO_BENCHMARKS: {unknown}")
    if not names:
        raise ConfigurationError("REPRO_BENCHMARKS is set but names no benchmarks")
    return names


def campaign_stale_seconds() -> float:
    """Claim-staleness threshold (``REPRO_CAMPAIGN_STALE_SECONDS``)."""
    from repro.harness.campaign import stale_seconds_default  # deferred: layering

    return stale_seconds_default()


def campaign_poll_seconds() -> float:
    """Idle-worker poll interval (``REPRO_CAMPAIGN_POLL_SECONDS``)."""
    from repro.harness.campaign import poll_seconds_default  # deferred: layering

    return poll_seconds_default()


def resolved_config() -> dict:
    """The fully-resolved experiment configuration as one dict.

    This is the configuration a run manifest records: everything the
    environment variables and defaults determine about an experiment, so a
    ``results/*.txt`` can be reproduced from its sidecar.
    """
    from repro.harness.experiment import default_engine, default_jobs  # deferred: layering
    from repro.harness.resultstore import result_store_path  # deferred: layering
    from repro.predictors import registry  # deferred: layering
    from repro.service.config import service_env_summary  # deferred: layering
    from repro.workloads.store import store_path  # deferred: layering

    return {
        "scale": scale_factor(),
        "benchmarks": benchmark_names(),
        "engine": default_engine(),
        "jobs": default_jobs(),
        "trace_store": store_path(),
        "result_store": result_store_path(),
        "accuracy_instructions": accuracy_instructions(),
        "ipc_instructions": ipc_instructions(),
        "warmup_fraction": WARMUP_FRACTION,
        # Campaign-orchestrator settings (claim staleness / poll cadence):
        # they shape multi-worker scheduling, so a manifest records them.
        "campaign": {
            "run_dir": os.environ.get("REPRO_RUN_DIR", "").strip() or None,
            "stale_seconds": campaign_stale_seconds(),
            "poll_seconds": campaign_poll_seconds(),
        },
        # The resolved predictor specs: which module registered each family
        # and the capability flags every consumer dispatched on.
        "families": {
            spec.name: {
                "module": spec.module,
                "config_type": spec.config_type.__name__,
                "batch_kernel": spec.batch_kernel,
                "single_cycle": spec.single_cycle,
                "override_eligible": spec.override_eligible,
                "state_neutral_peek": spec.state_neutral_peek,
            }
            for spec in registry.specs()
        },
        # Serving-layer knobs (queue bound, timeouts, worker pool): the
        # daemon's manifest-visible configuration.
        "service": service_env_summary(),
    }


def warmup_branches(total_branches: int) -> int:
    """Branches to train (not score) at the head of a trace."""
    return int(total_branches * WARMUP_FRACTION)
