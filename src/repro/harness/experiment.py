"""Experiment primitives: run predictors over traces, collect metrics.

Two measurement modes mirror the paper's methodology:

* :func:`measure_accuracy` — pure direction-prediction accuracy of any
  :class:`BranchPredictor` on a trace's conditional-branch stream (the
  Figure 1/5/6 measurements);
* :func:`measure_override` — an :class:`OverridingPredictor` pair on the
  same stream, additionally collecting the override (disagreement) rate the
  paper analyzes in Section 4.5.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.overriding import OverridingPredictor
from repro.predictors.base import BranchPredictor
from repro.workloads.trace import Trace


@dataclass(frozen=True)
class AccuracyResult:
    """Accuracy of one predictor on one trace."""

    predictor: str
    trace: str
    branches: int
    mispredictions: int
    storage_bytes: int

    @property
    def misprediction_rate(self) -> float:
        """Fraction of scored branches predicted wrongly."""
        if self.branches == 0:
            return 0.0
        return self.mispredictions / self.branches

    @property
    def misprediction_percent(self) -> float:
        """Misprediction rate as a percentage (figure units)."""
        return 100.0 * self.misprediction_rate


@dataclass(frozen=True)
class OverrideResult:
    """Accuracy and override behaviour of a quick/slow pair on one trace."""

    predictor: str
    trace: str
    branches: int
    final_mispredictions: int
    quick_mispredictions: int
    overrides: int
    storage_bytes: int

    @property
    def misprediction_rate(self) -> float:
        """Final (slow-predictor) misprediction rate."""
        if self.branches == 0:
            return 0.0
        return self.final_mispredictions / self.branches

    @property
    def override_rate(self) -> float:
        """Fraction of branches where the slow predictor overrode the quick
        one — each of these pays the override bubble."""
        if self.branches == 0:
            return 0.0
        return self.overrides / self.branches


def measure_accuracy(
    predictor: BranchPredictor, trace: Trace, warmup_branches: int = 0
) -> AccuracyResult:
    """Drive ``predictor`` over every conditional branch of ``trace``.

    ``warmup_branches`` branches at the head of the trace train the
    predictor without being scored (the paper skips initialization phases;
    our traces are steady-state, so the default is no warmup).
    """
    branches = 0
    mispredictions = 0
    for position, (pc, taken) in enumerate(trace.conditional_branches()):
        predictor.predict(pc)
        correct = predictor.update(pc, taken)
        if position < warmup_branches:
            continue
        branches += 1
        if not correct:
            mispredictions += 1
    return AccuracyResult(
        predictor=predictor.name,
        trace=trace.name,
        branches=branches,
        mispredictions=mispredictions,
        storage_bytes=predictor.storage_bytes,
    )


def measure_override(
    overriding: OverridingPredictor, trace: Trace, warmup_branches: int = 0
) -> OverrideResult:
    """Drive an overriding quick/slow pair over ``trace``'s branches."""
    branches = 0
    final_mispredictions = 0
    quick_mispredictions = 0
    overrides = 0
    for position, (pc, taken) in enumerate(trace.conditional_branches()):
        outcome = overriding.predict(pc)
        overriding.update(pc, taken)
        if position < warmup_branches:
            continue
        branches += 1
        if outcome.final_taken != taken:
            final_mispredictions += 1
        if outcome.quick_taken != taken:
            quick_mispredictions += 1
        if outcome.overridden:
            overrides += 1
    return OverrideResult(
        predictor=overriding.name,
        trace=trace.name,
        branches=branches,
        final_mispredictions=final_mispredictions,
        quick_mispredictions=quick_mispredictions,
        overrides=overrides,
        storage_bytes=(overriding.storage_bits + 7) // 8,
    )
