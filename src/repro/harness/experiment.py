"""Experiment primitives: run predictors over traces, collect metrics.

Two measurement modes mirror the paper's methodology:

* :func:`measure_accuracy` — pure direction-prediction accuracy of any
  :class:`BranchPredictor` on a trace's conditional-branch stream (the
  Figure 1/5/6 measurements);
* :func:`measure_override` — an :class:`OverridingPredictor` pair on the
  same stream, additionally collecting the override (disagreement) rate the
  paper analyzes in Section 4.5.

Accuracy measurements can run on either of two engines:

* ``scalar`` — the branch-at-a-time reference loop below;
* ``batch``  — the vectorized engine in :mod:`repro.batch`, bit-exact with
  the scalar loop (proven by the differential test suite) and an order of
  magnitude faster on table-based predictors.

``engine="auto"`` (the default, overridable via the ``REPRO_ENGINE``
environment variable) picks batch whenever the predictor has a batch
kernel and falls back to scalar otherwise, so sweeps speed up without
changing any result.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

from repro import obs
from repro.common.errors import ConfigurationError
from repro.core.overriding import OverridingPredictor
from repro.obs.attribution import Attribution, attribution_from_counts
from repro.predictors.base import BranchPredictor
from repro.workloads.trace import Trace

#: Valid values for the ``engine`` argument / ``REPRO_ENGINE`` variable.
ENGINES = ("auto", "scalar", "batch")


def default_engine() -> str:
    """The engine selected by ``REPRO_ENGINE`` (default ``auto``)."""
    engine = os.environ.get("REPRO_ENGINE", "auto").strip().lower() or "auto"
    if engine not in ENGINES:
        raise ConfigurationError(
            f"REPRO_ENGINE must be one of {ENGINES}, got {engine!r}"
        )
    return engine


def default_jobs() -> int:
    """The sweep worker count selected by ``REPRO_JOBS`` (default 1).

    ``1`` keeps sweeps on the serial in-process path; anything larger routes
    them through the process-pool executor in :mod:`repro.harness.parallel`.
    ``auto`` (or ``0``) means one worker per CPU.
    """
    raw = os.environ.get("REPRO_JOBS", "1").strip().lower() or "1"
    if raw in ("auto", "0"):
        return os.cpu_count() or 1
    try:
        value = int(raw)
    except ValueError:
        raise ConfigurationError(
            f"REPRO_JOBS must be a positive integer or 'auto', got {raw!r}"
        ) from None
    if value < 1:
        raise ConfigurationError(f"REPRO_JOBS must be >= 1, got {value}")
    return value


def resolve_engine(predictor: BranchPredictor, engine: str | None = None) -> str:
    """Resolve ``engine`` (or the environment default) to scalar/batch.

    ``auto`` degrades gracefully to scalar for predictors without a batch
    kernel; asking for ``batch`` explicitly on such a predictor is an error
    rather than a silent slowdown.
    """
    if engine is None:
        engine = default_engine()
    if engine not in ENGINES:
        raise ConfigurationError(f"engine must be one of {ENGINES}, got {engine!r}")
    if engine == "scalar":
        return "scalar"
    from repro.batch import supports_batch  # deferred: batch imports numpy

    if supports_batch(predictor):
        return "batch"
    if engine == "batch":
        raise ConfigurationError(
            f"engine='batch' does not support {type(predictor).__name__}; "
            f"use engine='auto' or 'scalar'"
        )
    return "scalar"


@dataclass(frozen=True)
class AccuracyResult:
    """Accuracy of one predictor on one trace."""

    predictor: str
    trace: str
    branches: int
    mispredictions: int
    storage_bytes: int
    #: Per-branch-site breakdown; collected only in attribution mode.
    attribution: Attribution | None = None

    @property
    def misprediction_rate(self) -> float:
        """Fraction of scored branches predicted wrongly."""
        if self.branches == 0:
            return 0.0
        return self.mispredictions / self.branches

    @property
    def misprediction_percent(self) -> float:
        """Misprediction rate as a percentage (figure units)."""
        return 100.0 * self.misprediction_rate


@dataclass(frozen=True)
class OverrideResult:
    """Accuracy and override behaviour of a quick/slow pair on one trace."""

    predictor: str
    trace: str
    branches: int
    final_mispredictions: int
    quick_mispredictions: int
    overrides: int
    storage_bytes: int
    #: Per-branch-site breakdown of *final* mispredictions (attribution mode).
    attribution: Attribution | None = None

    @property
    def misprediction_rate(self) -> float:
        """Final (slow-predictor) misprediction rate."""
        if self.branches == 0:
            return 0.0
        return self.final_mispredictions / self.branches

    @property
    def override_rate(self) -> float:
        """Fraction of branches where the slow predictor overrode the quick
        one — each of these pays the override bubble."""
        if self.branches == 0:
            return 0.0
        return self.overrides / self.branches


def _publish_result(kind: str, result, storage_bytes: int) -> None:
    """Record a finished measurement into the default metrics registry."""
    registry = obs.registry()
    registry.counter(f"{kind}.measurements").inc()
    registry.counter(f"{kind}.branches").inc(result.branches)
    if result.attribution is not None:
        key = f"{result.predictor}[{storage_bytes}B]/{result.trace}"
        registry.record_attribution(key, result.attribution.to_rows())


def measure_accuracy(
    predictor: BranchPredictor,
    trace: Trace,
    warmup_branches: int = 0,
    engine: str | None = None,
    attribution: bool | None = None,
) -> AccuracyResult:
    """Drive ``predictor`` over every conditional branch of ``trace``.

    ``warmup_branches`` branches at the head of the trace train the
    predictor without being scored (the paper skips initialization phases;
    our traces are steady-state, so the default is no warmup).

    ``engine`` selects scalar or batch evaluation (``None`` defers to
    ``REPRO_ENGINE``); both produce identical results on supported
    predictors.

    ``attribution`` additionally buckets scored mispredictions per static
    branch PC (``None`` collects exactly when observability is enabled).
    The disabled path is the untouched reference loop — profiling never
    taxes a plain measurement.
    """
    if attribution is None:
        attribution = obs.enabled()
    profiling = obs.enabled()
    started = time.perf_counter() if profiling else 0.0
    if resolve_engine(predictor, engine) == "batch":
        from repro.batch import measure_accuracy_batch

        result = measure_accuracy_batch(
            predictor, trace, warmup_branches=warmup_branches, attribution=attribution
        )
    elif attribution:
        result = _measure_accuracy_attributed(predictor, trace, warmup_branches)
    else:
        branches = 0
        mispredictions = 0
        for position, (pc, taken) in enumerate(trace.conditional_branches()):
            predictor.predict(pc)
            correct = predictor.update(pc, taken)
            if position < warmup_branches:
                continue
            branches += 1
            if not correct:
                mispredictions += 1
        result = AccuracyResult(
            predictor=predictor.name,
            trace=trace.name,
            branches=branches,
            mispredictions=mispredictions,
            storage_bytes=predictor.storage_bytes,
        )
    if profiling:
        registry = obs.registry()
        registry.timer("accuracy.seconds").observe(time.perf_counter() - started)
        registry.counter("accuracy.mispredictions").inc(result.mispredictions)
        _publish_result("accuracy", result, result.storage_bytes)
    return result


def _measure_accuracy_attributed(
    predictor: BranchPredictor, trace: Trace, warmup_branches: int
) -> AccuracyResult:
    """The scalar loop with per-PC bucketing of scored branches."""
    executions: dict[int, int] = {}
    wrong: dict[int, int] = {}
    for position, (pc, taken) in enumerate(trace.conditional_branches()):
        predictor.predict(pc)
        correct = predictor.update(pc, taken)
        if position < warmup_branches:
            continue
        executions[pc] = executions.get(pc, 0) + 1
        if not correct:
            wrong[pc] = wrong.get(pc, 0) + 1
    attribution = attribution_from_counts(predictor.name, trace.name, executions, wrong)
    return AccuracyResult(
        predictor=predictor.name,
        trace=trace.name,
        branches=attribution.branches,
        mispredictions=attribution.mispredictions,
        storage_bytes=predictor.storage_bytes,
        attribution=attribution,
    )


def measure_override(
    overriding: OverridingPredictor,
    trace: Trace,
    warmup_branches: int = 0,
    attribution: bool | None = None,
) -> OverrideResult:
    """Drive an overriding quick/slow pair over ``trace``'s branches.

    ``attribution`` buckets scored *final* mispredictions per static branch
    PC (``None`` collects exactly when observability is enabled).
    """
    if attribution is None:
        attribution = obs.enabled()
    branches = 0
    final_mispredictions = 0
    quick_mispredictions = 0
    overrides = 0
    executions: dict[int, int] | None = {} if attribution else None
    wrong: dict[int, int] = {}
    for position, (pc, taken) in enumerate(trace.conditional_branches()):
        outcome = overriding.predict(pc)
        overriding.update(pc, taken)
        if position < warmup_branches:
            continue
        branches += 1
        if outcome.final_taken != taken:
            final_mispredictions += 1
            if executions is not None:
                wrong[pc] = wrong.get(pc, 0) + 1
        if outcome.quick_taken != taken:
            quick_mispredictions += 1
        if outcome.overridden:
            overrides += 1
        if executions is not None:
            executions[pc] = executions.get(pc, 0) + 1
    breakdown = (
        attribution_from_counts(overriding.name, trace.name, executions, wrong)
        if executions is not None
        else None
    )
    result = OverrideResult(
        predictor=overriding.name,
        trace=trace.name,
        branches=branches,
        final_mispredictions=final_mispredictions,
        quick_mispredictions=quick_mispredictions,
        overrides=overrides,
        storage_bytes=(overriding.storage_bits + 7) // 8,
        attribution=breakdown,
    )
    if obs.enabled():
        registry = obs.registry()
        registry.counter("override.final_mispredictions").inc(final_mispredictions)
        registry.counter("override.quick_mispredictions").inc(quick_mispredictions)
        overriding.record_stats(registry)
        _publish_result("override", result, result.storage_bytes)
    return result
