"""Declarative figure/table target configs (``repro-figures --config``).

A config file is a small JSON document that *names* a regeneration target
instead of hard-coding it in the CLI.  Three modes:

``runner``
    Wraps one of the CLI's built-in targets (``figure1`` .. ``extension``)
    and declares the sweep grid(s) that target iterates.  Output is
    byte-identical to the legacy positional-target path — the declared grid
    exists so ``--dry-run`` can classify every cell against the result
    store without running anything.

``sweep``
    A self-contained declarative sweep: families x budgets (accuracy) or
    families x budgets x modes (IPC), rendered as a
    :class:`~repro.harness.figures.SeriesFigure`.  Because families resolve
    through the predictor registry — and ``family_modules`` lists modules
    to import first — an external family (e.g. the test-suite toy family)
    gets a figure with zero harness edits.

``inferred``
    A projection assembled *purely from already-stored results* of other
    configs: it declares ``based_on`` (the config names whose grids cover
    it) and its cell set must be a subset of the union of those base grids
    — the inference graph, validated up front.  Resolution goes through the
    ordinary sweeps, so with the bases warm in the result store an inferred
    target performs zero predictor work; with a cold store it still
    produces correct output (it just computes the cells, warming them for
    the bases in turn).

``--dry-run`` probes the active result store for every declared cell and
reports hit/miss/inferred per target without mutating anything (corrupt
entries are left in place for the real run to count and repair).

Cell keys are derived with the exact recipe the sweeps use
(:mod:`repro.harness.resultstore`), resolving instructions, engine and
benchmarks from the current environment — a classification is a statement
about *this* scale/engine/benchmark configuration, like every figure.
"""

from __future__ import annotations

import importlib
import json
import os
from collections.abc import Iterator, Mapping
from dataclasses import asdict, dataclass, field

from repro.common.errors import ConfigurationError

#: Bumped when the config-file layout changes.
CONFIG_SCHEMA = 1

_MODES = ("runner", "sweep", "inferred")
_GRID_KINDS = ("accuracy", "ipc")


@dataclass(frozen=True)
class GridSpec:
    """One declared sweep grid: the cells a target iterates."""

    kind: str  # "accuracy" | "ipc"
    families: tuple[str, ...]
    budgets: tuple[int, ...]
    #: None = resolve ``benchmark_names()`` (REPRO_BENCHMARKS) at use time.
    benchmarks: tuple[str, ...] | None = None
    #: IPC policy modes ("ideal"/"overriding"); empty for accuracy grids.
    modes: tuple[str, ...] = ()

    def cells(self) -> Iterator[tuple]:
        """Every (benchmark, family, budget[, mode]) cell in the grid."""
        from repro.harness.scale import benchmark_names

        benchmarks = self.benchmarks if self.benchmarks is not None else tuple(
            benchmark_names()
        )
        for benchmark in benchmarks:
            for family in self.families:
                for budget in self.budgets:
                    if self.kind == "ipc":
                        for mode in self.modes:
                            yield (benchmark, family, budget, mode)
                    else:
                        yield (benchmark, family, budget)


@dataclass(frozen=True)
class TargetConfig:
    """One parsed config file (see module docstring for the modes)."""

    name: str
    mode: str
    path: str = ""  # source file, for diagnostics
    runner: str = ""  # runner mode: key into the CLI RUNNERS table
    title: str = ""  # sweep/inferred: rendered figure title
    based_on: tuple[str, ...] = ()  # inferred: covering config names
    family_modules: tuple[str, ...] = ()  # imported before family resolution
    grids: tuple[GridSpec, ...] = field(default_factory=tuple)

    def cell_set(self) -> set[tuple]:
        """The union of every grid's cells (inference-graph currency)."""
        cells: set[tuple] = set()
        for grid in self.grids:
            cells.update(grid.cells())
        return cells


def _require(data: Mapping, key: str, path: str):
    if key not in data:
        raise ConfigurationError(f"config {path}: missing required field {key!r}")
    return data[key]


def _str_tuple(value, key: str, path: str) -> tuple[str, ...]:
    if not isinstance(value, list) or not all(isinstance(v, str) for v in value):
        raise ConfigurationError(f"config {path}: {key!r} must be a list of strings")
    return tuple(value)


def _parse_grid(data, path: str) -> GridSpec:
    if not isinstance(data, Mapping):
        raise ConfigurationError(f"config {path}: each grid must be an object")
    kind = _require(data, "kind", path)
    if kind not in _GRID_KINDS:
        raise ConfigurationError(
            f"config {path}: grid kind must be one of {_GRID_KINDS}, got {kind!r}"
        )
    families = _str_tuple(_require(data, "families", path), "families", path)
    budgets = _require(data, "budgets", path)
    if (
        not isinstance(budgets, list)
        or not budgets
        or not all(isinstance(b, int) and b > 0 for b in budgets)
    ):
        raise ConfigurationError(
            f"config {path}: 'budgets' must be a non-empty list of positive integers"
        )
    benchmarks = data.get("benchmarks")
    if benchmarks is not None:
        benchmarks = _str_tuple(benchmarks, "benchmarks", path)
    modes: tuple[str, ...] = ()
    if kind == "ipc":
        modes = _str_tuple(_require(data, "modes", path), "modes", path)
        if not modes:
            raise ConfigurationError(f"config {path}: an ipc grid needs 'modes'")
    elif "modes" in data:
        raise ConfigurationError(f"config {path}: 'modes' is only valid for ipc grids")
    return GridSpec(
        kind=kind,
        families=families,
        budgets=tuple(budgets),
        benchmarks=benchmarks,
        modes=modes,
    )


def load_config(path: str) -> TargetConfig:
    """Parse and validate one config file; raises ConfigurationError."""
    try:
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
    except OSError as exc:
        raise ConfigurationError(f"cannot read config {path}: {exc}") from None
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"config {path} is not valid JSON: {exc}") from None
    return parse_config(data, path)


def parse_config(data: object, path: str = "<memory>") -> TargetConfig:
    """Validate one already-parsed config document (the prediction service
    submits these over the wire, so validation must not require a file);
    ``path`` labels diagnostics.  Raises ConfigurationError."""
    if not isinstance(data, dict):
        raise ConfigurationError(f"config {path}: top level must be an object")
    if data.get("schema") != CONFIG_SCHEMA:
        raise ConfigurationError(
            f"config {path}: schema {data.get('schema')!r} unsupported "
            f"(expected {CONFIG_SCHEMA})"
        )
    name = _require(data, "target", path)
    if not isinstance(name, str) or not name:
        raise ConfigurationError(f"config {path}: 'target' must be a non-empty string")
    mode = _require(data, "mode", path)
    if mode not in _MODES:
        raise ConfigurationError(
            f"config {path}: mode must be one of {_MODES}, got {mode!r}"
        )
    grids = tuple(_parse_grid(grid, path) for grid in data.get("grids", []))
    runner = data.get("runner", "")
    title = data.get("title", "")
    based_on = _str_tuple(data.get("based_on", []), "based_on", path)
    family_modules = _str_tuple(
        data.get("family_modules", []), "family_modules", path
    )
    if mode == "runner" and not runner:
        raise ConfigurationError(f"config {path}: runner mode requires 'runner'")
    if mode in ("sweep", "inferred"):
        if len(grids) != 1:
            raise ConfigurationError(
                f"config {path}: {mode} mode requires exactly one grid"
            )
        if not title:
            raise ConfigurationError(f"config {path}: {mode} mode requires 'title'")
    if mode == "inferred" and not based_on:
        raise ConfigurationError(
            f"config {path}: inferred mode requires a non-empty 'based_on'"
        )
    if mode != "inferred" and based_on:
        raise ConfigurationError(
            f"config {path}: 'based_on' is only valid for inferred configs"
        )
    return TargetConfig(
        name=name,
        mode=mode,
        path=path,
        runner=runner,
        title=title,
        based_on=based_on,
        family_modules=family_modules,
        grids=grids,
    )


def load_configs(paths: list[str]) -> list[TargetConfig]:
    """Load every config named by ``paths`` (files, or directories whose
    ``*.json`` entries are loaded in sorted order); duplicate target names
    are refused, and every inferred config's inference graph is validated."""
    files: list[str] = []
    for path in paths:
        if os.path.isdir(path):
            entries = sorted(
                entry for entry in os.listdir(path) if entry.endswith(".json")
            )
            if not entries:
                raise ConfigurationError(f"config directory {path} has no *.json files")
            files.extend(os.path.join(path, entry) for entry in entries)
        else:
            files.append(path)
    configs = [load_config(path) for path in files]
    seen: dict[str, str] = {}
    for config in configs:
        if config.name in seen:
            raise ConfigurationError(
                f"duplicate config target {config.name!r} "
                f"({seen[config.name]} and {config.path})"
            )
        seen[config.name] = config.path
    validate_inference(configs)
    return configs


def validate_inference(configs: list[TargetConfig]) -> None:
    """Check the inference graph: every inferred config names loaded bases
    and declares only cells those bases' grids cover."""
    by_name = {config.name: config for config in configs}
    for config in configs:
        if config.mode != "inferred":
            continue
        covered: set[tuple] = set()
        for base_name in config.based_on:
            base = by_name.get(base_name)
            if base is None:
                raise ConfigurationError(
                    f"config {config.path}: inferred target {config.name!r} is "
                    f"based on {base_name!r}, which is not among the loaded configs"
                )
            if base.mode == "inferred":
                raise ConfigurationError(
                    f"config {config.path}: base {base_name!r} is itself inferred "
                    f"(inference is one level deep; base on its bases instead)"
                )
            covered.update(base.cell_set())
        uncovered = config.cell_set() - covered
        if uncovered:
            sample = sorted(uncovered)[:3]
            raise ConfigurationError(
                f"config {config.path}: {len(uncovered)} cell(s) of inferred "
                f"target {config.name!r} are not covered by its bases "
                f"{list(config.based_on)} (e.g. {sample})"
            )


# -- dry-run classification ----------------------------------------------------


def _import_family_modules(config: TargetConfig) -> None:
    for module in config.family_modules:
        importlib.import_module(module)


def grid_cfg(kind: str) -> dict:
    """The per-kind sweep configuration the current environment resolves
    to — the very dict the executors pin in ``run.json``, so a config
    target's cell keys match the sweeps' exactly."""
    from repro.harness.experiment import default_engine
    from repro.harness.scale import (
        WARMUP_FRACTION,
        accuracy_instructions,
        ipc_instructions,
    )
    from repro.uarch.config import PAPER_MACHINE

    if kind == "accuracy":
        return {
            "instructions": accuracy_instructions(),
            "engine": default_engine(),
            "warmup_fraction": WARMUP_FRACTION,
        }
    return {"instructions": ipc_instructions(), "machine": asdict(PAPER_MACHINE)}


def grid_shards(grid: GridSpec) -> Iterator:
    """Every grid cell as a campaign/parallel :class:`Shard`."""
    from repro.harness.parallel import Shard

    if grid.kind == "accuracy":
        for benchmark, family, budget in grid.cells():
            yield Shard("accuracy", benchmark, family, budget)
    else:
        for benchmark, family, budget, mode in grid.cells():
            yield Shard("ipc", benchmark, family, budget, mode)


def classify(config: TargetConfig, store, run_dir: str | None = None) -> dict:
    """Dry-run classification of one target through the campaign scanner.

    Non-mutating (store probes only).  Without ``run_dir`` the result
    store is the only evidence, so cells classify as ``completed`` (hit)
    or ``missing``; with one, checkpoints, failure markers, and claims
    classify into all five campaign classes.  ``hit``/``miss`` summarize
    the counts either way: hit = recoverable without predictor work
    (completed + results_missing), miss = everything that must execute.
    """
    from repro.harness.campaign import CLASSES, CampaignLayout, classify_shard

    _import_family_modules(config)
    layout = CampaignLayout(run_dir) if run_dir else None
    counts = dict.fromkeys(CLASSES, 0)
    for grid in config.grids:
        cfg = grid_cfg(grid.kind)
        for shard in grid_shards(grid):
            counts[
                classify_shard(shard, layout=layout, result_store=store, cfg=cfg)
            ] += 1
    return {
        "target": config.name,
        "mode": config.mode,
        "inferred": config.mode == "inferred",
        "based_on": list(config.based_on),
        "cells": sum(counts.values()),
        "counts": counts,
        "hit": counts["completed"] + counts["results_missing"],
        "miss": counts["failed"] + counts["partial"] + counts["missing"],
    }


# -- execution -----------------------------------------------------------------


def _render_grid(config: TargetConfig) -> str:
    """Render a sweep/inferred config's single grid as a SeriesFigure.

    Resolution goes through the ordinary sweeps, so the result store (when
    active) supplies every already-computed cell; with the declared grid
    warm, rendering performs zero predictor work.
    """
    from repro.harness.figures import SeriesFigure
    from repro.harness.sweep import (
        accuracy_sweep,
        hmean_ipc_by_family_budget,
        ipc_sweep,
        mean_by_family_budget,
    )

    grid = config.grids[0]
    benchmarks = list(grid.benchmarks) if grid.benchmarks is not None else None
    figure = SeriesFigure(title=config.title, x_values=list(grid.budgets))
    if grid.kind == "accuracy":
        cells = accuracy_sweep(
            list(grid.families), list(grid.budgets), benchmarks=benchmarks
        )
        for (family, budget), value in mean_by_family_budget(cells).items():
            figure.series.setdefault(family, {})[budget] = value
        return figure.render()
    multi_mode = len(grid.modes) > 1
    for mode in grid.modes:
        cells = ipc_sweep(
            list(grid.families),
            list(grid.budgets),
            mode=mode,
            benchmarks=benchmarks,
        )
        for (family, budget), value in hmean_ipc_by_family_budget(cells).items():
            name = f"{family} [{mode}]" if multi_mode else family
            figure.series.setdefault(name, {})[budget] = value
    return figure.render()


def run_target(config: TargetConfig, runners: Mapping[str, object]) -> str:
    """Regenerate one config target; returns the rendered text.

    ``runners`` is the CLI's name->callable table (passed in rather than
    imported, keeping this module importable below the CLI).
    """
    _import_family_modules(config)
    if config.mode == "runner":
        runner = runners.get(config.runner)
        if runner is None:
            raise ConfigurationError(
                f"config {config.path}: unknown runner {config.runner!r} "
                f"(choose from {', '.join(runners)})"
            )
        return runner()
    return _render_grid(config)
