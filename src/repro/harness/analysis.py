"""Per-branch-site analysis tools.

Beyond aggregate misprediction rates, predictor studies live and die on
*where* the mispredictions come from.  This module provides the diagnostics
a user needs to understand a predictor/workload pair:

* :func:`per_site_accuracy` — mispredictions broken down by static branch
  site, sorted by contribution;
* :func:`compare_predictors` — per-site win/loss comparison between two
  predictors on the same trace;
* :func:`history_context_profile` — how many distinct (site, history)
  contexts a trace exposes and how often each repeats: the training-density
  diagnostic that explains table-predictor behaviour at small trace scales.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.bits import mask
from repro.predictors.base import BranchPredictor
from repro.workloads.trace import Trace


@dataclass(frozen=True)
class SiteAccuracy:
    """Accuracy of one static branch site."""

    pc: int
    executions: int
    mispredictions: int
    taken_rate: float

    @property
    def misprediction_rate(self) -> float:
        """This site's own misprediction rate."""
        if self.executions == 0:
            return 0.0
        return self.mispredictions / self.executions


def per_site_accuracy(
    predictor: BranchPredictor, trace: Trace, top: int | None = None
) -> list[SiteAccuracy]:
    """Drive ``predictor`` over ``trace`` and break accuracy down by site.

    Returns sites sorted by absolute misprediction contribution (largest
    first), optionally truncated to the ``top`` offenders.
    """
    executions: dict[int, int] = {}
    wrong: dict[int, int] = {}
    taken_count: dict[int, int] = {}
    for pc, taken in trace.conditional_branches():
        predictor.predict(pc)
        correct = predictor.update(pc, taken)
        executions[pc] = executions.get(pc, 0) + 1
        taken_count[pc] = taken_count.get(pc, 0) + int(taken)
        if not correct:
            wrong[pc] = wrong.get(pc, 0) + 1
    sites = [
        SiteAccuracy(
            pc=pc,
            executions=executions[pc],
            mispredictions=wrong.get(pc, 0),
            taken_rate=taken_count[pc] / executions[pc],
        )
        for pc in executions
    ]
    sites.sort(key=lambda site: site.mispredictions, reverse=True)
    if top is not None:
        sites = sites[:top]
    return sites


@dataclass(frozen=True)
class SiteComparison:
    """Head-to-head result for one site."""

    pc: int
    executions: int
    mispredictions_a: int
    mispredictions_b: int

    @property
    def delta(self) -> int:
        """Positive when predictor B mispredicts less than A here."""
        return self.mispredictions_a - self.mispredictions_b


def compare_predictors(
    predictor_a: BranchPredictor, predictor_b: BranchPredictor, trace: Trace
) -> list[SiteComparison]:
    """Run both predictors on ``trace`` and compare per site, sorted by the
    absolute size of the disagreement."""
    sites_a = {site.pc: site for site in per_site_accuracy(predictor_a, trace)}
    sites_b = {site.pc: site for site in per_site_accuracy(predictor_b, trace)}
    comparisons = [
        SiteComparison(
            pc=pc,
            executions=sites_a[pc].executions,
            mispredictions_a=sites_a[pc].mispredictions,
            mispredictions_b=sites_b[pc].mispredictions,
        )
        for pc in sites_a
    ]
    comparisons.sort(key=lambda c: abs(c.delta), reverse=True)
    return comparisons


@dataclass(frozen=True)
class ContextProfile:
    """Training-density profile of a trace under a history length."""

    history_bits: int
    branches: int
    contexts: int  # distinct (site, history) pairs

    @property
    def visits_per_context(self) -> float:
        """Mean trainings each context receives; ~2 or less means a
        two-bit-counter predictor spends most of its time cold."""
        if self.contexts == 0:
            return 0.0
        return self.branches / self.contexts

    @property
    def cold_fraction(self) -> float:
        """Fraction of dynamic branches that are a context's first visit."""
        if self.branches == 0:
            return 0.0
        return self.contexts / self.branches


def history_context_profile(trace: Trace, history_bits: int = 14) -> ContextProfile:
    """Count distinct (site, global-history) contexts in ``trace``.

    This is the quantity that controls how well gshare-style predictors can
    train at a given trace length — the scale diagnostic discussed in
    EXPERIMENTS.md.
    """
    history = 0
    contexts: set[tuple[int, int]] = set()
    branches = 0
    history_mask = mask(history_bits)
    for pc, taken in trace.conditional_branches():
        contexts.add((pc, history))
        branches += 1
        history = ((history << 1) | int(taken)) & history_mask
    return ContextProfile(
        history_bits=history_bits, branches=branches, contexts=len(contexts)
    )
