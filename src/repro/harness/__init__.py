"""Experiment harness: measurements, sweeps, aggregation, figure regeneration."""

from repro.harness.aggregate import arithmetic_mean, geometric_mean, harmonic_mean
from repro.harness.analysis import (
    compare_predictors,
    history_context_profile,
    per_site_accuracy,
)
from repro.harness.experiment import (
    AccuracyResult,
    OverrideResult,
    default_jobs,
    measure_accuracy,
    measure_override,
)
from repro.harness.parallel import (
    Shard,
    ShardOutcome,
    SweepExecutionError,
    pool_jobs,
    run_shards,
)
from repro.harness.scale import (
    accuracy_instructions,
    benchmark_names,
    ipc_instructions,
    resolved_config,
    scale_factor,
    warmup_branches,
)

__all__ = [
    "AccuracyResult",
    "OverrideResult",
    "Shard",
    "ShardOutcome",
    "SweepExecutionError",
    "accuracy_instructions",
    "arithmetic_mean",
    "benchmark_names",
    "compare_predictors",
    "default_jobs",
    "geometric_mean",
    "harmonic_mean",
    "history_context_profile",
    "ipc_instructions",
    "measure_accuracy",
    "measure_override",
    "per_site_accuracy",
    "pool_jobs",
    "resolved_config",
    "run_shards",
    "scale_factor",
    "warmup_branches",
]
