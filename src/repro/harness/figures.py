"""Regeneration entry points for every table and figure in the paper.

Each ``figureN()`` / ``tableN()`` function reruns the underlying experiment
at the current ``REPRO_SCALE`` and returns structured data; the matching
``format_*`` helper renders the same rows/series the paper plots.  The
benchmark suite (``benchmarks/``) wraps these, and ``repro-figures`` (the
CLI) prints them.

All trace acquisition goes through :func:`repro.workloads.spec2000_trace`,
so with ``REPRO_TRACE_STORE`` set every figure transparently reuses the
content-addressed on-disk trace store: a warm run replays stored columnar
traces with zero generation work and byte-identical rendered output
(``scripts/trace_store_check.py`` asserts exactly this on the Figure 1
grid).

Index (see DESIGN.md for the full experiment table):

* Figure 1 — mean misprediction vs budget: gshare, Bi-Mode,
  multi-component, perceptron (2KB-512KB).
* Figure 2 — IPC of perceptron & multi-component, ideal vs overriding.
* Table 1  — simulated machine parameters.
* Table 2  — predictor access latencies.
* Figure 5 — mean misprediction, large budgets: 2Bc-gskew,
  multi-component, perceptron, gshare.fast.
* Figure 6 — per-benchmark misprediction at a 64KB-class budget.
* Figure 7 — harmonic-mean IPC vs budget, ideal (left) and overriding
  (right) for the complex predictors plus gshare.fast.
* Figure 8 — per-benchmark IPC at the ~53-64KB budget point.
* §3.2     — delayed-PHT-update accuracy/IPC study.
* §4.5     — override (disagreement) rate statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import obs
from repro.core.gshare_fast import build_gshare_fast
from repro.harness.aggregate import arithmetic_mean, harmonic_mean
from repro.harness.experiment import measure_accuracy
from repro.harness.report import format_budget, render_series_table, render_table
from repro.harness.scale import (
    accuracy_instructions,
    benchmark_names,
    ipc_instructions,
    warmup_branches,
)
from repro.harness.sweep import (
    FULL_BUDGETS,
    LARGE_BUDGETS,
    accuracy_sweep,
    ipc_sweep,
    mean_by_family_budget,
    override_statistics,
)
from repro.timing.latency import table2 as timing_table2
from repro.uarch.config import PAPER_MACHINE
from repro.uarch.simulator import CycleSimulator
from repro.workloads.spec2000 import get_profile, spec2000_trace

#: The paper reports complex predictors at a "53KB" hardware budget; our
#: power-of-two ladder's nearest point is 64KB.
MID_BUDGET = 64 * 1024

FIGURE1_FAMILIES = ["gshare", "bimode", "multicomponent", "perceptron"]
FIGURE5_FAMILIES = ["2bcgskew", "multicomponent", "perceptron", "gshare_fast"]
FIGURE7_FAMILIES = ["2bcgskew", "multicomponent", "perceptron"]
FIGURE6_FAMILIES = ["multicomponent", "perceptron", "gshare_fast"]
FIGURE8_FAMILIES = ["multicomponent", "perceptron", "gshare_fast"]
EXTENSION_FAMILIES = ["gshare_fast", "bimode_fast"]


@dataclass
class SeriesFigure:
    """A budget-on-x, one-line-per-predictor figure."""

    title: str
    x_values: list[int]
    series: dict[str, dict[int, float]] = field(default_factory=dict)

    def render(self, x_label: str = "Budget", value_format: str = "{:.2f}") -> str:
        """Text table: one row per budget, one column per predictor."""
        return render_series_table(self.title, x_label, self.x_values, self.series, value_format)


@dataclass
class PerBenchmarkFigure:
    """A benchmark-on-x, one-bar-per-predictor figure."""

    title: str
    benchmarks: list[str]
    series: dict[str, dict[str, float]] = field(default_factory=dict)
    mean_label: str = "mean"
    means: dict[str, float] = field(default_factory=dict)

    def render(self, value_format: str = "{:.2f}") -> str:
        """Text table: one row per benchmark plus the mean row."""
        names = sorted(self.series)
        rows = []
        for benchmark in self.benchmarks:
            rows.append(
                [benchmark]
                + [value_format.format(self.series[name][benchmark]) for name in names]
            )
        rows.append(
            [self.mean_label] + [value_format.format(self.means[name]) for name in names]
        )
        return render_table(self.title, ["benchmark", *names], rows)


# -- Figure 1 -----------------------------------------------------------------


def figure1(
    budgets: list[int] | None = None,
    instructions: int | None = None,
    engine: str | None = None,
    jobs: int | None = None,
) -> SeriesFigure:
    """Arithmetic-mean misprediction rates vs hardware budget (Figure 1)."""
    budgets = budgets or FULL_BUDGETS
    with obs.span("figure1.sweep", budgets=len(budgets)):
        cells = accuracy_sweep(
            FIGURE1_FAMILIES, budgets, instructions=instructions, engine=engine,
            jobs=jobs,
        )
    means = mean_by_family_budget(cells)
    figure = SeriesFigure(
        title="Figure 1: arithmetic mean misprediction rate (%) on SPECint2000",
        x_values=budgets,
    )
    for (family, budget), value in means.items():
        figure.series.setdefault(family, {})[budget] = value
    return figure


# -- Figure 2 -----------------------------------------------------------------


def figure2(
    budgets: list[int] | None = None,
    instructions: int | None = None,
    jobs: int | None = None,
) -> SeriesFigure:
    """Ideal vs realistic (overriding) IPC for the two most accurate complex
    predictors (Figure 2)."""
    budgets = budgets or LARGE_BUDGETS
    families = ["multicomponent", "perceptron"]
    figure = SeriesFigure(
        title="Figure 2: harmonic mean IPC, ideal vs overriding",
        x_values=budgets,
    )
    for mode, suffix in (("ideal", "(no delay)"), ("overriding", "(overriding)")):
        with obs.span("figure2.sweep", mode=mode, budgets=len(budgets)):
            cells = ipc_sweep(
                families, budgets, mode=mode, instructions=instructions, jobs=jobs
            )
        groups: dict[tuple[str, int], list[float]] = {}
        for cell in cells:
            groups.setdefault((cell.family, cell.budget_bytes), []).append(cell.ipc)
        for (family, budget), values in groups.items():
            figure.series.setdefault(f"{family} {suffix}", {})[budget] = harmonic_mean(values)
    return figure


# -- Table 1 ------------------------------------------------------------------


def table1() -> str:
    """The simulated machine parameters (Table 1)."""
    config = PAPER_MACHINE
    rows = [
        ("L1 I-cache", f"{config.l1_size // 1024} KB, {config.l1_line}-byte lines, direct mapped"),
        ("L1 D-cache", f"{config.l1_size // 1024} KB, {config.l1_line}-byte lines, direct mapped"),
        (
            "L2 cache",
            f"{config.l2_size // (1024 * 1024)} MB, {config.l2_line}-byte lines, "
            f"{config.l2_ways}-way set assoc.",
        ),
        ("BTB", f"{config.btb_entries} entry, {config.btb_ways}-way set-assoc."),
        ("Issue width", str(config.issue_width)),
        ("Pipeline depth", str(config.pipeline_depth)),
    ]
    return render_table("Table 1: simulation parameters", ["Parameter", "Configuration"], rows)


# -- Table 2 ------------------------------------------------------------------


def table2() -> str:
    """Predictor access latencies (Table 2), from the SRAM delay model."""
    rows = []
    for row in timing_table2():
        rows.append(
            (
                format_budget(row.multicomponent_budget),
                row.multicomponent_cycles,
                format_budget(row.budget),
                row.gskew_cycles,
                row.perceptron_cycles,
            )
        )
    return render_table(
        "Table 2: predictor access latencies (cycles)",
        ["MC budget", "MC delay", "Budget", "2Bc-gskew delay", "Perceptron delay"],
        rows,
    )


# -- Figure 5 -----------------------------------------------------------------


def figure5(
    budgets: list[int] | None = None,
    instructions: int | None = None,
    engine: str | None = None,
    jobs: int | None = None,
) -> SeriesFigure:
    """Mean misprediction rates of the four large predictors (Figure 5)."""
    budgets = budgets or LARGE_BUDGETS
    with obs.span("figure5.sweep", budgets=len(budgets)):
        cells = accuracy_sweep(
            FIGURE5_FAMILIES, budgets, instructions=instructions, engine=engine,
            jobs=jobs,
        )
    means = mean_by_family_budget(cells)
    figure = SeriesFigure(
        title="Figure 5: arithmetic mean misprediction rate (%), large budgets",
        x_values=budgets,
    )
    for (family, budget), value in means.items():
        figure.series.setdefault(family, {})[budget] = value
    return figure


# -- Figure 6 -----------------------------------------------------------------


def figure6(
    budget_bytes: int = MID_BUDGET,
    instructions: int | None = None,
    engine: str | None = None,
    jobs: int | None = None,
) -> PerBenchmarkFigure:
    """Per-benchmark misprediction rates at the mid (53-64KB) budget
    (Figure 6)."""
    benchmarks = benchmark_names()
    with obs.span("figure6.sweep", budget=budget_bytes):
        cells = accuracy_sweep(
            FIGURE6_FAMILIES,
            [budget_bytes],
            benchmarks=benchmarks,
            instructions=instructions,
            engine=engine,
            jobs=jobs,
        )
    figure = PerBenchmarkFigure(
        title=f"Figure 6: misprediction rates (%) at a {format_budget(budget_bytes)} budget",
        benchmarks=benchmarks,
        mean_label="arith.mean",
    )
    for cell in cells:
        figure.series.setdefault(cell.family, {})[cell.benchmark] = cell.misprediction_percent
    for family, values in figure.series.items():
        figure.means[family] = arithmetic_mean(list(values.values()))
    return figure


# -- Figure 7 -----------------------------------------------------------------


def figure7(
    budgets: list[int] | None = None,
    instructions: int | None = None,
    jobs: int | None = None,
) -> tuple[SeriesFigure, SeriesFigure]:
    """Harmonic-mean IPC vs budget: ideal (left panel) and overriding
    (right panel), complex predictors plus gshare.fast (Figure 7)."""
    budgets = budgets or LARGE_BUDGETS
    panels = []
    for mode, label in (("ideal", "1-cycle (ideal)"), ("overriding", "overriding")):
        figure = SeriesFigure(
            title=f"Figure 7 ({label}): harmonic mean IPC",
            x_values=budgets,
        )
        with obs.span("figure7.sweep", mode=mode, budgets=len(budgets)):
            cells = ipc_sweep(
                FIGURE7_FAMILIES + ["gshare_fast"],
                budgets,
                mode=mode,
                instructions=instructions,
                jobs=jobs,
            )
        groups: dict[tuple[str, int], list[float]] = {}
        for cell in cells:
            groups.setdefault((cell.family, cell.budget_bytes), []).append(cell.ipc)
        for (family, budget), values in groups.items():
            figure.series.setdefault(family, {})[budget] = harmonic_mean(values)
        panels.append(figure)
    return panels[0], panels[1]


# -- Figure 8 -----------------------------------------------------------------


def figure8(
    budget_bytes: int = MID_BUDGET,
    instructions: int | None = None,
    jobs: int | None = None,
) -> PerBenchmarkFigure:
    """Per-benchmark IPC at the mid budget, overriding for the complex
    predictors and single-cycle for gshare.fast (Figure 8)."""
    benchmarks = benchmark_names()
    figure = PerBenchmarkFigure(
        title=f"Figure 8: IPC at a {format_budget(budget_bytes)} budget",
        benchmarks=benchmarks,
        mean_label="harm.mean",
    )
    with obs.span("figure8.sweep", budget=budget_bytes):
        cells = ipc_sweep(
            FIGURE8_FAMILIES,
            [budget_bytes],
            mode="overriding",
            benchmarks=benchmarks,
            instructions=instructions,
            jobs=jobs,
        )
    for cell in cells:
        figure.series.setdefault(cell.family, {})[cell.benchmark] = cell.ipc
    for family, values in figure.series.items():
        figure.means[family] = harmonic_mean(list(values.values()))
    return figure


# -- Extension: pipelined single-cycle families ---------------------------------


def extension_pipelined_families(
    budgets: list[int] | None = None,
    instructions: int | None = None,
    engine: str | None = None,
    jobs: int | None = None,
) -> SeriesFigure:
    """The paper's future work, measured: gshare.fast vs bimode.fast.

    Both deliver single-cycle predictions; bimode.fast adds Bi-Mode's bias
    separation on top of the same prefetch-and-select pipeline.
    """
    budgets = budgets or LARGE_BUDGETS
    with obs.span("extension.sweep", budgets=len(budgets)):
        cells = accuracy_sweep(
            EXTENSION_FAMILIES,
            budgets,
            instructions=instructions,
            engine=engine,
            jobs=jobs,
        )
    means = mean_by_family_budget(cells)
    figure = SeriesFigure(
        title="Extension: pipelined single-cycle families, mean misprediction (%)",
        x_values=budgets,
    )
    for (family, budget), value in means.items():
        figure.series.setdefault(family, {})[budget] = value
    return figure


# -- Section 3.2: delayed update ------------------------------------------------


@dataclass
class DelayedUpdateResult:
    """Accuracy/IPC of gshare.fast across predict-to-update delays."""

    budget_bytes: int
    delays: list[int]
    misprediction_percent: dict[int, float]
    ipc: dict[int, float]

    def render(self) -> str:
        """Text table of mispredict/IPC per update delay."""
        rows = [
            (delay, f"{self.misprediction_percent[delay]:.2f}", f"{self.ipc[delay]:.3f}")
            for delay in self.delays
        ]
        return render_table(
            f"Section 3.2: delayed PHT update, {format_budget(self.budget_bytes)} gshare.fast",
            ["update delay (branches)", "mispredict %", "IPC (hmean)"],
            rows,
        )


def delayed_update_study(
    budget_bytes: int = 256 * 1024, delays: tuple[int, ...] = (0, 64)
) -> DelayedUpdateResult:
    """Reproduce the Section 3.2 experiment: predict-to-update distance of
    64 branches costs ~0.04pp accuracy and <1% IPC at a 256KB budget."""
    from repro.uarch.policies import SingleCyclePolicy

    benchmarks = benchmark_names()
    mispredict: dict[int, float] = {}
    ipc: dict[int, float] = {}
    for delay in delays:
        with obs.span("delayed_update.sweep", delay=delay):
            rates = []
            ipcs = []
            for benchmark in benchmarks:
                trace = spec2000_trace(benchmark, instructions=accuracy_instructions())
                predictor = build_gshare_fast(budget_bytes, update_delay=delay)
                warmup = warmup_branches(trace.conditional_branch_count)
                rates.append(
                    measure_accuracy(
                        predictor, trace, warmup_branches=warmup
                    ).misprediction_percent
                )
                ipc_trace = spec2000_trace(benchmark, instructions=ipc_instructions())
                simulator = CycleSimulator(
                    SingleCyclePolicy(build_gshare_fast(budget_bytes, update_delay=delay)),
                    ilp=get_profile(benchmark).ilp,
                )
                ipcs.append(simulator.run(ipc_trace).ipc)
            mispredict[delay] = arithmetic_mean(rates)
            ipc[delay] = harmonic_mean(ipcs)
    return DelayedUpdateResult(
        budget_bytes=budget_bytes,
        delays=list(delays),
        misprediction_percent=mispredict,
        ipc=ipc,
    )


# -- Section 4.5: override disagreement ------------------------------------------


@dataclass
class OverrideDisagreement:
    """Per-benchmark quick/slow disagreement rates for one family."""

    family: str
    budget_bytes: int
    per_benchmark: dict[str, float]

    @property
    def mean_rate(self) -> float:
        """Mean override rate across the measured benchmarks."""
        return arithmetic_mean(list(self.per_benchmark.values()))

    def render(self) -> str:
        """Text table of per-benchmark override rates."""
        rows = [(name, f"{100 * rate:.2f}") for name, rate in self.per_benchmark.items()]
        rows.append(("mean", f"{100 * self.mean_rate:.2f}"))
        return render_table(
            f"Section 4.5: override rate (%), {self.family} at "
            f"{format_budget(self.budget_bytes)}",
            ["benchmark", "override %"],
            rows,
        )


def override_disagreement(
    family: str = "perceptron", budget_bytes: int = MID_BUDGET
) -> OverrideDisagreement:
    """Reproduce Section 4.5: how often the slow predictor overrides the
    quick one (paper: perceptron avg 7.38%; multi-component on twolf
    18.1%)."""
    rates = override_statistics(family, budget_bytes)
    return OverrideDisagreement(family=family, budget_bytes=budget_bytes, per_benchmark=rates)
