"""Aggregation helpers matching the paper's reporting conventions.

The paper reports *arithmetic* mean misprediction rates (Figures 1, 5, 6)
and *harmonic* mean IPCs (Figures 2, 7, 8) over the twelve benchmarks.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.common.errors import ConfigurationError


def arithmetic_mean(values: Sequence[float]) -> float:
    """Plain average (the paper's misprediction-rate aggregate)."""
    if not values:
        raise ConfigurationError("cannot average an empty sequence")
    return sum(values) / len(values)


def harmonic_mean(values: Sequence[float]) -> float:
    """Harmonic mean (the paper's IPC aggregate); requires positives."""
    if not values:
        raise ConfigurationError("cannot average an empty sequence")
    if any(value <= 0 for value in values):
        raise ConfigurationError("harmonic mean requires positive values")
    return len(values) / sum(1.0 / value for value in values)


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean; requires positive values."""
    if not values:
        raise ConfigurationError("cannot average an empty sequence")
    if any(value <= 0 for value in values):
        raise ConfigurationError("geometric mean requires positive values")
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))
